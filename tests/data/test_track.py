"""Tests for the synthetic race-track image/waypoint generator."""

import numpy as np
import pytest

from repro.data.track import TrackConfig, generate_track_dataset, render_track_image
from repro.exceptions import DataError
from repro.nn.network import mlp
from repro.nn.training import train_regressor


class TestConfig:
    def test_defaults_are_valid(self):
        config = TrackConfig()
        assert config.image_size == 16
        assert config.offset_range[0] < config.offset_range[1]

    def test_invalid_configs_rejected(self):
        with pytest.raises(DataError):
            TrackConfig(image_size=4)
        with pytest.raises(DataError):
            TrackConfig(road_width=0.0)
        with pytest.raises(DataError):
            TrackConfig(offset_range=(0.7, 0.3))
        with pytest.raises(DataError):
            TrackConfig(heading_range=(0.5, -0.5))


class TestRendering:
    def test_image_shape_and_range(self):
        image = render_track_image(0.5, 0.0, rng=np.random.default_rng(0))
        assert image.shape == (16, 16)
        assert 0.0 <= image.min() and image.max() <= 1.0

    def test_road_offset_moves_bright_column(self):
        config = TrackConfig(noise=0.0, lane_marking=False)
        left = render_track_image(0.3, 0.0, config, rng=np.random.default_rng(0))
        right = render_track_image(0.7, 0.0, config, rng=np.random.default_rng(0))
        # Bottom row brightness centroid follows the offset.
        columns = np.arange(16) + 0.5
        left_centroid = (left[-1] * columns).sum() / left[-1].sum()
        right_centroid = (right[-1] * columns).sum() / right[-1].sum()
        assert left_centroid < right_centroid

    def test_brightness_scale_darkens_image(self):
        config = TrackConfig(noise=0.0)
        normal = render_track_image(0.5, 0.0, config, rng=np.random.default_rng(0))
        dark = render_track_image(
            0.5, 0.0, config, rng=np.random.default_rng(0), brightness_scale=0.3
        )
        assert dark.mean() < normal.mean() * 0.5

    def test_heading_bends_road(self):
        config = TrackConfig(noise=0.0, lane_marking=False)
        straight = render_track_image(0.5, 0.0, config, rng=np.random.default_rng(0))
        bent = render_track_image(0.5, 0.4, config, rng=np.random.default_rng(0))
        # The top rows differ while the bottom rows stay similar.
        assert np.abs(straight[0] - bent[0]).sum() > np.abs(straight[-1] - bent[-1]).sum()


class TestGeneration:
    def test_dataset_shapes(self):
        dataset = generate_track_dataset(50, seed=0)
        assert dataset.num_samples == 50
        assert dataset.num_features == 256
        assert dataset.targets.shape == (50, 2)

    def test_targets_in_normalised_range(self):
        dataset = generate_track_dataset(80, seed=1)
        assert np.all(dataset.targets >= 0.0) and np.all(dataset.targets <= 1.0)

    def test_determinism_for_seed(self):
        a = generate_track_dataset(20, seed=5)
        b = generate_track_dataset(20, seed=5)
        np.testing.assert_array_equal(a.inputs, b.inputs)
        np.testing.assert_array_equal(a.targets, b.targets)

    def test_metadata(self):
        dataset = generate_track_dataset(10, seed=2, lighting_variation=0.2)
        assert dataset.metadata["lighting_variation"] == 0.2
        assert dataset.metadata["generator"] == "track"

    def test_invalid_parameters_rejected(self):
        with pytest.raises(DataError):
            generate_track_dataset(0)
        with pytest.raises(DataError):
            generate_track_dataset(10, lighting_variation=-0.1)

    def test_waypoints_are_learnable(self):
        """A small MLP regresses the waypoints to reasonable accuracy."""
        dataset = generate_track_dataset(200, seed=3, lighting_variation=0.05)
        network = mlp(dataset.num_features, [24], 2, seed=4)
        train_regressor(network, dataset.inputs, dataset.targets, epochs=15, seed=5)
        predictions = network.forward(dataset.inputs)
        mse = float(np.mean((predictions - dataset.targets) ** 2))
        # Predicting the mean target everywhere gives roughly the target variance.
        baseline = float(np.mean(np.var(dataset.targets, axis=0)))
        assert mse < baseline * 0.7
