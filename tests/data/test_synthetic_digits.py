"""Tests for the procedural digit dataset generator."""

import numpy as np
import pytest

from repro.data.synthetic_digits import (
    IMAGE_SIZE,
    digit_template,
    generate_digits,
    generate_novel_glyphs,
    render_digit,
)
from repro.exceptions import DataError
from repro.nn.network import mlp
from repro.nn.training import accuracy, train_classifier


class TestRendering:
    def test_digit_template_known_segments(self):
        assert set(digit_template(1)) == {"top_right", "bottom_right"}
        assert len(digit_template(8)) == 7

    def test_invalid_digit_rejected(self):
        with pytest.raises(DataError):
            digit_template(10)

    def test_rendered_image_shape_and_range(self):
        image = render_digit(3, rng=np.random.default_rng(0))
        assert image.shape == (IMAGE_SIZE, IMAGE_SIZE)
        assert image.min() >= 0.0
        assert image.max() <= 1.0

    def test_different_digits_render_differently(self):
        rng = np.random.default_rng(0)
        one = render_digit(1, rng=rng, noise=0.0, jitter=0.0)
        eight = render_digit(8, rng=rng, noise=0.0, jitter=0.0)
        assert np.abs(one - eight).sum() > 1.0

    def test_same_digit_with_zero_noise_is_similar(self):
        a = render_digit(5, rng=np.random.default_rng(1), noise=0.0, jitter=0.0)
        b = render_digit(5, rng=np.random.default_rng(2), noise=0.0, jitter=0.0)
        np.testing.assert_allclose(a, b, atol=1e-9)


class TestGeneration:
    def test_dataset_shape_and_balance(self):
        dataset = generate_digits(100, num_classes=5, seed=0)
        assert dataset.num_samples == 100
        assert dataset.num_features == IMAGE_SIZE * IMAGE_SIZE
        counts = np.bincount(dataset.targets, minlength=5)
        assert counts.tolist() == [20] * 5

    def test_determinism_for_seed(self):
        a = generate_digits(30, num_classes=3, seed=7)
        b = generate_digits(30, num_classes=3, seed=7)
        np.testing.assert_array_equal(a.inputs, b.inputs)
        np.testing.assert_array_equal(a.targets, b.targets)

    def test_different_seeds_differ(self):
        a = generate_digits(30, num_classes=3, seed=1)
        b = generate_digits(30, num_classes=3, seed=2)
        assert not np.array_equal(a.inputs, b.inputs)

    def test_variability_zero_gives_clean_templates(self):
        dataset = generate_digits(20, num_classes=2, variability=0.0, seed=0)
        class0 = dataset.inputs[dataset.targets == 0]
        assert np.allclose(class0.std(axis=0), 0.0, atol=1e-9)

    def test_metadata_records_parameters(self):
        dataset = generate_digits(10, num_classes=2, seed=3)
        assert dataset.metadata["num_classes"] == 2
        assert dataset.metadata["seed"] == 3

    def test_invalid_parameters_rejected(self):
        with pytest.raises(DataError):
            generate_digits(0)
        with pytest.raises(DataError):
            generate_digits(10, num_classes=1)
        with pytest.raises(DataError):
            generate_digits(10, num_classes=11)
        with pytest.raises(DataError):
            generate_digits(10, variability=-1.0)

    def test_classes_are_learnable(self):
        """A small MLP separates the synthetic classes — the datasets carry signal."""
        dataset = generate_digits(200, num_classes=3, seed=11)
        network = mlp(dataset.num_features, [24], 3, seed=12)
        train_classifier(
            network, dataset.inputs, dataset.targets, num_classes=3, epochs=8, seed=13
        )
        assert accuracy(network, dataset.inputs, dataset.targets) > 0.8


class TestNovelGlyphs:
    def test_generation_shape(self):
        glyphs = generate_novel_glyphs(25, seed=0)
        assert glyphs.num_samples == 25
        assert glyphs.num_features == IMAGE_SIZE * IMAGE_SIZE

    def test_glyphs_differ_from_digits(self):
        digits = generate_digits(50, num_classes=5, variability=0.0, seed=0)
        glyphs = generate_novel_glyphs(50, variability=0.0, seed=0)
        digit_mean = digits.inputs.mean(axis=0)
        glyph_mean = glyphs.inputs.mean(axis=0)
        assert np.abs(digit_mean - glyph_mean).sum() > 1.0

    def test_invalid_count_rejected(self):
        with pytest.raises(DataError):
            generate_novel_glyphs(0)

    def test_metadata_lists_glyphs(self):
        glyphs = generate_novel_glyphs(5, seed=0)
        assert "X" in glyphs.metadata["glyphs"]
