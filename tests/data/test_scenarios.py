"""Tests for in-ODD jitter and out-of-ODD scenario transforms."""

import numpy as np
import pytest

from repro.data.scenarios import (
    SCENARIOS,
    apply_scenario,
    construction_scenario,
    dark_scenario,
    fog_scenario,
    ice_scenario,
    in_odd_jitter,
    occlusion_scenario,
    scenario_suite,
    sensor_noise_scenario,
)
from repro.data.track import generate_track_dataset
from repro.exceptions import DataError


@pytest.fixture(scope="module")
def track():
    return generate_track_dataset(30, seed=0, lighting_variation=0.0)


class TestGeneralProperties:
    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_output_stays_in_unit_range(self, track, name):
        transformed = apply_scenario(name, track, seed=0)
        assert transformed.inputs.min() >= 0.0
        assert transformed.inputs.max() <= 1.0

    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_shape_and_targets_preserved(self, track, name):
        transformed = apply_scenario(name, track, seed=0)
        assert transformed.inputs.shape == track.inputs.shape
        np.testing.assert_array_equal(transformed.targets, track.targets)

    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_scenarios_change_the_images(self, track, name):
        transformed = apply_scenario(name, track, seed=0)
        assert np.abs(transformed.inputs - track.inputs).mean() > 0.01

    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_deterministic_for_seed(self, track, name):
        a = apply_scenario(name, track, seed=3)
        b = apply_scenario(name, track, seed=3)
        np.testing.assert_array_equal(a.inputs, b.inputs)

    def test_scenario_metadata_and_name(self, track):
        dark = dark_scenario(track, seed=0)
        assert dark.metadata["scenario"] == "dark"
        assert dark.name.endswith("-dark")

    def test_unknown_scenario_rejected(self, track):
        with pytest.raises(DataError):
            apply_scenario("alien-invasion", track)

    def test_non_square_inputs_rejected(self):
        from repro.data.datasets import Dataset

        dataset = Dataset(np.zeros((4, 10)), np.zeros(4, dtype=int))
        with pytest.raises(DataError):
            dark_scenario(dataset)


class TestSpecificScenarios:
    def test_dark_reduces_mean_brightness(self, track):
        dark = dark_scenario(track, brightness=0.3, seed=0)
        assert dark.inputs.mean() < track.inputs.mean() * 0.7

    def test_fog_compresses_contrast(self, track):
        fog = fog_scenario(track, density=0.8, seed=0)
        assert fog.inputs.std() < track.inputs.std() * 0.6

    def test_ice_increases_mean_brightness(self, track):
        ice = ice_scenario(track, num_patches=6, patch_size=6, seed=0)
        assert ice.inputs.mean() > track.inputs.mean()

    def test_sensor_noise_increases_high_frequency_energy(self, track):
        noisy = sensor_noise_scenario(track, noise_std=0.3, seed=0)
        original_diff = np.abs(np.diff(track.inputs, axis=1)).mean()
        noisy_diff = np.abs(np.diff(noisy.inputs, axis=1)).mean()
        assert noisy_diff > original_diff * 1.5

    def test_occlusion_creates_dark_band(self, track):
        occluded = occlusion_scenario(track, band_width=6, seed=0)
        dark_pixels = (occluded.inputs < 0.06).mean()
        assert dark_pixels > (track.inputs < 0.06).mean() + 0.1

    def test_construction_adds_extreme_pixels(self, track):
        built = construction_scenario(track, num_obstacles=4, obstacle_size=4, seed=0)
        assert (built.inputs > 0.95).mean() >= (track.inputs > 0.95).mean()

    def test_in_odd_jitter_is_small(self, track):
        jittered = in_odd_jitter(track, brightness_std=0.02, noise_std=0.005, seed=0)
        assert np.abs(jittered.inputs - track.inputs).mean() < 0.05

    def test_invalid_parameters_rejected(self, track):
        with pytest.raises(DataError):
            dark_scenario(track, brightness=1.5)
        with pytest.raises(DataError):
            construction_scenario(track, num_obstacles=0)
        with pytest.raises(DataError):
            ice_scenario(track, patch_size=0)
        with pytest.raises(DataError):
            fog_scenario(track, density=2.0)
        with pytest.raises(DataError):
            sensor_noise_scenario(track, noise_std=0.0)
        with pytest.raises(DataError):
            occlusion_scenario(track, band_width=0)
        with pytest.raises(DataError):
            in_odd_jitter(track, brightness_std=-0.1)


class TestScenarioSuite:
    def test_default_suite_is_the_paper_triple(self, track):
        suite = scenario_suite(track, seed=0)
        assert set(suite) == {"dark", "construction", "ice"}

    def test_custom_suite(self, track):
        suite = scenario_suite(track, names=["fog", "occlusion"], seed=0)
        assert set(suite) == {"fog", "occlusion"}

    def test_suite_entries_are_distinct_datasets(self, track):
        suite = scenario_suite(track, seed=0)
        assert not np.array_equal(suite["dark"].inputs, suite["ice"].inputs)
