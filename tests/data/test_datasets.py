"""Tests for the Dataset container and split utilities."""

import numpy as np
import pytest

from repro.data.datasets import Dataset, train_validation_test_split
from repro.exceptions import DataError, ShapeError


@pytest.fixture
def classification_dataset():
    rng = np.random.default_rng(0)
    inputs = rng.normal(size=(60, 5))
    labels = np.repeat(np.arange(3), 20)
    return Dataset(inputs, labels, name="toy")


@pytest.fixture
def regression_dataset():
    rng = np.random.default_rng(1)
    inputs = rng.normal(size=(40, 4))
    targets = rng.normal(size=(40, 2))
    return Dataset(inputs, targets, name="reg")


class TestConstruction:
    def test_basic_properties(self, classification_dataset):
        assert classification_dataset.num_samples == 60
        assert classification_dataset.num_features == 5
        assert len(classification_dataset) == 60
        assert classification_dataset.is_classification
        assert classification_dataset.num_classes == 3

    def test_regression_dataset_is_not_classification(self, regression_dataset):
        assert not regression_dataset.is_classification
        with pytest.raises(DataError):
            regression_dataset.num_classes

    def test_higher_dimensional_inputs_are_flattened(self):
        dataset = Dataset(np.zeros((10, 4, 4)), np.zeros(10, dtype=int))
        assert dataset.num_features == 16

    def test_sample_count_mismatch_rejected(self):
        with pytest.raises(ShapeError):
            Dataset(np.zeros((5, 3)), np.zeros(4, dtype=int))


class TestTransformations:
    def test_shuffled_preserves_pairs(self, classification_dataset):
        shuffled = classification_dataset.shuffled(seed=3)
        assert shuffled.num_samples == classification_dataset.num_samples
        original = {
            (tuple(row), label)
            for row, label in zip(classification_dataset.inputs, classification_dataset.targets)
        }
        permuted = {
            (tuple(row), label) for row, label in zip(shuffled.inputs, shuffled.targets)
        }
        assert original == permuted

    def test_shuffled_is_deterministic_for_seed(self, classification_dataset):
        a = classification_dataset.shuffled(seed=5)
        b = classification_dataset.shuffled(seed=5)
        np.testing.assert_array_equal(a.inputs, b.inputs)

    def test_subset_and_take(self, classification_dataset):
        subset = classification_dataset.subset(np.array([0, 2, 4]))
        assert subset.num_samples == 3
        taken = classification_dataset.take(7)
        assert taken.num_samples == 7
        assert classification_dataset.take(1000).num_samples == 60

    def test_take_negative_rejected(self, classification_dataset):
        with pytest.raises(DataError):
            classification_dataset.take(-1)

    def test_split_fractions(self, classification_dataset):
        first, second = classification_dataset.split(0.25, seed=0)
        assert first.num_samples == 15
        assert second.num_samples == 45

    def test_split_invalid_fraction_rejected(self, classification_dataset):
        with pytest.raises(DataError):
            classification_dataset.split(0.0)
        with pytest.raises(DataError):
            classification_dataset.split(1.0)

    def test_class_subset(self, classification_dataset):
        subset = classification_dataset.class_subset(1)
        assert subset.num_samples == 20
        assert np.all(subset.targets == 1)

    def test_class_subset_on_regression_rejected(self, regression_dataset):
        with pytest.raises(DataError):
            regression_dataset.class_subset(0)

    def test_batches_cover_all_samples(self, classification_dataset):
        batches = list(classification_dataset.batches(16))
        assert sum(batch[0].shape[0] for batch in batches) == 60
        assert batches[0][0].shape == (16, 5)
        assert batches[-1][0].shape[0] == 60 - 3 * 16

    def test_batches_invalid_size_rejected(self, classification_dataset):
        with pytest.raises(DataError):
            list(classification_dataset.batches(0))

    def test_with_inputs_keeps_targets(self, classification_dataset):
        new_inputs = classification_dataset.inputs * 2.0
        derived = classification_dataset.with_inputs(new_inputs, name="scaled")
        np.testing.assert_array_equal(derived.targets, classification_dataset.targets)
        assert derived.name == "scaled"

    def test_summary_contains_class_counts(self, classification_dataset):
        summary = classification_dataset.summary()
        assert summary["num_samples"] == 60
        assert summary["class_counts"] == [20, 20, 20]


class TestTrainValidationTestSplit:
    def test_fractions_roughly_respected(self, classification_dataset):
        train, validation, test = train_validation_test_split(
            classification_dataset, 0.6, 0.2, seed=0
        )
        assert train.num_samples + validation.num_samples + test.num_samples == 60
        assert abs(train.num_samples - 36) <= 1
        assert abs(validation.num_samples - 12) <= 1

    def test_no_sample_is_lost_or_duplicated(self, classification_dataset):
        train, validation, test = train_validation_test_split(classification_dataset, seed=1)
        combined = np.vstack([train.inputs, validation.inputs, test.inputs])
        assert combined.shape[0] == 60
        original_sorted = np.sort(classification_dataset.inputs.ravel())
        combined_sorted = np.sort(combined.ravel())
        np.testing.assert_allclose(original_sorted, combined_sorted)

    def test_invalid_fractions_rejected(self, classification_dataset):
        with pytest.raises(DataError):
            train_validation_test_split(classification_dataset, 0.8, 0.3)
        with pytest.raises(DataError):
            train_validation_test_split(classification_dataset, 0.0, 0.1)
