"""Tests for Δ-bounded input perturbation samplers."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.perturbations import (
    corner_perturbations,
    gaussian_perturbations,
    perturb_dataset_inputs,
    perturbation_stream,
    uniform_perturbations,
)
from repro.exceptions import DataError

SAMPLERS = [uniform_perturbations, corner_perturbations, gaussian_perturbations]


class TestSamplers:
    @pytest.mark.parametrize("sampler", SAMPLERS, ids=lambda f: f.__name__)
    def test_shapes(self, sampler):
        vector = np.zeros(5)
        samples = sampler(vector, 0.1, 7, rng=np.random.default_rng(0))
        assert samples.shape == (7, 5)

    @pytest.mark.parametrize("sampler", SAMPLERS, ids=lambda f: f.__name__)
    @settings(max_examples=25, deadline=None)
    @given(delta=st.floats(0.0, 1.0), seed=st.integers(0, 10_000))
    def test_perturbations_stay_within_delta(self, sampler, delta, seed):
        vector = np.linspace(-1, 1, 6)
        samples = sampler(vector, delta, 10, rng=np.random.default_rng(seed))
        assert np.all(np.abs(samples - vector[None, :]) <= delta + 1e-12)

    def test_corner_perturbations_hit_exactly_delta(self):
        vector = np.zeros(4)
        samples = corner_perturbations(vector, 0.2, 10, rng=np.random.default_rng(0))
        np.testing.assert_allclose(np.abs(samples), 0.2)

    def test_uniform_clip_range(self):
        vector = np.full(3, 0.99)
        samples = uniform_perturbations(
            vector, 0.5, 20, rng=np.random.default_rng(0), clip_range=(0.0, 1.0)
        )
        assert samples.max() <= 1.0

    def test_zero_delta_returns_original(self):
        vector = np.array([1.0, -2.0])
        for sampler in SAMPLERS:
            samples = sampler(vector, 0.0, 3, rng=np.random.default_rng(0))
            np.testing.assert_allclose(samples, np.tile(vector, (3, 1)))

    @pytest.mark.parametrize("sampler", SAMPLERS, ids=lambda f: f.__name__)
    def test_invalid_parameters_rejected(self, sampler):
        with pytest.raises(DataError):
            sampler(np.zeros(3), -0.1, 5)
        with pytest.raises(DataError):
            sampler(np.zeros(3), 0.1, 0)


class TestDatasetPerturbation:
    def test_one_perturbed_copy_per_row(self):
        inputs = np.arange(12, dtype=float).reshape(4, 3)
        perturbed = perturb_dataset_inputs(inputs, 0.05, rng=np.random.default_rng(0))
        assert perturbed.shape == inputs.shape
        assert np.all(np.abs(perturbed - inputs) <= 0.05 + 1e-12)

    @pytest.mark.parametrize("kind", ["uniform", "corner", "gaussian"])
    def test_kinds(self, kind):
        inputs = np.zeros((3, 4))
        perturbed = perturb_dataset_inputs(
            inputs, 0.1, rng=np.random.default_rng(0), kind=kind
        )
        assert np.all(np.abs(perturbed) <= 0.1 + 1e-12)

    def test_unknown_kind_rejected(self):
        with pytest.raises(DataError):
            perturb_dataset_inputs(np.zeros((2, 2)), 0.1, kind="adversarial")

    def test_stream_yields_bounded_perturbations(self):
        stream = perturbation_stream(np.zeros(3), 0.2, rng=np.random.default_rng(0))
        for sample in itertools.islice(stream, 10):
            assert np.all(np.abs(sample) <= 0.2 + 1e-12)
