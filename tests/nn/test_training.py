"""Tests for the training loop and high-level training helpers."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, ShapeError
from repro.nn.losses import one_hot
from repro.nn.network import mlp
from repro.nn.optimizers import get_optimizer
from repro.nn.training import (
    Trainer,
    accuracy,
    predict_probabilities,
    train_classifier,
    train_regressor,
)


def make_linearly_separable(num_samples=120, seed=0):
    """Two Gaussian blobs that a small MLP separates easily."""
    rng = np.random.default_rng(seed)
    half = num_samples // 2
    class0 = rng.normal(loc=-1.0, scale=0.4, size=(half, 2))
    class1 = rng.normal(loc=+1.0, scale=0.4, size=(half, 2))
    inputs = np.vstack([class0, class1])
    labels = np.concatenate([np.zeros(half, dtype=int), np.ones(half, dtype=int)])
    order = rng.permutation(num_samples)
    return inputs[order], labels[order]


class TestTrainer:
    def test_fit_reduces_training_loss(self):
        rng = np.random.default_rng(1)
        inputs = rng.uniform(-1, 1, size=(80, 3))
        targets = (inputs @ np.array([[1.0], [-2.0], [0.5]])) + 0.3
        network = mlp(3, [16], 1, seed=2)
        trainer = Trainer(
            network,
            loss="mse",
            optimizer=get_optimizer("adam", learning_rate=0.01),
            batch_size=16,
            seed=3,
        )
        history = trainer.fit(inputs, targets, epochs=25)
        assert history.epochs == 25
        assert history.train_loss[-1] < history.train_loss[0] * 0.2

    def test_validation_loss_is_tracked(self):
        inputs, labels = make_linearly_separable()
        targets = one_hot(labels, 2)
        network = mlp(2, [8], 2, seed=0)
        trainer = Trainer(network, loss="softmax_cross_entropy", seed=1)
        history = trainer.fit(
            inputs[:80], targets[:80], epochs=5, validation_data=(inputs[80:], targets[80:])
        )
        assert len(history.validation_loss) == history.epochs

    def test_early_stopping_halts_training(self):
        rng = np.random.default_rng(4)
        inputs = rng.normal(size=(40, 2))
        targets = rng.normal(size=(40, 1))  # pure noise: validation cannot improve long
        network = mlp(2, [4], 1, seed=5)
        trainer = Trainer(network, loss="mse", optimizer="sgd", seed=6)
        history = trainer.fit(
            inputs[:30],
            targets[:30],
            epochs=200,
            validation_data=(inputs[30:], targets[30:]),
            early_stopping_patience=3,
        )
        assert history.epochs < 200

    def test_early_stopping_without_validation_rejected(self):
        network = mlp(2, [4], 1, seed=0)
        trainer = Trainer(network)
        with pytest.raises(ConfigurationError):
            trainer.fit(np.zeros((4, 2)), np.zeros((4, 1)), early_stopping_patience=2)

    def test_sample_count_mismatch_rejected(self):
        network = mlp(2, [4], 1, seed=0)
        trainer = Trainer(network)
        with pytest.raises(ShapeError):
            trainer.fit(np.zeros((4, 2)), np.zeros((5, 1)))

    def test_invalid_batch_size_rejected(self):
        network = mlp(2, [4], 1, seed=0)
        with pytest.raises(ConfigurationError):
            Trainer(network, batch_size=0)

    def test_history_summary_mentions_losses(self):
        network = mlp(2, [4], 1, seed=0)
        trainer = Trainer(network, seed=0)
        history = trainer.fit(np.zeros((8, 2)), np.zeros((8, 1)), epochs=2)
        assert "train_loss" in history.summary()
        assert history.best_validation_loss() is None


class TestHighLevelHelpers:
    def test_train_classifier_reaches_high_accuracy(self):
        inputs, labels = make_linearly_separable(seed=7)
        network = mlp(2, [12], 2, seed=8)
        history = train_classifier(
            network, inputs, labels, num_classes=2, epochs=30, seed=9
        )
        assert accuracy(network, inputs, labels) > 0.9
        assert history.train_metric[-1] > 0.9

    def test_train_regressor_fits_linear_map(self):
        rng = np.random.default_rng(10)
        inputs = rng.uniform(-1, 1, size=(100, 2))
        targets = inputs @ np.array([[2.0], [-1.0]])
        network = mlp(2, [16], 1, seed=11)
        train_regressor(network, inputs, targets, epochs=40, seed=12)
        predictions = network.forward(inputs)
        assert np.mean((predictions - targets) ** 2) < 0.05

    def test_predict_probabilities_rows_sum_to_one(self):
        inputs, labels = make_linearly_separable(seed=13)
        network = mlp(2, [6], 2, seed=14)
        probabilities = predict_probabilities(network, inputs)
        np.testing.assert_allclose(probabilities.sum(axis=1), 1.0)

    def test_accuracy_shape_mismatch_rejected(self):
        network = mlp(2, [4], 2, seed=0)
        with pytest.raises(ShapeError):
            accuracy(network, np.zeros((3, 2)), np.zeros(4, dtype=int))
