"""Tests for layer forward/backward passes and box propagation."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, ShapeError
from repro.nn.activations import ReLU
from repro.nn.layers import (
    ActivationLayer,
    Dense,
    Dropout,
    Flatten,
    Scale,
    layer_from_config,
)


@pytest.fixture
def rng():
    return np.random.default_rng(1)


def build(layer, input_dim, rng):
    layer.build(input_dim, rng)
    return layer


class TestDense:
    def test_forward_matches_manual_affine(self, rng):
        layer = build(Dense(3), 2, rng)
        layer.set_weights(
            [np.array([[1.0, 0.0, 2.0], [0.5, -1.0, 1.0]]), np.array([0.1, 0.2, 0.3])]
        )
        x = np.array([[2.0, 4.0]])
        expected = x @ layer.weights + layer.bias
        np.testing.assert_allclose(layer.forward(x), expected)

    def test_forward_rejects_wrong_feature_count(self, rng):
        layer = build(Dense(3), 4, rng)
        with pytest.raises(ShapeError):
            layer.forward(np.zeros((2, 5)))

    def test_backward_gradients_match_finite_differences(self, rng):
        layer = build(Dense(3), 4, rng)
        x = rng.normal(size=(5, 4))
        grad_out = rng.normal(size=(5, 3))

        layer.zero_gradients()
        layer.forward(x, training=True)
        grad_in = layer.backward(grad_out)

        # Finite-difference check of dL/dW for L = sum(output * grad_out).
        h = 1e-6
        numeric = np.zeros_like(layer.weights)
        for i in range(layer.weights.shape[0]):
            for j in range(layer.weights.shape[1]):
                layer.weights[i, j] += h
                up = np.sum(layer.forward(x) * grad_out)
                layer.weights[i, j] -= 2 * h
                down = np.sum(layer.forward(x) * grad_out)
                layer.weights[i, j] += h
                numeric[i, j] = (up - down) / (2 * h)
        np.testing.assert_allclose(layer.gradients()["weights"], numeric, atol=1e-4)
        # Gradient w.r.t. the input equals grad_out @ W^T.
        np.testing.assert_allclose(grad_in, grad_out @ layer.weights.T)

    def test_backward_without_training_forward_raises(self, rng):
        layer = build(Dense(2), 2, rng)
        layer.forward(np.zeros((1, 2)), training=False)
        with pytest.raises(ConfigurationError):
            layer.backward(np.zeros((1, 2)))

    def test_propagate_box_is_sound_on_samples(self, rng):
        layer = build(Dense(5), 6, rng)
        low = rng.normal(size=6) - 0.5
        high = low + rng.uniform(0.1, 1.0, size=6)
        out_low, out_high = layer.propagate_box(low, high)
        samples = rng.uniform(low, high, size=(200, 6))
        outputs = layer.forward(samples)
        assert np.all(outputs >= out_low[None, :] - 1e-9)
        assert np.all(outputs <= out_high[None, :] + 1e-9)

    def test_propagate_box_is_exact_for_affine(self, rng):
        layer = build(Dense(2), 2, rng)
        layer.set_weights([np.array([[2.0, -1.0], [0.0, 3.0]]), np.array([1.0, -1.0])])
        out_low, out_high = layer.propagate_box(np.array([0.0, 0.0]), np.array([1.0, 1.0]))
        # Exact image bounds: x1*2 in [0,2]; -x1 + 3*x2 in [-1, 3]; plus bias.
        np.testing.assert_allclose(out_low, [1.0, -2.0])
        np.testing.assert_allclose(out_high, [3.0, 2.0])

    def test_invalid_units_rejected(self):
        with pytest.raises(ConfigurationError):
            Dense(0)

    def test_set_weights_validates_shapes(self, rng):
        layer = build(Dense(3), 2, rng)
        with pytest.raises(ShapeError):
            layer.set_weights([np.zeros((2, 3)), np.zeros(4)])


class TestActivationLayer:
    def test_accepts_name_or_instance(self):
        assert isinstance(ActivationLayer("relu").activation, ReLU)
        assert isinstance(ActivationLayer(ReLU()).activation, ReLU)

    def test_rejects_other_objects(self):
        with pytest.raises(ConfigurationError):
            ActivationLayer(42)

    def test_forward_and_backward(self, rng):
        layer = build(ActivationLayer("relu"), 3, rng)
        x = np.array([[-1.0, 0.5, 2.0]])
        np.testing.assert_array_equal(layer.forward(x, training=True), [[0.0, 0.5, 2.0]])
        grad = layer.backward(np.array([[1.0, 1.0, 1.0]]))
        np.testing.assert_array_equal(grad, [[0.0, 1.0, 1.0]])

    def test_propagate_box_uses_monotone_transform(self, rng):
        layer = build(ActivationLayer("tanh"), 2, rng)
        low, high = layer.propagate_box(np.array([-1.0, 0.0]), np.array([1.0, 2.0]))
        np.testing.assert_allclose(low, np.tanh([-1.0, 0.0]))
        np.testing.assert_allclose(high, np.tanh([1.0, 2.0]))


class TestDropout:
    def test_inference_is_identity(self, rng):
        layer = build(Dropout(0.5, seed=0), 4, rng)
        x = rng.normal(size=(3, 4))
        np.testing.assert_array_equal(layer.forward(x, training=False), x)

    def test_training_zeroes_some_entries_and_rescales(self, rng):
        layer = build(Dropout(0.5, seed=0), 100, rng)
        x = np.ones((1, 100))
        out = layer.forward(x, training=True)
        dropped = np.sum(out == 0.0)
        assert 20 < dropped < 80
        kept_values = out[out != 0.0]
        np.testing.assert_allclose(kept_values, 2.0)

    def test_propagate_box_is_identity(self, rng):
        layer = build(Dropout(0.3), 3, rng)
        low, high = layer.propagate_box(np.array([0.0, 1.0, 2.0]), np.array([1.0, 2.0, 3.0]))
        np.testing.assert_array_equal(low, [0.0, 1.0, 2.0])
        np.testing.assert_array_equal(high, [1.0, 2.0, 3.0])

    def test_invalid_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            Dropout(1.0)


class TestFlattenAndScale:
    def test_flatten_reshapes_images(self, rng):
        layer = build(Flatten(), 9, rng)
        x = rng.normal(size=(2, 3, 3))
        assert layer.forward(x).shape == (2, 9)

    def test_scale_forward_and_box(self, rng):
        layer = build(Scale(scale=2.0, shift=1.0), 3, rng)
        x = np.array([[1.0, -1.0, 0.0]])
        np.testing.assert_allclose(layer.forward(x), [[3.0, -1.0, 1.0]])
        low, high = layer.propagate_box(np.array([-1.0]), np.array([1.0]))
        np.testing.assert_allclose((low, high), ([-1.0], [3.0]))

    def test_negative_scale_swaps_bounds(self, rng):
        layer = build(Scale(scale=-1.0), 1, rng)
        low, high = layer.propagate_box(np.array([0.0]), np.array([2.0]))
        assert low[0] == -2.0 and high[0] == 0.0

    def test_zero_scale_rejected(self):
        with pytest.raises(ConfigurationError):
            Scale(scale=0.0)


class TestSerializationRoundTrip:
    @pytest.mark.parametrize(
        "layer",
        [
            Dense(4),
            ActivationLayer("sigmoid"),
            Dropout(0.25),
            Flatten(),
            Scale(scale=0.5, shift=-1.0),
        ],
        ids=lambda layer: type(layer).__name__,
    )
    def test_config_round_trip(self, layer, rng):
        config = layer.get_config()
        rebuilt = layer_from_config(config)
        assert type(rebuilt) is type(layer)
        assert rebuilt.get_config() == config

    def test_unknown_layer_type_rejected(self):
        with pytest.raises(ConfigurationError):
            layer_from_config({"type": "Conv9D"})
