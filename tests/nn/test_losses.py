"""Tests for loss functions and their gradients."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, ShapeError
from repro.nn.losses import (
    Huber,
    MeanAbsoluteError,
    MeanSquaredError,
    SoftmaxCrossEntropy,
    get_loss,
    one_hot,
    softmax,
)

ALL_LOSSES = [MeanSquaredError(), MeanAbsoluteError(), Huber(1.0), SoftmaxCrossEntropy()]


class TestHelpers:
    def test_softmax_rows_sum_to_one(self):
        logits = np.array([[1.0, 2.0, 3.0], [-1.0, 0.0, 1.0]])
        probabilities = softmax(logits)
        np.testing.assert_allclose(probabilities.sum(axis=1), 1.0)
        assert np.all(probabilities > 0)

    def test_softmax_is_shift_invariant(self):
        logits = np.array([[1.0, 2.0, 3.0]])
        np.testing.assert_allclose(softmax(logits), softmax(logits + 100.0))

    def test_softmax_handles_large_logits(self):
        probabilities = softmax(np.array([[1000.0, 0.0]]))
        assert np.all(np.isfinite(probabilities))

    def test_one_hot_encoding(self):
        encoded = one_hot(np.array([0, 2, 1]), 3)
        np.testing.assert_array_equal(
            encoded, [[1, 0, 0], [0, 0, 1], [0, 1, 0]]
        )

    def test_one_hot_rejects_out_of_range_labels(self):
        with pytest.raises(ShapeError):
            one_hot(np.array([0, 3]), 3)

    def test_one_hot_rejects_2d_labels(self):
        with pytest.raises(ShapeError):
            one_hot(np.zeros((2, 2), dtype=int), 3)


class TestLossValues:
    def test_mse_known_value(self):
        value, _ = MeanSquaredError()(np.array([[1.0, 2.0]]), np.array([[0.0, 0.0]]))
        assert value == pytest.approx(2.5)

    def test_mae_known_value(self):
        value, _ = MeanAbsoluteError()(np.array([[1.0, -3.0]]), np.array([[0.0, 0.0]]))
        assert value == pytest.approx(2.0)

    def test_huber_quadratic_region(self):
        value, _ = Huber(1.0)(np.array([[0.5]]), np.array([[0.0]]))
        assert value == pytest.approx(0.125)

    def test_huber_linear_region(self):
        value, _ = Huber(1.0)(np.array([[3.0]]), np.array([[0.0]]))
        assert value == pytest.approx(0.5 + 2.0)

    def test_cross_entropy_perfect_prediction_is_small(self):
        logits = np.array([[20.0, 0.0, 0.0]])
        targets = one_hot(np.array([0]), 3)
        value, _ = SoftmaxCrossEntropy()(logits, targets)
        assert value < 1e-6

    def test_cross_entropy_uniform_prediction(self):
        logits = np.zeros((1, 4))
        targets = one_hot(np.array([2]), 4)
        value, _ = SoftmaxCrossEntropy()(logits, targets)
        assert value == pytest.approx(np.log(4.0))

    def test_zero_loss_at_target(self):
        target = np.array([[1.0, -2.0]])
        for loss in (MeanSquaredError(), MeanAbsoluteError(), Huber()):
            value, _ = loss(target, target)
            assert value == pytest.approx(0.0)


class TestLossGradients:
    @pytest.mark.parametrize("loss", ALL_LOSSES, ids=lambda loss: loss.name)
    def test_gradient_matches_finite_differences(self, loss):
        rng = np.random.default_rng(0)
        predictions = rng.normal(size=(4, 3))
        if isinstance(loss, SoftmaxCrossEntropy):
            targets = one_hot(rng.integers(0, 3, size=4), 3)
        else:
            targets = rng.normal(size=(4, 3))
        _, grad = loss(predictions, targets)
        h = 1e-6
        numeric = np.zeros_like(predictions)
        for i in range(predictions.shape[0]):
            for j in range(predictions.shape[1]):
                bumped = predictions.copy()
                bumped[i, j] += h
                up, _ = loss(bumped, targets)
                bumped[i, j] -= 2 * h
                down, _ = loss(bumped, targets)
                numeric[i, j] = (up - down) / (2 * h)
        np.testing.assert_allclose(grad, numeric, atol=1e-5)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ShapeError):
            MeanSquaredError()(np.zeros((2, 3)), np.zeros((2, 2)))


class TestRegistry:
    @pytest.mark.parametrize(
        "name", ["mse", "mae", "huber", "softmax_cross_entropy", "cross_entropy"]
    )
    def test_lookup(self, name):
        assert get_loss(name) is not None

    def test_unknown_loss_raises(self):
        with pytest.raises(ConfigurationError):
            get_loss("hinge-of-doom")

    def test_huber_rejects_nonpositive_delta(self):
        with pytest.raises(ConfigurationError):
            Huber(0.0)
