"""Tests for the Sequential network: slicing, gradients and box propagation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError, LayerIndexError, ShapeError
from repro.nn.layers import ActivationLayer, Dense
from repro.nn.network import Sequential, mlp


class TestConstruction:
    def test_mlp_layer_structure(self):
        network = mlp(4, [8, 6], 2, activation="relu", seed=0)
        assert network.num_layers == 5
        assert network.input_dim == 4
        assert network.output_dim == 2
        assert [network.layer_output_dim(k) for k in range(6)] == [4, 8, 8, 6, 6, 2]

    def test_mlp_with_output_activation(self):
        network = mlp(3, [4], 2, output_activation="sigmoid", seed=0)
        assert network.num_layers == 4
        assert isinstance(network.layers[-1], ActivationLayer)

    def test_mlp_requires_hidden_layers(self):
        with pytest.raises(ConfigurationError):
            mlp(3, [], 2)

    def test_empty_layer_list_rejected(self):
        with pytest.raises(ConfigurationError):
            Sequential([], input_dim=3)

    def test_invalid_input_dim_rejected(self):
        with pytest.raises(ConfigurationError):
            Sequential([Dense(2)], input_dim=0)

    def test_num_parameters_counts_dense_weights(self):
        network = mlp(4, [8], 2, seed=0)
        # (4*8 + 8) + (8*2 + 2)
        assert network.num_parameters() == 40 + 18


class TestForwardSlicing:
    def test_forward_to_zero_is_identity(self, tiny_network, tiny_inputs):
        np.testing.assert_array_equal(
            tiny_network.forward_to(0, tiny_inputs), tiny_inputs
        )

    def test_forward_to_full_equals_forward(self, tiny_network, tiny_inputs):
        np.testing.assert_allclose(
            tiny_network.forward_to(tiny_network.num_layers, tiny_inputs),
            tiny_network.forward(tiny_inputs),
        )

    def test_composition_identity(self, tiny_network, tiny_inputs):
        """G^k followed by G^{k+1 -> n} equals the full network G."""
        k = 2
        partial = tiny_network.forward_to(k, tiny_inputs)
        completed = tiny_network.forward_from_to(
            k + 1, tiny_network.num_layers, partial
        )
        np.testing.assert_allclose(completed, tiny_network.forward(tiny_inputs))

    def test_single_vector_input_keeps_vector_shape(self, tiny_network, tiny_inputs):
        single = tiny_network.forward(tiny_inputs[0])
        assert single.shape == (tiny_network.output_dim,)

    def test_activations_returns_every_layer(self, tiny_network, tiny_inputs):
        activations = tiny_network.activations(tiny_inputs[0])
        assert len(activations) == tiny_network.num_layers
        for k, value in enumerate(activations, start=1):
            assert value.shape == (tiny_network.layer_output_dim(k),)

    def test_invalid_layer_indices_raise(self, tiny_network, tiny_inputs):
        with pytest.raises(LayerIndexError):
            tiny_network.forward_to(99, tiny_inputs)
        with pytest.raises(LayerIndexError):
            tiny_network.forward_from_to(3, 2, tiny_inputs)
        with pytest.raises(LayerIndexError):
            tiny_network.layer_output_dim(-1)

    def test_predict_classes_shape(self, tiny_network, tiny_inputs):
        classes = tiny_network.predict_classes(tiny_inputs)
        assert classes.shape == (tiny_inputs.shape[0],)
        assert classes.min() >= 0
        assert classes.max() < tiny_network.output_dim

    def test_known_network_computes_expected_value(self, two_layer_affine_relu):
        # x = (1, 1): dense1 -> (1*1 + 1*2, -1*1 + 1*1 + 0.5) = (3, 0.5)
        # relu -> (3, 0.5); dense2 -> 3 + 0.5 - 0.25 = 3.25
        value = two_layer_affine_relu.forward(np.array([1.0, 1.0]))
        np.testing.assert_allclose(value, [3.25])


class TestGradientsAndParameters:
    def test_parameters_and_gradients_share_keys(self, tiny_network):
        assert set(tiny_network.parameters()) == set(tiny_network.gradients())

    def test_backward_accumulates_then_zero_clears(self, tiny_network, tiny_inputs):
        tiny_network.zero_gradients()
        out = tiny_network.forward(tiny_inputs, training=True)
        tiny_network.backward(np.ones_like(out))
        grads = tiny_network.gradients()
        assert any(np.any(g != 0) for g in grads.values())
        tiny_network.zero_gradients()
        assert all(np.all(g == 0) for g in tiny_network.gradients().values())


class TestBoxPropagation:
    def test_degenerate_box_tracks_concrete_value(self, tiny_network, tiny_inputs):
        x = tiny_inputs[0]
        low, high = tiny_network.propagate_box(x, x, 0, tiny_network.num_layers)
        concrete = tiny_network.forward(x)
        np.testing.assert_allclose(low, concrete, atol=1e-9)
        np.testing.assert_allclose(high, concrete, atol=1e-9)

    @settings(max_examples=25, deadline=None)
    @given(delta=st.floats(0.0, 0.5), sample_seed=st.integers(0, 2**20))
    def test_soundness_property(self, tiny_network, tiny_inputs, delta, sample_seed):
        """Concrete outputs of perturbed inputs stay inside propagated bounds."""
        x = tiny_inputs[0]
        low, high = tiny_network.propagate_box(
            x - delta, x + delta, 0, tiny_network.num_layers
        )
        rng = np.random.default_rng(sample_seed)
        perturbed = x + rng.uniform(-delta, delta, size=x.shape)
        output = tiny_network.forward(perturbed)
        assert np.all(output >= low - 1e-9)
        assert np.all(output <= high + 1e-9)

    def test_invalid_slice_rejected(self, tiny_network):
        x = np.zeros(tiny_network.input_dim)
        with pytest.raises(LayerIndexError):
            tiny_network.propagate_box(x, x, 3, 3)

    def test_mismatched_bounds_rejected(self, tiny_network):
        with pytest.raises(ShapeError):
            tiny_network.propagate_box(np.zeros(2), np.zeros(2), 0, 1)

    def test_inverted_bounds_rejected(self, tiny_network):
        x = np.zeros(tiny_network.input_dim)
        with pytest.raises(ShapeError):
            tiny_network.propagate_box(x + 1.0, x, 0, 1)


class TestConfigRoundTrip:
    def test_copy_preserves_behaviour(self, tiny_network, tiny_inputs):
        clone = tiny_network.copy()
        np.testing.assert_allclose(
            clone.forward(tiny_inputs), tiny_network.forward(tiny_inputs)
        )

    def test_copy_is_independent(self, tiny_network, tiny_inputs):
        clone = tiny_network.copy()
        for weight in clone.get_weights():
            weight += 1.0
        clone.set_weights(clone.get_weights())
        assert not np.allclose(
            clone.forward(tiny_inputs), tiny_network.forward(tiny_inputs)
        )

    def test_set_weights_rejects_wrong_count(self, tiny_network):
        with pytest.raises(ConfigurationError):
            tiny_network.set_weights(tiny_network.get_weights()[:-1])
