"""Tests for network save/load round trips."""

import numpy as np
import pytest

from repro.exceptions import SerializationError
from repro.nn.network import mlp
from repro.nn.serialization import load_network, save_network


class TestRoundTrip:
    def test_save_and_load_preserves_outputs(self, tmp_path):
        network = mlp(5, [9, 4], 3, seed=21)
        inputs = np.random.default_rng(0).normal(size=(7, 5))
        path = save_network(network, tmp_path / "model")
        assert path.suffix == ".npz"
        restored = load_network(path)
        np.testing.assert_allclose(restored.forward(inputs), network.forward(inputs))

    def test_load_accepts_path_without_suffix(self, tmp_path):
        network = mlp(3, [4], 2, seed=1)
        save_network(network, tmp_path / "model")
        restored = load_network(tmp_path / "model")
        assert restored.num_layers == network.num_layers

    def test_architecture_is_preserved(self, tmp_path):
        network = mlp(4, [6, 5], 2, activation="tanh", seed=2)
        path = save_network(network, tmp_path / "net.npz")
        restored = load_network(path)
        assert restored.get_config() == network.get_config()

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(SerializationError):
            load_network(tmp_path / "nothing-here.npz")

    def test_non_network_npz_rejected(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, a=np.zeros(3))
        with pytest.raises(SerializationError):
            load_network(path)

    def test_creates_parent_directories(self, tmp_path):
        network = mlp(3, [4], 2, seed=3)
        nested = tmp_path / "deep" / "nested" / "model.npz"
        save_network(network, nested)
        assert nested.exists()
