"""Tests for weight initialisation strategies."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.nn.initializers import (
    Constant,
    GlorotNormal,
    GlorotUniform,
    HeNormal,
    HeUniform,
    LeCunNormal,
    Orthogonal,
    RandomNormal,
    RandomUniform,
    Zeros,
    get_initializer,
)


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestBasicInitializers:
    def test_zeros_returns_all_zero(self, rng):
        values = Zeros()((4, 3), rng)
        assert values.shape == (4, 3)
        assert np.all(values == 0.0)

    def test_constant_returns_requested_value(self, rng):
        values = Constant(2.5)((3,), rng)
        assert np.all(values == 2.5)

    def test_random_normal_statistics(self, rng):
        values = RandomNormal(mean=1.0, stddev=0.5)((2000,), rng)
        assert abs(values.mean() - 1.0) < 0.1
        assert abs(values.std() - 0.5) < 0.1

    def test_random_normal_rejects_nonpositive_std(self):
        with pytest.raises(ConfigurationError):
            RandomNormal(stddev=0.0)

    def test_random_uniform_respects_bounds(self, rng):
        values = RandomUniform(-0.2, 0.3)((500,), rng)
        assert values.min() >= -0.2
        assert values.max() <= 0.3

    def test_random_uniform_rejects_inverted_bounds(self):
        with pytest.raises(ConfigurationError):
            RandomUniform(0.5, 0.1)


class TestVarianceScalingInitializers:
    @pytest.mark.parametrize(
        "initializer_class", [GlorotUniform, GlorotNormal, HeUniform, HeNormal, LeCunNormal]
    )
    def test_shape_and_dtype(self, initializer_class, rng):
        values = initializer_class()((20, 30), rng)
        assert values.shape == (20, 30)
        assert values.dtype == np.float64

    def test_glorot_uniform_limit(self, rng):
        fan_in, fan_out = 50, 70
        limit = np.sqrt(6.0 / (fan_in + fan_out))
        values = GlorotUniform()((fan_in, fan_out), rng)
        assert np.all(np.abs(values) <= limit + 1e-12)

    def test_he_normal_variance_scales_with_fan_in(self, rng):
        fan_in = 400
        values = HeNormal()((fan_in, 200), rng)
        expected_std = np.sqrt(2.0 / fan_in)
        assert abs(values.std() - expected_std) / expected_std < 0.1

    def test_bias_shape_uses_single_fan(self, rng):
        values = GlorotUniform()((16,), rng)
        assert values.shape == (16,)


class TestOrthogonal:
    def test_square_matrix_is_orthogonal(self, rng):
        values = Orthogonal()((12, 12), rng)
        product = values @ values.T
        np.testing.assert_allclose(product, np.eye(12), atol=1e-8)

    def test_tall_matrix_has_orthonormal_columns(self, rng):
        values = Orthogonal()((20, 8), rng)
        product = values.T @ values
        np.testing.assert_allclose(product, np.eye(8), atol=1e-8)

    def test_gain_scales_result(self, rng):
        values = Orthogonal(gain=3.0)((10, 10), rng)
        product = values @ values.T
        np.testing.assert_allclose(product, 9.0 * np.eye(10), atol=1e-7)


class TestRegistry:
    @pytest.mark.parametrize(
        "name",
        [
            "zeros",
            "constant",
            "random_normal",
            "random_uniform",
            "glorot_uniform",
            "glorot_normal",
            "he_uniform",
            "he_normal",
            "lecun_normal",
            "orthogonal",
        ],
    )
    def test_lookup_by_name(self, name, rng):
        initializer = get_initializer(name)
        values = initializer((4, 4), rng)
        assert values.shape == (4, 4)

    def test_unknown_name_raises(self):
        with pytest.raises(ConfigurationError, match="unknown initializer"):
            get_initializer("does-not-exist")

    def test_default_rng_is_created_when_missing(self):
        values = GlorotUniform()((3, 3))
        assert values.shape == (3, 3)
