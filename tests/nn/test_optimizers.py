"""Tests for gradient-based optimizers."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.nn.optimizers import SGD, Adam, Momentum, RMSProp, get_optimizer

ALL_OPTIMIZERS = [
    SGD(learning_rate=0.1),
    Momentum(learning_rate=0.1, momentum=0.9),
    RMSProp(learning_rate=0.05),
    Adam(learning_rate=0.05),
]


def quadratic_gradient(params):
    """Gradient of f(x) = 0.5 * ||x - 3||^2 for each parameter array."""
    return {key: value - 3.0 for key, value in params.items()}


class TestUpdateRules:
    def test_sgd_step_is_exact(self):
        params = {"w": np.array([1.0, 2.0])}
        grads = {"w": np.array([0.5, -1.0])}
        SGD(learning_rate=0.2).step(params, grads)
        np.testing.assert_allclose(params["w"], [0.9, 2.2])

    def test_momentum_accumulates_velocity(self):
        optimizer = Momentum(learning_rate=0.1, momentum=0.5)
        params = {"w": np.array([0.0])}
        grads = {"w": np.array([1.0])}
        optimizer.step(params, grads)
        first = params["w"].copy()
        optimizer.step(params, grads)
        second_step = params["w"] - first
        # Second step is larger in magnitude because of accumulated velocity.
        assert abs(second_step[0]) > abs(first[0])

    def test_adam_first_step_magnitude_close_to_learning_rate(self):
        optimizer = Adam(learning_rate=0.01)
        params = {"w": np.array([5.0])}
        grads = {"w": np.array([123.0])}
        optimizer.step(params, grads)
        assert params["w"][0] == pytest.approx(5.0 - 0.01, abs=1e-4)

    def test_missing_gradient_raises(self):
        with pytest.raises(ConfigurationError):
            SGD().step({"w": np.zeros(2)}, {})


class TestConvergence:
    @pytest.mark.parametrize("optimizer", ALL_OPTIMIZERS, ids=lambda o: o.name)
    def test_converges_on_quadratic(self, optimizer):
        optimizer.reset()
        params = {"w": np.array([10.0, -4.0]), "b": np.array([0.0])}
        for _ in range(300):
            optimizer.step(params, quadratic_gradient(params))
        for value in params.values():
            np.testing.assert_allclose(value, 3.0, atol=0.2)

    @pytest.mark.parametrize("optimizer", ALL_OPTIMIZERS, ids=lambda o: o.name)
    def test_reset_clears_state(self, optimizer):
        optimizer.reset()
        params = {"w": np.array([1.0])}
        optimizer.step(params, {"w": np.array([1.0])})
        optimizer.reset()
        assert optimizer.iterations == 0


class TestConfiguration:
    def test_nonpositive_learning_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            SGD(learning_rate=0.0)

    def test_bad_momentum_rejected(self):
        with pytest.raises(ConfigurationError):
            Momentum(momentum=1.0)

    def test_bad_adam_betas_rejected(self):
        with pytest.raises(ConfigurationError):
            Adam(beta1=1.0)

    def test_bad_rmsprop_rho_rejected(self):
        with pytest.raises(ConfigurationError):
            RMSProp(rho=0.0)

    @pytest.mark.parametrize("name", ["sgd", "momentum", "adam", "rmsprop"])
    def test_registry_lookup(self, name):
        assert get_optimizer(name).name == name

    def test_registry_forwards_kwargs(self):
        optimizer = get_optimizer("adam", learning_rate=0.123)
        assert optimizer.learning_rate == pytest.approx(0.123)

    def test_unknown_optimizer_rejected(self):
        with pytest.raises(ConfigurationError):
            get_optimizer("lion")
