"""Tests for activation functions: values, derivatives and sound bounds."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError
from repro.nn.activations import (
    ELU,
    HardTanh,
    Identity,
    LeakyReLU,
    ReLU,
    Sigmoid,
    Softplus,
    Tanh,
    get_activation,
)

ALL_ACTIVATIONS = [
    Identity(),
    ReLU(),
    LeakyReLU(0.05),
    Sigmoid(),
    Tanh(),
    Softplus(),
    HardTanh(),
    ELU(0.7),
]


class TestValues:
    def test_identity_passthrough(self):
        x = np.array([-2.0, 0.0, 3.5])
        np.testing.assert_array_equal(Identity().value(x), x)

    def test_relu_clips_negatives(self):
        x = np.array([-1.0, 0.0, 2.0])
        np.testing.assert_array_equal(ReLU().value(x), [0.0, 0.0, 2.0])

    def test_leaky_relu_negative_slope(self):
        x = np.array([-2.0, 4.0])
        np.testing.assert_allclose(LeakyReLU(0.1).value(x), [-0.2, 4.0])

    def test_sigmoid_range_and_symmetry(self):
        x = np.linspace(-10, 10, 101)
        y = Sigmoid().value(x)
        assert np.all((y > 0) & (y < 1))
        np.testing.assert_allclose(y + Sigmoid().value(-x), 1.0, atol=1e-12)

    def test_sigmoid_extreme_inputs_are_stable(self):
        y = Sigmoid().value(np.array([-1000.0, 1000.0]))
        assert np.all(np.isfinite(y))
        np.testing.assert_allclose(y, [0.0, 1.0], atol=1e-12)

    def test_tanh_matches_numpy(self):
        x = np.linspace(-3, 3, 25)
        np.testing.assert_allclose(Tanh().value(x), np.tanh(x))

    def test_softplus_positive_and_close_to_relu_for_large_x(self):
        x = np.array([-50.0, 0.0, 50.0])
        y = Softplus().value(x)
        assert np.all(y >= 0)
        assert abs(y[2] - 50.0) < 1e-6

    def test_hard_tanh_clamps(self):
        x = np.array([-5.0, -0.5, 0.5, 5.0])
        np.testing.assert_array_equal(HardTanh().value(x), [-1.0, -0.5, 0.5, 1.0])

    def test_elu_negative_branch(self):
        value = ELU(1.0).value(np.array([-1.0]))[0]
        np.testing.assert_allclose(value, np.expm1(-1.0))


class TestDerivatives:
    @pytest.mark.parametrize("activation", ALL_ACTIVATIONS, ids=lambda a: a.name)
    def test_derivative_matches_finite_differences(self, activation):
        # Avoid the non-differentiable kinks at 0 and ±1 by sampling away from them.
        x = np.array([-2.3, -0.7, 0.4, 1.6, 2.9])
        h = 1e-6
        numeric = (activation.value(x + h) - activation.value(x - h)) / (2 * h)
        np.testing.assert_allclose(activation.derivative(x), numeric, atol=1e-5)

    def test_relu_derivative_at_origin_is_zero(self):
        assert ReLU().derivative(np.array([0.0]))[0] == 0.0


class TestBoundTransform:
    @pytest.mark.parametrize("activation", ALL_ACTIVATIONS, ids=lambda a: a.name)
    def test_bounds_are_ordered(self, activation):
        low = np.array([-3.0, -0.1, 2.0])
        high = np.array([-1.0, 0.2, 4.0])
        new_low, new_high = activation.bound_transform(low, high)
        assert np.all(new_low <= new_high + 1e-12)

    @pytest.mark.parametrize("activation", ALL_ACTIVATIONS, ids=lambda a: a.name)
    @settings(max_examples=30, deadline=None)
    @given(
        centre=st.floats(-5, 5),
        radius=st.floats(0, 3),
        sample=st.floats(0, 1),
    )
    def test_bound_soundness_property(self, activation, centre, radius, sample):
        """Any concrete value inside the input interval maps inside the output bounds."""
        low, high = centre - radius, centre + radius
        point = low + sample * (high - low)
        new_low, new_high = activation.bound_transform(
            np.array([low]), np.array([high])
        )
        value = activation.value(np.array([point]))[0]
        assert new_low[0] - 1e-9 <= value <= new_high[0] + 1e-9


class TestConfiguration:
    def test_leaky_relu_rejects_bad_slope(self):
        with pytest.raises(ConfigurationError):
            LeakyReLU(alpha=1.5)

    def test_elu_rejects_nonpositive_alpha(self):
        with pytest.raises(ConfigurationError):
            ELU(alpha=0.0)

    @pytest.mark.parametrize(
        "name",
        ["identity", "relu", "leaky_relu", "sigmoid", "tanh", "softplus", "hard_tanh", "elu"],
    )
    def test_registry_lookup(self, name):
        assert get_activation(name).name in (name, "identity")

    def test_registry_alias_linear(self):
        assert isinstance(get_activation("linear"), Identity)

    def test_unknown_activation_raises(self):
        with pytest.raises(ConfigurationError, match="unknown activation"):
            get_activation("swishy")
