"""LifecycleManager: the shadow → candidate → live → retired state machine."""

import numpy as np
import pytest

from repro.exceptions import LifecycleStateError
from repro.lifecycle import (
    STATE_CANDIDATE,
    STATE_LIVE,
    STATE_RETIRED,
    STATE_SHADOW,
    LifecycleManager,
)

from .conftest import drain


def test_deploy_registers_and_sets_live(manager, scorer, store, live_monitor):
    assert store.live_version("mon") == 1
    assert manager.state("mon", 1) == STATE_LIVE
    assert manager.live_version("mon") == 1
    assert scorer.registry.get("mon") is live_monitor
    assert scorer.describe()["registry"]["monitors"]["mon"]["version"] == 1


def test_deploy_twice_is_an_invalid_transition(manager, live_monitor):
    with pytest.raises(LifecycleStateError):
        manager.deploy("mon", live_monitor)


def test_stage_requires_a_live_version(scorer, store, candidate_monitor):
    manager = LifecycleManager(scorer, store)
    with pytest.raises(LifecycleStateError):
        manager.stage("mon", candidate_monitor)


def test_stage_attaches_a_shadow(manager, scorer, candidate_monitor):
    version = manager.stage("mon", candidate_monitor, min_frames=4)
    assert version == 2
    assert manager.state("mon", 2) == STATE_SHADOW
    assert manager.staged_version("mon") == 2
    assert scorer.shadow_names() == ["mon@shadow-v2"]
    with pytest.raises(LifecycleStateError):
        manager.stage("mon", candidate_monitor)  # one staged version per name


def test_guarded_promote_needs_shadow_evidence(manager, scorer, candidate_monitor, probe_frames):
    manager.stage("mon", candidate_monitor, min_frames=8)
    with pytest.raises(LifecycleStateError):
        manager.promote("mon")  # zero shadow frames observed
    drain(scorer, probe_frames)
    assert manager.promote("mon") == 2  # evidence collected, guard passes
    assert manager.live_version("mon") == 2
    assert manager.state("mon", 1) == STATE_RETIRED
    assert manager.state("mon", 2) == STATE_LIVE
    assert scorer.shadow_names() == []


def test_promote_flips_served_verdicts(
    manager, scorer, live_monitor, candidate_monitor, probe_frames
):
    manager.stage("mon", candidate_monitor, shadow=False)
    before = [r.warns["mon"] for r in drain(scorer, probe_frames)]
    assert before == live_monitor.warn_batch(probe_frames).tolist()
    manager.promote("mon", guard=False)
    after = [r.warns["mon"] for r in drain(scorer, probe_frames)]
    assert after == candidate_monitor.warn_batch(probe_frames).tolist()


def test_clear_moves_shadow_to_candidate(manager, scorer, candidate_monitor, probe_frames):
    manager.stage("mon", candidate_monitor, min_frames=4)
    drain(scorer, probe_frames)
    assert manager.clear("mon") == 2
    assert manager.state("mon", 2) == STATE_CANDIDATE
    assert scorer.shadow_names() == []  # the shadow detached on clearing


def test_discard_retires_without_serving(manager, scorer, candidate_monitor):
    manager.stage("mon", candidate_monitor)
    assert manager.discard("mon") == 2
    assert manager.state("mon", 2) == STATE_RETIRED
    assert manager.staged_version("mon") is None
    assert scorer.shadow_names() == []
    assert manager.live_version("mon") == 1  # live never changed


def test_rollback_returns_to_the_previous_version(
    manager, scorer, live_monitor, candidate_monitor, probe_frames
):
    manager.stage("mon", candidate_monitor, shadow=False)
    manager.promote("mon", guard=False)
    assert manager.rollback("mon") == 1
    assert manager.live_version("mon") == 1
    assert manager.state("mon", 2) == STATE_RETIRED
    served = [r.warns["mon"] for r in drain(scorer, probe_frames)]
    assert served == live_monitor.warn_batch(probe_frames).tolist()


def test_staged_breach_auto_retires_the_candidate(manager, scorer, candidate_monitor, probe_frames):
    manager.stage(
        "mon", candidate_monitor, disagreement_budget=0.01, min_frames=4
    )
    drain(scorer, probe_frames)  # wide probes: live and candidate disagree
    assert manager.staged_version("mon") is None
    assert manager.state("mon", 2) == STATE_RETIRED
    assert scorer.shadow_names() == []
    assert manager.live_version("mon") == 1  # the candidate never served
    kinds = [e["kind"] for e in scorer.stats.snapshot()["events"]]
    assert "shadow_breach" in kinds


def test_watch_breach_rolls_back_automatically(
    manager, scorer, live_monitor, candidate_monitor, probe_frames
):
    manager.stage("mon", candidate_monitor, shadow=False)
    manager.promote("mon", guard=False, watch_budget=0.01, watch_frames=4)
    assert manager.live_version("mon") == 2
    assert scorer.shadow_names() == ["mon@watch-v1"]
    # The old version trails the new live; wide probes make them disagree
    # beyond the budget, which must roll the promotion back mid-stream.
    drain(scorer, probe_frames)
    assert manager.live_version("mon") == 1
    assert scorer.shadow_names() == []  # the watch detached on rollback
    served = [r.warns["mon"] for r in drain(scorer, probe_frames)]
    assert served == live_monitor.warn_batch(probe_frames).tolist()
    kinds = [e["kind"] for e in scorer.stats.snapshot()["events"]]
    assert "watch_breach" in kinds and "rollback" in kinds


def test_refit_and_stage_archives_a_refit_version(
    manager, scorer, store, wide_inputs, probe_frames
):
    version = manager.refit_and_stage("mon", wide_inputs, min_frames=4)
    assert version == 2
    assert manager.state("mon", 2) == STATE_SHADOW
    metadata = store.describe()["monitors"]["mon"]["versions"][2]["metadata"]
    assert metadata["refit_of"] == 1
    assert metadata["refit_frames"] == wide_inputs.shape[0]
    drain(scorer, probe_frames)
    manager.promote("mon")
    assert manager.live_version("mon") == 2


def test_status_snapshot_is_json_able(manager, candidate_monitor):
    import json

    manager.stage("mon", candidate_monitor)
    status = manager.status()
    json.dumps(status)  # must survive the wire
    entry = status["monitors"]["mon"]
    assert entry["live"] == 1
    assert entry["staged"] == {"version": 2, "state": STATE_SHADOW}
    assert entry["versions"] == {1: STATE_LIVE, 2: STATE_SHADOW}
    assert status["front_end"] == "streaming_scorer"


def test_state_of_unmanaged_version_raises(manager):
    with pytest.raises(LifecycleStateError):
        manager.state("mon", 42)
    with pytest.raises(LifecycleStateError):
        manager.state("ghost", 1)


def test_shadow_report_filters_by_live_name(manager, scorer, candidate_monitor, probe_frames):
    manager.stage("mon", candidate_monitor, min_frames=4)
    drain(scorer, probe_frames)
    reports = manager.shadow_report()
    assert set(reports) == {"mon@shadow-v2"}
    assert reports["mon@shadow-v2"]["live"] == "mon"
    assert reports["mon@shadow-v2"]["ledger"]["frames"] == probe_frames.shape[0]
    assert manager.shadow_report("other") == {}
