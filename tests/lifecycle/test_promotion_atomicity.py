"""Promotion atomicity under concurrent submission (acceptance pin).

A producer thread streams single frames while the main thread promotes a
staged candidate through the *real* manager path.  Two properties must hold
for every interleaving hypothesis can draw:

1. **No torn verdicts** — every frame's served verdict equals the offline
   ``warn_batch`` verdict under exactly one of {old monitor, new monitor}.
   A frame scored against a half-swapped registry could produce a verdict
   neither monitor would give; the micro-batch snapshot plus the quiesced
   swap forbid that.
2. **Monotone boundary** — in submission order, every frame attributable
   only to the *new* monitor comes after every frame attributable only to
   the *old* one.  Promotion is a single cut point, not a shuffle.
"""

import shutil
import tempfile
import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lifecycle import LifecycleManager, MonitorStore
from repro.service import BatchPolicy, StreamingScorer

N_FRAMES = 32


@pytest.fixture(scope="module")
def disagreement_probes(rng, live_monitor, candidate_monitor):
    """Probe frames plus both offline verdict vectors (they must differ)."""
    probes = rng.uniform(-2.0, 2.0, size=(N_FRAMES, 6))
    old = live_monitor.warn_batch(probes)
    new = candidate_monitor.warn_batch(probes)
    assert (old != new).any()  # otherwise the property is vacuous
    return probes, old, new


@settings(deadline=None, max_examples=20)
@given(
    promote_after=st.integers(min_value=0, max_value=N_FRAMES),
    batch=st.integers(min_value=1, max_value=8),
)
def test_every_interleaving_serves_old_xor_new_with_one_cut_point(
    promote_after, batch, tiny_network, live_monitor, candidate_monitor,
    disagreement_probes,
):
    probes, old, new = disagreement_probes
    directory = tempfile.mkdtemp(prefix="repro-atomicity-")
    scorer = StreamingScorer(
        tiny_network, policy=BatchPolicy(max_batch=batch, max_latency=0.001)
    )
    scorer.start()
    try:
        manager = LifecycleManager(scorer, MonitorStore(directory))
        manager.deploy("mon", live_monitor)
        manager.stage("mon", candidate_monitor, shadow=False)

        submitted = threading.Event()
        futures = []

        def produce():
            for row in range(N_FRAMES):
                futures.append(scorer.submit(probes[row]))
                if row + 1 == promote_after:
                    submitted.set()
            submitted.set()  # promote_after may exceed the stream length

        producer = threading.Thread(target=produce)
        producer.start()
        submitted.wait(10.0)
        manager.promote("mon", guard=False)  # races the in-flight stream
        producer.join(10.0)
        assert not producer.is_alive()
        verdicts = [f.result(30.0).warns["mon"] for f in futures]
    finally:
        scorer.close(drain=False)
        shutil.rmtree(directory, ignore_errors=True)

    old_only = []  # submission indices attributable only to the old monitor
    new_only = []
    for row, verdict in enumerate(verdicts):
        # Property 1: the verdict is one a real monitor snapshot produced.
        assert verdict in (bool(old[row]), bool(new[row])), (
            f"frame {row} served {verdict}, but old={old[row]} new={new[row]}"
        )
        if old[row] != new[row]:
            (old_only if verdict == bool(old[row]) else new_only).append(row)

    # Property 2: a single cut point — no old-attributed frame after any
    # new-attributed one in submission order.
    if old_only and new_only:
        assert max(old_only) < min(new_only), (
            f"non-monotone promotion boundary: old-only {old_only}, "
            f"new-only {new_only}"
        )
