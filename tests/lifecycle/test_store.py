"""MonitorStore: version chains, round-trips, retention and rollback."""

import numpy as np
import pytest

from repro.exceptions import LifecycleStateError, SerializationError
from repro.lifecycle import MonitorStore
from repro.monitors import monitor_fingerprint
from repro.monitors.minmax import MinMaxMonitor

from .conftest import LAYER


def test_versions_are_monotone_and_never_reused(store, live_monitor, candidate_monitor):
    assert store.put("mon", live_monitor) == 1
    assert store.put("mon", candidate_monitor) == 2
    assert store.versions("mon") == [1, 2]
    assert store.latest("mon") == 2
    # GC away v1, then archive again: the next id is 3, not a recycled 1.
    store.set_live("mon", 2)
    store.gc("mon", retain=1)
    assert store.versions("mon") == [2]
    assert store.put("mon", live_monitor) == 3


def test_round_trip_preserves_verdicts_and_fingerprint(
    store, live_monitor, tiny_network, probe_frames
):
    version = store.put("mon", live_monitor)
    loaded = store.load("mon", version, tiny_network)
    np.testing.assert_array_equal(
        loaded.warn_batch(probe_frames), live_monitor.warn_batch(probe_frames)
    )
    assert monitor_fingerprint(loaded) == monitor_fingerprint(live_monitor)
    assert store.fingerprint("mon", version) == monitor_fingerprint(live_monitor)


def test_version_chain_round_trip_across_reopen(
    store, live_monitor, candidate_monitor, tiny_network, probe_frames
):
    """A store re-opened from disk serves the same chain it archived."""
    v1 = store.put("mon", live_monitor)
    v2 = store.put("mon", candidate_monitor, metadata={"refit_of": v1})
    store.set_live("mon", v2)

    reopened = MonitorStore(store.directory)
    assert reopened.versions("mon") == [v1, v2]
    assert reopened.live_version("mon") == v2
    assert reopened.fingerprint("mon", v1) == store.fingerprint("mon", v1)
    assert reopened.describe()["monitors"]["mon"]["versions"][v2]["metadata"] == {
        "refit_of": v1
    }
    loaded = reopened.load("mon", network=tiny_network)  # default: live
    np.testing.assert_array_equal(
        loaded.warn_batch(probe_frames), candidate_monitor.warn_batch(probe_frames)
    )


def test_load_defaults_to_live_then_latest(
    store, live_monitor, candidate_monitor, tiny_network, probe_frames
):
    store.put("mon", live_monitor)
    store.put("mon", candidate_monitor)
    # No live pointer yet: default load resolves to the latest version.
    loaded = store.load("mon", network=tiny_network)
    np.testing.assert_array_equal(
        loaded.warn_batch(probe_frames), candidate_monitor.warn_batch(probe_frames)
    )
    store.set_live("mon", 1)
    loaded = store.load("mon", network=tiny_network)
    np.testing.assert_array_equal(
        loaded.warn_batch(probe_frames), live_monitor.warn_batch(probe_frames)
    )


def test_rollback_moves_live_to_predecessor(store, live_monitor, candidate_monitor):
    store.put("mon", live_monitor)
    store.put("mon", candidate_monitor)
    store.set_live("mon", 2)
    assert store.rollback("mon") == 1
    assert store.live_version("mon") == 1
    assert store.versions("mon") == [1, 2]  # nothing deleted


def test_rollback_rejects_newer_version_and_empty_history(
    store, live_monitor, candidate_monitor
):
    store.put("mon", live_monitor)
    with pytest.raises(LifecycleStateError):
        store.rollback("mon")  # no live pointer
    store.set_live("mon", 1)
    with pytest.raises(LifecycleStateError):
        store.rollback("mon")  # nothing earlier than v1
    store.put("mon", candidate_monitor)
    with pytest.raises(LifecycleStateError):
        store.rollback("mon", 2)  # newer than the live v1


def test_gc_never_collects_live_or_newest(store, live_monitor, tiny_network, narrow_inputs):
    versions = []
    for width in (0.2, 0.4, 0.6, 0.8):
        monitor = MinMaxMonitor(tiny_network, LAYER).fit(width * narrow_inputs)
        versions.append(store.put("mon", monitor))
    store.set_live("mon", versions[0])
    removed = store.gc("mon", retain=2)
    # v1 survives (live), v3+v4 survive (retention); only v2 is collected.
    assert store.versions("mon") == [versions[0], versions[2], versions[3]]
    assert removed == ["mon_v2.npz"]
    assert not (store.directory / "mon_v2.npz").exists()
    assert (store.directory / "mon_v1.npz").exists()


def test_gc_without_bound_is_a_no_op(store, live_monitor):
    store.put("mon", live_monitor)
    assert store.gc() == []


def test_unknown_names_and_versions_raise(store, live_monitor):
    with pytest.raises(LifecycleStateError):
        store.versions("ghost")
    store.put("mon", live_monitor)
    with pytest.raises(LifecycleStateError):
        store.path("mon", 99)
    with pytest.raises(LifecycleStateError):
        store.put("", live_monitor)
    with pytest.raises(LifecycleStateError):
        MonitorStore(store.directory, retain=0)


def test_corrupt_manifest_raises_serialization_error(tmp_path):
    directory = tmp_path / "broken"
    directory.mkdir()
    (directory / "store.json").write_text("{not json")
    with pytest.raises(SerializationError):
        MonitorStore(directory)
