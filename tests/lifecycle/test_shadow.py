"""Shadow scoring: ledger confusion, breach semantics, scorer integration."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.lifecycle import ShadowLedger, ShadowScorer

from .conftest import drain


def test_ledger_counts_the_full_confusion():
    ledger = ShadowLedger()
    shadow = np.array([True, True, False, False, True])
    live = np.array([True, False, True, False, False])
    ledger.observe(shadow, live)
    assert ledger.both_warn == 1
    assert ledger.both_accept == 1
    assert ledger.shadow_only == 2
    assert ledger.live_only == 1
    assert ledger.frames == 5
    assert ledger.disagreements == 3
    assert ledger.disagreement_rate() == pytest.approx(3 / 5)
    snapshot = ledger.snapshot()
    assert snapshot["frames"] == 5
    assert len(snapshot["recent_disagreements"]) == 3
    assert {e["direction"] for e in snapshot["recent_disagreements"]} == {
        "shadow_only",
        "live_only",
    }


def test_ledger_counts_unpaired_frames_without_comparing():
    ledger = ShadowLedger()
    ledger.observe(np.array([True, False]), None)
    assert ledger.unpaired == 2
    assert ledger.frames == 0
    assert ledger.disagreement_rate() == 0.0


def test_breach_fires_exactly_once_and_only_past_min_frames():
    fired = []
    ledger = ShadowLedger(
        disagreement_budget=0.1, min_frames=4, on_breach=fired.append
    )
    disagree = (np.array([True]), np.array([False]))
    ledger.observe(*disagree)
    ledger.observe(*disagree)
    assert not fired  # 2 frames < min_frames, however bad the rate
    ledger.observe(*disagree)
    ledger.observe(*disagree)
    assert len(fired) == 1 and fired[0] is ledger
    assert ledger.breached
    ledger.observe(*disagree)  # latched: no second callback
    assert len(fired) == 1


def test_breach_requires_rate_strictly_above_budget():
    fired = []
    ledger = ShadowLedger(
        disagreement_budget=0.5, min_frames=2, on_breach=fired.append
    )
    ledger.observe(np.array([True, False]), np.array([False, False]))
    # 1 disagreement / 2 frames == budget exactly: not a breach.
    assert not fired and not ledger.breached


def test_ledger_validates_configuration():
    with pytest.raises(ConfigurationError):
        ShadowLedger(disagreement_budget=1.5)
    with pytest.raises(ConfigurationError):
        ShadowLedger(min_frames=0)


def test_shadow_scorer_validates_and_delegates(live_monitor, candidate_monitor, probe_frames):
    with pytest.raises(ConfigurationError):
        ShadowScorer("mon", candidate_monitor, "mon")  # trails itself
    with pytest.raises(ConfigurationError):
        ShadowScorer("shadow", object(), "mon")  # no batched API
    shadow = ShadowScorer("shadow", candidate_monitor, "mon")
    assert shadow.is_shadow
    assert shadow.network is candidate_monitor.network
    assert shadow.layer_index == candidate_monitor.layer_index
    assert shadow.is_fitted
    np.testing.assert_array_equal(
        shadow.warn_batch(probe_frames), candidate_monitor.warn_batch(probe_frames)
    )
    report = shadow.describe()
    assert report["shadow_of"] == "mon"
    assert report["candidate_class"] == type(candidate_monitor).__name__


def test_streaming_scorer_strips_shadow_verdicts_and_feeds_ledger(
    scorer, live_monitor, candidate_monitor, probe_frames
):
    scorer.register("mon", live_monitor)
    shadow = scorer.attach_shadow("mon@shadow", candidate_monitor, "mon")
    results = drain(scorer, probe_frames)
    live_offline = live_monitor.warn_batch(probe_frames)
    for row, result in enumerate(results):
        assert set(result.warns) == {"mon"}  # the shadow is never served
        assert result.warns["mon"] == bool(live_offline[row])
    ledger = shadow.ledger.snapshot()
    assert ledger["frames"] == probe_frames.shape[0]
    # Narrow live vs wide candidate: live warns alone on wide probes.
    assert ledger["live_only"] > 0
    assert ledger["shadow_only"] == 0
    assert "mon@shadow" in scorer.shadow_names()
    returned = scorer.detach_shadow("mon@shadow")
    assert returned is candidate_monitor
    assert scorer.shadow_names() == []


def test_detach_shadow_rejects_non_shadow_entries(scorer, live_monitor):
    scorer.register("mon", live_monitor)
    with pytest.raises(ConfigurationError):
        scorer.detach_shadow("mon")
    with pytest.raises(ConfigurationError):
        scorer.detach_shadow("ghost")
