"""Slow lifecycle tier: shadow under load, pool promotion, wire control.

These are the CI ``service-e2e`` additions for the lifecycle subsystem:
real producer threads scoring during refit/stage/promote, real spawned
worker processes reloaded through an artefact swap (including a worker
crash racing the promotion), and the lifecycle control frames end-to-end
over TCP.
"""

import threading

import numpy as np
import pytest

from repro import MonitorPipeline, build_track_workload
from repro.exceptions import LifecycleStateError
from repro.lifecycle import LifecycleManager, MonitorStore
from repro.serving import ScoringClient, WorkerPool, save_deployment
from repro.service import BatchPolicy

pytestmark = pytest.mark.slow


class TestShadowUnderLoad:
    def test_refit_stage_promote_while_producers_stream(
        self, manager, scorer, rng, wide_inputs, live_monitor, candidate_monitor
    ):
        """The full lifecycle arc under concurrent traffic.

        Four producer threads stream frames the whole time; the control
        thread refits, waits for shadow evidence, and promotes with a
        post-promotion watch.  Every future must resolve, and every
        verdict must be one a real monitor version produced.
        """
        futures = []
        futures_lock = threading.Lock()
        stop = threading.Event()

        def produce(seed):
            local = np.random.default_rng(seed)
            while not stop.is_set():
                frame = local.uniform(-2.0, 2.0, size=6)
                future = scorer.submit(frame)
                with futures_lock:
                    futures.append((frame, future))

        producers = [
            threading.Thread(target=produce, args=(seed,)) for seed in range(4)
        ]
        for producer in producers:
            producer.start()
        try:
            version = manager.refit_and_stage("mon", wide_inputs, min_frames=16)
            assert version == 2
            # Wait for shadow evidence to accumulate under live traffic.
            deadline = 60.0
            while True:
                reports = manager.shadow_report("mon")
                frames = next(iter(reports.values()))["ledger"]["frames"] if reports else 0
                if frames >= 16 or deadline <= 0:
                    break
                stop.wait(0.05)
                deadline -= 0.05
            assert frames >= 16
            promoted = manager.promote("mon", watch_budget=0.9, watch_frames=10_000)
            assert promoted == 2
        finally:
            stop.set()
            for producer in producers:
                producer.join(30.0)
        assert not any(p.is_alive() for p in producers)

        old_ref = live_monitor
        new_ref = manager.store.load("mon", 2, scorer.network)
        with futures_lock:
            pending = list(futures)
        assert len(pending) > 0
        for frame, future in pending:
            verdict = future.result(60.0).warns["mon"]
            batch = frame[None, :]
            assert verdict in (
                bool(old_ref.warn_batch(batch)[0]),
                bool(new_ref.warn_batch(batch)[0]),
            )
        assert manager.live_version("mon") == 2


@pytest.fixture
def pool_deployment(tmp_path, tiny_network, live_monitor):
    """A fresh (per-test) bundle: promotions mutate it via artefact swap."""
    directory = tmp_path / "deployment"
    save_deployment(directory, tiny_network, {"mon": live_monitor})
    return directory


@pytest.fixture
def pool(pool_deployment):
    with WorkerPool(
        pool_deployment,
        num_workers=2,
        policy=BatchPolicy(max_batch=16, max_latency=0.002),
    ) as running:
        yield running


@pytest.fixture
def pool_manager(pool, tmp_path, tiny_network, live_monitor):
    manager = LifecycleManager(
        pool, MonitorStore(tmp_path / "store"), network=tiny_network
    )
    manager.deploy("mon", live_monitor)
    return manager


class TestPoolPromotion:
    def test_promotion_swaps_artefacts_and_flips_verdicts(
        self, pool, pool_manager, live_monitor, candidate_monitor, probe_frames
    ):
        pool_manager.stage("mon", candidate_monitor, shadow=False)
        before = [f.result(60).warns["mon"] for f in pool.submit_many(probe_frames)]
        assert before == live_monitor.warn_batch(probe_frames).tolist()

        assert pool_manager.promote("mon", guard=False, timeout=60.0) == 2
        after = [f.result(60).warns["mon"] for f in pool.submit_many(probe_frames)]
        assert after == candidate_monitor.warn_batch(probe_frames).tolist()
        assert after != before  # wide probes: the refit genuinely widened
        assert pool.describe()["generation"] == 1

    def test_rollback_restores_old_verdicts_across_processes(
        self, pool, pool_manager, live_monitor, candidate_monitor, probe_frames
    ):
        pool_manager.stage("mon", candidate_monitor, shadow=False)
        pool_manager.promote("mon", guard=False, timeout=60.0)
        assert pool_manager.rollback("mon", timeout=60.0) == 1
        served = [f.result(60).warns["mon"] for f in pool.submit_many(probe_frames)]
        assert served == live_monitor.warn_batch(probe_frames).tolist()
        assert pool.describe()["generation"] == 2  # one bump per swap

    def test_worker_crash_racing_the_promotion_still_converges(
        self, pool, pool_manager, candidate_monitor, probe_frames
    ):
        """Kill a worker, then promote immediately.

        The crash replacement boots from the already-swapped artefacts and
        acknowledges the new generation via its ready message — promotion
        must succeed, and every worker must serve the new version.
        """
        pool_manager.stage("mon", candidate_monitor, shadow=False)
        victim = next(iter(pool._workers.values()))
        victim.terminate()
        assert pool_manager.promote("mon", guard=False, timeout=120.0) == 2
        results = [f.result(120) for f in pool.submit_many(probe_frames)]
        served = [r.warns["mon"] for r in results]
        assert served == candidate_monitor.warn_batch(probe_frames).tolist()
        assert pool.num_workers == 2  # the replacement is back in rotation

    def test_pool_front_end_rejects_shadow_staging(self, pool_manager, candidate_monitor):
        with pytest.raises(LifecycleStateError):
            pool_manager.stage("mon", candidate_monitor, shadow=True)


class TestWireLifecycleControl:
    @pytest.fixture
    def served(self, tmp_path):
        workload = build_track_workload(num_samples=100, epochs=2, seed=3)
        pipeline = MonitorPipeline(workload, family="minmax")
        server = pipeline.serve(
            remote=True,
            lifecycle=True,
            num_workers=2,
            max_batch=16,
            max_latency=0.002,
            log_path=str(tmp_path / "lifecycle-e2e.log"),
        )
        yield server, workload
        server.close(drain=False)

    def test_lifecycle_frames_end_to_end(self, served):
        server, workload = served
        manager = server.lifecycle
        assert manager is not None
        probe = workload.in_odd_eval.inputs[:12]

        with ScoringClient(server.address, timeout=120) as client:
            status = client.lifecycle_status()
            assert status["front_end"] == "worker_pool"
            assert set(status["monitors"]) == {"robust", "standard"}
            assert status["monitors"]["standard"]["live"] == 1

            old = manager.store.load("standard", network=workload.network)
            from repro.lifecycle import incremental_refit

            candidate = incremental_refit(old, workload.in_odd_eval.inputs)
            manager.stage("standard", candidate, shadow=False)

            promoted = client.promote("standard", guard=False, timeout=120)
            assert promoted == {"name": "standard", "version": 2}
            np.testing.assert_array_equal(
                client.score(probe)["standard"], candidate.warn_batch(probe)
            )

            rolled = client.rollback("standard", timeout=120)
            assert rolled == {"name": "standard", "version": 1}
            np.testing.assert_array_equal(
                client.score(probe)["standard"], old.warn_batch(probe)
            )

            # Pool front-ends cannot shadow: the error crosses the wire typed.
            with pytest.raises(LifecycleStateError):
                client.shadow_report()
