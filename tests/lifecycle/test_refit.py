"""Incremental refit: bit-identity with from-scratch fits, no BDD builds.

The lifecycle claim is that ``fit(A)`` + ``update(B)`` on a clone equals
``fit(A ∪ B)`` bit for bit whenever the codec parameters are pinned — and
that refitting a format-2-restored monitor extends the packed mirror
*without ever materialising the deferred BDD*.
"""

import numpy as np
import pytest

from repro.bdd.patterns import PatternSet
from repro.exceptions import LifecycleStateError
from repro.lifecycle import (
    RefitAccumulator,
    clone_monitor,
    incremental_refit,
    refit_monitor,
)
from repro.monitors import monitor_fingerprint
from repro.monitors.boolean import BooleanPatternMonitor
from repro.monitors.interval import IntervalPatternMonitor
from repro.monitors.minmax import MinMaxMonitor
from repro.monitors.thresholds import mean_thresholds, percentile_thresholds

from .conftest import LAYER


@pytest.fixture(scope="module")
def split_inputs(rng):
    """Nominal data split into the original fit set and the refit stream."""
    part_a = rng.uniform(-1.0, 1.0, size=(30, 6))
    part_b = rng.uniform(-1.5, 1.5, size=(18, 6))
    return part_a, part_b


def _pinned_builders(network, part_a):
    """One builder per family with codec parameters pinned explicitly.

    Data-derived thresholds/cuts are evaluated on ``part_a`` once and passed
    to both sides of the equivalence, so fit(A)+update(B) and fit(A∪B) use
    the *same* codec — the precondition for bit-identity.
    """
    activations = MinMaxMonitor(network, LAYER).features(part_a)
    thresholds = mean_thresholds(activations, 1)[:, 0]
    cut_points = percentile_thresholds(activations, 3)
    return {
        "minmax": lambda: MinMaxMonitor(network, LAYER),
        "boolean": lambda: BooleanPatternMonitor(
            network, LAYER, thresholds=thresholds
        ),
        "interval": lambda: IntervalPatternMonitor(
            network, LAYER, num_cuts=3, cut_points=cut_points
        ),
    }


@pytest.mark.parametrize("family", ["minmax", "boolean", "interval"])
def test_incremental_refit_is_bit_identical_to_from_scratch(
    family, tiny_network, split_inputs, probe_frames
):
    part_a, part_b = split_inputs
    build = _pinned_builders(tiny_network, part_a)[family]

    refit = incremental_refit(build().fit(part_a), part_b)
    scratch = build().fit(np.vstack([part_a, part_b]))

    assert monitor_fingerprint(refit) == monitor_fingerprint(scratch)
    np.testing.assert_array_equal(
        refit.warn_batch(probe_frames), scratch.warn_batch(probe_frames)
    )


def test_incremental_refit_never_mutates_the_original(tiny_network, split_inputs, probe_frames):
    part_a, part_b = split_inputs
    original = MinMaxMonitor(tiny_network, LAYER).fit(part_a)
    fingerprint = monitor_fingerprint(original)
    refit = incremental_refit(original, part_b)
    assert refit is not original
    assert monitor_fingerprint(original) == fingerprint
    assert monitor_fingerprint(refit) != fingerprint


def test_refit_on_restored_monitor_extends_mirror_without_bdd(
    monkeypatch, store, tiny_network, split_inputs
):
    """The acceptance pin: refit of a format-2 load stays BDD-free.

    The stored archive restores with a deferred BDD; ``update()`` must
    extend the packed mirror only.  A spy on ``PatternSet._ensure_bdd``
    proves the replay is never triggered along the whole
    store → load → refit → store chain.
    """
    part_a, part_b = split_inputs
    activations = MinMaxMonitor(tiny_network, LAYER).features(part_a)
    thresholds = mean_thresholds(activations, 1)[:, 0]
    fitted = BooleanPatternMonitor(
        tiny_network, LAYER, thresholds=thresholds
    ).fit(part_a)
    store.put("mon", fitted)
    loaded = store.load("mon", 1, tiny_network)
    assert not loaded.patterns.bdd_materialised

    replays = []
    real_ensure = PatternSet._ensure_bdd

    def spy(self):
        if self._bdd_deferred:  # only count replays that would build the BDD
            replays.append(self)
        return real_ensure(self)

    monkeypatch.setattr(PatternSet, "_ensure_bdd", spy)
    rows_before = sum(
        state.shape[0] for state in loaded.patterns.packed_state().values()
    )
    refit = incremental_refit(loaded, part_b)
    version = store.put("mon", refit)

    assert replays == []  # never materialised, start to finish
    assert not refit.patterns.bdd_materialised
    rows_after = sum(
        state.shape[0] for state in refit.patterns.packed_state().values()
    )
    assert rows_after >= rows_before  # the mirror absorbed the new patterns
    # The refit archive round-trips: same fingerprint after another load.
    assert store.fingerprint("mon", version) == monitor_fingerprint(refit)
    # Sanity: the spy does fire when a BDD-dependent operation runs.
    len(refit.patterns)
    assert replays


def test_clone_shares_network_but_no_mutable_state(tiny_network, split_inputs):
    part_a, part_b = split_inputs
    original = MinMaxMonitor(tiny_network, LAYER).fit(part_a)
    clone = clone_monitor(original)
    assert clone.network is original.network
    clone.update(part_b)
    assert monitor_fingerprint(clone) != monitor_fingerprint(original)


def test_refit_monitor_archives_with_metadata(store, tiny_network, split_inputs):
    part_a, part_b = split_inputs
    fitted = MinMaxMonitor(tiny_network, LAYER).fit(part_a)
    refit, version = refit_monitor(
        store, "mon", fitted, part_b, metadata={"source": "stream"}
    )
    entry = store.describe()["monitors"]["mon"]["versions"][version]
    assert entry["metadata"]["refit_frames"] == part_b.shape[0]
    assert entry["metadata"]["source"] == "stream"
    assert store.fingerprint("mon", version) == monitor_fingerprint(refit)


def test_incremental_refit_validates_inputs(tiny_network, split_inputs):
    part_a, _ = split_inputs
    fitted = MinMaxMonitor(tiny_network, LAYER).fit(part_a)
    with pytest.raises(LifecycleStateError):
        incremental_refit(fitted, np.empty((0, 6)))
    with pytest.raises(LifecycleStateError):
        incremental_refit(object(), part_a)


def test_refit_accumulator_buffers_only_accepted_frames():
    accumulator = RefitAccumulator(min_frames=3, capacity=4)
    frame = np.arange(6.0)
    assert accumulator.offer(frame, warned=False)
    assert not accumulator.offer(frame, warned=True)  # alarms are not nominal
    assert not accumulator.ready()
    assert accumulator.offer(frame + 1, warned=False)
    assert accumulator.offer(frame + 2, warned=False)
    assert accumulator.ready()
    assert accumulator.offer(frame + 3, warned=False)
    assert not accumulator.offer(frame + 4, warned=False)  # full: dropped
    snapshot = accumulator.snapshot()
    assert snapshot == {
        "buffered": 4,
        "accepted": 4,
        "rejected_warned": 1,
        "dropped_full": 1,
        "min_frames": 3,
    }
    batch = accumulator.take()
    assert batch.shape == (4, 6)
    np.testing.assert_array_equal(batch[0], frame)
    assert len(accumulator) == 0
    with pytest.raises(LifecycleStateError):
        accumulator.take()


def test_refit_accumulator_validates_bounds():
    with pytest.raises(LifecycleStateError):
        RefitAccumulator(min_frames=0)
    with pytest.raises(LifecycleStateError):
        RefitAccumulator(min_frames=10, capacity=5)
