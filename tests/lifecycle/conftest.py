"""Shared fixtures for the monitor-lifecycle tests.

The lifecycle machinery is exercised over the in-process streaming scorer
(threads only, fast): a live min-max monitor fitted on a *narrow* nominal
band, plus a refit candidate that also absorbed a wider band — so live and
candidate genuinely disagree on wide probe frames, which is what the
shadow-ledger and watch-rollback tests need.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.lifecycle import LifecycleManager, MonitorStore, incremental_refit
from repro.monitors.minmax import MinMaxMonitor
from repro.service import BatchPolicy, StreamingScorer

LAYER = 4  # last hidden activation layer of the 6-10-8-3 tiny network


@pytest.fixture(scope="session")
def narrow_inputs(rng) -> np.ndarray:
    """The live monitor's nominal band (small amplitudes)."""
    return rng.uniform(-0.5, 0.5, size=(40, 6))


@pytest.fixture(scope="session")
def wide_inputs(rng) -> np.ndarray:
    """Extra nominal data the refit candidate absorbs (larger amplitudes)."""
    return rng.uniform(-2.0, 2.0, size=(40, 6))


@pytest.fixture(scope="session")
def live_monitor(tiny_network, narrow_inputs):
    return MinMaxMonitor(tiny_network, LAYER).fit(narrow_inputs)


@pytest.fixture(scope="session")
def candidate_monitor(live_monitor, wide_inputs):
    """The live monitor extended with the wide band (never mutates live)."""
    return incremental_refit(live_monitor, wide_inputs)


@pytest.fixture
def probe_frames(rng) -> np.ndarray:
    """Wide probes: live warns on many of them, the candidate on fewer."""
    return rng.uniform(-2.0, 2.0, size=(48, 6))


@pytest.fixture
def store(tmp_path) -> MonitorStore:
    return MonitorStore(tmp_path / "store")


@pytest.fixture
def scorer(tiny_network):
    """A started in-process scorer with a low-latency flush policy."""
    scorer = StreamingScorer(
        tiny_network, policy=BatchPolicy(max_batch=16, max_latency=0.002)
    )
    scorer.start()
    yield scorer
    scorer.close(drain=False)


@pytest.fixture
def manager(scorer, store, live_monitor) -> LifecycleManager:
    """A lifecycle manager with the live monitor already deployed as v1."""
    manager = LifecycleManager(scorer, store)
    manager.deploy("mon", live_monitor)
    return manager


def drain(scorer, frames, timeout: float = 30.0):
    """Submit ``frames`` and block until every verdict resolved."""
    futures = scorer.submit_many(frames)
    return [future.result(timeout) for future in futures]
