"""Tests for evaluation metrics."""

import numpy as np
import pytest

from repro.eval.metrics import (
    ConfusionCounts,
    confusion_counts,
    detection_rate,
    false_positive_rate,
    reduction_factor,
    score_monitor,
)
from repro.exceptions import ShapeError


class TestRates:
    def test_false_positive_rate(self):
        assert false_positive_rate([False, False, True, False]) == 0.25

    def test_detection_rate(self):
        assert detection_rate([True, True, False, True]) == 0.75

    def test_rates_reject_empty_input(self):
        with pytest.raises(ShapeError):
            false_positive_rate([])
        with pytest.raises(ShapeError):
            detection_rate(np.zeros(0, dtype=bool))

    def test_reduction_factor_matches_paper_headline(self):
        """0.62% -> 0.125% is the paper's ~80% false-positive reduction."""
        assert reduction_factor(0.0062, 0.00125) == pytest.approx(0.798, abs=0.01)

    def test_reduction_factor_zero_baseline(self):
        assert reduction_factor(0.0, 0.0) == 0.0

    def test_reduction_factor_negative_rates_rejected(self):
        with pytest.raises(ShapeError):
            reduction_factor(-0.1, 0.0)


class TestConfusion:
    def test_counts_and_derived_metrics(self):
        counts = confusion_counts(
            in_odd_warnings=[False, False, True, False],
            out_of_odd_warnings=[True, True, False, True],
        )
        assert counts.false_positives == 1
        assert counts.true_negatives == 3
        assert counts.true_positives == 3
        assert counts.false_negatives == 1
        assert counts.total == 8
        assert counts.precision == pytest.approx(3 / 4)
        assert counts.recall == pytest.approx(3 / 4)
        assert counts.f1 == pytest.approx(3 / 4)
        assert counts.accuracy == pytest.approx(6 / 8)

    def test_degenerate_precision_recall(self):
        counts = ConfusionCounts(0, 0, 5, 5)
        assert counts.precision == 0.0
        assert counts.recall == 0.0
        assert counts.f1 == 0.0

    def test_as_dict_keys(self):
        counts = ConfusionCounts(1, 2, 3, 4)
        data = counts.as_dict()
        assert set(data) >= {"precision", "recall", "f1", "accuracy"}

    def test_empty_sets_rejected(self):
        with pytest.raises(ShapeError):
            confusion_counts([], [True])


class TestMonitorScore:
    def test_score_monitor_aggregates_scenarios(self):
        score = score_monitor(
            "standard",
            in_odd_warnings=[False] * 99 + [True],
            scenario_warnings={
                "dark": [True] * 9 + [False],
                "ice": [True] * 5 + [False] * 5,
            },
        )
        assert score.false_positive_rate == pytest.approx(0.01)
        assert score.detection_rates["dark"] == pytest.approx(0.9)
        assert score.detection_rates["ice"] == pytest.approx(0.5)
        assert score.mean_detection_rate == pytest.approx(0.7)
        assert score.confusion.true_positives == 14

    def test_score_monitor_requires_scenarios(self):
        with pytest.raises(ShapeError):
            score_monitor("x", [False], {})

    def test_as_dict_contains_rates(self):
        score = score_monitor("m", [False, True], {"dark": [True, True]})
        data = score.as_dict()
        assert data["name"] == "m"
        assert data["false_positive_rate"] == pytest.approx(0.5)
        assert data["detection_rates"]["dark"] == 1.0
