"""Tests for monitorability / abstraction-coverage metrics."""

import numpy as np
import pytest

from repro.eval.coverage import (
    MonitorabilityReport,
    envelope_occupancy,
    monitorability_report,
    neuron_saturation,
    pattern_space_coverage,
)
from repro.exceptions import ConfigurationError, NotFittedError
from repro.monitors.boolean import BooleanPatternMonitor, RobustBooleanPatternMonitor
from repro.monitors.interval import IntervalPatternMonitor
from repro.monitors.minmax import MinMaxMonitor
from repro.monitors.perturbation import PerturbationSpec


class TestPatternSpaceCoverage:
    def test_coverage_between_zero_and_one(self, tiny_network, tiny_inputs):
        monitor = BooleanPatternMonitor(tiny_network, 4, thresholds="mean").fit(tiny_inputs)
        coverage = pattern_space_coverage(monitor)
        assert 0.0 < coverage <= 1.0

    def test_robust_monitor_has_higher_coverage(self, tiny_network, tiny_inputs):
        """The robust abstraction is a superset, so it covers more of the space."""
        standard = BooleanPatternMonitor(tiny_network, 4, thresholds="mean").fit(tiny_inputs)
        robust = RobustBooleanPatternMonitor(
            tiny_network, 4, PerturbationSpec(delta=0.2), thresholds="mean"
        ).fit(tiny_inputs)
        assert pattern_space_coverage(robust) >= pattern_space_coverage(standard)

    def test_interval_monitor_coverage_is_tiny(self, tiny_network, tiny_inputs):
        monitor = IntervalPatternMonitor(tiny_network, 4, num_cuts=3).fit(tiny_inputs)
        coverage = pattern_space_coverage(monitor)
        # 8 monitored neurons x 2 bits = 2^16 representable words, <= 24 stored.
        assert coverage < 1e-3

    def test_requires_pattern_monitor(self, tiny_network, tiny_inputs):
        minmax = MinMaxMonitor(tiny_network, 4).fit(tiny_inputs)
        with pytest.raises(ConfigurationError):
            pattern_space_coverage(minmax)

    def test_requires_fitted_monitor(self, tiny_network):
        with pytest.raises(NotFittedError):
            pattern_space_coverage(BooleanPatternMonitor(tiny_network, 4))


class TestEnvelopeOccupancy:
    def test_occupancy_of_reference_range(self, tiny_network, tiny_inputs):
        monitor = MinMaxMonitor(tiny_network, 4).fit(tiny_inputs)
        reference_low = monitor.lower - 1.0
        reference_high = monitor.upper + 1.0
        occupancy = envelope_occupancy(monitor, reference_low, reference_high)
        assert 0.0 < occupancy < 1.0

    def test_envelope_equal_to_reference_has_full_occupancy(self, tiny_network, tiny_inputs):
        monitor = MinMaxMonitor(tiny_network, 4).fit(tiny_inputs)
        occupancy = envelope_occupancy(monitor, monitor.lower, monitor.upper)
        assert occupancy == pytest.approx(1.0)

    def test_dimension_mismatch_rejected(self, tiny_network, tiny_inputs):
        monitor = MinMaxMonitor(tiny_network, 4).fit(tiny_inputs)
        with pytest.raises(ConfigurationError):
            envelope_occupancy(monitor, np.zeros(2), np.ones(2))

    def test_requires_minmax_monitor(self, tiny_network, tiny_inputs):
        boolean = BooleanPatternMonitor(tiny_network, 4).fit(tiny_inputs)
        with pytest.raises(ConfigurationError):
            envelope_occupancy(boolean, np.zeros(16), np.ones(16))


class TestNeuronSaturation:
    def test_saturation_bounds(self, tiny_network, tiny_inputs):
        monitor = BooleanPatternMonitor(tiny_network, 4, thresholds="mean").fit(tiny_inputs)
        saturation = neuron_saturation(monitor)
        assert 0.0 <= saturation <= 1.0

    def test_zero_threshold_relu_layer_is_heavily_saturated(self, tiny_network, tiny_inputs):
        """With threshold 0 on a ReLU layer, dead neurons are constant-0 bits."""
        zero_monitor = BooleanPatternMonitor(tiny_network, 4, thresholds="zero").fit(tiny_inputs)
        mean_monitor = BooleanPatternMonitor(tiny_network, 4, thresholds="mean").fit(tiny_inputs)
        assert neuron_saturation(zero_monitor) >= neuron_saturation(mean_monitor)

    def test_requires_pattern_monitor(self, tiny_network, tiny_inputs):
        minmax = MinMaxMonitor(tiny_network, 4).fit(tiny_inputs)
        with pytest.raises(ConfigurationError):
            neuron_saturation(minmax)


class TestMonitorabilityReport:
    def test_report_fields(self, tiny_network, tiny_inputs):
        monitor = BooleanPatternMonitor(tiny_network, 4, thresholds="mean").fit(tiny_inputs)
        report = monitorability_report(monitor)
        assert isinstance(report, MonitorabilityReport)
        assert report.pattern_count == monitor.pattern_count()
        assert report.bdd_nodes == monitor.bdd_size()
        assert 0.0 <= report.monitorability <= 1.0
        data = report.as_dict()
        assert set(data) == {
            "coverage",
            "saturation",
            "pattern_count",
            "bdd_nodes",
            "monitorability",
        }

    def test_saturated_abstraction_scores_zero(self):
        report = MonitorabilityReport(coverage=1.0, saturation=0.0, pattern_count=1, bdd_nodes=1)
        assert report.monitorability == 0.0
        report = MonitorabilityReport(coverage=0.0, saturation=1.0, pattern_count=1, bdd_nodes=1)
        assert report.monitorability == 0.0

    def test_discriminative_abstraction_scores_high(self):
        report = MonitorabilityReport(
            coverage=0.001, saturation=0.1, pattern_count=50, bdd_nodes=100
        )
        assert report.monitorability > 0.85
