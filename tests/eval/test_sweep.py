"""Tests for parameter sweeps over monitor construction knobs."""

import numpy as np
import pytest

from repro.data.perturbations import perturb_dataset_inputs
from repro.eval.experiments import MonitorExperiment
from repro.eval.sweep import bit_width_sweep, delta_sweep, layer_sweep, method_sweep
from repro.exceptions import ConfigurationError


@pytest.fixture(scope="module")
def experiment(tiny_network, tiny_inputs):
    in_odd = perturb_dataset_inputs(tiny_inputs, 0.02, rng=np.random.default_rng(2))
    out_of_odd = {"far": tiny_inputs + 10.0}
    return MonitorExperiment(tiny_network, tiny_inputs, in_odd, out_of_odd)


class TestDeltaSweep:
    def test_rows_per_delta(self, experiment):
        rows = delta_sweep(experiment, "minmax", 4, deltas=[0.0, 0.02, 0.05])
        assert len(rows) == 3
        assert [row["delta"] for row in rows] == [0.0, 0.02, 0.05]
        for row in rows:
            assert 0.0 <= row["false_positive_rate"] <= 1.0
            assert "detect[far]" in row

    def test_fp_rate_non_increasing_in_delta(self, experiment):
        rows = delta_sweep(experiment, "minmax", 4, deltas=[0.0, 0.02, 0.05])
        rates = [row["false_positive_rate"] for row in rows]
        assert rates[0] >= rates[-1]

    def test_matching_delta_gives_zero_fp(self, experiment):
        rows = delta_sweep(experiment, "minmax", 4, deltas=[0.02])
        assert rows[0]["false_positive_rate"] == 0.0

    def test_empty_deltas_rejected(self, experiment):
        with pytest.raises(ConfigurationError):
            delta_sweep(experiment, "minmax", 4, deltas=[])


class TestMethodSweep:
    def test_rows_per_method(self, experiment):
        rows = method_sweep(
            experiment, "minmax", 4, delta=0.02, methods=("box", "zonotope")
        )
        assert [row["method"] for row in rows] == ["box", "zonotope"]
        for row in rows:
            assert row["false_positive_rate"] == 0.0

    def test_zero_delta_rejected(self, experiment):
        with pytest.raises(ConfigurationError):
            method_sweep(experiment, "minmax", 4, delta=0.0)


class TestBitWidthSweep:
    def test_standard_sweep(self, experiment):
        rows = bit_width_sweep(experiment, 4, cut_counts=(1, 3))
        assert [row["bits"] for row in rows] == [1, 2]
        assert all(row["robust"] is False for row in rows)

    def test_robust_sweep(self, experiment):
        rows = bit_width_sweep(experiment, 4, cut_counts=(1, 3), delta=0.02)
        assert all(row["robust"] is True for row in rows)
        assert all(row["false_positive_rate"] == 0.0 for row in rows)

    def test_empty_cut_counts_rejected(self, experiment):
        with pytest.raises(ConfigurationError):
            bit_width_sweep(experiment, 4, cut_counts=())


class TestLayerSweep:
    def test_rows_per_layer(self, experiment):
        rows = layer_sweep(experiment, "minmax", layer_indices=[2, 4])
        assert [row["layer_index"] for row in rows] == [2, 4]

    def test_robust_layer_sweep(self, experiment):
        rows = layer_sweep(experiment, "minmax", layer_indices=[4], delta=0.02)
        assert rows[0]["false_positive_rate"] == 0.0

    def test_empty_layers_rejected(self, experiment):
        with pytest.raises(ConfigurationError):
            layer_sweep(experiment, "minmax", layer_indices=[])
