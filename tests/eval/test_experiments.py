"""Tests for the MonitorExperiment runner."""

import numpy as np
import pytest

from repro.data.perturbations import perturb_dataset_inputs
from repro.eval.experiments import ExperimentResult, MonitorExperiment, compare_monitors
from repro.exceptions import ConfigurationError, ShapeError
from repro.monitors.builder import MonitorBuilder
from repro.monitors.minmax import MinMaxMonitor, RobustMinMaxMonitor
from repro.monitors.perturbation import PerturbationSpec


@pytest.fixture
def experiment(tiny_network, tiny_inputs, rng):
    in_odd = perturb_dataset_inputs(tiny_inputs, 0.02, rng=np.random.default_rng(1))
    out_of_odd = {
        "far": tiny_inputs + 10.0,
        "scaled": tiny_inputs * 8.0,
    }
    return MonitorExperiment(tiny_network, tiny_inputs, in_odd, out_of_odd)


class TestConstruction:
    def test_empty_fit_set_rejected(self, tiny_network, tiny_inputs):
        with pytest.raises(ShapeError):
            MonitorExperiment(
                tiny_network, np.zeros((0, 6)), tiny_inputs, {"far": tiny_inputs}
            )

    def test_missing_scenarios_rejected(self, tiny_network, tiny_inputs):
        with pytest.raises(ConfigurationError):
            MonitorExperiment(tiny_network, tiny_inputs, tiny_inputs, {})


class TestRun:
    def test_run_fits_and_scores_monitors(self, experiment, tiny_network):
        result = experiment.run(
            {
                "standard": MinMaxMonitor(tiny_network, 4),
                "robust": RobustMinMaxMonitor(
                    tiny_network, 4, PerturbationSpec(delta=0.02)
                ),
            }
        )
        assert set(result.scores) == {"standard", "robust"}
        robust_score = result.score("robust")
        assert robust_score.false_positive_rate == 0.0
        assert 0.0 <= robust_score.mean_detection_rate <= 1.0

    def test_robust_fp_not_worse_than_standard(self, experiment, tiny_network):
        result = compare_monitors(
            experiment,
            MinMaxMonitor(tiny_network, 4),
            RobustMinMaxMonitor(tiny_network, 4, PerturbationSpec(delta=0.02)),
        )
        assert (
            result.score("robust").false_positive_rate
            <= result.score("standard").false_positive_rate
        )
        assert 0.0 <= result.false_positive_reduction("standard", "robust") <= 1.0

    def test_run_builders(self, experiment):
        result = experiment.run_builders(
            {
                "standard": MonitorBuilder("minmax", 4),
                "robust": MonitorBuilder(
                    "minmax", 4, perturbation=PerturbationSpec(delta=0.02)
                ),
            }
        )
        assert set(result.scores) == {"standard", "robust"}

    def test_prefitted_monitor_is_not_refitted(self, experiment, tiny_network, tiny_inputs):
        monitor = MinMaxMonitor(tiny_network, 4).fit(tiny_inputs[:5])
        experiment.run({"prefit": monitor})
        assert monitor.num_training_samples == 5

    def test_invalid_monitor_object_rejected(self, experiment):
        with pytest.raises(ConfigurationError):
            experiment.run({"bogus": object()})

    def test_detection_rate_change(self, experiment, tiny_network):
        result = experiment.run(
            {
                "standard": MinMaxMonitor(tiny_network, 4),
                "robust": RobustMinMaxMonitor(
                    tiny_network, 4, PerturbationSpec(delta=0.02)
                ),
            }
        )
        change = result.detection_rate_change("standard", "robust")
        assert -1.0 <= change <= 1.0


class TestResultFormatting:
    def test_format_produces_table(self, experiment, tiny_network):
        result = experiment.run({"standard": MinMaxMonitor(tiny_network, 4)})
        text = result.format(title="demo")
        assert "demo" in text
        assert "standard" in text
        assert "detect[far]" in text

    def test_unknown_monitor_name_rejected(self):
        with pytest.raises(ConfigurationError):
            ExperimentResult().score("missing")

    def test_empty_result_format(self):
        assert "no monitors" in ExperimentResult().format()
