"""Tests for plain-text table formatting."""

from repro.eval.reporting import format_rate, format_results_table, format_table


class TestFormatRate:
    def test_percentage_formatting(self):
        assert format_rate(0.0062) == "0.620%"
        assert format_rate(0.00125) == "0.125%"
        assert format_rate(1.0) == "100.000%"

    def test_digits_parameter(self):
        assert format_rate(0.5, digits=1) == "50.0%"

    def test_none_becomes_dash(self):
        assert format_rate(None) == "-"


class TestFormatTable:
    def test_columns_are_aligned(self):
        table = format_table(
            ["name", "value"],
            [["standard", 0.0062], ["robust", 0.00125]],
            title="results",
        )
        lines = table.splitlines()
        assert lines[0] == "results"
        assert "name" in lines[1] and "value" in lines[1]
        # All data lines have the same width.
        assert len(set(len(line) for line in lines[2:])) <= 2

    def test_none_cells_become_dash(self):
        table = format_table(["a"], [[None]])
        assert "-" in table.splitlines()[-1]

    def test_float_formatting(self):
        table = format_table(["x"], [[0.123456789]])
        assert "0.1235" in table

    def test_integers_and_strings_pass_through(self):
        table = format_table(["n", "label"], [[3, "dark"]])
        assert "3" in table and "dark" in table


class TestFormatResultsTable:
    def test_selects_requested_columns(self):
        results = [
            {"monitor": "standard", "fp": 0.0062, "extra": "ignored"},
            {"monitor": "robust", "fp": 0.00125},
        ]
        table = format_results_table(results, ["monitor", "fp"])
        assert "standard" in table and "robust" in table
        assert "ignored" not in table

    def test_missing_keys_become_dash(self):
        table = format_results_table([{"a": 1}], ["a", "b"])
        assert "-" in table.splitlines()[-1]
