"""Shared fixtures for the test suite.

Networks and datasets are deliberately tiny so that the whole suite —
including the robust-monitor constructions that run symbolic propagation per
training sample — executes in seconds.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.synthetic_digits import generate_digits
from repro.data.track import TrackConfig, generate_track_dataset
from repro.nn.layers import ActivationLayer, Dense
from repro.nn.network import Sequential, mlp
from repro.nn.training import train_classifier, train_regressor


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def tiny_network() -> Sequential:
    """An untrained 6 → 10 → 8 → 3 ReLU MLP (6 layers counting activations)."""
    return mlp(6, [10, 8], 3, activation="relu", seed=7)


@pytest.fixture(scope="session")
def tiny_tanh_network() -> Sequential:
    """An untrained network with tanh activations (for monotone-bound tests)."""
    return mlp(5, [8, 6], 2, activation="tanh", seed=11)


@pytest.fixture(scope="session")
def tiny_inputs(rng) -> np.ndarray:
    """Small batch of inputs matching ``tiny_network``'s input dimension."""
    return rng.uniform(-1.0, 1.0, size=(24, 6))


@pytest.fixture(scope="session")
def trained_digits():
    """A small trained digit classifier plus its datasets.

    Returns ``(network, train_dataset, test_dataset)``; training is short but
    enough to make class structure visible in the hidden layers.
    """
    dataset = generate_digits(240, num_classes=4, seed=3)
    train = dataset.subset(np.arange(180), name="digits-train")
    test = dataset.subset(np.arange(180, 240), name="digits-test")
    network = mlp(dataset.num_features, [24, 12], 4, activation="relu", seed=5)
    train_classifier(
        network, train.inputs, train.targets, num_classes=4, epochs=6, seed=6
    )
    return network, train, test


@pytest.fixture(scope="session")
def trained_track():
    """A small trained waypoint regressor plus its datasets."""
    config = TrackConfig()
    dataset = generate_track_dataset(160, config=config, seed=9)
    train = dataset.subset(np.arange(120), name="track-train")
    test = dataset.subset(np.arange(120, 160), name="track-test")
    network = mlp(dataset.num_features, [20, 12], 2, activation="relu", seed=10)
    train_regressor(network, train.inputs, train.targets, epochs=8, seed=11)
    return network, train, test


@pytest.fixture
def two_layer_affine_relu() -> Sequential:
    """A hand-built 2-layer network with known weights for exact checks."""
    dense1 = Dense(2)
    dense2 = Dense(1)
    network = Sequential(
        [dense1, ActivationLayer("relu"), dense2], input_dim=2, seed=0
    )
    dense1.set_weights([np.array([[1.0, -1.0], [2.0, 1.0]]), np.array([0.0, 0.5])])
    dense2.set_weights([np.array([[1.0], [1.0]]), np.array([-0.25])])
    return network
