"""Tests for PatternSet bulk insertion and vectorised batch membership."""

import numpy as np
import pytest

from repro.bdd.patterns import DONT_CARE, PatternSet
from repro.exceptions import ConfigurationError
from repro.runtime.codec import TernaryPlanes
from repro.runtime.packing import pack_bool_matrix


def _brute_membership(patterns, probes):
    return np.array([patterns.contains(list(p)) for p in probes])


class TestBulkExactInsertion:
    def test_bulk_equals_sequential(self):
        rng = np.random.default_rng(0)
        words = rng.integers(0, 2, size=(60, 8))
        bulk = PatternSet(8)
        bulk.add_patterns(words)
        sequential = PatternSet(8)
        for word in words:
            sequential.add_word(list(word))
        assert bulk.cardinality() == sequential.cardinality()
        assert set(bulk.iterate_words()) == set(sequential.iterate_words())
        assert bulk.insertions == sequential.insertions == 60

    def test_bulk_deduplicates_before_bdd_insertion(self):
        words = np.tile(np.array([[1, 0, 1]]), (50, 1))
        patterns = PatternSet(3)
        patterns.add_patterns(words)
        assert patterns.cardinality() == 1
        assert patterns.insertions == 50

    def test_multibit_bulk(self):
        rng = np.random.default_rng(1)
        words = rng.integers(0, 4, size=(40, 5))
        patterns = PatternSet(5, bits_per_position=2)
        patterns.add_patterns(words)
        probes = rng.integers(0, 4, size=(200, 5))
        np.testing.assert_array_equal(
            patterns.contains_batch(probes), _brute_membership(patterns, probes)
        )

    def test_empty_batch_is_noop(self):
        patterns = PatternSet(4)
        patterns.add_patterns(np.zeros((0, 4), dtype=np.int64))
        assert patterns.is_empty()
        assert patterns.insertions == 0

    def test_invalid_codes_rejected(self):
        patterns = PatternSet(3)
        with pytest.raises(ConfigurationError):
            patterns.add_patterns(np.array([[0, 1, 2]]))
        with pytest.raises(ConfigurationError):
            patterns.add_patterns(np.array([[0, 1]]))


class TestBulkTernaryInsertion:
    def test_bulk_ternary_equals_sequential(self):
        rng = np.random.default_rng(2)
        words = []
        for _ in range(30):
            words.append(
                [
                    DONT_CARE if rng.random() < 0.4 else int(rng.random() < 0.5)
                    for _ in range(10)
                ]
            )
        masks = np.array([[s != DONT_CARE for s in w] for w in words])
        values = np.array([[s == 1 for s in w] for w in words])
        bulk = PatternSet(10)
        bulk.add_ternary_patterns(
            TernaryPlanes(values=pack_bool_matrix(values), masks=pack_bool_matrix(masks))
        )
        sequential = PatternSet(10)
        for word in words:
            sequential.add_ternary_word(word)
        assert bulk.cardinality() == sequential.cardinality()
        probes = rng.integers(0, 2, size=(300, 10))
        np.testing.assert_array_equal(
            bulk.contains_batch(probes), sequential.contains_batch(probes)
        )
        np.testing.assert_array_equal(
            bulk.contains_batch(probes), _brute_membership(bulk, probes)
        )


class TestBulkRangeInsertion:
    def test_range_patterns_match_code_sets(self):
        rng = np.random.default_rng(3)
        low = rng.integers(0, 3, size=(12, 6))
        high = low + rng.integers(0, 2, size=(12, 6))
        bulk = PatternSet(6, bits_per_position=2)
        bulk.add_range_patterns(low, high)
        via_sets = PatternSet(6, bits_per_position=2)
        for low_row, high_row in zip(low, high):
            via_sets.add_code_sets(
                [set(range(lo, hi + 1)) for lo, hi in zip(low_row, high_row)]
            )
        assert bulk.cardinality() == via_sets.cardinality()
        probes = rng.integers(0, 4, size=(250, 6))
        np.testing.assert_array_equal(
            bulk.contains_batch(probes), via_sets.contains_batch(probes)
        )
        np.testing.assert_array_equal(
            bulk.contains_batch(probes), _brute_membership(bulk, probes)
        )

    def test_invalid_ranges_rejected(self):
        patterns = PatternSet(3, bits_per_position=2)
        with pytest.raises(ConfigurationError):
            patterns.add_range_patterns(
                np.array([[2, 0, 0]]), np.array([[1, 0, 0]])
            )


class TestBatchMembershipFallback:
    def test_non_contiguous_code_sets_still_answer_correctly(self):
        """A non-contiguous set degrades the mirror to a BDD-backed fallback."""
        rng = np.random.default_rng(4)
        patterns = PatternSet(4, bits_per_position=2)
        patterns.add_word([0, 1, 2, 3])
        patterns.add_code_sets([{0, 3}, {1}, {0, 2}, {1, 2}])  # non-contiguous
        probes = rng.integers(0, 4, size=(256, 4))
        np.testing.assert_array_equal(
            patterns.contains_batch(probes), _brute_membership(patterns, probes)
        )

    def test_union_keeps_batch_queries_exact(self):
        rng = np.random.default_rng(5)
        left = PatternSet(5)
        right = PatternSet(5)
        left.add_patterns(rng.integers(0, 2, size=(20, 5)))
        right.add_ternary_word([1, DONT_CARE, 0, DONT_CARE, 1])
        left.union(right)
        probes = rng.integers(0, 2, size=(200, 5))
        np.testing.assert_array_equal(
            left.contains_batch(probes), _brute_membership(left, probes)
        )
