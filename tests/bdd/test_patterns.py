"""Tests for PatternSet: word storage, word2set, Hamming relaxation."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bdd.patterns import DONT_CARE, PatternSet
from repro.exceptions import ConfigurationError


class TestBasicWordStorage:
    def test_empty_set_contains_nothing(self):
        patterns = PatternSet(4)
        assert patterns.is_empty()
        assert patterns.cardinality() == 0
        assert not patterns.contains([0, 0, 0, 0])

    def test_added_words_are_members(self):
        patterns = PatternSet(3)
        patterns.add_word([1, 0, 1])
        patterns.add_word([0, 0, 0])
        assert patterns.contains([1, 0, 1])
        assert patterns.contains([0, 0, 0])
        assert not patterns.contains([1, 1, 1])
        assert patterns.cardinality() == 2
        assert patterns.insertions == 2

    def test_duplicate_insertion_does_not_grow_cardinality(self):
        patterns = PatternSet(3)
        patterns.add_word([1, 1, 0])
        patterns.add_word([1, 1, 0])
        assert patterns.cardinality() == 1

    def test_wrong_word_length_rejected(self):
        patterns = PatternSet(3)
        with pytest.raises(ConfigurationError):
            patterns.add_word([1, 0])
        with pytest.raises(ConfigurationError):
            patterns.contains([1, 0, 1, 1])

    def test_code_out_of_range_rejected(self):
        patterns = PatternSet(3, bits_per_position=1)
        with pytest.raises(ConfigurationError):
            patterns.add_word([2, 0, 0])

    def test_len_and_in_operators(self):
        patterns = PatternSet(2)
        patterns.add_word([1, 0])
        assert len(patterns) == 1
        assert [1, 0] in patterns
        assert [0, 1] not in patterns

    def test_invalid_shape_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            PatternSet(0)
        with pytest.raises(ConfigurationError):
            PatternSet(3, bits_per_position=0)


class TestTernaryWords:
    def test_dont_care_expands_to_both_values(self):
        patterns = PatternSet(3)
        patterns.add_ternary_word([1, DONT_CARE, 0])
        assert patterns.cardinality() == 2
        assert patterns.contains([1, 0, 0])
        assert patterns.contains([1, 1, 0])
        assert not patterns.contains([0, 0, 0])

    def test_all_dont_care_covers_everything(self):
        patterns = PatternSet(4)
        patterns.add_ternary_word([DONT_CARE] * 4)
        assert patterns.cardinality() == 16

    def test_no_exponential_blowup_in_bdd_size(self):
        """The paper's key storage argument: word2set stays compact."""
        width = 40
        patterns = PatternSet(width)
        word = [DONT_CARE] * width
        word[0] = 1
        word[-1] = 0
        patterns.add_ternary_word(word)
        assert patterns.cardinality() == 2 ** (width - 2)
        assert patterns.dag_size() <= 4

    def test_ternary_word_on_multibit_set_rejected(self):
        patterns = PatternSet(3, bits_per_position=2)
        with pytest.raises(ConfigurationError):
            patterns.add_ternary_word([1, DONT_CARE, 0])

    def test_invalid_ternary_symbol_rejected(self):
        patterns = PatternSet(2)
        with pytest.raises(ConfigurationError):
            patterns.add_ternary_word([1, "?"])

    def test_wrong_ternary_length_rejected(self):
        patterns = PatternSet(2)
        with pytest.raises(ConfigurationError):
            patterns.add_ternary_word([1])

    @settings(max_examples=40, deadline=None)
    @given(
        word=st.lists(st.sampled_from([0, 1, DONT_CARE]), min_size=5, max_size=5),
        concrete=st.lists(st.integers(0, 1), min_size=5, max_size=5),
    )
    def test_ternary_membership_property(self, word, concrete):
        """A concrete word is a member iff it matches every constrained bit."""
        patterns = PatternSet(5)
        patterns.add_ternary_word(word)
        matches = all(
            symbol == DONT_CARE or int(symbol) == bit
            for symbol, bit in zip(word, concrete)
        )
        assert patterns.contains(concrete) == matches


class TestMultiBitCodeSets:
    def test_add_word_with_two_bits(self):
        patterns = PatternSet(2, bits_per_position=2)
        patterns.add_word([3, 0])
        assert patterns.contains([3, 0])
        assert not patterns.contains([0, 3])
        assert patterns.cardinality() == 1

    def test_code_sets_cartesian_product(self):
        patterns = PatternSet(3, bits_per_position=2)
        patterns.add_code_sets([{0, 1}, {2}, {1, 2, 3}])
        assert patterns.cardinality() == 2 * 1 * 3
        for codes in itertools.product([0, 1], [2], [1, 2, 3]):
            assert patterns.contains(list(codes))
        assert not patterns.contains([2, 2, 1])

    def test_full_code_set_is_unconstrained(self):
        patterns = PatternSet(2, bits_per_position=2)
        patterns.add_code_sets([{0, 1, 2, 3}, {1}])
        assert patterns.cardinality() == 4

    def test_code_set_bdd_stays_small(self):
        """Cartesian products of code sets are stored without enumeration."""
        positions = 24
        patterns = PatternSet(positions, bits_per_position=2)
        patterns.add_code_sets([{1, 2}] * positions)
        assert patterns.cardinality() == 2**positions
        assert patterns.dag_size() <= 3 * positions

    def test_empty_code_set_rejected(self):
        patterns = PatternSet(2, bits_per_position=2)
        with pytest.raises(ConfigurationError):
            patterns.add_code_sets([{0}, set()])

    def test_wrong_number_of_code_sets_rejected(self):
        patterns = PatternSet(2, bits_per_position=2)
        with pytest.raises(ConfigurationError):
            patterns.add_code_sets([{0}])

    def test_code_set_out_of_range_rejected(self):
        patterns = PatternSet(2, bits_per_position=1)
        with pytest.raises(ConfigurationError):
            patterns.add_code_sets([{0, 2}, {1}])

    @settings(max_examples=30, deadline=None)
    @given(
        sets=st.lists(
            st.sets(st.integers(0, 3), min_size=1, max_size=4), min_size=3, max_size=3
        ),
        probe=st.lists(st.integers(0, 3), min_size=3, max_size=3),
    )
    def test_code_set_membership_property(self, sets, probe):
        patterns = PatternSet(3, bits_per_position=2)
        patterns.add_code_sets(sets)
        expected = all(code in allowed for code, allowed in zip(probe, sets))
        assert patterns.contains(probe) == expected
        assert patterns.cardinality() == int(np.prod([len(s) for s in sets]))


class TestHammingRelaxation:
    def test_distance_zero_is_exact_membership(self):
        patterns = PatternSet(4)
        patterns.add_word([1, 0, 1, 0])
        assert patterns.contains_within_hamming([1, 0, 1, 0], 0)
        assert not patterns.contains_within_hamming([1, 0, 1, 1], 0)

    def test_distance_one_accepts_single_flip(self):
        patterns = PatternSet(4)
        patterns.add_word([1, 0, 1, 0])
        assert patterns.contains_within_hamming([1, 0, 1, 1], 1)
        assert not patterns.contains_within_hamming([1, 1, 1, 1], 1)
        assert patterns.contains_within_hamming([1, 1, 1, 1], 2)

    def test_negative_distance_rejected(self):
        patterns = PatternSet(2)
        patterns.add_word([0, 0])
        with pytest.raises(ConfigurationError):
            patterns.contains_within_hamming([0, 0], -1)

    def test_distance_larger_than_word_accepts_everything_nonempty(self):
        patterns = PatternSet(3)
        patterns.add_word([0, 0, 0])
        assert patterns.contains_within_hamming([1, 1, 1], 5)


class TestIterationAndUnion:
    def test_iterate_words_round_trips(self):
        patterns = PatternSet(3, bits_per_position=2)
        words = [(0, 3, 1), (2, 2, 2), (1, 0, 3)]
        for word in words:
            patterns.add_word(list(word))
        assert set(patterns.iterate_words()) == set(words)

    def test_union_same_shape(self):
        a = PatternSet(3)
        b = PatternSet(3)
        a.add_word([1, 0, 0])
        b.add_word([0, 1, 1])
        a.union(b)
        assert a.contains([1, 0, 0]) and a.contains([0, 1, 1])
        assert a.cardinality() == 2

    def test_union_shape_mismatch_rejected(self):
        a = PatternSet(3)
        b = PatternSet(2)
        with pytest.raises(ConfigurationError):
            a.union(b)

    def test_bit_index_bounds_checked(self):
        patterns = PatternSet(2, bits_per_position=2)
        with pytest.raises(ConfigurationError):
            patterns.bit_index(2, 0)
        with pytest.raises(ConfigurationError):
            patterns.bit_index(0, 2)
