"""Tests for the ROBDD manager: canonicity, Boolean algebra, counting."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bdd.manager import FALSE, TRUE, BDDManager
from repro.exceptions import ConfigurationError


def brute_force_truth_table(manager, ref, num_vars):
    """Evaluate a BDD on every assignment (tiny num_vars only)."""
    return {
        assignment: manager.evaluate(ref, list(assignment))
        for assignment in itertools.product([False, True], repeat=num_vars)
    }


class TestNodeConstruction:
    def test_terminals_exist(self):
        manager = BDDManager(3)
        assert manager.is_terminal(FALSE)
        assert manager.is_terminal(TRUE)
        assert manager.num_nodes == 2

    def test_var_and_nvar_are_complementary(self):
        manager = BDDManager(2)
        x0 = manager.var(0)
        not_x0 = manager.nvar(0)
        assert manager.apply_and(x0, not_x0) == FALSE
        assert manager.apply_or(x0, not_x0) == TRUE

    def test_hash_consing_gives_identical_nodes(self):
        manager = BDDManager(2)
        assert manager.var(1) == manager.var(1)
        a = manager.apply_and(manager.var(0), manager.var(1))
        b = manager.apply_and(manager.var(1), manager.var(0))
        assert a == b  # canonical form: conjunction is order-independent

    def test_out_of_range_variable_rejected(self):
        manager = BDDManager(2)
        with pytest.raises(ConfigurationError):
            manager.var(2)
        with pytest.raises(ConfigurationError):
            manager.nvar(-1)

    def test_negative_var_count_rejected(self):
        with pytest.raises(ConfigurationError):
            BDDManager(-1)


class TestBooleanAlgebra:
    def test_ite_shortcuts(self):
        manager = BDDManager(2)
        x = manager.var(0)
        y = manager.var(1)
        assert manager.ite(TRUE, x, y) == x
        assert manager.ite(FALSE, x, y) == y
        assert manager.ite(x, y, y) == y
        assert manager.ite(x, TRUE, FALSE) == x

    def test_double_negation(self):
        manager = BDDManager(3)
        f = manager.apply_or(manager.var(0), manager.apply_and(manager.var(1), manager.nvar(2)))
        assert manager.negate(manager.negate(f)) == f

    def test_de_morgan(self):
        manager = BDDManager(2)
        x, y = manager.var(0), manager.var(1)
        left = manager.negate(manager.apply_and(x, y))
        right = manager.apply_or(manager.negate(x), manager.negate(y))
        assert left == right

    def test_xor_truth_table(self):
        manager = BDDManager(2)
        f = manager.apply_xor(manager.var(0), manager.var(1))
        table = brute_force_truth_table(manager, f, 2)
        assert table == {
            (False, False): False,
            (False, True): True,
            (True, False): True,
            (True, True): False,
        }

    def test_implies_truth_table(self):
        manager = BDDManager(2)
        f = manager.apply_implies(manager.var(0), manager.var(1))
        table = brute_force_truth_table(manager, f, 2)
        assert table[(True, False)] is False
        assert all(value for key, value in table.items() if key != (True, False))

    def test_conjoin_and_disjoin(self):
        manager = BDDManager(3)
        literals = [manager.var(i) for i in range(3)]
        conj = manager.conjoin(literals)
        disj = manager.disjoin(literals)
        assert manager.evaluate(conj, [True, True, True])
        assert not manager.evaluate(conj, [True, False, True])
        assert manager.evaluate(disj, [False, True, False])
        assert not manager.evaluate(disj, [False, False, False])

    def test_conjoin_empty_is_true_disjoin_empty_is_false(self):
        manager = BDDManager(1)
        assert manager.conjoin([]) == TRUE
        assert manager.disjoin([]) == FALSE

    @settings(max_examples=50, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        assignment=st.lists(st.booleans(), min_size=4, max_size=4),
    )
    def test_random_formula_equivalence_property(self, seed, assignment):
        """A random formula built twice in different orders evaluates identically."""
        rng = np.random.default_rng(seed)
        manager = BDDManager(4)
        literals = [
            manager.var(i) if rng.random() < 0.5 else manager.nvar(i) for i in range(4)
        ]
        order = rng.permutation(4)
        f = manager.conjoin([literals[i] for i in range(4)])
        g = manager.conjoin([literals[i] for i in order])
        assert f == g
        expected = all(
            (assignment[i] if manager.node(literals[i])[2] == TRUE else not assignment[i])
            for i in range(4)
        )
        assert manager.evaluate(f, assignment) == expected


class TestRestrictAndQuantify:
    def test_restrict_fixes_variable(self):
        manager = BDDManager(2)
        f = manager.apply_and(manager.var(0), manager.var(1))
        assert manager.restrict(f, {0: True}) == manager.var(1)
        assert manager.restrict(f, {0: False}) == FALSE

    def test_exists_removes_variable(self):
        manager = BDDManager(2)
        f = manager.apply_and(manager.var(0), manager.var(1))
        assert manager.exists(f, [0]) == manager.var(1)

    def test_forall_requires_both_branches(self):
        manager = BDDManager(2)
        f = manager.apply_or(manager.var(0), manager.var(1))
        # For all x0: (x0 or x1) holds only when x1 holds.
        assert manager.forall(f, [0]) == manager.var(1)

    def test_exists_of_tautology_in_variable(self):
        manager = BDDManager(1)
        f = manager.apply_or(manager.var(0), manager.nvar(0))
        assert manager.exists(f, [0]) == TRUE


class TestCountingAndModels:
    def test_count_simple_formulas(self):
        manager = BDDManager(3)
        assert manager.count_solutions_exact(TRUE) == 8
        assert manager.count_solutions_exact(FALSE) == 0
        assert manager.count_solutions_exact(manager.var(0)) == 4
        f = manager.apply_and(manager.var(0), manager.var(2))
        assert manager.count_solutions_exact(f) == 2

    def test_count_matches_brute_force(self):
        rng = np.random.default_rng(3)
        manager = BDDManager(5)
        f = FALSE
        for _ in range(4):
            cube = manager.cube(
                {int(i): bool(rng.integers(0, 2)) for i in rng.choice(5, size=3, replace=False)}
            )
            f = manager.apply_or(f, cube)
        brute = sum(brute_force_truth_table(manager, f, 5).values())
        assert manager.count_solutions_exact(f) == brute

    def test_iterate_models_matches_evaluation(self):
        manager = BDDManager(3)
        f = manager.apply_or(
            manager.apply_and(manager.var(0), manager.nvar(1)), manager.var(2)
        )
        models = set(manager.iterate_models(f))
        expected = {
            assignment
            for assignment, value in brute_force_truth_table(manager, f, 3).items()
            if value
        }
        assert models == expected

    def test_iterate_models_limit(self):
        manager = BDDManager(4)
        models = list(manager.iterate_models(TRUE, limit=5))
        assert len(models) == 5

    def test_evaluate_wrong_length_rejected(self):
        manager = BDDManager(3)
        with pytest.raises(ConfigurationError):
            manager.evaluate(TRUE, [True])


class TestCubes:
    def test_cube_size_is_linear_in_constrained_bits(self):
        """The word2set property: don't-cares never enlarge the BDD."""
        manager = BDDManager(64)
        cube = manager.cube({0: True, 63: False})
        assert manager.dag_size(cube) == 2

    def test_cube_semantics(self):
        manager = BDDManager(4)
        cube = manager.cube({1: True, 3: False})
        assert manager.evaluate(cube, [False, True, True, False])
        assert manager.evaluate(cube, [True, True, False, False])
        assert not manager.evaluate(cube, [False, False, True, False])
        assert not manager.evaluate(cube, [False, True, True, True])

    def test_cube_count_accounts_for_dont_cares(self):
        manager = BDDManager(6)
        cube = manager.cube({0: True, 5: True})
        assert manager.count_solutions_exact(cube) == 2**4

    def test_from_assignment_has_single_model(self):
        manager = BDDManager(5)
        assignment = [True, False, True, True, False]
        cube = manager.from_assignment(assignment)
        assert manager.count_solutions_exact(cube) == 1
        assert list(manager.iterate_models(cube)) == [tuple(assignment)]

    def test_from_assignment_length_checked(self):
        manager = BDDManager(3)
        with pytest.raises(ConfigurationError):
            manager.from_assignment([True])

    def test_dag_size_of_terminals_is_zero(self):
        manager = BDDManager(3)
        assert manager.dag_size(TRUE) == 0
        assert manager.dag_size(FALSE) == 0

    def test_clear_caches_keeps_semantics(self):
        manager = BDDManager(3)
        f = manager.apply_and(manager.var(0), manager.var(1))
        manager.clear_caches()
        g = manager.apply_and(manager.var(0), manager.var(1))
        assert f == g
