"""Tests for PerturbationSpec and the Definition-1 perturbation estimate."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.monitors.perturbation import (
    PerturbationSpec,
    collect_estimates,
    perturbation_estimate,
    perturbation_estimates,
)


class TestPerturbationSpec:
    def test_defaults(self):
        spec = PerturbationSpec()
        assert spec.delta == 0.0
        assert spec.layer == 0
        assert spec.method == "box"
        assert spec.is_trivial

    def test_nontrivial_spec(self):
        spec = PerturbationSpec(delta=0.1, layer=2, method="zonotope")
        assert not spec.is_trivial
        assert "0.1" in spec.describe()
        assert "zonotope" in spec.describe()

    def test_negative_delta_rejected(self):
        with pytest.raises(ConfigurationError):
            PerturbationSpec(delta=-0.5)

    def test_negative_layer_rejected(self):
        with pytest.raises(ConfigurationError):
            PerturbationSpec(layer=-1)

    def test_unknown_method_rejected(self):
        with pytest.raises(ConfigurationError):
            PerturbationSpec(method="polyhedron")

    def test_spec_is_hashable_and_frozen(self):
        spec = PerturbationSpec(delta=0.1)
        assert hash(spec) == hash(PerturbationSpec(delta=0.1))
        with pytest.raises(AttributeError):
            spec.delta = 0.2


class TestPerturbationEstimate:
    def test_estimate_contains_unperturbed_feature(self, tiny_network, tiny_inputs):
        spec = PerturbationSpec(delta=0.05)
        estimate = perturbation_estimate(tiny_network, tiny_inputs[0], 4, spec)
        feature = tiny_network.forward_to(4, tiny_inputs[0])
        assert estimate.contains(feature, tolerance=1e-9)

    def test_trivial_spec_gives_point_estimate(self, tiny_network, tiny_inputs):
        spec = PerturbationSpec(delta=0.0)
        estimate = perturbation_estimate(tiny_network, tiny_inputs[1], 3, spec)
        assert estimate.width_sum() == 0.0

    def test_estimate_soundness_on_samples(self, tiny_network, tiny_inputs):
        spec = PerturbationSpec(delta=0.08, layer=0, method="box")
        x = tiny_inputs[2]
        estimate = perturbation_estimate(tiny_network, x, 4, spec)
        rng = np.random.default_rng(0)
        for _ in range(40):
            perturbed = x + rng.uniform(-spec.delta, spec.delta, size=x.shape)
            assert estimate.contains(tiny_network.forward_to(4, perturbed), tolerance=1e-6)

    def test_feature_level_spec(self, tiny_network, tiny_inputs):
        spec = PerturbationSpec(delta=0.1, layer=2)
        estimate = perturbation_estimate(tiny_network, tiny_inputs[3], 4, spec)
        anchor = tiny_network.forward_to(2, tiny_inputs[3])
        rng = np.random.default_rng(1)
        for _ in range(20):
            feature = anchor + rng.uniform(-0.1, 0.1, size=anchor.shape)
            value = tiny_network.forward_from_to(3, 4, feature)
            assert estimate.contains(value, tolerance=1e-6)

    def test_layer_at_or_after_monitored_layer_rejected(self, tiny_network, tiny_inputs):
        with pytest.raises(ConfigurationError):
            perturbation_estimate(
                tiny_network, tiny_inputs[0], 3, PerturbationSpec(delta=0.1, layer=3)
            )

    def test_zonotope_estimate_no_looser_than_box(self, tiny_network, tiny_inputs):
        x = tiny_inputs[4]
        box_estimate = perturbation_estimate(
            tiny_network, x, tiny_network.num_layers, PerturbationSpec(delta=0.05, method="box")
        )
        zonotope_estimate = perturbation_estimate(
            tiny_network,
            x,
            tiny_network.num_layers,
            PerturbationSpec(delta=0.05, method="zonotope"),
        )
        assert zonotope_estimate.width_sum() <= box_estimate.width_sum() + 1e-9


class TestBatchEstimates:
    def test_trivial_spec_batch_matches_features(self, tiny_network, tiny_inputs):
        spec = PerturbationSpec(delta=0.0)
        estimates = collect_estimates(tiny_network, tiny_inputs[:5], 4, spec)
        features = tiny_network.forward_to(4, tiny_inputs[:5])
        assert len(estimates) == 5
        for estimate, feature in zip(estimates, features):
            np.testing.assert_allclose(estimate.low, feature, atol=1e-9)
            np.testing.assert_allclose(estimate.high, feature, atol=1e-9)

    def test_nontrivial_batch_count(self, tiny_network, tiny_inputs):
        spec = PerturbationSpec(delta=0.02)
        estimates = list(
            perturbation_estimates(tiny_network, tiny_inputs[:4], 4, spec)
        )
        assert len(estimates) == 4
        assert all(estimate.width_sum() > 0 for estimate in estimates)
