"""Tests for threshold (cut-point) selection strategies."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, ShapeError
from repro.monitors.thresholds import (
    equal_width_thresholds,
    get_threshold_strategy,
    mean_thresholds,
    median_thresholds,
    percentile_thresholds,
    range_extension_thresholds,
    validate_cut_points,
    zero_thresholds,
)

ALL_STRATEGIES = [
    zero_thresholds,
    mean_thresholds,
    median_thresholds,
    percentile_thresholds,
    equal_width_thresholds,
]


@pytest.fixture
def activations():
    rng = np.random.default_rng(0)
    return rng.normal(loc=[0.0, 2.0, -1.0], scale=[1.0, 0.5, 2.0], size=(200, 3))


class TestShapesAndMonotonicity:
    @pytest.mark.parametrize("strategy", ALL_STRATEGIES, ids=lambda f: f.__name__)
    @pytest.mark.parametrize("num_cuts", [1, 2, 3, 7])
    def test_output_shape(self, strategy, num_cuts, activations):
        cuts = strategy(activations, num_cuts)
        assert cuts.shape == (3, num_cuts)

    @pytest.mark.parametrize("strategy", ALL_STRATEGIES, ids=lambda f: f.__name__)
    def test_rows_strictly_increasing(self, strategy, activations):
        cuts = strategy(activations, 5)
        assert np.all(np.diff(cuts, axis=1) > 0)

    def test_range_extension_rows_increasing(self, activations):
        cuts = range_extension_thresholds(activations, 3)
        assert np.all(np.diff(cuts, axis=1) > 0)

    def test_constant_neuron_does_not_break_monotonicity(self):
        activations = np.ones((50, 2))
        cuts = percentile_thresholds(activations, 3)
        assert np.all(np.diff(cuts, axis=1) > 0)


class TestSemantics:
    def test_zero_thresholds_are_zero(self, activations):
        cuts = zero_thresholds(activations, 1)
        np.testing.assert_array_equal(cuts, np.zeros((3, 1)))

    def test_mean_thresholds_match_column_means(self, activations):
        cuts = mean_thresholds(activations, 1)
        np.testing.assert_allclose(cuts[:, 0], activations.mean(axis=0))

    def test_percentile_single_cut_is_median(self, activations):
        cuts = percentile_thresholds(activations, 1)
        np.testing.assert_allclose(cuts[:, 0], np.median(activations, axis=0), atol=1e-9)

    def test_equal_width_cuts_lie_inside_range(self, activations):
        cuts = equal_width_thresholds(activations, 4)
        low = activations.min(axis=0)
        high = activations.max(axis=0)
        assert np.all(cuts >= low[:, None] - 1e-9)
        assert np.all(cuts <= high[:, None] + 1e-9)

    def test_range_extension_top_two_cuts_are_min_and_max(self, activations):
        cuts = range_extension_thresholds(activations, 3)
        np.testing.assert_allclose(cuts[:, -1], activations.max(axis=0))
        np.testing.assert_allclose(cuts[:, -2], activations.min(axis=0))

    def test_range_extension_margin_widens(self, activations):
        plain = range_extension_thresholds(activations, 3, margin=0.0)
        widened = range_extension_thresholds(activations, 3, margin=0.1)
        assert np.all(widened[:, -1] >= plain[:, -1])
        assert np.all(widened[:, -2] <= plain[:, -2])


class TestValidationAndRegistry:
    def test_invalid_activation_shape_rejected(self):
        with pytest.raises(ShapeError):
            percentile_thresholds(np.zeros(5), 1)
        with pytest.raises(ShapeError):
            mean_thresholds(np.zeros((0, 3)), 1)

    def test_invalid_num_cuts_rejected(self, activations):
        with pytest.raises(ConfigurationError):
            percentile_thresholds(activations, 0)
        with pytest.raises(ConfigurationError):
            range_extension_thresholds(activations, 1)

    def test_validate_cut_points_accepts_single_column(self):
        validate_cut_points(np.zeros((4, 1)))

    def test_validate_cut_points_rejects_non_increasing(self):
        with pytest.raises(ConfigurationError):
            validate_cut_points(np.array([[0.0, 0.0]]))
        with pytest.raises(ShapeError):
            validate_cut_points(np.zeros(3))

    @pytest.mark.parametrize(
        "name",
        ["zero", "sign", "mean", "median", "percentile", "equal_width", "range_extension"],
    )
    def test_registry(self, name, activations):
        strategy = get_threshold_strategy(name)
        cuts = strategy(activations, 3)
        assert cuts.shape == (3, 3)

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ConfigurationError):
            get_threshold_strategy("entropy")
