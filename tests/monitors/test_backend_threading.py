"""Matcher back-end selection threaded through the monitor/serving stack.

The kernel registry lives in ``repro.runtime.kernels``; these tests pin the
*plumbing*: every construction path (constructor kwarg, engine suggestion,
environment default, post-fit re-bind, ensemble / class-conditional /
registry / streaming fan-out, serialisation reload) ends up selecting the
requested kernel without changing a single verdict.
"""

import numpy as np
import pytest

from repro.monitors.boolean import BooleanPatternMonitor
from repro.monitors.builder import ClassConditionalMonitor, MonitorBuilder
from repro.monitors.ensemble import MonitorEnsemble
from repro.monitors.interval import IntervalPatternMonitor
from repro.monitors.minmax import MinMaxMonitor
from repro.monitors.registry import MonitorRegistry
from repro.monitors.serialization import load_monitor, save_monitor
from repro.runtime.engine import BatchScoringEngine
from repro.runtime.kernels import MATCHER_BACKEND_ENV, NumpyMatcherKernel
from repro.service.streaming import StreamingScorer


@pytest.fixture
def probe_inputs(rng):
    return rng.uniform(-2.0, 2.0, size=(40, 6))


def fitted_boolean(network, inputs, **kwargs):
    return BooleanPatternMonitor(network, 1, **kwargs).fit(inputs)


class TestMonitorConstruction:
    def test_constructor_kwarg_selects_backend(self, tiny_network, tiny_inputs):
        monitor = fitted_boolean(tiny_network, tiny_inputs, matcher_backend="sharded")
        assert monitor.patterns.matcher_backend == "sharded"

    def test_interval_constructor_kwarg(self, tiny_network, tiny_inputs):
        monitor = IntervalPatternMonitor(
            tiny_network, 1, num_cuts=2, matcher_backend="sharded"
        ).fit(tiny_inputs)
        assert monitor.patterns.matcher_backend == "sharded"

    def test_backends_agree_on_verdicts(self, tiny_network, tiny_inputs, probe_inputs):
        reference = fitted_boolean(tiny_network, tiny_inputs)
        expected = reference.warn_batch(probe_inputs)
        for backend in ("compiled", "sharded"):
            monitor = fitted_boolean(tiny_network, tiny_inputs, matcher_backend=backend)
            np.testing.assert_array_equal(monitor.warn_batch(probe_inputs), expected)

    def test_set_matcher_backend_rebinds_fitted_patterns(
        self, tiny_network, tiny_inputs, probe_inputs
    ):
        monitor = fitted_boolean(tiny_network, tiny_inputs)
        before = monitor.warn_batch(probe_inputs)
        result = monitor.set_matcher_backend("sharded")
        assert result is monitor
        assert monitor.patterns.matcher_backend == "sharded"
        np.testing.assert_array_equal(monitor.warn_batch(probe_inputs), before)
        # Refits remember the choice.
        monitor.fit(tiny_inputs)
        assert monitor.patterns.matcher_backend == "sharded"

    def test_kernel_instance_accepted(self, tiny_network, tiny_inputs):
        kernel = NumpyMatcherKernel()
        monitor = fitted_boolean(tiny_network, tiny_inputs, matcher_backend=kernel)
        assert monitor.patterns.matcher_backend == "numpy"

    def test_env_default_applies_at_dispatch(
        self, tiny_network, tiny_inputs, probe_inputs, monkeypatch
    ):
        monitor = fitted_boolean(tiny_network, tiny_inputs)
        monkeypatch.setenv(MATCHER_BACKEND_ENV, "sharded")
        # No explicit choice anywhere: the env wins at kernel resolution.
        assert monitor.patterns.matcher_backend == "sharded"
        assert monitor.warn_batch(probe_inputs).shape == (40,)


class TestEngineSuggestion:
    def test_engine_suggestion_adopted_during_bound_fit(self, tiny_network, tiny_inputs):
        engine = BatchScoringEngine(tiny_network, matcher_backend="sharded")
        monitor = BooleanPatternMonitor(tiny_network, 1)
        monitor.bind_engine(engine)
        monitor.fit(tiny_inputs)
        assert monitor.patterns.matcher_backend == "sharded"

    def test_monitor_choice_beats_engine_suggestion(self, tiny_network, tiny_inputs):
        engine = BatchScoringEngine(tiny_network, matcher_backend="sharded")
        monitor = BooleanPatternMonitor(tiny_network, 1, matcher_backend="numpy")
        monitor.bind_engine(engine)
        monitor.fit(tiny_inputs)
        assert monitor.patterns.matcher_backend == "numpy"

    def test_unbound_fit_ignores_engines(self, tiny_network, tiny_inputs, monkeypatch):
        monkeypatch.delenv(MATCHER_BACKEND_ENV, raising=False)
        monitor = fitted_boolean(tiny_network, tiny_inputs)
        assert monitor.matcher_backend_choice() is None
        assert monitor.patterns.matcher_backend == "numpy"


class TestFanOut:
    def test_ensemble_threads_backend_to_members(
        self, tiny_network, tiny_inputs, probe_inputs
    ):
        members = [
            BooleanPatternMonitor(tiny_network, 1),
            IntervalPatternMonitor(tiny_network, 1, num_cuts=2),
            MinMaxMonitor(tiny_network, 1),
        ]
        ensemble = MonitorEnsemble(members, vote="any").fit(tiny_inputs)
        before = ensemble.warn_batch(probe_inputs)
        assert ensemble.set_matcher_backend("sharded") is ensemble
        assert members[0].patterns.matcher_backend == "sharded"
        assert members[1].patterns.matcher_backend == "sharded"
        assert members[2].matcher_backend == "sharded"  # recorded, no patterns
        np.testing.assert_array_equal(ensemble.warn_batch(probe_inputs), before)

    def test_class_conditional_applies_and_records(self, trained_digits):
        network, train, _ = trained_digits
        builder = MonitorBuilder("boolean", 1)
        monitor = ClassConditionalMonitor(builder, num_classes=4).fit(
            network, train.inputs, labels=train.targets
        )
        before = monitor.warn_batch(train.inputs)
        monitor.set_matcher_backend("sharded")
        assert builder.options["matcher_backend"] == "sharded"
        for class_id in range(4):
            fitted = monitor.monitor_for_class(class_id)
            if fitted is not None:
                assert fitted.patterns.matcher_backend == "sharded"
        np.testing.assert_array_equal(monitor.warn_batch(train.inputs), before)

    def test_class_conditional_minmax_skips_builder_option(self, trained_digits):
        network, train, _ = trained_digits
        builder = MonitorBuilder("minmax", 1)
        monitor = ClassConditionalMonitor(builder, num_classes=4).fit(
            network, train.inputs, labels=train.targets
        )
        monitor.set_matcher_backend("sharded")
        # min-max constructors take no matcher kwarg; the option must not
        # leak into later builds.
        assert "matcher_backend" not in builder.options

    def test_registry_reports_switched_members(self, tiny_network, tiny_inputs):
        registry = MonitorRegistry(tiny_network)
        registry.register("bool", fitted_boolean(tiny_network, tiny_inputs))
        registry.register("minmax", MinMaxMonitor(tiny_network, 1).fit(tiny_inputs))
        switched = registry.set_matcher_backend("sharded")
        assert set(switched) == {"bool", "minmax"}
        assert registry.get("bool").patterns.matcher_backend == "sharded"

    def test_streaming_scorer_switches_midstream(
        self, tiny_network, tiny_inputs, probe_inputs
    ):
        with StreamingScorer(tiny_network) as scorer:
            scorer.register("bool", fitted_boolean(tiny_network, tiny_inputs))
            first = [
                future.result(timeout=10).warns
                for future in scorer.submit_many(probe_inputs[:5])
            ]
            switched = scorer.set_matcher_backend("sharded")
            assert switched == ("bool",)
            second = [
                future.result(timeout=10).warns
                for future in scorer.submit_many(probe_inputs[:5])
            ]
        assert first == second


class TestSerializationReload:
    @pytest.mark.parametrize("fmt", [1, 2])
    def test_load_monitor_backend_param(
        self, tiny_network, tiny_inputs, probe_inputs, tmp_path, fmt
    ):
        monitor = fitted_boolean(tiny_network, tiny_inputs)
        expected = monitor.warn_batch(probe_inputs)
        path = save_monitor(monitor, tmp_path / "monitor.npz", format=fmt)
        restored = load_monitor(path, tiny_network, matcher_backend="sharded")
        assert restored.matcher_backend == "sharded"
        assert restored.patterns.matcher_backend == "sharded"
        np.testing.assert_array_equal(restored.warn_batch(probe_inputs), expected)

    def test_load_monitor_default_backend(
        self, tiny_network, tiny_inputs, tmp_path, monkeypatch
    ):
        monkeypatch.delenv(MATCHER_BACKEND_ENV, raising=False)
        monitor = IntervalPatternMonitor(tiny_network, 1, num_cuts=2).fit(tiny_inputs)
        path = save_monitor(monitor, tmp_path / "interval.npz")
        restored = load_monitor(path, tiny_network)
        assert restored.patterns.matcher_backend == "numpy"
