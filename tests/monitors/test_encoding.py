"""Tests for interval-code encodings, including the paper's Figure 1 table."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError, ShapeError
from repro.monitors.encoding import (
    bits_for_cuts,
    code_of_value,
    code_range_of_bound,
    code_sets_of_bounds,
    codes_of_values,
    num_codes,
    paper_code_2bit,
    paper_robust_code_set_2bit,
)


class TestGeneralEncoding:
    def test_code_of_value_half_open_intervals(self):
        cuts = [0.0, 1.0, 2.0]
        assert code_of_value(-5.0, cuts) == 0
        assert code_of_value(0.0, cuts) == 0  # boundary belongs to the lower interval
        assert code_of_value(0.5, cuts) == 1
        assert code_of_value(1.5, cuts) == 2
        assert code_of_value(2.0, cuts) == 2
        assert code_of_value(2.5, cuts) == 3

    def test_codes_of_values_vectorised(self):
        cut_points = np.array([[0.0, 1.0], [10.0, 20.0]])
        values = np.array([[0.5, 15.0], [2.0, 5.0]])
        codes = codes_of_values(values, cut_points)
        np.testing.assert_array_equal(codes, [[1, 1], [2, 0]])

    def test_codes_of_single_vector(self):
        cut_points = np.array([[0.0], [0.0]])
        codes = codes_of_values(np.array([1.0, -1.0]), cut_points)
        np.testing.assert_array_equal(codes, [1, 0])

    def test_codes_shape_mismatch_rejected(self):
        with pytest.raises(ShapeError):
            codes_of_values(np.zeros(3), np.zeros((2, 1)))

    def test_non_increasing_cuts_rejected(self):
        with pytest.raises(ConfigurationError):
            codes_of_values(np.zeros(1), np.array([[1.0, 0.0]]))

    def test_num_codes_and_bits(self):
        assert num_codes(1) == 2
        assert num_codes(3) == 4
        assert bits_for_cuts(1) == 1
        assert bits_for_cuts(3) == 2
        assert bits_for_cuts(7) == 3
        assert bits_for_cuts(4) == 3  # 5 codes need 3 bits
        with pytest.raises(ConfigurationError):
            num_codes(0)

    @settings(max_examples=60, deadline=None)
    @given(value=st.floats(-10, 10), shift=st.floats(0.001, 5))
    def test_code_monotone_in_value_property(self, value, shift):
        cuts = [-2.0, 0.0, 1.0, 3.0]
        assert code_of_value(value, cuts) <= code_of_value(value + shift, cuts)


class TestBoundCodeSets:
    def test_code_range_of_bound(self):
        cuts = [0.0, 1.0, 2.0]
        assert code_range_of_bound(0.5, 1.5, cuts) == (1, 2)
        assert code_range_of_bound(-1.0, 3.0, cuts) == (0, 3)
        assert code_range_of_bound(1.2, 1.3, cuts) == (2, 2)

    def test_code_range_inverted_bound_rejected(self):
        with pytest.raises(ShapeError):
            code_range_of_bound(2.0, 1.0, [0.0])

    def test_code_sets_of_bounds_contiguous(self):
        cut_points = np.array([[0.0, 1.0, 2.0], [0.0, 1.0, 2.0]])
        sets = code_sets_of_bounds(
            np.array([0.5, -1.0]), np.array([2.5, 0.5]), cut_points
        )
        assert sets[0] == frozenset({1, 2, 3})
        assert sets[1] == frozenset({0, 1})

    def test_code_sets_dimension_mismatch_rejected(self):
        with pytest.raises(ShapeError):
            code_sets_of_bounds(np.zeros(2), np.zeros(3), np.zeros((2, 1)))

    @settings(max_examples=60, deadline=None)
    @given(
        low=st.floats(-5, 5),
        width=st.floats(0, 5),
        fraction=st.floats(0, 1),
    )
    def test_robust_set_covers_standard_code_property(self, low, width, fraction):
        """Any value inside [low, high] has its standard code in the robust set."""
        cuts = np.array([[-1.0, 0.5, 2.0]])
        high = low + width
        value = low + fraction * width
        sets = code_sets_of_bounds(np.array([low]), np.array([high]), cuts)
        assert code_of_value(value, cuts[0]) in sets[0]


class TestPaperTwoBitEncoding:
    C1, C2, C3 = 0.0, 1.0, 2.0

    def test_standard_codes_match_section_iiic(self):
        assert paper_code_2bit(3.0, self.C1, self.C2, self.C3) == 3
        assert paper_code_2bit(2.0, self.C1, self.C2, self.C3) == 2
        assert paper_code_2bit(1.0, self.C1, self.C2, self.C3) == 2
        assert paper_code_2bit(0.5, self.C1, self.C2, self.C3) == 1
        assert paper_code_2bit(0.0, self.C1, self.C2, self.C3) == 0
        assert paper_code_2bit(-1.0, self.C1, self.C2, self.C3) == 0

    def test_unordered_cuts_rejected(self):
        with pytest.raises(ConfigurationError):
            paper_code_2bit(0.0, 1.0, 1.0, 2.0)
        with pytest.raises(ConfigurationError):
            paper_robust_code_set_2bit(0.0, 1.0, 2.0, 1.0, 0.0)

    def test_inverted_bound_rejected(self):
        with pytest.raises(ShapeError):
            paper_robust_code_set_2bit(2.0, 1.0, self.C1, self.C2, self.C3)

    @pytest.mark.parametrize(
        "low, high, expected",
        [
            (2.5, 3.0, {3}),                     # l > c3
            (1.0, 2.0, {2}),                     # c3 >= u >= l >= c2
            (0.2, 0.8, {1}),                     # c2 > u >= l > c1
            (-2.0, -0.5, {0}),                   # c1 >= u
            (-0.5, 0.5, {0, 1}),                 # straddles c1
            (0.5, 1.5, {1, 2}),                  # straddles c2
            (1.5, 2.5, {2, 3}),                  # straddles c3
            (-0.5, 1.5, {0, 1, 2}),              # below c1 up to mid band
            (0.5, 2.5, {1, 2, 3}),               # mid band beyond c3
            (-0.5, 2.5, {0, 1, 2, 3}),           # spans everything
        ],
    )
    def test_figure1_ten_cases(self, low, high, expected):
        result = paper_robust_code_set_2bit(low, high, self.C1, self.C2, self.C3)
        assert result == frozenset(expected)

    @settings(max_examples=100, deadline=None)
    @given(
        low=st.floats(-3, 4),
        width=st.floats(0, 6),
        fraction=st.floats(0, 1),
    )
    def test_paper_robust_set_covers_paper_code_property(self, low, width, fraction):
        """Figure 1 soundness: the robust set contains the code of every value in the bound."""
        high = low + width
        value = low + fraction * width
        robust = paper_robust_code_set_2bit(low, high, self.C1, self.C2, self.C3)
        assert paper_code_2bit(value, self.C1, self.C2, self.C3) in robust

    def test_degenerate_bound_matches_standard_code(self):
        for value in (-1.0, 0.0, 0.3, 1.0, 1.7, 2.0, 2.4):
            robust = paper_robust_code_set_2bit(value, value, self.C1, self.C2, self.C3)
            assert robust == frozenset({paper_code_2bit(value, self.C1, self.C2, self.C3)})
