"""Property-based save→load round-trips and packed-mirror cold starts.

Two guarantees are pinned here:

* **bit-for-bit behaviour**: for every monitor family, any fitted monitor
  saved and reloaded produces identical ``warn_batch`` verdicts on arbitrary
  probe batches — in both the packed (format 2) and legacy word-list
  (format 1) archive formats, with identical pattern-set cardinality;
* **fast cold start**: a format-2 load restores the vectorised scoring path
  without building the BDD (materialisation is observable and deferred), the
  packed robust-interval artefact avoids the Cartesian word expansion on
  disk, and — in the slow tier — loads measurably faster than the legacy
  path.
"""

import time

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.monitors.boolean import BooleanPatternMonitor, RobustBooleanPatternMonitor
from repro.monitors.interval import (
    IntervalPatternMonitor,
    RobustIntervalPatternMonitor,
)
from repro.monitors.minmax import MinMaxMonitor, RobustMinMaxMonitor
from repro.monitors.perturbation import PerturbationSpec
from repro.monitors.serialization import load_monitor, save_monitor

FAMILIES = [
    "minmax",
    "robust_minmax",
    "boolean",
    "robust_boolean",
    "interval",
    "robust_interval",
]


def _build(family, network, layer, delta, num_cuts, hamming):
    spec = PerturbationSpec(delta=delta, layer=0, method="box")
    if family == "minmax":
        return MinMaxMonitor(network, layer)
    if family == "robust_minmax":
        return RobustMinMaxMonitor(network, layer, spec)
    if family == "boolean":
        return BooleanPatternMonitor(
            network, layer, thresholds="mean", hamming_tolerance=hamming
        )
    if family == "robust_boolean":
        return RobustBooleanPatternMonitor(network, layer, spec, thresholds="mean")
    if family == "interval":
        return IntervalPatternMonitor(network, layer, num_cuts=num_cuts)
    return RobustIntervalPatternMonitor(network, layer, spec, num_cuts=num_cuts)


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(
    family=st.sampled_from(FAMILIES),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    num_train=st.integers(min_value=1, max_value=32),
    delta=st.sampled_from([0.01, 0.05, 0.2]),
    num_cuts=st.integers(min_value=1, max_value=3),
    hamming=st.integers(min_value=0, max_value=1),
    fmt=st.sampled_from([1, 2]),
)
def test_roundtrip_preserves_warn_batch_bit_for_bit(
    tiny_network, tmp_path, family, seed, num_train, delta, num_cuts, hamming, fmt
):
    if family == "robust_interval":
        # Keep the format-1 comparison tractable: the legacy archive
        # enumerates the Cartesian code-range expansion, which grows
        # exponentially with per-word ambiguity.
        num_cuts = 1
        delta = min(delta, 0.05)
    rng = np.random.default_rng(seed)
    train = rng.uniform(-1.0, 1.0, size=(num_train, 6))
    probes = rng.uniform(-2.5, 2.5, size=(64, 6))
    monitor = _build(family, tiny_network, 4, delta, num_cuts, hamming).fit(train)
    path = save_monitor(monitor, tmp_path / f"{family}_{fmt}_{seed}.npz", format=fmt)
    restored = load_monitor(path, tiny_network)
    np.testing.assert_array_equal(
        restored.warn_batch(probes), monitor.warn_batch(probes)
    )
    # Single-sample wrappers agree too (they share the batched kernel).
    assert restored.warn(probes[0]) == monitor.warn(probes[0])
    if hasattr(monitor, "patterns"):
        assert restored.patterns.cardinality() == monitor.patterns.cardinality()


class TestPackedColdStart:
    def test_format2_load_defers_the_bdd(self, tiny_network, tiny_inputs, tmp_path):
        spec = PerturbationSpec(delta=0.05, layer=0, method="box")
        monitor = RobustBooleanPatternMonitor(
            tiny_network, 4, spec, thresholds="mean"
        ).fit(tiny_inputs)
        path = save_monitor(monitor, tmp_path / "packed.npz")
        restored = load_monitor(path, tiny_network)
        assert not restored.patterns.bdd_materialised
        # The whole scoring path runs off the packed mirror: still no BDD.
        probes = np.random.default_rng(3).uniform(-2.0, 2.0, size=(40, 6))
        np.testing.assert_array_equal(
            restored.warn_batch(probes), monitor.warn_batch(probes)
        )
        assert not restored.patterns.bdd_materialised
        # First BDD-dependent operation materialises it, with the same set.
        assert restored.patterns.cardinality() == monitor.patterns.cardinality()
        assert restored.patterns.bdd_materialised

    def test_packed_archive_avoids_word_expansion(
        self, tiny_network, tiny_inputs, tmp_path
    ):
        """The robust-interval artefact stores ranges, not their product."""
        spec = PerturbationSpec(delta=0.1, layer=0, method="box")
        monitor = RobustIntervalPatternMonitor(
            tiny_network, 4, spec, num_cuts=3
        ).fit(tiny_inputs)
        packed = save_monitor(monitor, tmp_path / "packed.npz", format=2)
        legacy = save_monitor(monitor, tmp_path / "legacy.npz", format=1)
        assert monitor.patterns.cardinality() > monitor.num_training_samples
        assert packed.stat().st_size < legacy.stat().st_size

    def test_update_after_packed_load_keeps_both_representations(
        self, tiny_network, tiny_inputs, tmp_path, rng
    ):
        """Inserting into a lazily restored set extends the mirror only.

        Incremental refit of a deployed monitor must stay on the packed
        mirror — the BDD is replayed (including the new insertions) only
        when a BDD-dependent operation actually asks for it.
        """
        monitor = BooleanPatternMonitor(tiny_network, 4, thresholds="mean").fit(
            tiny_inputs
        )
        path = save_monitor(monitor, tmp_path / "m.npz")
        restored = load_monitor(path, tiny_network)
        assert not restored.patterns.bdd_materialised
        extra = rng.uniform(-1.0, 1.0, size=(8, 6))
        monitor.update(extra)
        restored.update(extra)
        assert not restored.patterns.bdd_materialised
        probes = rng.uniform(-2.0, 2.0, size=(40, 6))
        np.testing.assert_array_equal(
            restored.warn_batch(probes), monitor.warn_batch(probes)
        )
        assert not restored.patterns.bdd_materialised
        # The late replay folds the deferred image *and* the new insertions
        # into one BDD that agrees with the eagerly maintained one.
        assert restored.patterns.cardinality() == monitor.patterns.cardinality()
        assert restored.patterns.bdd_materialised

    @pytest.mark.slow
    def test_cold_start_speedup(self, tmp_path):
        """Packed load beats the legacy word-list rebuild by a wide margin.

        A Boolean monitor on a 24-neuron layer fitted on 4000 continuous
        samples stores ~4000 distinct words; the legacy load replays them
        into the BDD one cube at a time, while the packed load restores the
        matcher arrays and defers the BDD entirely.  The margin is large
        (>50x locally), so a 2x assertion is safe on noisy CI machines.
        """
        from repro.nn.network import mlp

        network = mlp(8, [32, 24], 3, activation="relu", seed=13)
        rng = np.random.default_rng(5)
        train = rng.uniform(-1.0, 1.0, size=(4000, 8))
        monitor = BooleanPatternMonitor(network, 4, thresholds="mean").fit(train)
        packed_path = save_monitor(monitor, tmp_path / "packed.npz", format=2)
        legacy_path = save_monitor(monitor, tmp_path / "legacy.npz", format=1)

        def best_of(load):
            times = []
            for _ in range(3):
                start = time.perf_counter()
                load()
                times.append(time.perf_counter() - start)
            return min(times)

        legacy_time = best_of(lambda: load_monitor(legacy_path, network))
        packed_time = best_of(lambda: load_monitor(packed_path, network))
        probes = rng.uniform(-2.0, 2.0, size=(32, 8))
        np.testing.assert_array_equal(
            load_monitor(packed_path, network).warn_batch(probes),
            load_monitor(legacy_path, network).warn_batch(probes),
        )
        assert packed_time < legacy_time / 2.0, (
            f"packed load {packed_time * 1e3:.1f} ms not faster than "
            f"legacy {legacy_time * 1e3:.1f} ms by 2x"
        )
