"""Tests for quantitative (score-based) monitor wrappers."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, NotFittedError
from repro.monitors.boolean import BooleanPatternMonitor
from repro.monitors.interval import IntervalPatternMonitor
from repro.monitors.minmax import MinMaxMonitor, RobustMinMaxMonitor
from repro.monitors.perturbation import PerturbationSpec
from repro.monitors.quantitative import EnvelopeDistanceMonitor, PatternDistanceMonitor


class TestEnvelopeDistanceMonitor:
    @pytest.fixture
    def wrapped(self, tiny_network, tiny_inputs):
        return EnvelopeDistanceMonitor(MinMaxMonitor(tiny_network, 4).fit(tiny_inputs))

    def test_training_inputs_have_zero_score(self, wrapped, tiny_inputs):
        scores = wrapped.score_batch(tiny_inputs)
        np.testing.assert_allclose(scores, 0.0, atol=1e-9)
        assert not np.any(wrapped.warn_batch(tiny_inputs))

    def test_far_inputs_have_positive_score(self, wrapped, tiny_network):
        far = np.full(tiny_network.input_dim, 50.0)
        assert wrapped.score(far) > 0.0
        assert wrapped.warn(far)

    def test_score_grows_with_distance(self, wrapped, tiny_network):
        near = np.full(tiny_network.input_dim, 2.0)
        far = np.full(tiny_network.input_dim, 20.0)
        assert wrapped.score(far) >= wrapped.score(near)

    def test_threshold_controls_warning(self, tiny_network, tiny_inputs):
        monitor = MinMaxMonitor(tiny_network, 4).fit(tiny_inputs)
        strict = EnvelopeDistanceMonitor(monitor, threshold=0.0)
        lenient = EnvelopeDistanceMonitor(monitor, threshold=100.0)
        far = np.full(tiny_network.input_dim, 50.0)
        assert strict.warn(far)
        assert not lenient.warn(far)

    def test_works_with_robust_monitor(self, tiny_network, tiny_inputs):
        robust = RobustMinMaxMonitor(
            tiny_network, 4, PerturbationSpec(delta=0.05)
        ).fit(tiny_inputs)
        quantitative = EnvelopeDistanceMonitor(robust)
        rng = np.random.default_rng(0)
        perturbed = tiny_inputs[0] + rng.uniform(-0.05, 0.05, size=tiny_inputs[0].shape)
        assert quantitative.score(perturbed) == 0.0

    def test_verdict_details_contain_score(self, wrapped, tiny_inputs):
        verdict = wrapped.verdict(tiny_inputs[0])
        assert verdict.details["score"] == 0.0
        assert not verdict.warn

    def test_warning_rate(self, wrapped, tiny_inputs, tiny_network):
        mixed = np.vstack([tiny_inputs[:5], np.full((5, tiny_network.input_dim), 60.0)])
        assert wrapped.warning_rate(mixed) == pytest.approx(0.5)

    def test_requires_minmax_monitor(self, tiny_network):
        with pytest.raises(ConfigurationError):
            EnvelopeDistanceMonitor(BooleanPatternMonitor(tiny_network, 4))

    def test_negative_threshold_rejected(self, tiny_network):
        with pytest.raises(ConfigurationError):
            EnvelopeDistanceMonitor(MinMaxMonitor(tiny_network, 4), threshold=-1.0)

    def test_unfitted_monitor_raises(self, tiny_network, tiny_inputs):
        quantitative = EnvelopeDistanceMonitor(MinMaxMonitor(tiny_network, 4))
        with pytest.raises(NotFittedError):
            quantitative.score(tiny_inputs[0])

    def test_describe(self, wrapped):
        info = wrapped.describe()
        assert info["kind"] == "envelope_distance"
        assert info["wrapped"]["kind"] == "minmax"


class TestPatternDistanceMonitor:
    @pytest.fixture
    def wrapped(self, tiny_network, tiny_inputs):
        monitor = BooleanPatternMonitor(tiny_network, 4, thresholds="mean").fit(tiny_inputs)
        return PatternDistanceMonitor(monitor)

    def test_training_inputs_have_zero_distance(self, wrapped, tiny_inputs):
        assert np.all(wrapped.score_batch(tiny_inputs) == 0.0)
        assert not np.any(wrapped.warn_batch(tiny_inputs))

    def test_distance_bounded_by_word_length(self, wrapped, tiny_network):
        far = np.full(tiny_network.input_dim, -50.0)
        distance = wrapped.distance(far)
        assert 0 <= distance <= wrapped.monitor.num_monitored_neurons + 1
        assert 0.0 <= wrapped.score(far) <= 1.5

    def test_score_consistent_with_binary_monitor(self, wrapped, tiny_network, rng):
        probes = rng.uniform(-4.0, 4.0, size=(12, tiny_network.input_dim))
        for probe in probes:
            binary_warn = wrapped.monitor.warn(probe)
            assert (wrapped.score(probe) > 0.0) == binary_warn

    def test_threshold_relaxes_warnings(self, tiny_network, tiny_inputs, rng):
        monitor = BooleanPatternMonitor(tiny_network, 4, thresholds="mean").fit(tiny_inputs[:12])
        strict = PatternDistanceMonitor(monitor, threshold=0.0)
        lenient = PatternDistanceMonitor(monitor, threshold=0.2)
        probes = rng.uniform(-2.0, 2.0, size=(15, tiny_network.input_dim))
        assert lenient.warning_rate(probes) <= strict.warning_rate(probes)

    def test_max_distance_caps_search(self, tiny_network, tiny_inputs):
        monitor = BooleanPatternMonitor(tiny_network, 4, thresholds="mean").fit(tiny_inputs)
        capped = PatternDistanceMonitor(monitor, max_distance=1)
        far = np.full(tiny_network.input_dim, -50.0)
        assert capped.distance(far) <= 2

    def test_works_with_interval_monitor(self, tiny_network, tiny_inputs):
        monitor = IntervalPatternMonitor(tiny_network, 4, num_cuts=3).fit(tiny_inputs)
        quantitative = PatternDistanceMonitor(monitor)
        assert quantitative.score(tiny_inputs[0]) == 0.0

    def test_requires_pattern_monitor(self, tiny_network):
        with pytest.raises(ConfigurationError):
            PatternDistanceMonitor(MinMaxMonitor(tiny_network, 4))

    def test_unfitted_monitor_raises(self, tiny_network, tiny_inputs):
        quantitative = PatternDistanceMonitor(BooleanPatternMonitor(tiny_network, 4))
        with pytest.raises(NotFittedError):
            quantitative.score(tiny_inputs[0])

    def test_describe(self, wrapped):
        info = wrapped.describe()
        assert info["kind"] == "pattern_distance"
        assert info["wrapped"]["kind"] == "boolean_pattern"
