"""Tests for multi-bit interval pattern monitors (standard and robust)."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, ShapeError
from repro.monitors.interval import IntervalPatternMonitor, RobustIntervalPatternMonitor
from repro.monitors.perturbation import PerturbationSpec


class TestStandardInterval:
    def test_training_inputs_never_warn(self, tiny_network, tiny_inputs):
        monitor = IntervalPatternMonitor(tiny_network, 4, num_cuts=3).fit(tiny_inputs)
        assert not np.any(monitor.warn_batch(tiny_inputs))

    def test_bits_per_neuron(self, tiny_network):
        assert IntervalPatternMonitor(tiny_network, 4, num_cuts=1).bits_per_neuron == 1
        assert IntervalPatternMonitor(tiny_network, 4, num_cuts=3).bits_per_neuron == 2
        assert IntervalPatternMonitor(tiny_network, 4, num_cuts=7).bits_per_neuron == 3

    def test_far_input_warns_with_fine_cuts(self, tiny_network, tiny_inputs):
        monitor = IntervalPatternMonitor(
            tiny_network, 4, num_cuts=7, cut_strategy="percentile"
        ).fit(tiny_inputs)
        verdict = monitor.verdict(np.full(tiny_network.input_dim, 80.0))
        codes = list(verdict.details["codes"])
        assert verdict.warn == (not monitor.patterns.contains(codes))

    def test_explicit_cut_points(self, tiny_network, tiny_inputs):
        width = tiny_network.layer_output_dim(4)
        cuts = np.tile(np.array([[0.0, 1.0, 2.0]]), (width, 1))
        monitor = IntervalPatternMonitor(
            tiny_network, 4, num_cuts=3, cut_points=cuts
        ).fit(tiny_inputs)
        np.testing.assert_array_equal(monitor.cut_points, cuts)

    def test_wrong_cut_point_shape_rejected(self, tiny_network, tiny_inputs):
        monitor = IntervalPatternMonitor(
            tiny_network, 4, num_cuts=3, cut_points=np.zeros((2, 3)) + [[0, 1, 2], [0, 1, 2]]
        )
        with pytest.raises(ShapeError):
            monitor.fit(tiny_inputs)

    def test_invalid_num_cuts_rejected(self, tiny_network):
        with pytest.raises(ConfigurationError):
            IntervalPatternMonitor(tiny_network, 4, num_cuts=0)

    def test_more_cuts_give_finer_abstraction(self, tiny_network, tiny_inputs):
        """Finer granularity means at least as many distinct stored patterns."""
        coarse = IntervalPatternMonitor(tiny_network, 4, num_cuts=1).fit(tiny_inputs)
        fine = IntervalPatternMonitor(tiny_network, 4, num_cuts=7).fit(tiny_inputs)
        assert fine.pattern_count() >= coarse.pattern_count()

    def test_range_extension_generalises_minmax(self, tiny_network, tiny_inputs):
        """With min/max-derived cuts, warnings coincide with envelope violations."""
        from repro.monitors.minmax import MinMaxMonitor

        minmax = MinMaxMonitor(tiny_network, 4).fit(tiny_inputs)
        interval = IntervalPatternMonitor(
            tiny_network, 4, num_cuts=3, cut_strategy="range_extension"
        ).fit(tiny_inputs)
        # Training data is accepted by both.
        assert not np.any(interval.warn_batch(tiny_inputs))
        # A probe far outside the envelope must violate the interval monitor too.
        far = np.full(tiny_network.input_dim, 100.0)
        assert minmax.warn(far)
        assert interval.warn(far)

    def test_update(self, tiny_network, tiny_inputs):
        monitor = IntervalPatternMonitor(tiny_network, 4, num_cuts=3).fit(tiny_inputs[:10])
        monitor.update(tiny_inputs[10:])
        assert not np.any(monitor.warn_batch(tiny_inputs))

    def test_describe(self, tiny_network, tiny_inputs):
        monitor = IntervalPatternMonitor(tiny_network, 4, num_cuts=3).fit(tiny_inputs)
        info = monitor.describe()
        assert info["num_cuts"] == 3
        assert info["bits_per_neuron"] == 2
        assert info["pattern_count"] >= 1


class TestRobustInterval:
    def test_training_inputs_never_warn(self, tiny_network, tiny_inputs):
        monitor = RobustIntervalPatternMonitor(
            tiny_network, 4, PerturbationSpec(delta=0.05), num_cuts=3
        ).fit(tiny_inputs)
        assert not np.any(monitor.warn_batch(tiny_inputs))

    def test_lemma1_perturbed_training_inputs_never_warn(self, tiny_network, tiny_inputs):
        delta = 0.03
        monitor = RobustIntervalPatternMonitor(
            tiny_network, 4, PerturbationSpec(delta=delta), num_cuts=3
        ).fit(tiny_inputs)
        rng = np.random.default_rng(3)
        for x in tiny_inputs[:8]:
            for _ in range(8):
                perturbed = x + rng.uniform(-delta, delta, size=x.shape)
                assert not monitor.warn(perturbed)

    def test_robust_set_contains_standard_set(self, tiny_network, tiny_inputs):
        standard = IntervalPatternMonitor(tiny_network, 4, num_cuts=3).fit(tiny_inputs)
        robust = RobustIntervalPatternMonitor(
            tiny_network,
            4,
            PerturbationSpec(delta=0.05),
            num_cuts=3,
            cut_points=standard.cut_points,
        ).fit(tiny_inputs)
        for word in standard.patterns.iterate_words():
            assert robust.patterns.contains(list(word))

    def test_zero_delta_matches_standard(self, tiny_network, tiny_inputs):
        standard = IntervalPatternMonitor(tiny_network, 4, num_cuts=3).fit(tiny_inputs)
        robust = RobustIntervalPatternMonitor(
            tiny_network,
            4,
            PerturbationSpec(delta=0.0),
            num_cuts=3,
            cut_points=standard.cut_points,
        ).fit(tiny_inputs)
        assert robust.pattern_count() == standard.pattern_count()

    def test_ambiguity_grows_with_delta(self, tiny_network, tiny_inputs):
        small = RobustIntervalPatternMonitor(
            tiny_network, 4, PerturbationSpec(delta=0.01), num_cuts=3
        ).fit(tiny_inputs)
        large = RobustIntervalPatternMonitor(
            tiny_network, 4, PerturbationSpec(delta=0.5), num_cuts=3
        ).fit(tiny_inputs)
        assert (
            0.0
            <= small.ambiguous_position_fraction
            <= large.ambiguous_position_fraction
            <= 1.0
        )

    def test_pattern_count_grows_with_delta(self, tiny_network, tiny_inputs):
        standard = IntervalPatternMonitor(tiny_network, 4, num_cuts=3).fit(tiny_inputs)
        robust = RobustIntervalPatternMonitor(
            tiny_network,
            4,
            PerturbationSpec(delta=0.2),
            num_cuts=3,
            cut_points=standard.cut_points,
        ).fit(tiny_inputs)
        assert robust.pattern_count() >= standard.pattern_count()

    def test_three_bit_robust_monitor(self, tiny_network, tiny_inputs):
        monitor = RobustIntervalPatternMonitor(
            tiny_network, 4, PerturbationSpec(delta=0.05), num_cuts=7
        ).fit(tiny_inputs)
        assert monitor.bits_per_neuron == 3
        assert not np.any(monitor.warn_batch(tiny_inputs))

    def test_perturbation_layer_validation(self, tiny_network):
        with pytest.raises(ConfigurationError):
            RobustIntervalPatternMonitor(
                tiny_network, 3, PerturbationSpec(delta=0.1, layer=4)
            )

    def test_describe_includes_ambiguity(self, tiny_network, tiny_inputs):
        monitor = RobustIntervalPatternMonitor(
            tiny_network, 4, PerturbationSpec(delta=0.05), num_cuts=3
        ).fit(tiny_inputs)
        info = monitor.describe()
        assert info["kind"] == "robust_interval_pattern"
        assert 0.0 <= info["ambiguous_position_fraction"] <= 1.0

    def test_update(self, tiny_network, tiny_inputs):
        monitor = RobustIntervalPatternMonitor(
            tiny_network, 4, PerturbationSpec(delta=0.02), num_cuts=3
        ).fit(tiny_inputs[:10])
        monitor.update(tiny_inputs[10:])
        assert monitor.num_training_samples == tiny_inputs.shape[0]
        assert not np.any(monitor.warn_batch(tiny_inputs))
