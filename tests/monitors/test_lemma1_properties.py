"""Property-based tests of the paper's formal guarantees.

Lemma 1: for a robust monitor ``M_{⟨G, k, k_p, Δ⟩}``, if the monitor warns on
an operational input ``v_op`` then no training input ``v_tr`` satisfies
``|G^{k_p}_j(v_op) − G^{k_p}_j(v_tr)| ≤ Δ`` for every ``j``.

The contrapositive — an operational input that *is* Δ-close (at layer ``k_p``)
to some training input never triggers a warning — is what the tests below
verify for every monitor family and every propagation back-end, using
hypothesis to explore perturbation directions and magnitudes.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.monitors.boolean import RobustBooleanPatternMonitor
from repro.monitors.interval import RobustIntervalPatternMonitor
from repro.monitors.minmax import RobustMinMaxMonitor
from repro.monitors.perturbation import PerturbationSpec

DELTA = 0.05

COMMON_SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)


def _fit_monitor(family, network, inputs, spec):
    if family == "minmax":
        return RobustMinMaxMonitor(network, 4, spec).fit(inputs)
    if family == "boolean":
        return RobustBooleanPatternMonitor(network, 4, spec, thresholds="mean").fit(inputs)
    return RobustIntervalPatternMonitor(network, 4, spec, num_cuts=3).fit(inputs)


@pytest.fixture(scope="module")
def monitors(tiny_network, tiny_inputs):
    """All three robust monitor families fitted with the same Δ at k_p = 0."""
    spec = PerturbationSpec(delta=DELTA, layer=0, method="box")
    return {
        family: _fit_monitor(family, tiny_network, tiny_inputs, spec)
        for family in ("minmax", "boolean", "interval")
    }


@pytest.fixture(scope="module")
def feature_level_monitors(tiny_network, tiny_inputs):
    """Robust monitors with the perturbation applied at a hidden layer k_p = 2."""
    spec = PerturbationSpec(delta=DELTA, layer=2, method="box")
    return {
        family: _fit_monitor(family, tiny_network, tiny_inputs, spec)
        for family in ("minmax", "boolean", "interval")
    }


class TestLemma1InputLevel:
    @pytest.mark.parametrize("family", ["minmax", "boolean", "interval"])
    @COMMON_SETTINGS
    @given(
        sample_index=st.integers(0, 23),
        seed=st.integers(0, 10_000),
        scale=st.floats(0.0, 1.0),
    )
    def test_delta_close_inputs_never_warn(
        self, monitors, tiny_inputs, family, sample_index, seed, scale
    ):
        """Contrapositive of Lemma 1 with k_p = 0 (input-level closeness)."""
        monitor = monitors[family]
        anchor = tiny_inputs[sample_index]
        rng = np.random.default_rng(seed)
        perturbation = rng.uniform(-1.0, 1.0, size=anchor.shape) * DELTA * scale
        operational = anchor + perturbation
        assert not monitor.warn(operational)

    @pytest.mark.parametrize("family", ["minmax", "boolean", "interval"])
    @COMMON_SETTINGS
    @given(sample_index=st.integers(0, 23), seed=st.integers(0, 10_000))
    def test_worst_case_corner_perturbations_never_warn(
        self, monitors, tiny_inputs, family, sample_index, seed
    ):
        """Corner perturbations (every coordinate at ±Δ) are the hardest case."""
        monitor = monitors[family]
        anchor = tiny_inputs[sample_index]
        rng = np.random.default_rng(seed)
        signs = rng.choice([-1.0, 1.0], size=anchor.shape)
        operational = anchor + DELTA * signs
        assert not monitor.warn(operational)

    @pytest.mark.parametrize("family", ["minmax", "boolean", "interval"])
    def test_lemma1_statement_direct(self, monitors, tiny_network, tiny_inputs, family):
        """Direct form: whenever the monitor warns, no training point is Δ-close."""
        monitor = monitors[family]
        rng = np.random.default_rng(42)
        probes = rng.uniform(-2.0, 2.0, size=(40, tiny_network.input_dim))
        train_features = tiny_inputs  # k_p = 0: closeness measured on raw inputs
        for probe in probes:
            if not monitor.warn(probe):
                continue
            distances = np.max(np.abs(train_features - probe[None, :]), axis=1)
            assert np.all(distances > DELTA), (
                "monitor warned although a training input is Δ-close — Lemma 1 violated"
            )


class TestLemma1FeatureLevel:
    @pytest.mark.parametrize("family", ["minmax", "boolean", "interval"])
    @COMMON_SETTINGS
    @given(sample_index=st.integers(0, 23), seed=st.integers(0, 5_000))
    def test_feature_level_delta_closeness(
        self, feature_level_monitors, tiny_network, tiny_inputs, family, sample_index, seed
    ):
        """Perturbation applied directly at layer k_p = 2 never triggers a warning.

        The operational input here is synthetic: we perturb the layer-2
        feature of a training input and push it through the remaining layers
        manually, then query the monitor's internals the same way its
        ``warn`` path would.
        """
        monitor = feature_level_monitors[family]
        anchor_feature = tiny_network.forward_to(2, tiny_inputs[sample_index])
        rng = np.random.default_rng(seed)
        perturbed_feature = anchor_feature + rng.uniform(
            -DELTA, DELTA, size=anchor_feature.shape
        )
        monitored_value = tiny_network.forward_from_to(3, 4, perturbed_feature)
        monitored_value = monitored_value[monitor.neuron_indices]
        if family == "minmax":
            ok = np.all(monitored_value >= monitor.lower - 1e-9) and np.all(
                monitored_value <= monitor.upper + 1e-9
            )
            assert ok
        elif family == "boolean":
            word = monitor._word(monitored_value)
            assert monitor.patterns.contains(word)
        else:
            codes = monitor._codes(monitored_value)
            assert monitor.patterns.contains(codes)


class TestBackendsAgreeOnGuarantee:
    @pytest.mark.parametrize("method", ["box", "zonotope", "star"])
    def test_every_backend_satisfies_lemma1(self, tiny_network, tiny_inputs, method):
        spec = PerturbationSpec(delta=0.04, layer=0, method=method)
        monitor = RobustMinMaxMonitor(tiny_network, 4, spec).fit(tiny_inputs[:10])
        rng = np.random.default_rng(7)
        for anchor in tiny_inputs[:10]:
            for _ in range(5):
                operational = anchor + rng.uniform(-0.04, 0.04, size=anchor.shape)
                assert not monitor.warn(operational)

    @pytest.mark.parametrize("method", ["box", "zonotope", "star"])
    def test_robust_envelope_contains_standard_envelope(
        self, tiny_network, tiny_inputs, method
    ):
        """Every back-end's robust envelope contains the Δ = 0 envelope."""
        from repro.monitors.minmax import MinMaxMonitor

        standard = MinMaxMonitor(tiny_network, 4).fit(tiny_inputs[:10])
        robust = RobustMinMaxMonitor(
            tiny_network, 4, PerturbationSpec(delta=0.05, method=method)
        ).fit(tiny_inputs[:10])
        assert np.all(robust.lower <= standard.lower + 1e-9)
        assert np.all(robust.upper >= standard.upper - 1e-9)
