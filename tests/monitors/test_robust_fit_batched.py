"""Robust fits through the batched symbolic path vs the per-sample loop.

The acceptance bar of the batched-propagation refactor: every robust monitor
family must produce *identical* abstractions whether its perturbation
estimates come from the batched back-ends
(:func:`~repro.monitors.perturbation.collect_bound_arrays`) or from the
original one-row-at-a-time reference
(:func:`~repro.monitors.perturbation.collect_bound_arrays_loop`).  Pattern
monitors are compared word-for-word (the codec's scale-relative tolerance
absorbs the sub-ulp differences of batched BLAS kernels); the min-max
envelope is compared at a float-round-off tolerance.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.monitors.boolean import RobustBooleanPatternMonitor
from repro.monitors.builder import ClassConditionalMonitor, MonitorBuilder
from repro.monitors.interval import RobustIntervalPatternMonitor
from repro.monitors.minmax import RobustMinMaxMonitor
from repro.monitors.perturbation import (
    PerturbationSpec,
    collect_bound_arrays,
    collect_bound_arrays_loop,
)
from repro.runtime.engine import BatchScoringEngine

MONITORED_LAYER = 4
DELTA = 0.05


def use_loop_path(monitor) -> None:
    """Route one monitor instance's robust fit through the reference loop."""
    monitor._perturbation_bound_arrays = (
        lambda inputs, spec: collect_bound_arrays_loop(
            monitor.network, inputs, monitor.layer_index, spec
        )
    )


def pattern_words(monitor):
    return sorted(monitor.patterns.iterate_words())


@pytest.fixture(scope="module")
def specs():
    return {
        "box": PerturbationSpec(delta=DELTA, layer=0, method="box"),
        "zonotope": PerturbationSpec(delta=DELTA, layer=0, method="zonotope"),
        "feature_box": PerturbationSpec(delta=DELTA, layer=2, method="box"),
    }


class TestCollectBoundArrays:
    @pytest.mark.parametrize("method", ["box", "zonotope"])
    def test_batched_matches_loop(self, tiny_network, tiny_inputs, method):
        spec = PerturbationSpec(delta=DELTA, layer=0, method=method)
        batched = collect_bound_arrays(
            tiny_network, tiny_inputs, MONITORED_LAYER, spec
        )
        loop = collect_bound_arrays_loop(
            tiny_network, tiny_inputs, MONITORED_LAYER, spec
        )
        np.testing.assert_allclose(batched[0], loop[0], rtol=1e-10, atol=1e-12)
        np.testing.assert_allclose(batched[1], loop[1], rtol=1e-10, atol=1e-12)

    def test_star_batched_matches_loop(self, tiny_network, tiny_inputs):
        # Star bounds come from LP solves once unstable ReLUs constrain the
        # polytopes, so the lockstep/stacked path is pinned at the LP-tier
        # tolerance (closed-form-only walks are pinned bitwise elsewhere).
        spec = PerturbationSpec(delta=0.02, layer=0, method="star")
        subset = tiny_inputs[:6]
        batched = collect_bound_arrays(tiny_network, subset, MONITORED_LAYER, spec)
        loop = collect_bound_arrays_loop(tiny_network, subset, MONITORED_LAYER, spec)
        np.testing.assert_allclose(batched[0], loop[0], rtol=0.0, atol=1e-6)
        np.testing.assert_allclose(batched[1], loop[1], rtol=0.0, atol=1e-6)

    def test_trivial_spec_is_one_forward_pass(self, tiny_network, tiny_inputs):
        spec = PerturbationSpec()
        lows, highs = collect_bound_arrays(
            tiny_network, tiny_inputs, MONITORED_LAYER, spec
        )
        features = np.atleast_2d(tiny_network.forward_to(MONITORED_LAYER, tiny_inputs))
        np.testing.assert_array_equal(lows, features)
        np.testing.assert_array_equal(highs, features)


class TestRobustFitEquivalence:
    @pytest.mark.parametrize("spec_name", ["box", "zonotope", "feature_box"])
    def test_minmax_envelope_matches_loop_path(
        self, tiny_network, tiny_inputs, specs, spec_name
    ):
        spec = specs[spec_name]
        batched = RobustMinMaxMonitor(tiny_network, MONITORED_LAYER, spec)
        batched.fit(tiny_inputs)
        loop = RobustMinMaxMonitor(tiny_network, MONITORED_LAYER, spec)
        use_loop_path(loop)
        loop.fit(tiny_inputs)
        np.testing.assert_allclose(batched.lower, loop.lower, rtol=1e-10, atol=1e-12)
        np.testing.assert_allclose(batched.upper, loop.upper, rtol=1e-10, atol=1e-12)

    @pytest.mark.parametrize("spec_name", ["box", "zonotope", "feature_box"])
    def test_boolean_patterns_match_loop_path(
        self, tiny_network, tiny_inputs, specs, spec_name
    ):
        spec = specs[spec_name]
        batched = RobustBooleanPatternMonitor(tiny_network, MONITORED_LAYER, spec)
        batched.fit(tiny_inputs)
        loop = RobustBooleanPatternMonitor(tiny_network, MONITORED_LAYER, spec)
        use_loop_path(loop)
        loop.fit(tiny_inputs)
        assert pattern_words(batched) == pattern_words(loop)
        assert batched.pattern_count() == loop.pattern_count()
        assert batched.dont_care_fraction == loop.dont_care_fraction

    @pytest.mark.parametrize("spec_name", ["box", "zonotope", "feature_box"])
    def test_interval_patterns_match_loop_path(
        self, tiny_network, tiny_inputs, specs, spec_name
    ):
        spec = specs[spec_name]
        batched = RobustIntervalPatternMonitor(
            tiny_network, MONITORED_LAYER, spec, num_cuts=3
        )
        batched.fit(tiny_inputs)
        loop = RobustIntervalPatternMonitor(
            tiny_network, MONITORED_LAYER, spec, num_cuts=3
        )
        use_loop_path(loop)
        loop.fit(tiny_inputs)
        assert pattern_words(batched) == pattern_words(loop)
        assert batched.pattern_count() == loop.pattern_count()
        assert (
            batched.ambiguous_position_fraction == loop.ambiguous_position_fraction
        )

    def test_warnings_agree_between_paths(self, tiny_network, tiny_inputs, rng, specs):
        probes = np.vstack(
            [
                tiny_inputs,
                tiny_inputs + rng.uniform(-DELTA, DELTA, size=tiny_inputs.shape),
                rng.uniform(-3.0, 3.0, size=(32, tiny_inputs.shape[1])),
            ]
        )
        for spec in specs.values():
            batched = RobustBooleanPatternMonitor(
                tiny_network, MONITORED_LAYER, spec
            ).fit(tiny_inputs)
            loop = RobustBooleanPatternMonitor(tiny_network, MONITORED_LAYER, spec)
            use_loop_path(loop)
            loop.fit(tiny_inputs)
            np.testing.assert_array_equal(
                batched.warn_batch(probes), loop.warn_batch(probes)
            )


class TestEngineBoundFits:
    def test_engine_bound_fit_is_identical(self, tiny_network, tiny_inputs, specs):
        """Binding a robust monitor to an engine must not change the fit."""
        for spec in specs.values():
            engine = BatchScoringEngine(tiny_network)
            bound = RobustMinMaxMonitor(tiny_network, MONITORED_LAYER, spec)
            bound.bind_engine(engine)
            bound.fit(tiny_inputs)
            plain = RobustMinMaxMonitor(tiny_network, MONITORED_LAYER, spec)
            plain.fit(tiny_inputs)
            np.testing.assert_array_equal(bound.lower, plain.lower)
            np.testing.assert_array_equal(bound.upper, plain.upper)

    def test_shared_engine_propagates_once_across_families(
        self, tiny_network, tiny_inputs, specs
    ):
        """Three robust families, one spec, one engine: one propagation."""
        spec = specs["box"]
        engine = BatchScoringEngine(tiny_network)
        for cls in (
            RobustMinMaxMonitor,
            RobustBooleanPatternMonitor,
            RobustIntervalPatternMonitor,
        ):
            monitor = cls(tiny_network, MONITORED_LAYER, spec)
            monitor.bind_engine(engine)
            monitor.fit(tiny_inputs)
        assert engine.cache.bound_misses == 1
        assert engine.cache.bound_hits == 2

    def test_delta_sweep_reuses_anchor_pass(self, tiny_network, tiny_inputs):
        """Different deltas at k_p >= 1 share the cached anchor activations."""
        engine = BatchScoringEngine(tiny_network)
        for delta in (0.01, 0.02, 0.05):
            spec = PerturbationSpec(delta=delta, layer=2, method="box")
            monitor = RobustMinMaxMonitor(tiny_network, MONITORED_LAYER, spec)
            monitor.bind_engine(engine)
            monitor.fit(tiny_inputs)
        # Three distinct bound entries, but the anchor forward pass of the
        # training batch was computed once and replayed from the cache.
        assert engine.cache.bound_misses == 3
        assert engine.cache.misses == 1
        assert engine.cache.hits == 2

    def test_builder_threads_engine_through_class_conditional(self, trained_digits):
        network, train, _ = trained_digits
        spec = PerturbationSpec(delta=0.01, layer=0, method="box")
        builder = MonitorBuilder("boolean", MONITORED_LAYER, perturbation=spec)
        engine = BatchScoringEngine(network, max_cache_entries=8)
        monitor = ClassConditionalMonitor(builder, num_classes=4)
        monitor.fit(network, train.inputs, engine=engine)
        # Every per-class fit ran its propagation through the shared cache.
        assert engine.cache.bound_misses >= 1
        plain = ClassConditionalMonitor(builder, num_classes=4)
        plain.fit(network, train.inputs)
        probes = train.inputs[:40]
        np.testing.assert_array_equal(
            monitor.warn_batch(probes), plain.warn_batch(probes)
        )

    def test_ensemble_fit_preserves_caller_binding(self, tiny_network, tiny_inputs):
        """Ensemble bindings are fit-scoped; caller bindings are kept."""
        from repro.monitors.ensemble import MonitorEnsemble

        spec = PerturbationSpec(delta=0.01, layer=0, method="box")
        caller_engine = BatchScoringEngine(tiny_network)
        bound = RobustMinMaxMonitor(tiny_network, MONITORED_LAYER, spec)
        bound.bind_engine(caller_engine)
        unbound = RobustMinMaxMonitor(tiny_network, MONITORED_LAYER, spec)
        ensemble = MonitorEnsemble([bound, unbound], vote="any")
        ensemble.fit(tiny_inputs)
        assert bound._engine is caller_engine
        # The ensemble's temporary binding was detached after fit.
        assert unbound._engine is None
        # The caller's engine saw the bound member's propagation.
        assert caller_engine.cache.bound_misses == 1

    def test_helper_bindings_are_fit_scoped(self, tiny_network, tiny_inputs):
        """build_and_fit binds for the fit only; per-frame scoring stays unbound."""
        spec = PerturbationSpec(delta=0.01, layer=0, method="box")
        builder = MonitorBuilder("minmax", MONITORED_LAYER, perturbation=spec)
        engine = BatchScoringEngine(tiny_network)
        monitor = builder.build_and_fit(tiny_network, tiny_inputs, engine=engine)
        assert monitor._engine is None
        assert engine.cache.bound_misses == 1
        # Single-frame scoring does not touch the engine cache.
        misses_before = engine.cache.misses
        monitor.warn(tiny_inputs[0])
        assert engine.cache.misses == misses_before

    def test_loop_reference_validates_like_batched(self, tiny_network, tiny_inputs):
        """Both paths reject k_p >= k, including for trivial specs."""
        trivial = PerturbationSpec(delta=0.0, layer=MONITORED_LAYER)
        with pytest.raises(ConfigurationError):
            collect_bound_arrays(
                tiny_network, tiny_inputs, MONITORED_LAYER, trivial
            )
        with pytest.raises(ConfigurationError):
            collect_bound_arrays_loop(
                tiny_network, tiny_inputs, MONITORED_LAYER, trivial
            )

    def test_bind_engine_rejects_foreign_network(self, tiny_network, trained_digits):
        network, _, _ = trained_digits
        engine = BatchScoringEngine(network)
        monitor = RobustMinMaxMonitor(
            tiny_network, MONITORED_LAYER, PerturbationSpec(delta=0.01)
        )
        with pytest.raises(ConfigurationError):
            monitor.bind_engine(engine)
