"""Tests for MonitorBuilder and ClassConditionalMonitor."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, NotFittedError, ShapeError
from repro.monitors.boolean import BooleanPatternMonitor, RobustBooleanPatternMonitor
from repro.monitors.builder import MONITOR_FAMILIES, ClassConditionalMonitor, MonitorBuilder
from repro.monitors.interval import IntervalPatternMonitor, RobustIntervalPatternMonitor
from repro.monitors.minmax import MinMaxMonitor, RobustMinMaxMonitor
from repro.monitors.perturbation import PerturbationSpec


class TestMonitorBuilder:
    @pytest.mark.parametrize(
        "family, expected_class",
        [
            ("minmax", MinMaxMonitor),
            ("boolean", BooleanPatternMonitor),
            ("interval", IntervalPatternMonitor),
        ],
    )
    def test_standard_families(self, family, expected_class, tiny_network):
        monitor = MonitorBuilder(family, 4).build(tiny_network)
        assert isinstance(monitor, expected_class)
        assert not monitor.is_fitted

    @pytest.mark.parametrize(
        "family, expected_class",
        [
            ("minmax", RobustMinMaxMonitor),
            ("boolean", RobustBooleanPatternMonitor),
            ("interval", RobustIntervalPatternMonitor),
        ],
    )
    def test_robust_families(self, family, expected_class, tiny_network):
        builder = MonitorBuilder(family, 4, perturbation=PerturbationSpec(delta=0.05))
        monitor = builder.build(tiny_network)
        assert isinstance(monitor, expected_class)
        assert builder.is_robust

    def test_build_and_fit(self, tiny_network, tiny_inputs):
        monitor = MonitorBuilder("minmax", 4).build_and_fit(tiny_network, tiny_inputs)
        assert monitor.is_fitted
        assert not np.any(monitor.warn_batch(tiny_inputs))

    def test_options_are_forwarded(self, tiny_network, tiny_inputs):
        monitor = MonitorBuilder(
            "interval", 4, num_cuts=7, cut_strategy="equal_width"
        ).build_and_fit(tiny_network, tiny_inputs)
        assert monitor.num_cuts == 7
        assert monitor.bits_per_neuron == 3

    def test_enlargement_option_dropped_for_robust_minmax(self, tiny_network):
        builder = MonitorBuilder(
            "minmax", 4, perturbation=PerturbationSpec(delta=0.05), enlargement=0.1
        )
        monitor = builder.build(tiny_network)
        assert isinstance(monitor, RobustMinMaxMonitor)

    def test_unknown_family_rejected(self):
        with pytest.raises(ConfigurationError):
            MonitorBuilder("gaussian", 4)

    def test_families_constant(self):
        assert set(MONITOR_FAMILIES) == {"minmax", "boolean", "interval"}

    def test_describe(self, tiny_network):
        builder = MonitorBuilder(
            "boolean", 3, perturbation=PerturbationSpec(delta=0.1), thresholds="mean"
        )
        info = builder.describe()
        assert info["family"] == "boolean"
        assert info["robust"] is True
        assert info["options"]["thresholds"] == "mean"


class TestClassConditionalMonitor:
    @pytest.fixture
    def fitted(self, trained_digits):
        network, train, _ = trained_digits
        builder = MonitorBuilder("minmax", 4)
        monitor = ClassConditionalMonitor(builder, num_classes=4)
        monitor.fit(network, train.inputs, labels=train.targets)
        return monitor, network, train

    def test_training_inputs_rarely_warn(self, fitted):
        monitor, network, train = fitted
        # Inputs routed to their own class's monitor do not warn; a few
        # misclassified training samples may be routed to another class's
        # monitor, so allow a small warning rate rather than exactly zero.
        assert monitor.warning_rate(train.inputs) <= 0.1

    def test_far_input_warns(self, fitted, trained_digits):
        monitor, network, _ = fitted
        assert monitor.warn(np.full(network.input_dim, 30.0))

    def test_per_class_monitors_exist(self, fitted):
        monitor, _, train = fitted
        present = [c for c in range(4) if monitor.monitor_for_class(c) is not None]
        assert len(present) >= 2
        assert monitor.monitor_for_class(present[0]).is_fitted

    def test_verdict_reports_predicted_class(self, fitted, trained_digits):
        monitor, _, train = fitted
        verdict = monitor.verdict(train.inputs[0])
        assert "predicted_class" in verdict.details
        assert 0 <= verdict.details["predicted_class"] < 4

    def test_fit_with_network_predictions_as_labels(self, trained_digits):
        network, train, _ = trained_digits
        monitor = ClassConditionalMonitor(MonitorBuilder("minmax", 4), num_classes=4)
        monitor.fit(network, train.inputs)  # labels default to predictions
        assert monitor.is_fitted
        assert monitor.warning_rate(train.inputs) == 0.0

    def test_unseen_class_falls_back_to_warning(self, trained_digits):
        network, train, _ = trained_digits
        monitor = ClassConditionalMonitor(MonitorBuilder("minmax", 4), num_classes=4)
        # Fit with only the samples of a single predicted class.
        predictions = network.predict_classes(train.inputs)
        majority = int(np.bincount(predictions).argmax())
        subset = train.inputs[predictions == majority]
        monitor.fit(network, subset)
        other = train.inputs[predictions != majority]
        if other.shape[0]:
            assert monitor.warn_batch(other).all()

    def test_unfitted_monitor_raises(self, trained_digits):
        network, train, _ = trained_digits
        monitor = ClassConditionalMonitor(MonitorBuilder("minmax", 4), num_classes=4)
        with pytest.raises(NotFittedError):
            monitor.warn(train.inputs[0])

    def test_label_shape_mismatch_rejected(self, trained_digits):
        network, train, _ = trained_digits
        monitor = ClassConditionalMonitor(MonitorBuilder("minmax", 4), num_classes=4)
        with pytest.raises(ShapeError):
            monitor.fit(network, train.inputs, labels=np.zeros(3, dtype=int))

    def test_invalid_num_classes_rejected(self):
        with pytest.raises(ConfigurationError):
            ClassConditionalMonitor(MonitorBuilder("minmax", 4), num_classes=1)

    def test_empty_fit_rejected(self, trained_digits):
        network, _, _ = trained_digits
        monitor = ClassConditionalMonitor(MonitorBuilder("minmax", 4), num_classes=4)
        with pytest.raises(ShapeError):
            monitor.fit(network, np.zeros((0, network.input_dim)))

    def test_describe(self, fitted):
        monitor, _, _ = fitted
        info = monitor.describe()
        assert info["num_classes"] == 4
        assert info["builder"]["family"] == "minmax"
        assert isinstance(info["classes_with_monitors"], list)

    def test_warning_rate_requires_samples(self, fitted, trained_digits):
        monitor, network, _ = fitted
        with pytest.raises(ShapeError):
            monitor.warning_rate(np.zeros((0, network.input_dim)))
