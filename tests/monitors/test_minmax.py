"""Tests for the min-max envelope monitors (standard and robust)."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, NotFittedError, ShapeError
from repro.monitors.minmax import MinMaxMonitor, RobustMinMaxMonitor
from repro.monitors.perturbation import PerturbationSpec


class TestStandardMinMax:
    def test_training_inputs_never_warn(self, tiny_network, tiny_inputs):
        monitor = MinMaxMonitor(tiny_network, 4).fit(tiny_inputs)
        assert not np.any(monitor.warn_batch(tiny_inputs))

    def test_far_out_of_distribution_input_warns(self, tiny_network, tiny_inputs):
        monitor = MinMaxMonitor(tiny_network, 4).fit(tiny_inputs)
        assert monitor.warn(np.full(tiny_network.input_dim, 50.0))

    def test_envelope_matches_feature_min_max(self, tiny_network, tiny_inputs):
        monitor = MinMaxMonitor(tiny_network, 3).fit(tiny_inputs)
        features = monitor.features(tiny_inputs)
        np.testing.assert_allclose(monitor.lower, features.min(axis=0))
        np.testing.assert_allclose(monitor.upper, features.max(axis=0))

    def test_verdict_reports_violating_neurons(self, tiny_network, tiny_inputs):
        monitor = MinMaxMonitor(tiny_network, 4).fit(tiny_inputs)
        verdict = monitor.verdict(np.full(tiny_network.input_dim, 50.0))
        assert verdict.warn
        assert len(verdict.violations) >= 1
        assert verdict.details["max_violation_distance"] > 0

    def test_non_warning_verdict_has_no_violations(self, tiny_network, tiny_inputs):
        monitor = MinMaxMonitor(tiny_network, 4).fit(tiny_inputs)
        verdict = monitor.verdict(tiny_inputs[0])
        assert not verdict.warn
        assert verdict.violations == ()

    def test_update_extends_envelope(self, tiny_network, tiny_inputs):
        monitor = MinMaxMonitor(tiny_network, 4).fit(tiny_inputs[:10])
        extra = tiny_inputs[10:]
        had_warnings = np.any(monitor.warn_batch(extra))
        monitor.update(extra)
        assert not np.any(monitor.warn_batch(extra))
        assert monitor.num_training_samples == tiny_inputs.shape[0]
        # The update only matters if some extra sample was outside before.
        assert had_warnings or monitor.envelope().width_sum() >= 0

    def test_enlargement_reduces_warnings(self, tiny_network, tiny_inputs):
        plain = MinMaxMonitor(tiny_network, 4).fit(tiny_inputs[:12])
        enlarged = MinMaxMonitor(tiny_network, 4, enlargement=0.5).fit(tiny_inputs[:12])
        probe = tiny_inputs[12:]
        assert enlarged.warning_rate(probe) <= plain.warning_rate(probe)

    def test_neuron_subset_monitoring(self, tiny_network, tiny_inputs):
        monitor = MinMaxMonitor(tiny_network, 4, neuron_indices=[0, 2, 5]).fit(tiny_inputs)
        assert monitor.num_monitored_neurons == 3
        assert monitor.lower.shape == (3,)
        assert not np.any(monitor.warn_batch(tiny_inputs))

    def test_unfitted_monitor_raises(self, tiny_network, tiny_inputs):
        monitor = MinMaxMonitor(tiny_network, 4)
        with pytest.raises(NotFittedError):
            monitor.warn(tiny_inputs[0])
        with pytest.raises(NotFittedError):
            monitor.envelope()

    def test_empty_fit_rejected(self, tiny_network):
        monitor = MinMaxMonitor(tiny_network, 4)
        with pytest.raises(ShapeError):
            monitor.fit(np.zeros((0, tiny_network.input_dim)))

    def test_invalid_configuration_rejected(self, tiny_network):
        with pytest.raises(ConfigurationError):
            MinMaxMonitor(tiny_network, 0)
        with pytest.raises(ConfigurationError):
            MinMaxMonitor(tiny_network, 99)
        with pytest.raises(ConfigurationError):
            MinMaxMonitor(tiny_network, 4, enlargement=-0.1)
        with pytest.raises(ConfigurationError):
            MinMaxMonitor(tiny_network, 4, neuron_indices=[99])
        with pytest.raises(ConfigurationError):
            MinMaxMonitor(tiny_network, 4, neuron_indices=[])

    def test_describe_contains_state(self, tiny_network, tiny_inputs):
        monitor = MinMaxMonitor(tiny_network, 4).fit(tiny_inputs)
        info = monitor.describe()
        assert info["kind"] == "minmax"
        assert info["fitted"] is True
        assert info["num_training_samples"] == tiny_inputs.shape[0]
        assert "envelope_width_sum" in info

    def test_warning_rate_requires_samples(self, tiny_network, tiny_inputs):
        monitor = MinMaxMonitor(tiny_network, 4).fit(tiny_inputs)
        with pytest.raises(ShapeError):
            monitor.warning_rate(np.zeros((0, tiny_network.input_dim)))


class TestRobustMinMax:
    def test_robust_envelope_contains_standard_envelope(self, tiny_network, tiny_inputs):
        standard = MinMaxMonitor(tiny_network, 4).fit(tiny_inputs)
        robust = RobustMinMaxMonitor(
            tiny_network, 4, PerturbationSpec(delta=0.05)
        ).fit(tiny_inputs)
        assert np.all(robust.lower <= standard.lower + 1e-9)
        assert np.all(robust.upper >= standard.upper - 1e-9)

    def test_zero_delta_matches_standard_monitor(self, tiny_network, tiny_inputs):
        standard = MinMaxMonitor(tiny_network, 4).fit(tiny_inputs)
        robust = RobustMinMaxMonitor(
            tiny_network, 4, PerturbationSpec(delta=0.0)
        ).fit(tiny_inputs)
        np.testing.assert_allclose(robust.lower, standard.lower, atol=1e-9)
        np.testing.assert_allclose(robust.upper, standard.upper, atol=1e-9)

    def test_perturbed_training_inputs_never_warn(self, tiny_network, tiny_inputs):
        """Lemma 1 for the min-max family, checked empirically."""
        delta = 0.03
        robust = RobustMinMaxMonitor(
            tiny_network, 4, PerturbationSpec(delta=delta)
        ).fit(tiny_inputs)
        rng = np.random.default_rng(0)
        for x in tiny_inputs[:8]:
            for _ in range(10):
                perturbed = x + rng.uniform(-delta, delta, size=x.shape)
                assert not robust.warn(perturbed)

    def test_robust_monitor_still_detects_far_inputs(self, tiny_network, tiny_inputs):
        robust = RobustMinMaxMonitor(
            tiny_network, 4, PerturbationSpec(delta=0.02)
        ).fit(tiny_inputs)
        assert robust.warn(np.full(tiny_network.input_dim, 100.0))

    def test_larger_delta_gives_wider_envelope(self, tiny_network, tiny_inputs):
        small = RobustMinMaxMonitor(tiny_network, 4, PerturbationSpec(delta=0.01)).fit(tiny_inputs)
        large = RobustMinMaxMonitor(tiny_network, 4, PerturbationSpec(delta=0.1)).fit(tiny_inputs)
        assert large.envelope().width_sum() >= small.envelope().width_sum()

    def test_feature_level_perturbation_layer(self, tiny_network, tiny_inputs):
        robust = RobustMinMaxMonitor(
            tiny_network, 4, PerturbationSpec(delta=0.05, layer=2)
        ).fit(tiny_inputs)
        assert not np.any(robust.warn_batch(tiny_inputs))

    def test_update_folds_new_estimates(self, tiny_network, tiny_inputs):
        robust = RobustMinMaxMonitor(
            tiny_network, 4, PerturbationSpec(delta=0.02)
        ).fit(tiny_inputs[:10])
        robust.update(tiny_inputs[10:])
        assert robust.num_training_samples == tiny_inputs.shape[0]
        assert not np.any(robust.warn_batch(tiny_inputs))

    def test_perturbation_layer_must_precede_monitored_layer(self, tiny_network):
        with pytest.raises(ConfigurationError):
            RobustMinMaxMonitor(tiny_network, 2, PerturbationSpec(delta=0.1, layer=2))

    def test_describe_mentions_perturbation(self, tiny_network, tiny_inputs):
        robust = RobustMinMaxMonitor(
            tiny_network, 4, PerturbationSpec(delta=0.05, method="zonotope")
        ).fit(tiny_inputs)
        assert "zonotope" in robust.describe()["perturbation"]

    @pytest.mark.parametrize("method", ["box", "zonotope", "star"])
    def test_all_backends_produce_sound_envelopes(self, tiny_network, tiny_inputs, method):
        delta = 0.04
        robust = RobustMinMaxMonitor(
            tiny_network, 4, PerturbationSpec(delta=delta, method=method)
        ).fit(tiny_inputs[:8])
        rng = np.random.default_rng(2)
        for x in tiny_inputs[:8]:
            perturbed = x + rng.uniform(-delta, delta, size=x.shape)
            assert not robust.warn(perturbed)
