"""Tests for Boolean on/off pattern monitors (standard and robust)."""

import numpy as np
import pytest

from repro.bdd.patterns import DONT_CARE
from repro.exceptions import ConfigurationError, NotFittedError, ShapeError
from repro.monitors.boolean import BooleanPatternMonitor, RobustBooleanPatternMonitor
from repro.monitors.perturbation import PerturbationSpec


class TestStandardBoolean:
    def test_training_inputs_never_warn(self, tiny_network, tiny_inputs):
        monitor = BooleanPatternMonitor(tiny_network, 4).fit(tiny_inputs)
        assert not np.any(monitor.warn_batch(tiny_inputs))

    def test_unseen_pattern_warns(self, tiny_network, tiny_inputs):
        monitor = BooleanPatternMonitor(tiny_network, 4, thresholds="mean").fit(tiny_inputs)
        # Flip the monitored word by probing a wildly different input; if that
        # particular input happens to share a pattern, the monitor must still
        # agree with explicit pattern membership.
        probe = np.full(tiny_network.input_dim, -40.0)
        verdict = monitor.verdict(probe)
        word = list(verdict.details["word"])
        assert verdict.warn == (not monitor.patterns.contains(word))

    def test_pattern_count_bounded_by_samples(self, tiny_network, tiny_inputs):
        monitor = BooleanPatternMonitor(tiny_network, 4, thresholds="mean").fit(tiny_inputs)
        assert 1 <= monitor.pattern_count() <= tiny_inputs.shape[0]
        assert monitor.bdd_size() >= 1

    def test_explicit_threshold_array(self, tiny_network, tiny_inputs):
        width = tiny_network.layer_output_dim(4)
        monitor = BooleanPatternMonitor(
            tiny_network, 4, thresholds=np.zeros(width)
        ).fit(tiny_inputs)
        np.testing.assert_array_equal(monitor.thresholds, np.zeros(width))

    def test_wrong_threshold_length_rejected(self, tiny_network, tiny_inputs):
        monitor = BooleanPatternMonitor(tiny_network, 4, thresholds=np.zeros(3))
        with pytest.raises(ShapeError):
            monitor.fit(tiny_inputs)

    def test_hamming_tolerance_reduces_warnings(self, tiny_network, tiny_inputs):
        strict = BooleanPatternMonitor(tiny_network, 4, thresholds="mean").fit(tiny_inputs[:12])
        relaxed = BooleanPatternMonitor(
            tiny_network, 4, thresholds="mean", hamming_tolerance=2
        ).fit(tiny_inputs[:12])
        probe = tiny_inputs[12:]
        assert relaxed.warning_rate(probe) <= strict.warning_rate(probe)

    def test_negative_hamming_tolerance_rejected(self, tiny_network):
        with pytest.raises(ConfigurationError):
            BooleanPatternMonitor(tiny_network, 4, hamming_tolerance=-1)

    def test_update_adds_patterns(self, tiny_network, tiny_inputs):
        monitor = BooleanPatternMonitor(tiny_network, 4, thresholds="mean").fit(tiny_inputs[:10])
        monitor.update(tiny_inputs[10:])
        assert not np.any(monitor.warn_batch(tiny_inputs))
        assert monitor.num_training_samples == tiny_inputs.shape[0]

    def test_unfitted_monitor_raises(self, tiny_network, tiny_inputs):
        monitor = BooleanPatternMonitor(tiny_network, 4)
        with pytest.raises(NotFittedError):
            monitor.warn(tiny_inputs[0])
        with pytest.raises(NotFittedError):
            monitor.pattern_count()

    def test_describe_reports_bdd_statistics(self, tiny_network, tiny_inputs):
        monitor = BooleanPatternMonitor(tiny_network, 4, thresholds="mean").fit(tiny_inputs)
        info = monitor.describe()
        assert info["kind"] == "boolean_pattern"
        assert info["pattern_count"] >= 1
        assert info["bdd_size"] >= 1

    def test_neuron_subset(self, tiny_network, tiny_inputs):
        monitor = BooleanPatternMonitor(
            tiny_network, 4, thresholds="mean", neuron_indices=[1, 3]
        ).fit(tiny_inputs)
        assert monitor.num_monitored_neurons == 2
        assert not np.any(monitor.warn_batch(tiny_inputs))


class TestRobustBoolean:
    def test_training_inputs_never_warn(self, tiny_network, tiny_inputs):
        monitor = RobustBooleanPatternMonitor(
            tiny_network, 4, PerturbationSpec(delta=0.05), thresholds="mean"
        ).fit(tiny_inputs)
        assert not np.any(monitor.warn_batch(tiny_inputs))

    def test_lemma1_perturbed_training_inputs_never_warn(self, tiny_network, tiny_inputs):
        delta = 0.03
        monitor = RobustBooleanPatternMonitor(
            tiny_network, 4, PerturbationSpec(delta=delta), thresholds="mean"
        ).fit(tiny_inputs)
        rng = np.random.default_rng(0)
        for x in tiny_inputs[:8]:
            for _ in range(8):
                perturbed = x + rng.uniform(-delta, delta, size=x.shape)
                assert not monitor.warn(perturbed)

    def test_standard_may_warn_where_robust_does_not(self, tiny_network, tiny_inputs):
        """The headline effect: robust pattern sets are supersets of standard ones."""
        delta = 0.05
        standard = BooleanPatternMonitor(tiny_network, 4, thresholds="mean").fit(tiny_inputs)
        robust = RobustBooleanPatternMonitor(
            tiny_network, 4, PerturbationSpec(delta=delta), thresholds="mean"
        ).fit(tiny_inputs)
        rng = np.random.default_rng(1)
        perturbed = np.vstack(
            [x + rng.uniform(-delta, delta, size=x.shape) for x in tiny_inputs]
        )
        assert robust.warning_rate(perturbed) <= standard.warning_rate(perturbed)
        assert robust.warning_rate(perturbed) == 0.0

    def test_robust_pattern_set_contains_standard_set(self, tiny_network, tiny_inputs):
        standard = BooleanPatternMonitor(tiny_network, 4, thresholds="mean").fit(tiny_inputs)
        robust = RobustBooleanPatternMonitor(
            tiny_network, 4, PerturbationSpec(delta=0.05), thresholds="mean"
        ).fit(tiny_inputs)
        for word in standard.patterns.iterate_words():
            assert robust.patterns.contains(list(word))

    def test_zero_delta_equals_standard_pattern_count(self, tiny_network, tiny_inputs):
        standard = BooleanPatternMonitor(tiny_network, 4, thresholds="mean").fit(tiny_inputs)
        robust = RobustBooleanPatternMonitor(
            tiny_network, 4, PerturbationSpec(delta=0.0), thresholds="mean"
        ).fit(tiny_inputs)
        assert robust.pattern_count() == standard.pattern_count()

    def test_dont_care_fraction_grows_with_delta(self, tiny_network, tiny_inputs):
        small = RobustBooleanPatternMonitor(
            tiny_network, 4, PerturbationSpec(delta=0.01), thresholds="mean"
        ).fit(tiny_inputs)
        large = RobustBooleanPatternMonitor(
            tiny_network, 4, PerturbationSpec(delta=0.5), thresholds="mean"
        ).fit(tiny_inputs)
        assert 0.0 <= small.dont_care_fraction <= large.dont_care_fraction <= 1.0

    def test_ternary_word_construction(self, tiny_network, tiny_inputs):
        monitor = RobustBooleanPatternMonitor(
            tiny_network, 4, PerturbationSpec(delta=0.1), thresholds="mean"
        )
        features = monitor.features(tiny_inputs)
        monitor.thresholds = monitor._resolve_thresholds(features)
        low = monitor.thresholds - 1.0
        high = monitor.thresholds + 1.0
        word = monitor._ternary_word(low, high)
        assert all(symbol == DONT_CARE for symbol in word)
        word = monitor._ternary_word(monitor.thresholds + 0.1, monitor.thresholds + 0.2)
        assert all(symbol == 1 for symbol in word)
        word = monitor._ternary_word(monitor.thresholds - 0.2, monitor.thresholds - 0.1)
        assert all(symbol == 0 for symbol in word)

    def test_update_after_fit(self, tiny_network, tiny_inputs):
        monitor = RobustBooleanPatternMonitor(
            tiny_network, 4, PerturbationSpec(delta=0.02), thresholds="mean"
        ).fit(tiny_inputs[:10])
        monitor.update(tiny_inputs[10:])
        assert monitor.num_training_samples == tiny_inputs.shape[0]
        assert not np.any(monitor.warn_batch(tiny_inputs))

    def test_perturbation_layer_validation(self, tiny_network):
        with pytest.raises(ConfigurationError):
            RobustBooleanPatternMonitor(
                tiny_network, 2, PerturbationSpec(delta=0.1, layer=5)
            )

    def test_describe_includes_dont_care_fraction(self, tiny_network, tiny_inputs):
        monitor = RobustBooleanPatternMonitor(
            tiny_network, 4, PerturbationSpec(delta=0.05), thresholds="mean"
        ).fit(tiny_inputs)
        info = monitor.describe()
        assert info["kind"] == "robust_boolean_pattern"
        assert 0.0 <= info["dont_care_fraction"] <= 1.0
