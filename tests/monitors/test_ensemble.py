"""Tests for multi-monitor ensembles."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, ShapeError
from repro.monitors.boolean import BooleanPatternMonitor
from repro.monitors.ensemble import MonitorEnsemble
from repro.monitors.minmax import MinMaxMonitor


@pytest.fixture
def members(tiny_network):
    return [
        MinMaxMonitor(tiny_network, 2),
        MinMaxMonitor(tiny_network, 4),
        BooleanPatternMonitor(tiny_network, 4, thresholds="mean"),
    ]


class TestVotingRules:
    def test_fit_fits_every_member(self, members, tiny_inputs):
        ensemble = MonitorEnsemble(members, vote="any").fit(tiny_inputs)
        assert ensemble.is_fitted
        assert all(monitor.is_fitted for monitor in ensemble.monitors)

    def test_any_vote_warns_when_one_member_warns(self, members, tiny_inputs, tiny_network):
        ensemble = MonitorEnsemble(members, vote="any").fit(tiny_inputs)
        far = np.full(tiny_network.input_dim, 70.0)
        member_warnings = [monitor.warn(far) for monitor in ensemble.monitors]
        assert ensemble.warn(far) == any(member_warnings)

    def test_all_vote_requires_every_member(self, members, tiny_inputs, tiny_network):
        ensemble = MonitorEnsemble(members, vote="all").fit(tiny_inputs)
        far = np.full(tiny_network.input_dim, 70.0)
        member_warnings = [monitor.warn(far) for monitor in ensemble.monitors]
        assert ensemble.warn(far) == all(member_warnings)

    def test_majority_threshold(self, members):
        ensemble = MonitorEnsemble(members, vote="majority")
        assert ensemble._threshold == 2

    def test_integer_vote_threshold(self, members, tiny_inputs):
        ensemble = MonitorEnsemble(members, vote=3).fit(tiny_inputs)
        verdict = ensemble.verdict(tiny_inputs[0])
        assert verdict.details["threshold"] == 3
        assert not verdict.warn

    def test_training_inputs_do_not_warn_for_any_vote(self, members, tiny_inputs):
        ensemble = MonitorEnsemble(members, vote="any").fit(tiny_inputs)
        assert ensemble.warning_rate(tiny_inputs) == 0.0

    def test_any_at_least_as_sensitive_as_all(self, members, tiny_inputs, rng):
        ensemble_any = MonitorEnsemble(members, vote="any").fit(tiny_inputs)
        ensemble_all = MonitorEnsemble(members, vote="all")  # members already fitted
        probes = rng.uniform(-3.0, 3.0, size=(25, tiny_inputs.shape[1]))
        assert ensemble_any.warning_rate(probes) >= ensemble_all.warning_rate(probes)

    def test_verdict_details(self, members, tiny_inputs):
        ensemble = MonitorEnsemble(members, vote="any").fit(tiny_inputs)
        verdict = ensemble.verdict(tiny_inputs[0])
        assert len(verdict.details["member_warnings"]) == len(members)
        assert verdict.details["votes"] == 0


class TestValidation:
    def test_empty_ensemble_rejected(self):
        with pytest.raises(ConfigurationError):
            MonitorEnsemble([])

    def test_unknown_vote_rule_rejected(self, members):
        with pytest.raises(ConfigurationError):
            MonitorEnsemble(members, vote="plurality")

    def test_out_of_range_integer_vote_rejected(self, members):
        with pytest.raises(ConfigurationError):
            MonitorEnsemble(members, vote=0)
        with pytest.raises(ConfigurationError):
            MonitorEnsemble(members, vote=4)

    def test_warning_rate_requires_samples(self, members, tiny_inputs, tiny_network):
        ensemble = MonitorEnsemble(members, vote="any").fit(tiny_inputs)
        with pytest.raises(ShapeError):
            ensemble.warning_rate(np.zeros((0, tiny_network.input_dim)))

    def test_len_and_describe(self, members, tiny_inputs):
        ensemble = MonitorEnsemble(members, vote="majority").fit(tiny_inputs)
        assert len(ensemble) == 3
        info = ensemble.describe()
        assert info["vote"] == "majority"
        assert len(info["members"]) == 3
