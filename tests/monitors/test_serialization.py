"""Tests for monitor serialisation round trips."""

import numpy as np
import pytest

from repro.exceptions import NotFittedError, SerializationError
from repro.monitors.boolean import BooleanPatternMonitor, RobustBooleanPatternMonitor
from repro.monitors.interval import IntervalPatternMonitor, RobustIntervalPatternMonitor
from repro.monitors.minmax import MinMaxMonitor, RobustMinMaxMonitor
from repro.monitors.perturbation import PerturbationSpec
from repro.monitors.serialization import load_monitor, save_monitor

SPEC = PerturbationSpec(delta=0.05, layer=0, method="box")


def build_fitted(kind, network, inputs):
    if kind == "minmax":
        return MinMaxMonitor(network, 4, enlargement=0.1).fit(inputs)
    if kind == "robust_minmax":
        return RobustMinMaxMonitor(network, 4, SPEC).fit(inputs)
    if kind == "boolean":
        return BooleanPatternMonitor(network, 4, thresholds="mean", hamming_tolerance=1).fit(inputs)
    if kind == "robust_boolean":
        return RobustBooleanPatternMonitor(network, 4, SPEC, thresholds="mean").fit(inputs)
    if kind == "interval":
        return IntervalPatternMonitor(network, 4, num_cuts=3).fit(inputs)
    return RobustIntervalPatternMonitor(network, 4, SPEC, num_cuts=3).fit(inputs)


ALL_KINDS = ["minmax", "robust_minmax", "boolean", "robust_boolean", "interval", "robust_interval"]


class TestRoundTrip:
    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_warnings_identical_after_round_trip(
        self, kind, tiny_network, tiny_inputs, tmp_path, rng
    ):
        monitor = build_fitted(kind, tiny_network, tiny_inputs)
        path = save_monitor(monitor, tmp_path / f"{kind}.npz")
        restored = load_monitor(path, tiny_network)
        assert type(restored) is type(monitor)
        probes = np.vstack(
            [tiny_inputs, rng.uniform(-3.0, 3.0, size=(20, tiny_network.input_dim))]
        )
        np.testing.assert_array_equal(
            restored.warn_batch(probes), monitor.warn_batch(probes)
        )

    def test_minmax_envelope_preserved(self, tiny_network, tiny_inputs, tmp_path):
        monitor = MinMaxMonitor(tiny_network, 4).fit(tiny_inputs)
        restored = load_monitor(save_monitor(monitor, tmp_path / "m"), tiny_network)
        np.testing.assert_allclose(restored.lower, monitor.lower)
        np.testing.assert_allclose(restored.upper, monitor.upper)
        assert restored.num_training_samples == monitor.num_training_samples

    def test_boolean_patterns_preserved(self, tiny_network, tiny_inputs, tmp_path):
        monitor = BooleanPatternMonitor(tiny_network, 4, thresholds="mean").fit(tiny_inputs)
        restored = load_monitor(save_monitor(monitor, tmp_path / "b"), tiny_network)
        assert restored.pattern_count() == monitor.pattern_count()
        np.testing.assert_allclose(restored.thresholds, monitor.thresholds)
        assert restored.hamming_tolerance == monitor.hamming_tolerance

    def test_interval_cut_points_preserved(self, tiny_network, tiny_inputs, tmp_path):
        monitor = IntervalPatternMonitor(tiny_network, 4, num_cuts=3).fit(tiny_inputs)
        restored = load_monitor(save_monitor(monitor, tmp_path / "i"), tiny_network)
        np.testing.assert_allclose(restored.cut_points, monitor.cut_points)
        assert restored.bits_per_neuron == monitor.bits_per_neuron

    def test_robust_perturbation_spec_preserved(self, tiny_network, tiny_inputs, tmp_path):
        monitor = RobustMinMaxMonitor(tiny_network, 4, SPEC).fit(tiny_inputs)
        restored = load_monitor(save_monitor(monitor, tmp_path / "r"), tiny_network)
        assert restored.perturbation == SPEC

    def test_neuron_subset_preserved(self, tiny_network, tiny_inputs, tmp_path):
        monitor = MinMaxMonitor(tiny_network, 4, neuron_indices=[0, 3, 5]).fit(tiny_inputs)
        restored = load_monitor(save_monitor(monitor, tmp_path / "s"), tiny_network)
        np.testing.assert_array_equal(restored.neuron_indices, [0, 3, 5])


class TestErrors:
    def test_unfitted_monitor_rejected(self, tiny_network, tmp_path):
        with pytest.raises(NotFittedError):
            save_monitor(MinMaxMonitor(tiny_network, 4), tmp_path / "x")

    def test_missing_file_rejected(self, tiny_network, tmp_path):
        with pytest.raises(SerializationError):
            load_monitor(tmp_path / "missing.npz", tiny_network)

    def test_non_monitor_archive_rejected(self, tiny_network, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, a=np.zeros(2))
        with pytest.raises(SerializationError):
            load_monitor(path, tiny_network)

    def test_suffix_is_added(self, tiny_network, tiny_inputs, tmp_path):
        monitor = MinMaxMonitor(tiny_network, 4).fit(tiny_inputs)
        path = save_monitor(monitor, tmp_path / "plain")
        assert path.suffix == ".npz"
        restored = load_monitor(tmp_path / "plain", tiny_network)
        assert restored.is_fitted
