"""Behavioural tests of the threaded streaming scorer.

Thread interactions are made deterministic by choosing policies where only
one trigger can fire (e.g. a huge ``max_latency`` so only size can flush, or
a huge ``max_batch`` so only the deadline can) and asserting on the stats'
flush-reason counters; generous future timeouts keep the suite robust on
slow machines.
"""

import numpy as np
import pytest

from repro.exceptions import (
    ConfigurationError,
    NotFittedError,
    ServiceClosedError,
    ServiceOverloadedError,
    ShapeError,
)
from repro.monitors.minmax import MinMaxMonitor
from repro.nn.network import mlp
from repro.service import BatchPolicy, StreamingScorer

TIMEOUT = 10.0  # generous per-future timeout; normal resolution is ms


def _scorer(network, monitors, **policy_kwargs) -> StreamingScorer:
    scorer = StreamingScorer(network, policy=BatchPolicy(**policy_kwargs))
    for name, monitor in monitors.items():
        scorer.register(name, monitor)
    return scorer


class TestLifecycle:
    def test_submit_requires_running_worker(self, tiny_network, fitted_monitors):
        scorer = _scorer(tiny_network, fitted_monitors)
        with pytest.raises(ServiceClosedError):
            scorer.submit(np.zeros(6))

    def test_submit_after_close_raises(self, tiny_network, fitted_monitors):
        scorer = _scorer(tiny_network, fitted_monitors).start()
        scorer.close()
        with pytest.raises(ServiceClosedError):
            scorer.submit(np.zeros(6))

    def test_close_is_idempotent_and_restart_refused(
        self, tiny_network, fitted_monitors
    ):
        scorer = _scorer(tiny_network, fitted_monitors).start()
        scorer.close()
        scorer.close()
        with pytest.raises(ServiceClosedError):
            scorer.start()

    def test_context_manager_starts_and_drains(
        self, tiny_network, fitted_monitors, probe_frames
    ):
        with _scorer(
            tiny_network, fitted_monitors, max_batch=1000, max_latency=60.0
        ) as scorer:
            futures = scorer.submit_many(probe_frames)
        # Exiting the context drains: every future resolved without waiting
        # out the 60 s deadline.
        results = [future.result(timeout=TIMEOUT) for future in futures]
        assert len(results) == probe_frames.shape[0]
        assert scorer.stats.snapshot()["flush_reasons"]["drain"] >= 1


class TestFlushTriggers:
    def test_flush_on_size(self, tiny_network, fitted_monitors, probe_frames):
        with _scorer(
            tiny_network, fitted_monitors, max_batch=8, max_latency=60.0
        ) as scorer:
            futures = scorer.submit_many(probe_frames[:8])
            for future in futures:
                future.result(timeout=TIMEOUT)
            stats = scorer.stats.snapshot()
        # Resolution long before the 60 s deadline proves a size flush.
        assert stats["flush_reasons"]["size"] >= 1
        assert stats["flush_reasons"]["deadline"] == 0
        assert stats["max_batch_size"] == 8

    def test_flush_on_deadline(self, tiny_network, fitted_monitors, probe_frames):
        with _scorer(
            tiny_network, fitted_monitors, max_batch=1000, max_latency=0.05
        ) as scorer:
            futures = scorer.submit_many(probe_frames[:3])
            for future in futures:
                future.result(timeout=TIMEOUT)
            stats = scorer.stats.snapshot()
        # Far fewer frames than max_batch: only the deadline can have fired.
        assert stats["flush_reasons"]["deadline"] >= 1
        assert stats["flush_reasons"]["size"] == 0

    def test_drain_on_shutdown(self, tiny_network, fitted_monitors, probe_frames):
        scorer = _scorer(
            tiny_network, fitted_monitors, max_batch=1000, max_latency=60.0
        ).start()
        futures = scorer.submit_many(probe_frames)
        scorer.close(drain=True)
        results = [future.result(timeout=TIMEOUT) for future in futures]
        assert len(results) == probe_frames.shape[0]
        stats = scorer.stats.snapshot()
        assert stats["frames_scored"] == probe_frames.shape[0]
        assert stats["flush_reasons"]["drain"] >= 1

    def test_close_without_drain_cancels_pending(
        self, tiny_network, fitted_monitors, probe_frames
    ):
        scorer = _scorer(
            tiny_network, fitted_monitors, max_batch=1000, max_latency=60.0
        ).start()
        futures = scorer.submit_many(probe_frames)
        scorer.close(drain=False)
        stats = scorer.stats.snapshot()
        cancelled = [future for future in futures if future.cancelled()]
        assert len(cancelled) == stats["frames_cancelled"]
        assert len(cancelled) >= 1


class TestResults:
    def test_results_match_offline_warn_batch(
        self, tiny_network, fitted_monitors, probe_frames
    ):
        with _scorer(
            tiny_network, fitted_monitors, max_batch=16, max_latency=0.002
        ) as scorer:
            futures = [scorer.submit(frame) for frame in probe_frames]
            results = [future.result(timeout=TIMEOUT) for future in futures]
        for name, monitor in fitted_monitors.items():
            streamed = np.array([result.warns[name] for result in results])
            np.testing.assert_array_equal(streamed, monitor.warn_batch(probe_frames))

    def test_want_verdicts_carries_diagnostics(
        self, tiny_network, fitted_monitors, probe_frames
    ):
        scorer = StreamingScorer(
            tiny_network,
            policy=BatchPolicy(max_batch=16, max_latency=0.002),
            want_verdicts=True,
        )
        for name, monitor in fitted_monitors.items():
            scorer.register(name, monitor)
        with scorer:
            future = scorer.submit(probe_frames[0])
            result = future.result(timeout=TIMEOUT)
        assert set(result.verdicts) == set(fitted_monitors)
        verdict = result.verdicts["minmax"]
        assert verdict.warn == result.warns["minmax"]
        direct = fitted_monitors["minmax"].verdict(probe_frames[0])
        assert verdict.warn == direct.warn

    def test_any_warn_aggregates(self, tiny_network, fitted_monitors, probe_frames):
        with _scorer(
            tiny_network, fitted_monitors, max_batch=16, max_latency=0.002
        ) as scorer:
            futures = scorer.submit_many(probe_frames)
            results = [future.result(timeout=TIMEOUT) for future in futures]
        for result in results:
            assert result.any_warn == any(result.warns.values())


class TestProducerBufferSafety:
    def test_queue_owns_the_frame_data(self, tiny_network, fitted_monitors, rng):
        """Overwriting the producer's buffer after submit() must not change
        the frame the worker eventually scores."""
        frame = rng.uniform(-2.0, 2.0, size=6)
        original = frame.copy()
        scorer = _scorer(
            tiny_network, fitted_monitors, max_batch=1000, max_latency=60.0
        ).start()
        future = scorer.submit(frame)
        frame[:] = 99.0  # producer refills its sensor buffer immediately
        scorer.close(drain=True)  # only now does the worker flush
        result = future.result(timeout=TIMEOUT)
        for name, monitor in fitted_monitors.items():
            assert result.warns[name] == bool(monitor.warn_batch(original[None, :])[0])

    def test_done_callback_may_reenter_the_scorer_on_cancel(
        self, tiny_network, fitted_monitors, probe_frames
    ):
        """close(drain=False) cancels futures outside the scorer lock, so a
        done-callback that calls back into the scorer cannot deadlock."""
        import threading

        scorer = _scorer(
            tiny_network, fitted_monitors, max_batch=1000, max_latency=60.0
        ).start()
        future = scorer.submit(probe_frames[0])
        reentered = []

        def callback(f):
            try:
                scorer.submit(probe_frames[1])  # re-enters the scorer lock
            except ServiceClosedError:
                reentered.append(True)

        future.add_done_callback(callback)
        closer = threading.Thread(target=lambda: scorer.close(drain=False))
        closer.start()
        closer.join(TIMEOUT)
        assert not closer.is_alive(), "close(drain=False) deadlocked"
        assert future.cancelled()
        assert reentered == [True]


class TestExceptionPropagation:
    class ExplodingMonitor:
        is_fitted = True

        def warn_batch(self, inputs):
            raise RuntimeError("monitor exploded")

    def test_scoring_failure_lands_in_every_future(
        self, tiny_network, fitted_monitors, probe_frames
    ):
        with _scorer(
            tiny_network, fitted_monitors, max_batch=4, max_latency=0.002
        ) as scorer:
            scorer.register("exploding", self.ExplodingMonitor())
            futures = scorer.submit_many(probe_frames[:4])
            for future in futures:
                with pytest.raises(RuntimeError, match="monitor exploded"):
                    future.result(timeout=TIMEOUT)
            # The worker survives the failed batch: after retiring the bad
            # monitor, fresh submissions score normally.
            scorer.unregister("exploding")
            result = scorer.submit(probe_frames[0]).result(timeout=TIMEOUT)
            assert set(result.warns) == set(fitted_monitors)
            stats = scorer.stats.snapshot()
        assert stats["frames_failed"] == 4
        assert stats["frames_scored"] >= 1


class TestValidation:
    def test_register_rejects_unfitted(self, tiny_network, fitted_monitors):
        scorer = _scorer(tiny_network, fitted_monitors)
        with pytest.raises(NotFittedError):
            scorer.register("unfitted", MinMaxMonitor(tiny_network, 4))

    def test_register_rejects_duplicate_names(self, tiny_network, fitted_monitors):
        scorer = _scorer(tiny_network, fitted_monitors)
        with pytest.raises(ConfigurationError):
            scorer.register("minmax", fitted_monitors["minmax"])

    def test_register_rejects_foreign_network_by_default(
        self, tiny_network, tiny_inputs, fitted_monitors
    ):
        other_network = mlp(6, [10, 8], 3, activation="relu", seed=99)
        foreign = MinMaxMonitor(other_network, 4).fit(tiny_inputs)
        scorer = _scorer(tiny_network, fitted_monitors)
        with pytest.raises(ConfigurationError, match="different network"):
            scorer.register("foreign", foreign)
        scorer.register("foreign", foreign, allow_foreign=True)
        assert "foreign" in scorer.registry

    def test_register_rejects_objects_without_batched_api(
        self, tiny_network, fitted_monitors
    ):
        scorer = _scorer(tiny_network, fitted_monitors)
        with pytest.raises(ConfigurationError, match="warn_batch"):
            scorer.register("bogus", object())

    def test_unregister_unknown_name(self, tiny_network, fitted_monitors):
        scorer = _scorer(tiny_network, fitted_monitors)
        with pytest.raises(ConfigurationError):
            scorer.unregister("nope")

    def test_submit_rejects_wrong_width(self, tiny_network, fitted_monitors):
        with _scorer(tiny_network, fitted_monitors) as scorer:
            with pytest.raises(ShapeError):
                scorer.submit(np.zeros(5))

    def test_engine_must_wrap_host_network(self, tiny_network):
        from repro.runtime.engine import BatchScoringEngine

        other = mlp(6, [10, 8], 3, activation="relu", seed=98)
        with pytest.raises(ConfigurationError):
            StreamingScorer(tiny_network, engine=BatchScoringEngine(other))


class TestBackpressure:
    def test_overload_raises_instead_of_queueing(
        self, tiny_network, fitted_monitors, probe_frames
    ):
        scorer = _scorer(
            tiny_network,
            fitted_monitors,
            max_batch=4,
            max_latency=60.0,
            max_pending=4,
        )
        # Worker deliberately not started: the queue can only grow.
        scorer._worker = type(
            "FakeWorker", (), {"is_alive": staticmethod(lambda: True)}
        )()
        scorer.submit_many(probe_frames[:4])
        with pytest.raises(ServiceOverloadedError):
            scorer.submit(probe_frames[4])

    def test_one_burst_cannot_blow_past_the_bound(
        self, tiny_network, fitted_monitors, probe_frames
    ):
        scorer = _scorer(
            tiny_network,
            fitted_monitors,
            max_batch=4,
            max_latency=60.0,
            max_pending=4,
        )
        scorer._worker = type(
            "FakeWorker", (), {"is_alive": staticmethod(lambda: True)}
        )()
        # A single oversized burst is rejected atomically: nothing enqueued.
        with pytest.raises(ServiceOverloadedError):
            scorer.submit_many(probe_frames[:10])
        assert len(scorer._batcher) == 0
        assert scorer.stats.snapshot()["frames_submitted"] == 0
