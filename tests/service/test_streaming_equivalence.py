"""Streaming-vs-offline equivalence, including property-based interleavings.

The acceptance bar of the streaming service: for *any* way of chopping a
frame stream into submit/submit_many calls, under *any* batching policy, the
resolved verdicts are identical to one offline ``warn_batch`` over the same
frames.  Hypothesis drives random frame sets, random burst boundaries and
random policies; the deterministic tests below pin the fixed corner cases.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.monitors.boolean import BooleanPatternMonitor
from repro.monitors.ensemble import MonitorEnsemble
from repro.monitors.builder import ClassConditionalMonitor, MonitorBuilder
from repro.monitors.minmax import MinMaxMonitor
from repro.service import BatchPolicy, StreamingScorer

TIMEOUT = 10.0


def _stream(scorer, frames, burst_sizes):
    """Submit ``frames`` chopped into the given burst sizes; return warns."""
    futures = []
    cursor = 0
    for burst in burst_sizes:
        chunk = frames[cursor : cursor + burst]
        cursor += burst
        if burst == 1:
            futures.append(scorer.submit(chunk[0]))
        else:
            futures.extend(scorer.submit_many(chunk))
    assert cursor == frames.shape[0]
    return [future.result(timeout=TIMEOUT) for future in futures]


@st.composite
def interleavings(draw):
    """Random frame count, burst boundaries and batching policy."""
    num_frames = draw(st.integers(min_value=1, max_value=24))
    bursts = []
    remaining = num_frames
    while remaining > 0:
        burst = draw(st.integers(min_value=1, max_value=remaining))
        bursts.append(burst)
        remaining -= burst
    policy = BatchPolicy(
        max_batch=draw(st.integers(min_value=1, max_value=8)),
        max_latency=draw(st.sampled_from([0.0, 0.001, 0.01])),
    )
    seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
    return num_frames, bursts, policy, seed


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(case=interleavings())
def test_streaming_equals_offline_for_random_interleavings(
    tiny_network, fitted_monitors, case
):
    num_frames, bursts, policy, seed = case
    frames = np.random.default_rng(seed).uniform(-2.0, 2.0, size=(num_frames, 6))
    with StreamingScorer(tiny_network, policy=policy) as scorer:
        for name, monitor in fitted_monitors.items():
            scorer.register(name, monitor)
        results = _stream(scorer, frames, bursts)
    assert len(results) == num_frames
    for name, monitor in fitted_monitors.items():
        streamed = np.array([result.warns[name] for result in results])
        offline = monitor.warn_batch(frames)
        np.testing.assert_array_equal(streamed, offline)


def test_single_frame_stream(tiny_network, fitted_monitors, probe_frames):
    """A lone frame resolves correctly (deadline flush of a 1-frame batch)."""
    with StreamingScorer(
        tiny_network, policy=BatchPolicy(max_batch=64, max_latency=0.01)
    ) as scorer:
        for name, monitor in fitted_monitors.items():
            scorer.register(name, monitor)
        result = scorer.submit(probe_frames[0]).result(timeout=TIMEOUT)
    for name, monitor in fitted_monitors.items():
        assert result.warns[name] == bool(monitor.warn_batch(probe_frames[:1])[0])


def test_empty_burst_is_a_no_op(tiny_network, fitted_monitors):
    with StreamingScorer(tiny_network) as scorer:
        for name, monitor in fitted_monitors.items():
            scorer.register(name, monitor)
        futures = scorer.submit_many(np.zeros((0, 6)))
    assert futures == []
    assert scorer.stats.snapshot()["frames_submitted"] == 0


def test_ensemble_and_class_conditional_members(trained_digits):
    """Composite monitors (ensemble, class-conditional) stream correctly."""
    network, train, test = trained_digits
    ensemble = MonitorEnsemble(
        [
            MinMaxMonitor(network, 2).fit(train.inputs),
            BooleanPatternMonitor(network, 4, thresholds="mean").fit(train.inputs),
        ],
        vote="any",
    )
    conditional = ClassConditionalMonitor(
        MonitorBuilder("minmax", 4), num_classes=4
    ).fit(network, train.inputs)
    frames = test.inputs
    with StreamingScorer(
        network, policy=BatchPolicy(max_batch=16, max_latency=0.002)
    ) as scorer:
        scorer.register("ensemble", ensemble)
        scorer.register("conditional", conditional)
        futures = scorer.submit_many(frames)
        results = [future.result(timeout=TIMEOUT) for future in futures]
    np.testing.assert_array_equal(
        np.array([result.warns["ensemble"] for result in results]),
        ensemble.warn_batch(frames),
    )
    np.testing.assert_array_equal(
        np.array([result.warns["conditional"] for result in results]),
        conditional.warn_batch(frames),
    )


def test_streaming_matches_engine_score_batch(
    tiny_network, fitted_monitors, probe_frames
):
    """The service path is the engine path: identical to one score_batch."""
    from repro.runtime.engine import BatchScoringEngine

    engine = BatchScoringEngine(tiny_network)
    offline = engine.score_batch(fitted_monitors, probe_frames)
    with StreamingScorer(
        tiny_network, policy=BatchPolicy(max_batch=len(probe_frames), max_latency=1.0)
    ) as scorer:
        for name, monitor in fitted_monitors.items():
            scorer.register(name, monitor)
        results = [
            future.result(timeout=TIMEOUT)
            for future in scorer.submit_many(probe_frames)
        ]
    for name in fitted_monitors:
        np.testing.assert_array_equal(
            np.array([result.warns[name] for result in results]),
            offline.warns[name],
        )
