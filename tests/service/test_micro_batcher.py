"""Deterministic unit tests of the micro-batching policy core.

:class:`MicroBatcher` is the pure coalescing logic of the streaming scorer —
no threads, no wall clock — so every policy decision (flush on size, flush on
deadline, drain on shutdown) is pinned here against explicit timestamps.
"""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.service import BatchPolicy, FrameRequest, MicroBatcher


def _request(enqueued_at: float) -> FrameRequest:
    return FrameRequest(frame=np.zeros(4), enqueued_at=enqueued_at)


class TestBatchPolicy:
    def test_defaults_are_valid(self):
        policy = BatchPolicy()
        assert policy.max_batch >= 1
        assert policy.max_latency >= 0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_batch": 0},
            {"max_latency": -0.1},
            {"max_batch": 8, "max_pending": 4},
        ],
    )
    def test_invalid_policies_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            BatchPolicy(**kwargs)


class TestFlushOnSize:
    def test_not_ready_below_max_batch(self):
        batcher = MicroBatcher(BatchPolicy(max_batch=4, max_latency=10.0))
        for t in (0.0, 0.1, 0.2):
            batcher.append(_request(t))
        assert not batcher.ready(now=0.3)
        assert not batcher.full

    def test_ready_at_max_batch_regardless_of_deadline(self):
        batcher = MicroBatcher(BatchPolicy(max_batch=4, max_latency=10.0))
        for t in (0.0, 0.1, 0.2, 0.3):
            batcher.append(_request(t))
        assert batcher.full
        # Far before the latency deadline: size alone triggers the flush.
        assert batcher.ready(now=0.3)

    def test_take_pops_oldest_first_and_caps_at_max_batch(self):
        batcher = MicroBatcher(BatchPolicy(max_batch=3, max_latency=10.0))
        for t in range(5):
            batcher.append(_request(float(t)))
        batch = batcher.take()
        assert [request.enqueued_at for request in batch] == [0.0, 1.0, 2.0]
        assert len(batcher) == 2
        # The remainder becomes the next batch, still oldest-first.
        assert [request.enqueued_at for request in batcher.take()] == [3.0, 4.0]


class TestFlushOnDeadline:
    def test_deadline_is_anchored_on_the_oldest_frame(self):
        batcher = MicroBatcher(BatchPolicy(max_batch=100, max_latency=0.5))
        batcher.append(_request(1.0))
        batcher.append(_request(1.4))
        assert batcher.deadline() == pytest.approx(1.5)

    def test_not_ready_before_deadline_ready_after(self):
        batcher = MicroBatcher(BatchPolicy(max_batch=100, max_latency=0.5))
        batcher.append(_request(1.0))
        assert not batcher.ready(now=1.49)
        assert batcher.ready(now=1.5)
        assert batcher.ready(now=99.0)

    def test_zero_latency_flushes_immediately(self):
        batcher = MicroBatcher(BatchPolicy(max_batch=100, max_latency=0.0))
        batcher.append(_request(2.0))
        assert batcher.ready(now=2.0)

    def test_empty_batcher_is_never_ready(self):
        batcher = MicroBatcher(BatchPolicy(max_batch=1, max_latency=0.0))
        assert batcher.deadline() is None
        assert not batcher.ready(now=1e9)
        assert batcher.take() == []


class TestDrain:
    def test_drain_empties_everything_in_batches(self):
        batcher = MicroBatcher(BatchPolicy(max_batch=4, max_latency=10.0))
        for t in range(10):
            batcher.append(_request(float(t)))
        batches = batcher.drain()
        assert [len(batch) for batch in batches] == [4, 4, 2]
        assert len(batcher) == 0
        flattened = [request.enqueued_at for batch in batches for request in batch]
        assert flattened == [float(t) for t in range(10)]


class TestBackpressure:
    def test_saturated_only_with_max_pending(self):
        unbounded = MicroBatcher(BatchPolicy(max_batch=2, max_latency=1.0))
        for t in range(100):
            unbounded.append(_request(float(t)))
        assert not unbounded.saturated

        bounded = MicroBatcher(
            BatchPolicy(max_batch=2, max_latency=1.0, max_pending=3)
        )
        for t in range(3):
            assert not bounded.saturated
            bounded.append(_request(float(t)))
        assert bounded.saturated

    def test_would_overflow_counts_the_whole_burst(self):
        bounded = MicroBatcher(
            BatchPolicy(max_batch=2, max_latency=1.0, max_pending=4)
        )
        # An empty queue admits a burst up to the bound but no further.
        assert not bounded.would_overflow(4)
        assert bounded.would_overflow(5)
        bounded.append(_request(0.0))
        assert not bounded.would_overflow(3)
        assert bounded.would_overflow(4)
