"""Regression tests for the ServiceStats ledger's consistency guarantees.

The bug pinned here: ``record_batch`` bumped ``batches`` and then indexed
``flush_reasons[reason]`` directly — an unknown reason string (the pool's
``"adaptive"``, or any future front-end's) raised ``KeyError`` *inside* the
critical section, leaving the ledger half-updated (batch counted, reason /
latency window / scored counters not) and killing the recording thread.
``record_batch`` must be total over reason strings and atomic under the
stats lock.
"""

import threading

import numpy as np

from repro.service.streaming import ServiceStats


class TestUnknownReasonTotality:
    def test_unknown_reason_is_counted_not_fatal(self):
        stats = ServiceStats()
        stats.record_batch(4, "some-future-reason", [0.001] * 4, failed=False)
        snapshot = stats.snapshot()
        assert snapshot["batches"] == 1
        assert snapshot["flush_reasons"]["some-future-reason"] == 1
        assert snapshot["frames_scored"] == 4

    def test_adaptive_reason_is_a_first_class_counter(self):
        snapshot = ServiceStats().snapshot()
        assert snapshot["flush_reasons"]["adaptive"] == 0

    def test_no_partial_update_on_any_reason(self):
        # Every counter the critical section touches must move together:
        # batches, the reason tally, the latency window and frame counters.
        stats = ServiceStats()
        for index, reason in enumerate(["size", "adaptive", "deadline", "drain", "x"]):
            stats.record_batch(2, reason, [0.001, 0.002], failed=False)
            snapshot = stats.snapshot()
            assert snapshot["batches"] == index + 1
            assert sum(snapshot["flush_reasons"].values()) == index + 1
            assert snapshot["frames_scored"] == 2 * (index + 1)

    def test_failed_batch_with_unknown_reason(self):
        stats = ServiceStats()
        stats.record_batch(3, "weird", [], failed=True)
        snapshot = stats.snapshot()
        assert snapshot["frames_failed"] == 3
        assert snapshot["flush_reasons"]["weird"] == 1


class TestLockDiscipline:
    def test_concurrent_recording_stays_consistent(self):
        # Hammer the ledger from many threads with every reason kind; the
        # invariant sum(flush_reasons) == batches must hold at the end —
        # it breaks if any path mutates outside the lock or dies mid-update.
        stats = ServiceStats(latency_window=64)
        reasons = ["size", "adaptive", "deadline", "drain", "novel"]
        per_thread = 200

        def worker(offset):
            for i in range(per_thread):
                reason = reasons[(offset + i) % len(reasons)]
                stats.record_batch(1, reason, [0.001], failed=(i % 7 == 0))
                stats.record_submitted(1)

        threads = [threading.Thread(target=worker, args=(k,)) for k in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        snapshot = stats.snapshot()
        total = 8 * per_thread
        assert snapshot["batches"] == total
        assert sum(snapshot["flush_reasons"].values()) == total
        assert snapshot["frames_scored"] + snapshot["frames_failed"] == total
        assert snapshot["frames_submitted"] == total

    def test_snapshot_is_a_copy(self):
        stats = ServiceStats()
        stats.record_batch(1, "size", [0.001], failed=False)
        snapshot = stats.snapshot()
        snapshot["flush_reasons"]["size"] = 999
        assert stats.snapshot()["flush_reasons"]["size"] == 1

    def test_latency_window_is_bounded(self):
        stats = ServiceStats(latency_window=8)
        stats.record_batch(100, "size", list(np.linspace(0.001, 0.1, 100)), failed=False)
        assert len(stats._latencies) == 8
