"""Shared fixtures for the streaming service tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.monitors.boolean import BooleanPatternMonitor
from repro.monitors.minmax import MinMaxMonitor


@pytest.fixture(scope="session")
def fitted_monitors(tiny_network, tiny_inputs):
    """Two fitted monitor families on the session's tiny network."""
    return {
        "minmax": MinMaxMonitor(tiny_network, 4).fit(tiny_inputs),
        "boolean": BooleanPatternMonitor(tiny_network, 4, thresholds="mean").fit(
            tiny_inputs
        ),
    }


@pytest.fixture
def probe_frames(rng) -> np.ndarray:
    """A batch of operational frames for the tiny network."""
    return rng.uniform(-2.0, 2.0, size=(48, 6))
