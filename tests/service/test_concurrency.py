"""Multi-producer stress tests of the streaming scorer.

Several producer threads interleave submissions while one worker coalesces
and scores; the invariants are (a) every future resolves, (b) every resolved
verdict equals the offline ``warn_batch`` answer for its frame, and (c) the
stats ledger balances.  A quick variant runs in tier 1; the heavy variant is
``slow`` (run in CI's slow tier).
"""

import threading
import time

import numpy as np
import pytest

from repro.service import BatchPolicy, StreamingScorer

TIMEOUT = 30.0


def _producer(scorer, frames, out, index, rng_seed):
    """Submit ``frames`` as a random mix of singles and bursts."""
    rng = np.random.default_rng(rng_seed)
    futures = []
    cursor = 0
    while cursor < frames.shape[0]:
        burst = int(rng.integers(1, 9))
        chunk = frames[cursor : cursor + burst]
        cursor += chunk.shape[0]
        if chunk.shape[0] == 1 and rng.integers(2):
            futures.append(scorer.submit(chunk[0]))
        else:
            futures.extend(scorer.submit_many(chunk))
    out[index] = futures


def _run_stress(network, monitors, num_producers, frames_per_producer, rng):
    frame_sets = [
        rng.uniform(-2.0, 2.0, size=(frames_per_producer, 6))
        for _ in range(num_producers)
    ]
    collected = [None] * num_producers
    with StreamingScorer(
        network, policy=BatchPolicy(max_batch=16, max_latency=0.001)
    ) as scorer:
        for name, monitor in monitors.items():
            scorer.register(name, monitor)
        threads = [
            threading.Thread(
                target=_producer, args=(scorer, frame_sets[i], collected, i, 1000 + i)
            )
            for i in range(num_producers)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(TIMEOUT)
        results = [
            [future.result(timeout=TIMEOUT) for future in futures]
            for futures in collected
        ]
        stats = scorer.stats.snapshot()

    total = num_producers * frames_per_producer
    assert stats["frames_submitted"] == total
    assert stats["frames_scored"] == total
    assert stats["frames_failed"] == 0
    # Per-producer verdicts equal the offline batch answer for those frames.
    for frames, producer_results in zip(frame_sets, results):
        for name, monitor in monitors.items():
            streamed = np.array([result.warns[name] for result in producer_results])
            np.testing.assert_array_equal(streamed, monitor.warn_batch(frames))
    return scorer, stats


def test_multi_producer_quick(tiny_network, fitted_monitors, rng):
    _run_stress(tiny_network, fitted_monitors, num_producers=4, frames_per_producer=32, rng=rng)


@pytest.mark.slow
def test_multi_producer_stress(tiny_network, fitted_monitors, rng):
    scorer, stats = _run_stress(
        tiny_network, fitted_monitors, num_producers=8, frames_per_producer=200, rng=rng
    )
    # The shared cache stayed within its configured bound under churn.
    assert scorer.engine.cache.num_entries <= scorer.engine.cache.max_entries
    assert stats["batches"] >= stats["frames_scored"] / 16


@pytest.mark.slow
def test_producers_racing_registration(tiny_network, fitted_monitors, rng):
    """Registering/unregistering a monitor mid-stream never corrupts scoring.

    Frames scored while the extra member happened to be registered carry its
    verdict; all frames always carry the two stable members' verdicts.
    """
    from repro.monitors.minmax import MinMaxMonitor

    extra = MinMaxMonitor(tiny_network, 2).fit(rng.uniform(-1.0, 1.0, size=(16, 6)))
    frames = rng.uniform(-2.0, 2.0, size=(400, 6))
    stop = threading.Event()

    def churn():
        registered = False
        while not stop.is_set():
            if registered:
                scorer.unregister("extra")
            else:
                scorer.register("extra", extra)
            registered = not registered
            time.sleep(0.0005)

    with StreamingScorer(
        tiny_network, policy=BatchPolicy(max_batch=8, max_latency=0.0005)
    ) as scorer:
        for name, monitor in fitted_monitors.items():
            scorer.register(name, monitor)
        churner = threading.Thread(target=churn)
        churner.start()
        try:
            futures = [scorer.submit(frame) for frame in frames]
            results = [future.result(timeout=TIMEOUT) for future in futures]
        finally:
            stop.set()
            churner.join(TIMEOUT)
    offline = {
        name: monitor.warn_batch(frames) for name, monitor in fitted_monitors.items()
    }
    extra_offline = extra.warn_batch(frames)
    for index, result in enumerate(results):
        for name in fitted_monitors:
            assert result.warns[name] == offline[name][index]
        if "extra" in result.warns:
            assert result.warns["extra"] == extra_offline[index]
