"""Tests for unified network bound propagation and the perturbation estimate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError, LayerIndexError
from repro.symbolic.interval import Box
from repro.symbolic.propagation import (
    PROPAGATION_METHODS,
    perturbation_bounds,
    propagate_bounds,
    propagate_box,
    propagate_star,
    propagate_zonotope,
    propagation_backends,
)


class TestPropagateBounds:
    @pytest.mark.parametrize("method", PROPAGATION_METHODS)
    def test_degenerate_box_equals_concrete_output(self, tiny_network, tiny_inputs, method):
        x = tiny_inputs[0]
        box = Box.from_point(x)
        result = propagate_bounds(tiny_network, box, 0, tiny_network.num_layers, method)
        concrete = tiny_network.forward(x)
        assert result.contains(concrete, tolerance=1e-6)
        assert result.width_sum() < 1e-6

    @pytest.mark.parametrize("method", PROPAGATION_METHODS)
    def test_soundness_on_sampled_perturbations(self, tiny_network, tiny_inputs, method):
        x = tiny_inputs[1]
        delta = 0.1
        box = Box.from_center(x, delta)
        result = propagate_bounds(tiny_network, box, 0, 4, method)
        rng = np.random.default_rng(0)
        for perturbed in box.sample(40, rng=rng):
            value = tiny_network.forward_to(4, perturbed)
            assert result.contains(value, tolerance=1e-6)

    def test_zonotope_no_looser_than_box(self, tiny_network, tiny_inputs):
        box = Box.from_center(tiny_inputs[2], 0.05)
        box_result = propagate_bounds(tiny_network, box, 0, tiny_network.num_layers, "box")
        zonotope_result = propagate_bounds(
            tiny_network, box, 0, tiny_network.num_layers, "zonotope"
        )
        assert zonotope_result.width_sum() <= box_result.width_sum() + 1e-9

    def test_star_no_looser_than_box(self, tiny_network, tiny_inputs):
        box = Box.from_center(tiny_inputs[3], 0.05)
        box_result = propagate_bounds(tiny_network, box, 0, 4, "box")
        star_result = propagate_bounds(tiny_network, box, 0, 4, "star")
        assert star_result.width_sum() <= box_result.width_sum() + 1e-6

    def test_tanh_network_supported_by_all_backends(self, tiny_tanh_network):
        x = np.zeros(tiny_tanh_network.input_dim)
        box = Box.from_center(x, 0.1)
        for method in PROPAGATION_METHODS:
            result = propagate_bounds(
                tiny_tanh_network, box, 0, tiny_tanh_network.num_layers, method
            )
            concrete = tiny_tanh_network.forward(x)
            assert result.contains(concrete, tolerance=1e-6)

    def test_unknown_method_rejected(self, tiny_network, tiny_inputs):
        box = Box.from_point(tiny_inputs[0])
        with pytest.raises(ConfigurationError):
            propagate_bounds(tiny_network, box, 0, 2, method="octagon")

    def test_unknown_method_is_a_value_error_listing_backends(
        self, tiny_network, tiny_inputs
    ):
        """An unknown back-end must fail as a ValueError naming the choices."""
        box = Box.from_point(tiny_inputs[0])
        with pytest.raises(ValueError) as excinfo:
            propagate_bounds(tiny_network, box, 0, 2, method="octagon")
        message = str(excinfo.value)
        assert "octagon" in message
        for backend in propagation_backends():
            assert backend in message

    def test_invalid_slice_rejected(self, tiny_network, tiny_inputs):
        box = Box.from_point(tiny_inputs[0])
        with pytest.raises(LayerIndexError):
            propagate_box(tiny_network, box, 2, 2)
        with pytest.raises(LayerIndexError):
            propagate_zonotope(tiny_network, box, 5, 3)

    def test_backends_registry_lists_all(self):
        backends = propagation_backends()
        assert set(backends) == set(PROPAGATION_METHODS)
        assert backends["star"] is propagate_star


class TestPerturbationBounds:
    def test_zero_delta_gives_point_box(self, tiny_network, tiny_inputs):
        x = tiny_inputs[0]
        result = perturbation_bounds(tiny_network, x, monitored_layer=4, delta=0.0)
        concrete = tiny_network.forward_to(4, x)
        np.testing.assert_allclose(result.low, concrete, atol=1e-12)
        np.testing.assert_allclose(result.high, concrete, atol=1e-12)

    def test_bounds_contain_unperturbed_feature(self, tiny_network, tiny_inputs):
        x = tiny_inputs[4]
        result = perturbation_bounds(tiny_network, x, monitored_layer=4, delta=0.05)
        assert result.contains(tiny_network.forward_to(4, x), tolerance=1e-9)

    def test_bounds_widen_monotonically_with_delta(self, tiny_network, tiny_inputs):
        x = tiny_inputs[5]
        widths = [
            perturbation_bounds(tiny_network, x, monitored_layer=4, delta=delta).width_sum()
            for delta in (0.01, 0.05, 0.1)
        ]
        assert widths[0] <= widths[1] <= widths[2]

    def test_feature_level_perturbation_layer(self, tiny_network, tiny_inputs):
        """Perturbation at a hidden layer (k_p > 0) also yields sound bounds."""
        x = tiny_inputs[6]
        delta = 0.1
        k_p, k = 2, 4
        result = perturbation_bounds(
            tiny_network, x, monitored_layer=k, perturbation_layer=k_p, delta=delta
        )
        anchor = tiny_network.forward_to(k_p, x)
        rng = np.random.default_rng(1)
        for _ in range(30):
            perturbed_feature = anchor + rng.uniform(-delta, delta, size=anchor.shape)
            value = tiny_network.forward_from_to(k_p + 1, k, perturbed_feature)
            assert result.contains(value, tolerance=1e-6)

    def test_negative_delta_rejected(self, tiny_network, tiny_inputs):
        with pytest.raises(ConfigurationError):
            perturbation_bounds(tiny_network, tiny_inputs[0], monitored_layer=3, delta=-0.1)

    def test_perturbation_layer_after_monitored_layer_rejected(self, tiny_network, tiny_inputs):
        with pytest.raises(ConfigurationError):
            perturbation_bounds(
                tiny_network,
                tiny_inputs[0],
                monitored_layer=2,
                perturbation_layer=3,
                delta=0.1,
            )

    @settings(max_examples=15, deadline=None)
    @given(delta=st.floats(0.0, 0.2), seed=st.integers(0, 10_000))
    def test_definition1_property(self, tiny_network, tiny_inputs, delta, seed):
        """Definition 1: every Δ-perturbation of the input maps inside the estimate."""
        x = tiny_inputs[7]
        k = tiny_network.num_layers
        estimate = perturbation_bounds(tiny_network, x, monitored_layer=k, delta=delta)
        rng = np.random.default_rng(seed)
        perturbed = x + rng.uniform(-delta, delta, size=x.shape)
        value = tiny_network.forward(perturbed)
        assert estimate.contains(value, tolerance=1e-6)
