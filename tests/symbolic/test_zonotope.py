"""Tests for the zonotope abstract domain."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ShapeError
from repro.symbolic.interval import Box
from repro.symbolic.zonotope import Zonotope


class TestConstruction:
    def test_from_box_round_trips_to_same_box(self):
        box = Box(np.array([-1.0, 2.0, 0.0]), np.array([1.0, 3.0, 0.0]))
        zonotope = Zonotope.from_box(box)
        recovered = zonotope.to_box()
        np.testing.assert_allclose(recovered.low, box.low)
        np.testing.assert_allclose(recovered.high, box.high)

    def test_degenerate_dimensions_get_no_generator(self):
        box = Box(np.array([0.0, 1.0]), np.array([0.0, 2.0]))
        zonotope = Zonotope.from_box(box)
        assert zonotope.num_generators == 1

    def test_from_point_has_no_generators(self):
        zonotope = Zonotope.from_point(np.array([1.0, 2.0]))
        assert zonotope.num_generators == 0
        np.testing.assert_array_equal(zonotope.radius(), [0.0, 0.0])

    def test_bad_generator_shape_rejected(self):
        with pytest.raises(ShapeError):
            Zonotope(np.zeros(3), np.zeros((2, 4)))


class TestAffine:
    def test_affine_is_exact_for_linear_maps(self):
        box = Box(np.array([0.0, -1.0]), np.array([2.0, 1.0]))
        zonotope = Zonotope.from_box(box)
        weights = np.array([[1.0, 1.0], [1.0, -1.0]])
        bias = np.array([0.5, 0.0])
        image = zonotope.affine(weights, bias)
        image_box = image.to_box()
        # dim 0: x0 + x1 + 0.5 with x0 in [0,2], x1 in [-1,1] -> [-0.5, 3.5]
        # dim 1: x0 - x1                                      -> [-1.0, 3.0]
        np.testing.assert_allclose(image_box.low, [-0.5, -1.0])
        np.testing.assert_allclose(image_box.high, [3.5, 3.0])

    def test_affine_dimension_mismatch_rejected(self):
        zonotope = Zonotope.from_point(np.zeros(2))
        with pytest.raises(ShapeError):
            zonotope.affine(np.zeros((3, 2)), np.zeros(2))

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_affine_soundness_property(self, seed):
        """Concrete affine images of sampled points stay in the zonotope box."""
        rng = np.random.default_rng(seed)
        center = rng.normal(size=3)
        box = Box.from_center(center, rng.uniform(0.0, 1.0, size=3))
        zonotope = Zonotope.from_box(box)
        weights = rng.normal(size=(3, 4))
        bias = rng.normal(size=4)
        image_box = zonotope.affine(weights, bias).to_box()
        for point in box.sample(50, rng=rng):
            assert image_box.contains(point @ weights + bias, tolerance=1e-7)

    def test_zonotope_tighter_than_box_after_two_affine_layers(self):
        """Correlation tracking makes zonotopes at least as tight as boxes."""
        rng = np.random.default_rng(3)
        box = Box.from_center(rng.normal(size=4), 0.5)
        w1, b1 = rng.normal(size=(4, 6)), rng.normal(size=6)
        w2, b2 = rng.normal(size=(6, 3)), rng.normal(size=3)
        box_image = box.affine(w1, b1).affine(w2, b2)
        zonotope_image = Zonotope.from_box(box).affine(w1, b1).affine(w2, b2).to_box()
        assert zonotope_image.width_sum() <= box_image.width_sum() + 1e-9
        assert box_image.contains_box(zonotope_image, tolerance=1e-9)


class TestReLU:
    def test_stable_positive_neurons_unchanged(self):
        zonotope = Zonotope(np.array([2.0]), np.array([[0.5]]))
        image = zonotope.relu().to_box()
        np.testing.assert_allclose(image.low, [1.5])
        np.testing.assert_allclose(image.high, [2.5])

    def test_stable_negative_neurons_become_zero(self):
        zonotope = Zonotope(np.array([-2.0]), np.array([[0.5]]))
        image = zonotope.relu().to_box()
        np.testing.assert_allclose(image.low, [0.0])
        np.testing.assert_allclose(image.high, [0.0])

    def test_unstable_neuron_bounds_contain_relu_image(self):
        zonotope = Zonotope(np.array([0.0]), np.array([[1.0]]))  # pre-activation [-1, 1]
        image = zonotope.relu().to_box()
        assert image.low[0] <= 0.0 + 1e-12
        assert image.high[0] >= 1.0 - 1e-12

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_relu_soundness_property(self, seed):
        rng = np.random.default_rng(seed)
        center = rng.normal(size=4)
        generators = rng.normal(size=(3, 4)) * 0.5
        zonotope = Zonotope(center, generators)
        image_box = zonotope.relu().to_box()
        eps = rng.uniform(-1, 1, size=(60, 3))
        points = center[None, :] + eps @ generators
        outputs = np.maximum(points, 0.0)
        assert np.all(outputs >= image_box.low[None, :] - 1e-9)
        assert np.all(outputs <= image_box.high[None, :] + 1e-9)


class TestMonotoneAndReduction:
    def test_elementwise_monotone_uses_bound_transform(self):
        zonotope = Zonotope(np.array([0.0]), np.array([[2.0]]))
        image = zonotope.elementwise_monotone(lambda lo, hi: (np.tanh(lo), np.tanh(hi)))
        box = image.to_box()
        np.testing.assert_allclose(box.low, np.tanh([-2.0]))
        np.testing.assert_allclose(box.high, np.tanh([2.0]))

    def test_reduce_generators_keeps_enclosure(self):
        rng = np.random.default_rng(5)
        zonotope = Zonotope(rng.normal(size=3), rng.normal(size=(20, 3)))
        reduced = zonotope.reduce_generators(6)
        assert reduced.num_generators <= 6
        original_box = zonotope.to_box()
        reduced_box = reduced.to_box()
        assert reduced_box.contains_box(original_box, tolerance=1e-9)

    def test_reduce_generators_noop_when_already_small(self):
        zonotope = Zonotope(np.zeros(2), np.eye(2))
        assert zonotope.reduce_generators(5) is zonotope

    def test_reduce_generators_negative_rejected(self):
        with pytest.raises(ShapeError):
            Zonotope(np.zeros(2), np.eye(2)).reduce_generators(-1)


class TestSampling:
    def test_samples_lie_in_bounding_box(self):
        rng = np.random.default_rng(7)
        zonotope = Zonotope(rng.normal(size=3), rng.normal(size=(5, 3)))
        box = zonotope.to_box()
        for sample in zonotope.sample(50, rng=rng):
            assert box.contains(sample, tolerance=1e-9)

    def test_translate_moves_center_only(self):
        zonotope = Zonotope(np.zeros(2), np.eye(2)).translate(np.array([1.0, 2.0]))
        np.testing.assert_array_equal(zonotope.center, [1.0, 2.0])
        assert zonotope.num_generators == 2
