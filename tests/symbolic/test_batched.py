"""Batched-vs-single equivalence and soundness of the batched domains.

The batched box must agree with the single-sample box to floating-point
round-off (the arithmetic per row is identical; only BLAS kernel selection
differs between matrix-vector and matrix-matrix products).  The batched
zonotope introduces zero generator slots for batch uniformity, which
reassociates bound sums, so its agreement is pinned at a tight tolerance.
The star back-end walks all rows in lockstep and answers bound queries
through the star-LP backends: bit-identical to the single-row walk while
every polytope is still a hypercube (closed-form tier), and LP-tolerance
close once unstable ReLUs make the bounds come from stacked HiGHS solves.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError, ShapeError
from repro.nn.layers import ActivationLayer, Dense, Dropout, Flatten, Scale
from repro.nn.network import Sequential, mlp
from repro.symbolic.batched import BatchedBox, BatchedZonotope
from repro.symbolic.interval import Box
from repro.symbolic.propagation import (
    perturbation_bounds,
    perturbation_bounds_batch,
    propagate_bounds,
    propagate_bounds_batch,
)
from repro.symbolic.zonotope import Zonotope

#: Tight agreement tolerance: identical arithmetic, possibly different
#: BLAS kernels / summation groupings.
RTOL = 1e-10
ATOL = 1e-12


def assert_rowwise_close(batched, single, label=""):
    np.testing.assert_allclose(batched, single, rtol=RTOL, atol=ATOL, err_msg=label)


@pytest.fixture(scope="module")
def rng():
    return np.random.default_rng(4242)


@pytest.fixture(scope="module")
def relu_network():
    return mlp(6, [12, 9], 3, activation="relu", seed=21)


@pytest.fixture(scope="module")
def tanh_network():
    return mlp(5, [8, 6], 2, activation="tanh", seed=22)


@pytest.fixture(scope="module")
def mixed_network():
    """Network exercising Scale, Dropout and Flatten propagation rules."""
    return Sequential(
        [
            Scale(scale=0.5, shift=0.1),
            Dense(10),
            ActivationLayer("relu"),
            Dropout(rate=0.3),
            Flatten(),
            Dense(4),
        ],
        input_dim=6,
        seed=23,
    )


# ----------------------------------------------------------------------
# BatchedBox unit behaviour
# ----------------------------------------------------------------------
class TestBatchedBox:
    def test_from_centers_and_points(self, rng):
        centers = rng.normal(size=(7, 4))
        box = BatchedBox.from_centers(centers, 0.25)
        assert box.batch_size == 7 and box.dimension == 4
        assert_rowwise_close(box.centers, centers)
        assert_rowwise_close(box.radii, np.full((7, 4), 0.25))
        points = BatchedBox.from_points(centers)
        np.testing.assert_array_equal(points.lows, points.highs)

    def test_rejects_inverted_bounds(self):
        with pytest.raises(ShapeError):
            BatchedBox(np.ones((2, 3)), np.zeros((2, 3)))

    def test_rejects_negative_radius(self):
        with pytest.raises(ShapeError):
            BatchedBox.from_centers(np.zeros((2, 3)), -0.1)

    def test_affine_matches_single_box(self, rng):
        lows = rng.normal(size=(5, 4))
        highs = lows + rng.uniform(0, 1, size=(5, 4))
        weights = rng.normal(size=(4, 6))
        bias = rng.normal(size=6)
        batched = BatchedBox(lows, highs).affine(weights, bias)
        for i in range(5):
            single = Box(lows[i], highs[i]).affine(weights, bias)
            assert_rowwise_close(batched.lows[i], single.low, f"row {i} low")
            assert_rowwise_close(batched.highs[i], single.high, f"row {i} high")

    def test_contains_points_rowwise(self, rng):
        centers = rng.normal(size=(6, 3))
        box = BatchedBox.from_centers(centers, 0.5)
        inside = box.contains_points(centers)
        assert inside.all()
        outside = np.array(centers, copy=True)
        outside[2] += 10.0
        flags = box.contains_points(outside)
        assert not flags[2] and flags[[0, 1, 3, 4, 5]].all()

    def test_dimension_mismatch_raises(self):
        box = BatchedBox(np.zeros((2, 3)), np.ones((2, 3)))
        with pytest.raises(ShapeError):
            box.affine(np.eye(4), np.zeros(4))


# ----------------------------------------------------------------------
# BatchedZonotope unit behaviour
# ----------------------------------------------------------------------
class TestBatchedZonotope:
    def test_from_batched_box_bounds_roundtrip(self, rng):
        centers = rng.normal(size=(4, 5))
        box = BatchedBox.from_centers(centers, 0.2)
        zono = BatchedZonotope.from_batched_box(box)
        lows, highs = zono.bounds()
        assert_rowwise_close(lows, box.lows)
        assert_rowwise_close(highs, box.highs)

    def test_affine_matches_single_zonotope(self, rng):
        centers = rng.normal(size=(5, 4))
        box = BatchedBox.from_centers(centers, 0.3)
        weights = rng.normal(size=(4, 7))
        bias = rng.normal(size=7)
        batched = BatchedZonotope.from_batched_box(box).affine(weights, bias)
        b_lows, b_highs = batched.bounds()
        for i in range(5):
            single = Zonotope.from_box(Box(box.lows[i], box.highs[i])).affine(
                weights, bias
            )
            s_box = single.to_box()
            assert_rowwise_close(b_lows[i], s_box.low, f"row {i} low")
            assert_rowwise_close(b_highs[i], s_box.high, f"row {i} high")

    def test_relu_matches_single_zonotope(self, rng):
        # Centers straddling zero so all three ReLU cases occur.
        centers = rng.normal(scale=0.5, size=(8, 6))
        box = BatchedBox.from_centers(centers, 0.4)
        weights = rng.normal(size=(6, 6))
        bias = rng.normal(size=6)
        batched = (
            BatchedZonotope.from_batched_box(box).affine(weights, bias).relu()
        )
        b_lows, b_highs = batched.bounds()
        for i in range(8):
            single = (
                Zonotope.from_box(Box(box.lows[i], box.highs[i]))
                .affine(weights, bias)
                .relu()
            )
            s_box = single.to_box()
            assert_rowwise_close(b_lows[i], s_box.low, f"row {i} low")
            assert_rowwise_close(b_highs[i], s_box.high, f"row {i} high")

    def test_zero_slot_pruning_preserves_bounds(self, rng):
        centers = rng.normal(size=(3, 4))
        radii = np.zeros((3, 4))
        radii[:, 1] = 0.5  # only one active dimension -> 3 prunable slots
        box = BatchedBox(centers - radii, centers + radii)
        zono = BatchedZonotope.from_batched_box(box)
        assert zono.num_generators == 1
        lows, highs = zono.bounds()
        assert_rowwise_close(lows, box.lows)
        assert_rowwise_close(highs, box.highs)

    def test_generator_shape_validation(self):
        with pytest.raises(ShapeError):
            BatchedZonotope(np.zeros((2, 3)), np.zeros((2, 4, 2)))


# ----------------------------------------------------------------------
# Whole-network batched propagation vs the single-sample back-ends
# ----------------------------------------------------------------------
NETWORK_CASES = [
    ("relu_network", 6, 4),
    ("tanh_network", 5, 4),
    ("mixed_network", 6, 6),
]


@pytest.mark.parametrize("method", ["box", "zonotope", "star"])
@pytest.mark.parametrize("fixture_name,input_dim,to_layer", NETWORK_CASES)
def test_propagate_bounds_batch_matches_single(
    request, rng, method, fixture_name, input_dim, to_layer
):
    network = request.getfixturevalue(fixture_name)
    batch = 6 if method == "star" else 16
    centers = rng.uniform(-1.0, 1.0, size=(batch, input_dim))
    delta = 0.05
    lows, highs = propagate_bounds_batch(
        network, centers - delta, centers + delta, 0, to_layer, method=method
    )
    assert lows.shape == (batch, network.layer_output_dim(to_layer))
    for i in range(batch):
        single = propagate_bounds(
            network, Box.from_center(centers[i], delta), 0, to_layer, method=method
        )
        assert_rowwise_close(lows[i], single.low, f"{method} row {i} low")
        assert_rowwise_close(highs[i], single.high, f"{method} row {i} high")


@pytest.mark.parametrize("method", ["box", "zonotope", "star"])
@pytest.mark.parametrize("delta", [0.0, 0.03])
@pytest.mark.parametrize("perturbation_layer", [0, 2])
def test_perturbation_bounds_batch_matches_single(
    relu_network, rng, method, delta, perturbation_layer
):
    batch = 5 if method == "star" else 12
    inputs = rng.uniform(-1.0, 1.0, size=(batch, 6))
    monitored = 4
    lows, highs = perturbation_bounds_batch(
        relu_network, inputs, monitored, perturbation_layer, delta, method
    )
    for i in range(batch):
        single = perturbation_bounds(
            relu_network, inputs[i], monitored, perturbation_layer, delta, method
        )
        assert_rowwise_close(lows[i], single.low, f"{method} row {i} low")
        assert_rowwise_close(highs[i], single.high, f"{method} row {i} high")


def test_star_batched_rows_match_single_exactly_on_hypercube_walk(tanh_network, rng):
    """Monotone activations keep every star a hypercube: closed-form tier only.

    The closed-form tier is pure (identical) arithmetic per row whether rows
    are computed singly or stacked, so agreement is bitwise.
    """
    inputs = rng.uniform(-1.0, 1.0, size=(7, 5))
    lows, highs = perturbation_bounds_batch(tanh_network, inputs, 4, 0, 0.05, "star")
    for i in range(inputs.shape[0]):
        single = perturbation_bounds(tanh_network, inputs[i], 4, 0, 0.05, "star")
        np.testing.assert_array_equal(lows[i], single.low)
        np.testing.assert_array_equal(highs[i], single.high)


def test_star_batched_rows_match_single_on_lp_walk(relu_network, rng):
    """Unstable ReLUs constrain the polytopes: stacked-LP tier, 1e-6 pin."""
    inputs = rng.uniform(-1.0, 1.0, size=(7, 6))
    lows, highs = perturbation_bounds_batch(relu_network, inputs, 4, 0, 0.02, "star")
    for i in range(inputs.shape[0]):
        single = perturbation_bounds(relu_network, inputs[i], 4, 0, 0.02, "star")
        np.testing.assert_allclose(lows[i], single.low, rtol=0.0, atol=1e-6)
        np.testing.assert_allclose(highs[i], single.high, rtol=0.0, atol=1e-6)


def test_zonotope_chunked_walk_matches_unchunked(relu_network, rng, monkeypatch):
    """Row chunking (memory bound) must not change zonotope bounds."""
    from repro.symbolic import propagation as propagation_module

    inputs = rng.uniform(-1.0, 1.0, size=(11, 6))
    reference = perturbation_bounds_batch(relu_network, inputs, 4, 0, 0.05, "zonotope")
    # Force a tiny element budget so the walk splits into several chunks.
    monkeypatch.setattr(propagation_module, "ZONOTOPE_CHUNK_ELEMENTS", 1)
    chunked = perturbation_bounds_batch(relu_network, inputs, 4, 0, 0.05, "zonotope")
    assert_rowwise_close(chunked[0], reference[0])
    assert_rowwise_close(chunked[1], reference[1])


def test_anchor_override_matches_recomputation(relu_network, rng):
    inputs = rng.uniform(-1.0, 1.0, size=(9, 6))
    anchors = relu_network.forward_to(2, inputs)
    direct = perturbation_bounds_batch(relu_network, inputs, 4, 2, 0.05, "box")
    via_anchors = perturbation_bounds_batch(
        relu_network, inputs, 4, 2, 0.05, "box", anchors=anchors
    )
    np.testing.assert_array_equal(direct[0], via_anchors[0])
    np.testing.assert_array_equal(direct[1], via_anchors[1])


def test_anchor_row_count_mismatch_raises(relu_network, rng):
    inputs = rng.uniform(-1.0, 1.0, size=(4, 6))
    anchors = relu_network.forward_to(2, inputs)[:3]
    with pytest.raises(ConfigurationError):
        perturbation_bounds_batch(
            relu_network, inputs, 4, 2, 0.05, "box", anchors=anchors
        )


# ----------------------------------------------------------------------
# Property-based soundness: batched bounds contain concrete perturbations
# ----------------------------------------------------------------------
@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    delta=st.floats(min_value=1e-4, max_value=0.3),
    method=st.sampled_from(["box", "zonotope"]),
)
def test_batched_bounds_contain_perturbed_outputs(
    relu_network, seed, delta, method
):
    """Soundness: every Δ-perturbation of every row lands inside its bound."""
    local_rng = np.random.default_rng(seed)
    inputs = local_rng.uniform(-1.0, 1.0, size=(6, 6))
    monitored = 4
    lows, highs = perturbation_bounds_batch(
        relu_network, inputs, monitored, 0, delta, method
    )
    noise = local_rng.uniform(-delta, delta, size=(5,) + inputs.shape)
    for perturbed in inputs[None, :, :] + noise:
        outputs = np.atleast_2d(relu_network.forward_to(monitored, perturbed))
        assert np.all(outputs >= lows - 1e-9), "lower bound violated"
        assert np.all(outputs <= highs + 1e-9), "upper bound violated"


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    delta=st.floats(min_value=1e-4, max_value=0.2),
)
def test_batched_feature_level_bounds_contain_outputs(tanh_network, seed, delta):
    """Soundness at a feature-level perturbation layer (k_p > 0)."""
    local_rng = np.random.default_rng(seed)
    inputs = local_rng.uniform(-1.0, 1.0, size=(5, 5))
    monitored, k_p = 4, 2
    lows, highs = perturbation_bounds_batch(
        tanh_network, inputs, monitored, k_p, delta, "box"
    )
    anchors = np.atleast_2d(tanh_network.forward_to(k_p, inputs))
    noise = local_rng.uniform(-delta, delta, size=(4,) + anchors.shape)
    for perturbed in anchors[None, :, :] + noise:
        outputs = np.atleast_2d(
            tanh_network.forward_from_to(k_p + 1, monitored, perturbed)
        )
        assert np.all(outputs >= lows - 1e-9)
        assert np.all(outputs <= highs + 1e-9)
