"""Tests for the star-set abstract domain (LP-backed bounds and ReLU)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ShapeError
from repro.symbolic.interval import Box
from repro.symbolic.star import StarSet


class TestConstruction:
    def test_from_box_bounds_match_box(self):
        box = Box(np.array([-1.0, 0.0]), np.array([1.0, 2.0]))
        star = StarSet.from_box(box)
        low, high = star.bounds()
        np.testing.assert_allclose(low, box.low, atol=1e-7)
        np.testing.assert_allclose(high, box.high, atol=1e-7)

    def test_from_point_is_degenerate(self):
        star = StarSet.from_point(np.array([3.0, -2.0]))
        low, high = star.bounds()
        np.testing.assert_allclose(low, [3.0, -2.0])
        np.testing.assert_allclose(high, [3.0, -2.0])

    def test_bad_basis_shape_rejected(self):
        with pytest.raises(ShapeError):
            StarSet(np.zeros(2), np.zeros((1, 3)))

    def test_constraint_shape_mismatch_rejected(self):
        with pytest.raises(ShapeError):
            StarSet(np.zeros(2), np.eye(2), np.zeros((1, 3)), np.zeros(1))

    def test_is_empty_detects_infeasible_constraints(self):
        # alpha <= -1 and alpha >= +1 simultaneously.
        star = StarSet(
            np.zeros(1),
            np.ones((1, 1)),
            np.array([[1.0], [-1.0]]),
            np.array([-1.0, -1.0]),
        )
        assert star.is_empty()
        assert not StarSet.from_point(np.zeros(1)).is_empty()

    def test_is_empty_on_hypercube_domain_skips_the_lp(self, monkeypatch):
        """The default [-1, 1]^m polytope is trivially non-empty: no linprog."""
        from repro.symbolic import star as star_module

        def _forbidden(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("is_empty ran an LP on a hypercube domain")

        monkeypatch.setattr(star_module, "linprog", _forbidden)
        box = Box(np.array([-1.0, 0.0]), np.array([1.0, 2.0]))
        assert not StarSet.from_box(box).is_empty()
        assert not StarSet.from_point(np.zeros(3)).is_empty()

    def test_from_box_basis_is_diagonal_radius(self):
        """Vectorised from_box builds the same basis as the seed row loop."""
        low = np.array([-1.0, 2.0, 0.5, 3.0])
        high = np.array([1.0, 2.0, 1.5, 3.0])
        star = StarSet.from_box(Box(low, high))
        radius = (high - low) / 2.0
        nonzero = np.nonzero(radius)[0]
        expected = np.zeros((nonzero.size, low.size))
        for row, j in enumerate(nonzero):
            expected[row, j] = radius[j]
        np.testing.assert_array_equal(star.basis, expected)
        assert star.is_hypercube_domain
        lo, hi = star.bounds()
        np.testing.assert_allclose(lo, low, atol=1e-12)
        np.testing.assert_allclose(hi, high, atol=1e-12)


class TestAffine:
    def test_affine_exactness_matches_interval_arithmetic_for_single_layer(self):
        box = Box(np.array([0.0, -1.0]), np.array([1.0, 1.0]))
        star = StarSet.from_box(box)
        weights = np.array([[1.0, 2.0], [1.0, -1.0]])
        bias = np.array([0.0, 0.5])
        low, high = star.affine(weights, bias).bounds()
        expected = box.affine(weights, bias)
        np.testing.assert_allclose(low, expected.low, atol=1e-7)
        np.testing.assert_allclose(high, expected.high, atol=1e-7)

    def test_affine_dimension_mismatch_rejected(self):
        star = StarSet.from_point(np.zeros(2))
        with pytest.raises(ShapeError):
            star.affine(np.zeros((3, 1)), np.zeros(1))

    def test_star_tighter_or_equal_to_box_after_two_layers(self):
        rng = np.random.default_rng(11)
        box = Box.from_center(rng.normal(size=3), 0.4)
        w1, b1 = rng.normal(size=(3, 5)), rng.normal(size=5)
        w2, b2 = rng.normal(size=(5, 2)), rng.normal(size=2)
        box_image = box.affine(w1, b1).affine(w2, b2)
        star_image = StarSet.from_box(box).affine(w1, b1).affine(w2, b2).to_box()
        assert star_image.width_sum() <= box_image.width_sum() + 1e-6
        assert box_image.contains_box(star_image, tolerance=1e-6)


class TestReLU:
    def test_stable_negative_dimension_is_zeroed(self):
        star = StarSet(np.array([-3.0]), np.array([[0.5]]))
        low, high = star.relu().bounds()
        np.testing.assert_allclose(low, [0.0], atol=1e-9)
        np.testing.assert_allclose(high, [0.0], atol=1e-9)

    def test_stable_positive_dimension_unchanged(self):
        star = StarSet(np.array([3.0]), np.array([[0.5]]))
        low, high = star.relu().bounds()
        np.testing.assert_allclose(low, [2.5], atol=1e-7)
        np.testing.assert_allclose(high, [3.5], atol=1e-7)

    def test_unstable_dimension_triangle_relaxation_bounds(self):
        star = StarSet(np.array([0.5]), np.array([[1.5]]))  # pre-activation [-1, 2]
        low, high = star.relu().bounds()
        assert low[0] <= 1e-7
        assert high[0] >= 2.0 - 1e-7

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 5_000))
    def test_relu_soundness_property(self, seed):
        rng = np.random.default_rng(seed)
        box = Box.from_center(rng.normal(size=3), rng.uniform(0.1, 1.0, size=3))
        star = StarSet.from_box(box)
        weights = rng.normal(size=(3, 3))
        bias = rng.normal(size=3)
        transformed = star.affine(weights, bias).relu()
        out_box = transformed.to_box()
        for point in box.sample(30, rng=rng):
            concrete = np.maximum(point @ weights + bias, 0.0)
            assert out_box.contains(concrete, tolerance=1e-6)

    def test_star_relu_at_least_as_tight_as_box_relu(self):
        rng = np.random.default_rng(23)
        box = Box.from_center(rng.normal(size=4), 0.6)
        weights, bias = rng.normal(size=(4, 4)), rng.normal(size=4)
        box_out = box.affine(weights, bias).elementwise_monotone(
            lambda x: np.maximum(x, 0.0)
        )
        star_out = StarSet.from_box(box).affine(weights, bias).relu().to_box()
        assert star_out.width_sum() <= box_out.width_sum() + 1e-6


class TestSamplingAndMonotone:
    def test_elementwise_monotone_matches_box_transform(self):
        star = StarSet.from_box(Box(np.array([-1.0]), np.array([2.0])))
        image = star.elementwise_monotone(lambda lo, hi: (np.tanh(lo), np.tanh(hi)))
        low, high = image.bounds()
        np.testing.assert_allclose(low, np.tanh([-1.0]), atol=1e-7)
        np.testing.assert_allclose(high, np.tanh([2.0]), atol=1e-7)

    def test_sample_returns_points_inside_bounding_box(self):
        box = Box(np.array([0.0, 0.0]), np.array([1.0, 2.0]))
        star = StarSet.from_box(box)
        samples = star.sample(20, rng=np.random.default_rng(0))
        bounding = star.to_box()
        for sample in samples:
            assert bounding.contains(sample, tolerance=1e-6)

    def test_sample_of_point_star_returns_center(self):
        star = StarSet.from_point(np.array([1.0, 2.0]))
        samples = star.sample(5)
        np.testing.assert_allclose(samples, np.tile([1.0, 2.0], (5, 1)))
