"""Star-LP back-end registry, tier equivalence, and soundness.

The contract under test: every registered star-LP back-end answers the
same bound queries as the seed per-dimension loop
(:class:`~repro.symbolic.star_lp.LoopStarLPBackend`, reachable through
:func:`~repro.symbolic.propagation._star_bounds_loop`) — bit-identically
while the predicate polytopes are hypercubes (closed-form tier), and
within LP tolerance once unstable ReLUs constrain them.  On top of the
pinned equivalence, bounds must stay sound (contain sampled perturbed
outputs) and star-backed robust fits must produce identical abstractions
whichever back-end computed their perturbation estimates.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError
from repro.nn.network import mlp
from repro.symbolic.batched import BatchedBox
from repro.symbolic.interval import Box
from repro.symbolic.propagation import (
    _star_bounds_loop,
    perturbation_bounds_batch,
)
from repro.symbolic.star import StarSet
from repro.symbolic.star_lp import (
    DEFAULT_STAR_LP_BACKEND,
    STAR_LP_BACKEND_ENV,
    LoopStarLPBackend,
    ShardedStarLPBackend,
    StackedStarLPBackend,
    register_star_lp_backend,
    resolve_star_lp_backend,
    star_lp_backends,
    unregister_star_lp_backend,
)

#: LP-tier agreement bound (ISSUE acceptance: within 1e-6 of the seed loop).
LP_ATOL = 1e-6


@pytest.fixture(scope="module")
def relu_network():
    return mlp(5, [10, 8], 3, activation="relu", seed=31)


def forced_sharding_backend():
    """A sharded config that genuinely splits even tiny batches."""
    return ShardedStarLPBackend(min_shard_stars=1, max_workers=4)


TIER_CONFIGS = [
    ("loop", lambda: "loop"),
    ("stacked", lambda: "stacked"),
    ("sharded", lambda: "sharded"),
    ("forced-sharding", forced_sharding_backend),
]


class TestRegistry:
    def test_builtin_backends_registered(self):
        assert {"loop", "stacked", "sharded"} <= set(star_lp_backends())

    def test_unknown_name_raises_value_error_listing_backends(self):
        with pytest.raises(ValueError) as excinfo:
            resolve_star_lp_backend("no-such-backend")
        message = str(excinfo.value)
        assert "no-such-backend" in message
        for name in star_lp_backends():
            assert name in message

    def test_unknown_name_is_configuration_error(self):
        with pytest.raises(ConfigurationError):
            resolve_star_lp_backend("definitely-not-registered")

    def test_instance_passthrough(self):
        backend = StackedStarLPBackend()
        assert resolve_star_lp_backend(backend) is backend

    def test_named_backends_are_shared_instances(self):
        assert resolve_star_lp_backend("stacked") is resolve_star_lp_backend("stacked")

    def test_env_var_selects_default(self, monkeypatch):
        monkeypatch.setenv(STAR_LP_BACKEND_ENV, "loop")
        assert isinstance(resolve_star_lp_backend(None), LoopStarLPBackend)
        monkeypatch.delenv(STAR_LP_BACKEND_ENV)
        resolved = resolve_star_lp_backend(None)
        assert resolved is resolve_star_lp_backend(DEFAULT_STAR_LP_BACKEND)

    def test_register_and_unregister_custom_backend(self):
        class Recording(StackedStarLPBackend):
            name = "recording"

        try:
            register_star_lp_backend("recording", Recording)
            assert isinstance(resolve_star_lp_backend("recording"), Recording)
        finally:
            unregister_star_lp_backend("recording")
        with pytest.raises(ConfigurationError):
            resolve_star_lp_backend("recording")

    def test_register_rejects_bad_arguments(self):
        with pytest.raises(ConfigurationError):
            register_star_lp_backend("", StackedStarLPBackend)
        with pytest.raises(ConfigurationError):
            register_star_lp_backend("broken", "not-a-factory")

    def test_factory_must_return_backend(self):
        try:
            register_star_lp_backend("bogus", lambda: object())
            with pytest.raises(ConfigurationError):
                resolve_star_lp_backend("bogus")
        finally:
            unregister_star_lp_backend("bogus")

    def test_describe_reports_tier_structure(self):
        sharded = resolve_star_lp_backend("sharded")
        info = sharded.describe()
        assert info["name"] == "sharded"
        assert info["inner"]["name"] == "stacked"


class TestClosedFormTier:
    def test_hypercube_bounds_are_bitwise_identical_to_loop(self, rng):
        stars = [
            StarSet.from_box(
                Box.from_center(rng.normal(size=4), rng.uniform(0.05, 0.5))
            )
            for _ in range(9)
        ]
        loop_lows, loop_highs = LoopStarLPBackend().bounds_many(stars)
        stacked_lows, stacked_highs = StackedStarLPBackend().bounds_many(stars)
        np.testing.assert_array_equal(stacked_lows, loop_lows)
        np.testing.assert_array_equal(stacked_highs, loop_highs)

    def test_closed_form_tier_runs_zero_lps(self, rng, monkeypatch):
        from repro.symbolic import star_lp as star_lp_module

        def _forbidden(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("closed-form tier entered linprog")

        monkeypatch.setattr(star_lp_module, "linprog", _forbidden)
        backend = StackedStarLPBackend()
        stars = [
            StarSet.from_box(Box.from_center(rng.normal(size=3), 0.2))
            for _ in range(5)
        ]
        backend.bounds_many(stars)
        assert backend.stats["closed_form_stars"] >= 5
        assert backend.stats["lp_programs"] == 0

    def test_mixed_basis_shapes_grouped_correctly(self, rng):
        # from_box drops zero-radius directions, so degenerate boxes give
        # stars with fewer predicate rows — the grouping must keep them apart.
        wide = StarSet.from_box(Box.from_center(rng.normal(size=3), 0.3))
        low = np.array([-1.0, 0.5, 0.0])
        high = np.array([1.0, 0.5, 2.0])
        narrow = StarSet.from_box(Box(low, high))
        point = StarSet.from_point(rng.normal(size=3))
        stars = [wide, narrow, point, wide]
        lows, highs = StackedStarLPBackend().bounds_many(stars)
        ref_lows, ref_highs = LoopStarLPBackend().bounds_many(stars)
        np.testing.assert_array_equal(lows, ref_lows)
        np.testing.assert_array_equal(highs, ref_highs)

    def test_mismatched_dimensions_rejected(self):
        stars = [StarSet.from_point(np.zeros(2)), StarSet.from_point(np.zeros(3))]
        with pytest.raises(ConfigurationError):
            StackedStarLPBackend().bounds_many(stars)

    def test_empty_star_list(self):
        lows, highs = StackedStarLPBackend().bounds_many([])
        assert lows.shape == (0, 0) and highs.shape == (0, 0)


def constrained_stars(rng, count, dim=3):
    """Stars whose polytopes carry genuine (non-hypercube) constraints."""
    stars = []
    while len(stars) < count:
        box = Box.from_center(rng.normal(size=dim), rng.uniform(0.2, 0.8))
        weights = rng.normal(size=(dim, dim))
        bias = rng.normal(size=dim)
        star = StarSet.from_box(box).affine(weights, bias).relu()
        if not star.is_hypercube_domain:
            stars.append(star)
    return stars


class TestLPTier:
    def test_stacked_matches_loop_on_constrained_stars(self, rng):
        stars = constrained_stars(rng, 7)
        ref_lows, ref_highs = LoopStarLPBackend().bounds_many(stars)
        lows, highs = StackedStarLPBackend().bounds_many(stars)
        np.testing.assert_allclose(lows, ref_lows, rtol=0.0, atol=LP_ATOL)
        np.testing.assert_allclose(highs, ref_highs, rtol=0.0, atol=LP_ATOL)

    def test_tiny_chunk_budget_still_matches(self, rng):
        # chunk_elements=1 forces one chunk per star: chunk composition must
        # never change the answers.
        stars = constrained_stars(rng, 5)
        reference = StackedStarLPBackend().bounds_many(stars)
        chunked = StackedStarLPBackend(chunk_elements=1).bounds_many(stars)
        np.testing.assert_allclose(chunked[0], reference[0], rtol=0.0, atol=LP_ATOL)
        np.testing.assert_allclose(chunked[1], reference[1], rtol=0.0, atol=LP_ATOL)

    def test_forced_sharding_matches_loop(self, rng):
        stars = constrained_stars(rng, 8)
        ref_lows, ref_highs = LoopStarLPBackend().bounds_many(stars)
        lows, highs = forced_sharding_backend().bounds_many(stars)
        np.testing.assert_allclose(lows, ref_lows, rtol=0.0, atol=LP_ATOL)
        np.testing.assert_allclose(highs, ref_highs, rtol=0.0, atol=LP_ATOL)

    def test_small_batches_bypass_the_pool(self, rng):
        backend = ShardedStarLPBackend(min_shard_stars=64)
        stars = constrained_stars(rng, 3)
        ref = LoopStarLPBackend().bounds_many(stars)
        lows, highs = backend.bounds_many(stars)
        np.testing.assert_allclose(lows, ref[0], rtol=0.0, atol=LP_ATOL)
        np.testing.assert_allclose(highs, ref[1], rtol=0.0, atol=LP_ATOL)

    def test_zero_basis_columns_are_fixed_points(self, rng):
        star = constrained_stars(rng, 1)[0]
        basis = np.array(star.basis, copy=True)
        basis[:, 0] = 0.0  # dimension 0 cannot move off the centre
        pinned = StarSet(
            star.center, basis, star.constraints_a, star.constraints_b
        )
        backend = StackedStarLPBackend()
        backend.reset_stats()
        lows, highs = backend.bounds(pinned)
        assert lows[0] == pinned.center[0] == highs[0]
        assert backend.stats["skipped_zero_columns"] >= 1
        ref_lows, ref_highs = pinned._bounds_loop()
        np.testing.assert_allclose(lows, ref_lows, rtol=0.0, atol=LP_ATOL)
        np.testing.assert_allclose(highs, ref_highs, rtol=0.0, atol=LP_ATOL)

    def test_stats_attribute_lp_work(self, rng):
        backend = StackedStarLPBackend()
        backend.reset_stats()
        stars = constrained_stars(rng, 4) + [
            StarSet.from_box(Box.from_center(rng.normal(size=3), 0.1))
        ]
        backend.bounds_many(stars)
        assert backend.stats["lp_stars"] == 4
        assert backend.stats["closed_form_stars"] == 1
        assert backend.stats["lp_programs"] >= 1
        # 2 objectives per non-zero basis column, all answered by the solves.
        assert backend.stats["lp_objectives"] > 0


class TestBatchedWalkEquivalence:
    @pytest.mark.parametrize("label,config", TIER_CONFIGS)
    def test_batched_walk_matches_seed_loop(self, relu_network, rng, label, config):
        inputs = rng.uniform(-1.0, 1.0, size=(9, 5))
        delta = 0.06
        lows, highs = perturbation_bounds_batch(
            relu_network, inputs, 4, 0, delta, "star", star_lp_backend=config()
        )
        batched_box = BatchedBox(inputs - delta, inputs + delta)
        ref_lows, ref_highs = _star_bounds_loop(relu_network, batched_box, 0, 4)
        np.testing.assert_allclose(
            lows, ref_lows, rtol=0.0, atol=LP_ATOL, err_msg=label
        )
        np.testing.assert_allclose(
            highs, ref_highs, rtol=0.0, atol=LP_ATOL, err_msg=label
        )

    @settings(max_examples=12, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        batch=st.integers(2, 6),
        delta=st.floats(1e-4, 0.2),
    )
    def test_property_random_networks_and_boxes(self, seed, batch, delta):
        rng = np.random.default_rng(seed)
        input_dim = int(rng.integers(2, 5))
        hidden = [int(rng.integers(3, 7)) for _ in range(int(rng.integers(1, 3)))]
        network = mlp(input_dim, hidden, 2, activation="relu", seed=seed % 997)
        to_layer = len(network.layers)
        inputs = rng.uniform(-1.5, 1.5, size=(batch, input_dim))
        batched_box = BatchedBox(inputs - delta, inputs + delta)
        ref = _star_bounds_loop(network, batched_box, 0, to_layer)
        for name in ("stacked", "sharded"):
            lows, highs = perturbation_bounds_batch(
                network, inputs, to_layer, 0, delta, "star", star_lp_backend=name
            )
            np.testing.assert_allclose(
                lows, ref[0], rtol=0.0, atol=LP_ATOL, err_msg=name
            )
            np.testing.assert_allclose(
                highs, ref[1], rtol=0.0, atol=LP_ATOL, err_msg=name
            )

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_soundness_bounds_contain_sampled_perturbed_outputs(self, seed):
        rng = np.random.default_rng(seed)
        network = mlp(4, [8, 6], 3, activation="relu", seed=seed % 613)
        inputs = rng.uniform(-1.0, 1.0, size=(4, 4))
        delta = 0.08
        to_layer = len(network.layers)
        lows, highs = perturbation_bounds_batch(
            network, inputs, to_layer, 0, delta, "star"
        )
        noise = rng.uniform(-delta, delta, size=(20,) + inputs.shape)
        for perturbed in inputs[None, :, :] + noise:
            outputs = network.forward_to(to_layer, perturbed)
            assert np.all(outputs >= lows - 1e-6)
            assert np.all(outputs <= highs + 1e-6)


class TestRobustFitIdentity:
    @pytest.mark.parametrize("label,config", TIER_CONFIGS)
    def test_star_interval_fit_identical_across_backends(
        self, tiny_network, tiny_inputs, label, config
    ):
        """A star-backed interval monitor learns the same patterns per tier.

        The codec's scale-relative tolerance absorbs LP-tier round-off, so
        pattern words must agree *exactly* whichever back-end computed the
        perturbation estimates.
        """
        from repro.monitors.interval import RobustIntervalPatternMonitor
        from repro.monitors.perturbation import PerturbationSpec, collect_bound_arrays

        spec = PerturbationSpec(delta=0.02, layer=0, method="star")
        subset = tiny_inputs[:8]

        def fit_with(backend):
            monitor = RobustIntervalPatternMonitor(
                tiny_network, 4, spec, num_cuts=3
            )
            monitor._perturbation_bound_arrays = (
                lambda inputs, fit_spec: collect_bound_arrays(
                    tiny_network,
                    inputs,
                    monitor.layer_index,
                    fit_spec,
                    star_lp_backend=backend,
                )
            )
            monitor.fit(subset)
            return monitor

        reference = fit_with("loop")
        candidate = fit_with(config())
        assert sorted(candidate.patterns.iterate_words()) == sorted(
            reference.patterns.iterate_words()
        ), label
        assert candidate.pattern_count() == reference.pattern_count()

    def test_engine_star_backend_plumbing(self, tiny_network, tiny_inputs):
        """An engine's star_lp_backend reaches the propagation it performs."""
        from repro.monitors.perturbation import PerturbationSpec
        from repro.runtime.engine import BatchScoringEngine

        recording = StackedStarLPBackend()
        recording.reset_stats()
        engine = BatchScoringEngine(tiny_network, star_lp_backend=recording)
        spec = PerturbationSpec(delta=0.02, layer=0, method="star")
        lows, highs = engine.bound_arrays(tiny_inputs[:5], 4, spec)
        assert recording.stats["closed_form_stars"] + recording.stats["lp_stars"] > 0
        assert lows.shape == (5, tiny_network.layer_output_dim(4))
        assert np.all(lows <= highs)
