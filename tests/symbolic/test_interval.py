"""Tests for the Box (interval vector) abstract domain."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.exceptions import ShapeError
from repro.symbolic.interval import Box


def bounded_floats(low=-10.0, high=10.0):
    return st.floats(low, high, allow_nan=False, allow_infinity=False)


class TestConstruction:
    def test_from_center_and_radius(self):
        box = Box.from_center(np.array([1.0, -1.0]), 0.5)
        np.testing.assert_array_equal(box.low, [0.5, -1.5])
        np.testing.assert_array_equal(box.high, [1.5, -0.5])

    def test_from_point_is_degenerate(self):
        box = Box.from_point(np.array([2.0, 3.0]))
        assert box.is_degenerate()
        assert box.width_sum() == 0.0

    def test_hull_of_points(self):
        points = np.array([[0.0, 5.0], [1.0, 3.0], [-1.0, 4.0]])
        box = Box.hull_of_points(points)
        np.testing.assert_array_equal(box.low, [-1.0, 3.0])
        np.testing.assert_array_equal(box.high, [1.0, 5.0])

    def test_inverted_bounds_rejected(self):
        with pytest.raises(ShapeError):
            Box(np.array([1.0]), np.array([0.0]))

    def test_mismatched_shapes_rejected(self):
        with pytest.raises(ShapeError):
            Box(np.zeros(2), np.zeros(3))

    def test_negative_radius_rejected(self):
        with pytest.raises(ShapeError):
            Box.from_center(np.zeros(2), -0.1)


class TestGeometry:
    def test_center_radius_widths(self):
        box = Box(np.array([0.0, -2.0]), np.array([2.0, 2.0]))
        np.testing.assert_array_equal(box.center, [1.0, 0.0])
        np.testing.assert_array_equal(box.radius, [1.0, 2.0])
        np.testing.assert_array_equal(box.widths, [2.0, 4.0])
        assert box.width_sum() == 6.0
        assert box.max_width() == 4.0

    def test_contains_point(self):
        box = Box(np.array([0.0, 0.0]), np.array([1.0, 1.0]))
        assert box.contains(np.array([0.5, 0.99]))
        assert box.contains(np.array([1.0, 1.0]))
        assert not box.contains(np.array([1.1, 0.5]))

    def test_contains_dimension_mismatch_rejected(self):
        box = Box(np.zeros(2), np.ones(2))
        with pytest.raises(ShapeError):
            box.contains(np.zeros(3))

    def test_contains_box(self):
        outer = Box(np.array([0.0]), np.array([10.0]))
        inner = Box(np.array([2.0]), np.array([3.0]))
        assert outer.contains_box(inner)
        assert not inner.contains_box(outer)


class TestSetOperations:
    def test_join_is_smallest_enclosing_box(self):
        a = Box(np.array([0.0, 0.0]), np.array([1.0, 1.0]))
        b = Box(np.array([2.0, -1.0]), np.array([3.0, 0.5]))
        joined = a.join(b)
        np.testing.assert_array_equal(joined.low, [0.0, -1.0])
        np.testing.assert_array_equal(joined.high, [3.0, 1.0])
        assert joined.contains_box(a) and joined.contains_box(b)

    def test_intersect_overlapping(self):
        a = Box(np.array([0.0]), np.array([2.0]))
        b = Box(np.array([1.0]), np.array([3.0]))
        both = a.intersect(b)
        np.testing.assert_array_equal(both.low, [1.0])
        np.testing.assert_array_equal(both.high, [2.0])

    def test_intersect_disjoint_returns_none(self):
        a = Box(np.array([0.0]), np.array([1.0]))
        b = Box(np.array([2.0]), np.array([3.0]))
        assert a.intersect(b) is None

    def test_widen(self):
        box = Box(np.array([0.0]), np.array([1.0])).widen(0.25)
        np.testing.assert_array_equal(box.low, [-0.25])
        np.testing.assert_array_equal(box.high, [1.25])

    def test_widen_negative_rejected(self):
        with pytest.raises(ShapeError):
            Box(np.zeros(1), np.ones(1)).widen(-1.0)

    def test_join_dimension_mismatch_rejected(self):
        with pytest.raises(ShapeError):
            Box(np.zeros(1), np.ones(1)).join(Box(np.zeros(2), np.ones(2)))


class TestArithmetic:
    def test_affine_known_result(self):
        box = Box(np.array([0.0, -1.0]), np.array([1.0, 1.0]))
        weights = np.array([[1.0, 2.0], [-1.0, 0.5]])
        bias = np.array([0.0, 1.0])
        image = box.affine(weights, bias)
        # dim0: x0 - x1 with x0 in [0,1], x1 in [-1,1] -> [-1, 2]
        np.testing.assert_allclose(image.low, [-1.0, 0.5])
        np.testing.assert_allclose(image.high, [2.0, 3.5])

    @settings(max_examples=40, deadline=None)
    @given(
        low=hnp.arrays(np.float64, 3, elements=bounded_floats(-5, 5)),
        width=hnp.arrays(np.float64, 3, elements=st.floats(0, 3)),
        sample=hnp.arrays(np.float64, 3, elements=st.floats(0, 1)),
        seed=st.integers(0, 1000),
    )
    def test_affine_soundness_property(self, low, width, sample, seed):
        """The affine image of any point of the box lies in the affine box image."""
        box = Box(low, low + width)
        rng = np.random.default_rng(seed)
        weights = rng.normal(size=(3, 2))
        bias = rng.normal(size=2)
        point = low + sample * width
        image = box.affine(weights, bias)
        assert image.contains(point @ weights + bias, tolerance=1e-7)

    def test_elementwise_monotone(self):
        box = Box(np.array([-1.0, 0.0]), np.array([1.0, 4.0]))
        image = box.elementwise_monotone(np.tanh)
        np.testing.assert_allclose(image.low, np.tanh([-1.0, 0.0]))
        np.testing.assert_allclose(image.high, np.tanh([1.0, 4.0]))

    def test_scale_negative_factor_flips(self):
        box = Box(np.array([1.0]), np.array([2.0])).scale(-2.0)
        np.testing.assert_array_equal(box.low, [-4.0])
        np.testing.assert_array_equal(box.high, [-2.0])

    def test_translate(self):
        box = Box(np.array([0.0, 0.0]), np.array([1.0, 1.0])).translate(np.array([1.0, -1.0]))
        np.testing.assert_array_equal(box.low, [1.0, -1.0])


class TestSamplingAndMisc:
    def test_samples_lie_inside(self):
        box = Box(np.array([-1.0, 2.0]), np.array([0.0, 5.0]))
        samples = box.sample(100, rng=np.random.default_rng(0))
        assert samples.shape == (100, 2)
        assert all(box.contains(sample) for sample in samples)

    def test_corners_of_small_box(self):
        box = Box(np.array([0.0, 0.0]), np.array([1.0, 1.0]))
        corners = {tuple(corner) for corner in box.corners()}
        assert corners == {(0.0, 0.0), (1.0, 0.0), (0.0, 1.0), (1.0, 1.0)}

    def test_corner_limit_respected(self):
        box = Box(np.zeros(20), np.ones(20))
        corners = list(box.corners(limit=10))
        assert len(corners) == 10

    def test_equality_and_hash(self):
        a = Box(np.array([0.0]), np.array([1.0]))
        b = Box(np.array([0.0]), np.array([1.0]))
        assert a == b
        assert hash(a) == hash(b)

    def test_as_bounds_returns_copies(self):
        box = Box(np.array([0.0]), np.array([1.0]))
        low, _ = box.as_bounds()
        low[0] = 99.0
        assert box.low[0] == 0.0

    def test_iteration_yields_pairs(self):
        box = Box(np.array([0.0, 1.0]), np.array([2.0, 3.0]))
        assert list(box) == [(0.0, 2.0), (1.0, 3.0)]
