"""Integration tests exercising the full stack on both reference workloads.

These tests reproduce, at reduced scale, the qualitative claims of Section IV:
the robust monitor has a false-positive rate no worse than the standard
monitor on in-ODD data while keeping a useful detection rate on the
out-of-ODD scenarios, and the Lemma 1 guarantee holds end to end.
"""

import numpy as np
import pytest

from repro.core.pipeline import (
    build_digits_workload,
    build_track_workload,
    default_monitored_layer,
)
from repro.data.perturbations import perturb_dataset_inputs
from repro.data.synthetic_digits import generate_novel_glyphs
from repro.eval.experiments import MonitorExperiment
from repro.monitors.boolean import BooleanPatternMonitor, RobustBooleanPatternMonitor
from repro.monitors.builder import ClassConditionalMonitor, MonitorBuilder
from repro.monitors.minmax import MinMaxMonitor, RobustMinMaxMonitor
from repro.monitors.perturbation import PerturbationSpec

# Heaviest tier of the test suite: full workload builds with robust-monitor
# constructions.  Excluded from the default `-m "not slow"` run; select with
# `pytest -m slow` (CI runs them in the scheduled job).
pytestmark = pytest.mark.slow

DELTA = 0.005


@pytest.fixture(scope="module")
def track_workload():
    return build_track_workload(num_samples=240, epochs=8, seed=10)


@pytest.fixture(scope="module")
def track_experiment(track_workload):
    """Experiment whose in-ODD set includes Δ-perturbed training scenes."""
    rng = np.random.default_rng(0)
    perturbed_training = perturb_dataset_inputs(
        track_workload.train.inputs, DELTA, rng=rng
    )
    in_odd = np.vstack([perturbed_training, track_workload.in_odd_eval.inputs])
    return MonitorExperiment(
        track_workload.network,
        track_workload.train.inputs,
        in_odd,
        {name: data.inputs for name, data in track_workload.out_of_odd_eval.items()},
    )


class TestTrackWorkloadEndToEnd:
    def test_robust_minmax_removes_false_positives_on_perturbed_training_data(
        self, track_workload, track_experiment
    ):
        network = track_workload.network
        layer = default_monitored_layer(network)
        standard = MinMaxMonitor(network, layer)
        robust = RobustMinMaxMonitor(network, layer, PerturbationSpec(delta=DELTA))
        result = track_experiment.run({"standard": standard, "robust": robust})
        standard_score = result.score("standard")
        robust_score = result.score("robust")
        # Lemma 1: the Δ-perturbed training scenes can never warn, so the
        # robust FP rate is bounded by the share of genuinely held-out scenes.
        assert robust_score.false_positive_rate <= standard_score.false_positive_rate
        # Detection must remain useful (the dark scenario is the easiest).
        assert robust_score.detection_rates["dark"] > 0.5

    def test_robust_boolean_monitor_behaviour(self, track_workload, track_experiment):
        network = track_workload.network
        layer = default_monitored_layer(network)
        standard = BooleanPatternMonitor(network, layer, thresholds="mean")
        robust = RobustBooleanPatternMonitor(
            network, layer, PerturbationSpec(delta=DELTA), thresholds="mean"
        )
        result = track_experiment.run({"standard": standard, "robust": robust})
        assert (
            result.score("robust").false_positive_rate
            <= result.score("standard").false_positive_rate
        )

    def test_perturbed_training_scenes_never_warn(self, track_workload):
        """Direct Lemma-1 check on the deployed pipeline."""
        network = track_workload.network
        layer = default_monitored_layer(network)
        robust = RobustMinMaxMonitor(network, layer, PerturbationSpec(delta=DELTA))
        robust.fit(track_workload.train.inputs)
        rng = np.random.default_rng(5)
        perturbed = perturb_dataset_inputs(track_workload.train.inputs[:50], DELTA, rng=rng)
        assert robust.warning_rate(perturbed) == 0.0


class TestDigitsWorkloadEndToEnd:
    @pytest.fixture(scope="class")
    def digits(self):
        return build_digits_workload(num_samples=240, num_classes=4, epochs=8, seed=20)

    def test_class_conditional_monitor_detects_novel_glyphs(self, digits):
        network = digits.network
        layer = default_monitored_layer(network)
        monitor = ClassConditionalMonitor(
            MonitorBuilder("minmax", layer), num_classes=4
        )
        monitor.fit(network, digits.train.inputs)
        glyphs = generate_novel_glyphs(60, seed=30)
        detection = monitor.warning_rate(glyphs.inputs)
        in_odd_rate = monitor.warning_rate(digits.train.inputs)
        assert in_odd_rate == 0.0
        assert detection > in_odd_rate

    def test_robust_monitor_on_digits_scenarios(self, digits):
        network = digits.network
        layer = default_monitored_layer(network)
        experiment = digits.experiment()
        result = experiment.run_builders(
            {
                "standard": MonitorBuilder("minmax", layer),
                "robust": MonitorBuilder(
                    "minmax", layer, perturbation=PerturbationSpec(delta=DELTA)
                ),
            }
        )
        assert (
            result.score("robust").false_positive_rate
            <= result.score("standard").false_positive_rate
        )
