"""End-to-end service tests: socket client → server → 2-process pool.

This is the test surface the CI ``service-e2e`` job runs: real TCP, real
spawned worker processes booted from serialized artefacts, and the three
acceptance criteria of the out-of-process milestone — verdicts over the
wire bit-identical to offline ``warn_batch``, one injected worker crash
survived without losing accepted frames, and a fully clean
``close(drain=True)`` leaving no child processes behind.
"""

import multiprocessing
import os

import numpy as np
import pytest

from repro import MonitorPipeline, build_track_workload
from repro.service import BatchPolicy
from repro.serving import ScoringClient, ScoringServer, WorkerPool

pytestmark = pytest.mark.slow


def _log_path(tmp_path, name):
    """Server log location: CI points REPRO_SERVING_LOG_DIR at an artifact
    directory it uploads when the job fails; locally tmp_path is fine."""
    log_dir = os.environ.get("REPRO_SERVING_LOG_DIR")
    if log_dir:
        os.makedirs(log_dir, exist_ok=True)
        return os.path.join(log_dir, name)
    return str(tmp_path / name)


@pytest.fixture
def served_pool(deployment_bundle, tmp_path):
    pool = WorkerPool(
        deployment_bundle,
        num_workers=2,
        policy=BatchPolicy(max_batch=16, max_latency=0.002),
    )
    pool.start()
    server = ScoringServer(
        pool, owns_scorer=True, log_path=_log_path(tmp_path, "service-e2e.log")
    )
    server.start()
    yield server
    server.close(drain=False)


class TestServiceEndToEnd:
    def test_wire_verdicts_bit_identical_to_offline(
        self, served_pool, serving_monitors, probe_frames
    ):
        with ScoringClient(served_pool.address, timeout=60) as client:
            warns = client.score(probe_frames)
            for name, monitor in serving_monitors.items():
                np.testing.assert_array_equal(
                    warns[name], monitor.warn_batch(probe_frames)
                )

    def test_pipelined_bursts_through_the_pool(
        self, served_pool, serving_monitors, rng
    ):
        with ScoringClient(served_pool.address, timeout=60) as client:
            batches = [rng.normal(size=(n, 6)) for n in (3, 15, 1, 20, 8)]
            futures = [client.score_async(batch) for batch in batches]
            expected = [
                serving_monitors["minmax"].warn_batch(batch) for batch in batches
            ]
            for future, want in zip(futures, expected):
                np.testing.assert_array_equal(future.result(60)["minmax"], want)

    def test_injected_worker_crash_loses_no_frames(
        self, served_pool, serving_monitors, rng
    ):
        pool = served_pool.scorer
        probe = rng.normal(size=(24, 6))
        with ScoringClient(served_pool.address, timeout=120) as client:
            pool.inject_worker_crash()
            warns = client.score(probe)
            np.testing.assert_array_equal(
                warns["minmax"], serving_monitors["minmax"].warn_batch(probe)
            )
            assert pool.restarts >= 1
            # service still healthy after the restart
            again = client.score(probe[:4])
            assert len(again["minmax"]) == 4

    def test_stats_expose_pool_identity(self, served_pool, rng):
        with ScoringClient(served_pool.address, timeout=60) as client:
            client.score(rng.normal(size=(5, 6)))
            stats = client.stats()
            assert stats["scorer"]["kind"] == "worker_pool"
            assert stats["scorer"]["requested_workers"] == 2
            assert stats["server_frames"] >= 5

    def test_server_log_records_connections(self, served_pool, rng, tmp_path):
        with ScoringClient(served_pool.address, timeout=60) as client:
            client.score(rng.normal(size=(2, 6)))
        log_file = served_pool._log_handler.baseFilename
        with open(log_file) as handle:
            content = handle.read()
        assert "connection from" in content


class TestCleanShutdown:
    def test_drain_close_leaves_no_children(
        self, deployment_bundle, serving_monitors, probe_frames, tmp_path
    ):
        pool = WorkerPool(
            deployment_bundle,
            num_workers=2,
            policy=BatchPolicy(max_batch=16, max_latency=0.002),
        )
        pool.start()
        server = ScoringServer(
            pool, owns_scorer=True, log_path=_log_path(tmp_path, "service-shutdown.log")
        )
        server.start()
        with ScoringClient(server.address, timeout=60) as client:
            warns = client.score(probe_frames)
            np.testing.assert_array_equal(
                warns["minmax"], serving_monitors["minmax"].warn_batch(probe_frames)
            )
        server.close(drain=True, timeout=120)
        # the hard assertion of the CI leg: nothing left running
        assert not multiprocessing.active_children()


class TestRemoteServePipeline:
    def test_serve_remote_roundtrip(self, tmp_path):
        workload = build_track_workload(num_samples=100, epochs=2, seed=3)
        pipeline = MonitorPipeline(workload, family="minmax")
        server = pipeline.serve(
            remote=True,
            num_workers=2,
            max_batch=16,
            max_latency=0.002,
            log_path=_log_path(tmp_path, "service-pipeline.log"),
        )
        try:
            probe = workload.in_odd_eval.inputs[:12]
            with ScoringClient(server.address, timeout=120) as client:
                warns = client.score(probe)
            assert set(warns) == {"standard", "robust"}
            assert all(len(flags) == 12 for flags in warns.values())
        finally:
            server.close(drain=True, timeout=120)
        assert not multiprocessing.active_children()

    def test_serve_remote_rejects_verdict_diagnostics(self):
        from repro.exceptions import ConfigurationError

        workload = build_track_workload(num_samples=80, epochs=1, seed=4)
        pipeline = MonitorPipeline(workload, family="minmax")
        with pytest.raises(ConfigurationError):
            pipeline.serve(remote=True, want_verdicts=True)
