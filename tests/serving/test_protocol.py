"""Wire-codec tests: framing, payload codecs, typed errors, robustness.

The protocol module is pure bytes-in/bytes-out, so everything here runs
without sockets — including the hypothesis round-trips that feed the
decoder the exact byte stream under adversarially chosen chunk boundaries.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import (
    ProtocolError,
    RemoteScoringError,
    ServiceClosedError,
    ServiceOverloadedError,
    ShapeError,
    WorkerCrashError,
)
from repro.serving import protocol
from repro.serving.protocol import Frame, FrameDecoder, FrameType, encode_frame


class TestFraming:
    def test_roundtrip_single_frame(self):
        data = encode_frame(FrameType.PING, 7, b"hello")
        frames = FrameDecoder().feed(data)
        assert frames == [Frame(type=FrameType.PING, request_id=7, payload=b"hello")]

    def test_byte_at_a_time_reassembly(self):
        data = encode_frame(FrameType.SCORE, 2**63, b"x" * 37)
        decoder = FrameDecoder()
        frames = []
        for i in range(len(data)):
            frames.extend(decoder.feed(data[i : i + 1]))
        assert len(frames) == 1
        assert frames[0].request_id == 2**63
        assert frames[0].payload == b"x" * 37
        assert decoder.buffered == 0

    def test_multiple_frames_in_one_chunk(self):
        data = b"".join(encode_frame(FrameType.PING, i, b"p") for i in range(5))
        frames = FrameDecoder().feed(data)
        assert [frame.request_id for frame in frames] == list(range(5))

    def test_truncated_frame_stays_buffered(self):
        data = encode_frame(FrameType.SCORE, 1, b"abcdef")
        decoder = FrameDecoder()
        assert decoder.feed(data[:-3]) == []
        assert decoder.buffered == len(data) - 3
        frames = decoder.feed(data[-3:])
        assert len(frames) == 1 and frames[0].payload == b"abcdef"

    def test_truncated_header_stays_buffered(self):
        decoder = FrameDecoder()
        assert decoder.feed(b"RS") == []
        assert decoder.buffered == 2

    def test_bad_magic_raises(self):
        with pytest.raises(ProtocolError, match="magic"):
            FrameDecoder().feed(b"XX" + b"\x00" * 14)

    def test_bad_version_raises(self):
        data = bytearray(encode_frame(FrameType.PING, 1))
        data[2] = 99
        with pytest.raises(ProtocolError, match="version"):
            FrameDecoder().feed(bytes(data))

    def test_unknown_frame_type_raises(self):
        data = bytearray(encode_frame(FrameType.PING, 1))
        data[3] = 77
        with pytest.raises(ProtocolError, match="unknown frame type"):
            FrameDecoder().feed(bytes(data))

    def test_oversized_payload_rejected_from_header_alone(self):
        # The decoder must reject on the length prefix, before the payload
        # bytes exist — a hostile prefix may never be allowed to allocate.
        decoder = FrameDecoder(max_payload=64)
        header_only = encode_frame(FrameType.SCORE, 1, b"x" * 65)[: protocol.HEADER_SIZE]
        with pytest.raises(ProtocolError, match="exceeds"):
            decoder.feed(header_only)

    def test_payload_at_bound_accepted(self):
        decoder = FrameDecoder(max_payload=64)
        frames = decoder.feed(encode_frame(FrameType.SCORE, 1, b"x" * 64))
        assert frames[0].payload == b"x" * 64

    def test_request_id_range_enforced(self):
        with pytest.raises(ProtocolError):
            encode_frame(FrameType.PING, -1)
        with pytest.raises(ProtocolError):
            encode_frame(FrameType.PING, 2**64)

    def test_response_type_predicate(self):
        assert not Frame(FrameType.SCORE, 1).is_response
        assert Frame(FrameType.RESULT, 1).is_response

    @settings(max_examples=60, deadline=None)
    @given(
        frames=st.lists(
            st.tuples(
                st.sampled_from(list(FrameType)),
                st.integers(min_value=0, max_value=2**64 - 1),
                st.binary(max_size=200),
            ),
            min_size=1,
            max_size=6,
        ),
        chunk_size=st.integers(min_value=1, max_value=64),
    )
    def test_stream_roundtrip_under_arbitrary_chunking(self, frames, chunk_size):
        stream = b"".join(
            encode_frame(ftype, rid, payload) for ftype, rid, payload in frames
        )
        decoder = FrameDecoder()
        decoded = []
        for begin in range(0, len(stream), chunk_size):
            decoded.extend(decoder.feed(stream[begin : begin + chunk_size]))
        assert [(f.type, f.request_id, f.payload) for f in decoded] == frames
        assert decoder.buffered == 0


class TestScoreCodec:
    def test_roundtrip(self):
        frames = np.arange(12.0).reshape(3, 4)
        back = protocol.decode_score_request(protocol.encode_score_request(frames))
        np.testing.assert_array_equal(back, frames)
        assert back.dtype == np.float64

    def test_decoded_array_owns_memory(self):
        back = protocol.decode_score_request(
            protocol.encode_score_request(np.ones((2, 2)))
        )
        back[0, 0] = 42.0  # would raise on a read-only frombuffer view

    def test_one_dimensional_input_promoted(self):
        back = protocol.decode_score_request(
            protocol.encode_score_request(np.arange(4.0))
        )
        assert back.shape == (1, 4)

    def test_body_length_mismatch_rejected(self):
        payload = protocol.encode_score_request(np.ones((2, 3)))
        with pytest.raises(ProtocolError, match="bytes"):
            protocol.decode_score_request(payload[:-8])

    def test_malformed_shape_rejected(self):
        payload = protocol._pack_payload({"dtype": "<f8", "shape": [2, -1]}, b"")
        with pytest.raises(ProtocolError, match="shape"):
            protocol.decode_score_request(payload)

    def test_wrong_dtype_rejected(self):
        payload = protocol._pack_payload({"dtype": "<f4", "shape": [1, 1]}, b"\x00" * 4)
        with pytest.raises(ProtocolError, match="dtype"):
            protocol.decode_score_request(payload)

    @settings(max_examples=40, deadline=None)
    @given(
        rows=st.integers(min_value=1, max_value=8),
        cols=st.integers(min_value=1, max_value=8),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_roundtrip_property(self, rows, cols, seed):
        frames = np.random.default_rng(seed).normal(size=(rows, cols))
        back = protocol.decode_score_request(protocol.encode_score_request(frames))
        np.testing.assert_array_equal(back, frames)


class TestResultCodec:
    def test_roundtrip(self):
        warns = {"a": [True, False, True], "b": [False, False, False]}
        back = protocol.decode_result(protocol.encode_result(warns))
        assert set(back) == {"a", "b"}
        np.testing.assert_array_equal(back["a"], [True, False, True])
        np.testing.assert_array_equal(back["b"], [False, False, False])

    def test_empty_result(self):
        assert protocol.decode_result(protocol.encode_result({})) == {}

    def test_unequal_lengths_rejected(self):
        with pytest.raises(ShapeError):
            protocol.encode_result({"a": [True], "b": [True, False]})

    def test_body_count_mismatch_rejected(self):
        payload = protocol._pack_payload({"monitors": ["a"], "count": 3}, b"\x01")
        with pytest.raises(ProtocolError):
            protocol.decode_result(payload)

    def test_malformed_payload_json_rejected(self):
        bad = protocol._JSON_LEN.pack(4) + b"\xff\xfe\x00\x01"
        with pytest.raises(ProtocolError):
            protocol.decode_result(bad)

    @settings(max_examples=40, deadline=None)
    @given(
        names=st.lists(
            st.text(
                alphabet=st.characters(min_codepoint=33, max_codepoint=126),
                min_size=1,
                max_size=12,
            ),
            min_size=1,
            max_size=4,
            unique=True,
        ),
        count=st.integers(min_value=0, max_value=32),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_roundtrip_property(self, names, count, seed):
        rng = np.random.default_rng(seed)
        warns = {name: rng.random(count) < 0.5 for name in names}
        back = protocol.decode_result(protocol.encode_result(warns))
        assert list(back) == names
        for name in names:
            np.testing.assert_array_equal(back[name], warns[name])


class TestTypedErrors:
    @pytest.mark.parametrize(
        "exc, code",
        [
            (ServiceOverloadedError("x"), "overloaded"),
            (ServiceClosedError("x"), "closed"),
            (ShapeError("x"), "shape"),
            (ProtocolError("x"), "protocol"),
            (WorkerCrashError("x"), "worker_crash"),
            (RemoteScoringError("x"), "internal"),
            (ValueError("x"), "internal"),
        ],
    )
    def test_exception_code_roundtrip(self, exc, code):
        assert protocol.exception_to_code(exc) == code
        raised = protocol.error_to_exception(
            *protocol.decode_error(protocol.encode_error(code, str(exc)))
        )
        if isinstance(exc, tuple(protocol._CODE_TO_EXCEPTION.values())):
            assert type(raised) is type(exc)
        else:
            assert isinstance(raised, RemoteScoringError)

    def test_unknown_code_maps_to_remote_error(self):
        exc = protocol.error_to_exception("who-knows", "boom")
        assert isinstance(exc, RemoteScoringError)
        assert "boom" in str(exc)

    def test_worker_crash_is_remote_scoring_error(self):
        # Clients catching the transport error class also see crash errors.
        assert issubclass(WorkerCrashError, RemoteScoringError)


class TestJsonCodec:
    def test_roundtrip(self):
        data = {"a": 1, "nested": {"b": [1, 2, 3]}}
        assert protocol.decode_json(protocol.encode_json(data)) == data
