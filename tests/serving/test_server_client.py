"""Socket server + client tests over the in-process streaming scorer.

Threads only (no worker processes), so these run in tier-1: they pin the
network contract — request/response matching under pipelining, typed error
frames, stats/ping plumbing, reconnect behaviour — independently of the
multi-process pool the CI end-to-end leg exercises.
"""

import socket
import threading

import numpy as np
import pytest

from repro.exceptions import (
    ProtocolError,
    RemoteScoringError,
    ServiceClosedError,
    ShapeError,
)
from repro.serving import (
    FrameType,
    ScoringClient,
    ScoringServer,
    encode_frame,
    protocol,
)


@pytest.fixture
def server(local_scorer):
    with ScoringServer(local_scorer) as running:
        yield running


@pytest.fixture
def client(server):
    with ScoringClient(server.address, timeout=30) as connected:
        yield connected


class TestRoundtrip:
    def test_score_matches_offline_warn_batch(
        self, client, serving_monitors, probe_frames
    ):
        warns = client.score(probe_frames)
        assert set(warns) == set(serving_monitors)
        for name, monitor in serving_monitors.items():
            np.testing.assert_array_equal(warns[name], monitor.warn_batch(probe_frames))

    def test_single_frame(self, client, probe_frames):
        warns = client.score(probe_frames[0])
        assert all(len(flags) == 1 for flags in warns.values())

    def test_empty_batch(self, client):
        assert client.score(np.empty((0, 6))) == {}

    def test_ping(self, client):
        assert client.ping() == b"ping"

    def test_stats_carry_server_counters(self, client, probe_frames):
        client.score(probe_frames)
        stats = client.stats()
        assert stats["server_requests"] >= 1
        assert stats["server_frames"] >= probe_frames.shape[0]
        # The last micro-batch's ledger entry may land just after the RESULT
        # frame, so assert on the submit counter (recorded synchronously).
        assert stats["frames_submitted"] >= probe_frames.shape[0]

    def test_pipelined_requests_matched_by_id(self, client, serving_monitors, rng):
        batches = [rng.normal(size=(n, 6)) for n in (1, 7, 3, 16, 2, 9)]
        futures = [client.score_async(batch) for batch in batches]
        monitor = serving_monitors["minmax"]
        for batch, future in zip(batches, futures):
            warns = future.result(30)
            np.testing.assert_array_equal(warns["minmax"], monitor.warn_batch(batch))

    def test_concurrent_clients(self, server, serving_monitors, rng):
        errors = []
        monitor = serving_monitors["boolean"]

        def hammer(seed):
            try:
                local = np.random.default_rng(seed).normal(size=(11, 6))
                with ScoringClient(server.address, timeout=30) as c:
                    for _ in range(5):
                        warns = c.score(local)
                        np.testing.assert_array_equal(
                            warns["boolean"], monitor.warn_batch(local)
                        )
            except Exception as exc:  # pragma: no cover - failure reporting
                errors.append(exc)

        threads = [threading.Thread(target=hammer, args=(seed,)) for seed in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors


class TestTypedErrors:
    def test_shape_error_crosses_the_wire(self, client):
        with pytest.raises(ShapeError):
            client.score(np.ones((3, 4)))  # wrong input dimension

    def test_closed_scorer_error_crosses_the_wire(self, local_scorer, server):
        with ScoringClient(server.address, timeout=30) as c:
            local_scorer.close(drain=True)
            with pytest.raises(ServiceClosedError):
                c.score(np.ones((2, 6)))

    def test_non_request_frame_type_rejected(self, server):
        with socket.create_connection(server.address, timeout=10) as raw:
            raw.sendall(encode_frame(FrameType.RESULT, 5, b""))
            decoder = protocol.FrameDecoder()
            frames = []
            while not frames:
                frames = decoder.feed(raw.recv(65536))
        assert frames[0].type == FrameType.ERROR
        assert frames[0].request_id == 5
        code, _ = protocol.decode_error(frames[0].payload)
        assert code == "protocol"

    def test_garbage_bytes_answered_with_protocol_error_then_close(self, server):
        with socket.create_connection(server.address, timeout=10) as raw:
            raw.sendall(b"GET / HTTP/1.1\r\n\r\n" + b"\x00" * 16)
            decoder = protocol.FrameDecoder()
            frames = []
            while not frames:
                chunk = raw.recv(65536)
                assert chunk, "server closed without sending the error frame"
                frames = decoder.feed(chunk)
            assert frames[0].type == FrameType.ERROR
            code, _ = protocol.decode_error(frames[0].payload)
            assert code == "protocol"
            # After the typed error the server closes the unsynchronised
            # stream: the next read must reach EOF.
            while chunk:
                chunk = raw.recv(65536)

    def test_oversized_request_rejected_without_allocation(self, local_scorer):
        with ScoringServer(local_scorer, max_payload=1024) as small_server:
            with ScoringClient(small_server.address, timeout=10) as c:
                with pytest.raises((ProtocolError, RemoteScoringError)):
                    c.score(np.ones((64, 6)))  # 3 KiB payload > 1 KiB bound


class TestReconnect:
    def test_client_survives_server_restart_on_same_port(self, local_scorer, rng):
        first = ScoringServer(local_scorer).start()
        host, port = first.address
        client = ScoringClient((host, port), timeout=30)
        probe = rng.normal(size=(4, 6))
        before = client.score(probe)
        first.close(drain=False)
        second = ScoringServer(local_scorer, host=host, port=port).start()
        try:
            after = client.score(probe)  # auto-reconnects on the dead socket
            for name in before:
                np.testing.assert_array_equal(after[name], before[name])
        finally:
            client.close()
            second.close(drain=False)

    def test_in_flight_requests_fail_on_connection_loss(self, local_scorer, rng):
        server = ScoringServer(local_scorer).start()
        client = ScoringClient(server.address, timeout=30)
        client.connect()
        server.close(drain=False)
        # Whether the send fails fast or the response never arrives, the
        # caller sees the transport error class, not a hang.
        with pytest.raises(RemoteScoringError):
            future = client.score_async(rng.normal(size=(2, 6)))
            future.result(5)
        client.close()

    def test_no_auto_reconnect_when_disabled(self, local_scorer):
        server = ScoringServer(local_scorer).start()
        client = ScoringClient(server.address, timeout=5, auto_reconnect=False)
        client.connect()
        server.close(drain=False)
        client.close()
        with pytest.raises(RemoteScoringError):
            client.score(np.ones((1, 6)))

    def test_closed_client_refuses_requests(self, server):
        client = ScoringClient(server.address)
        client.connect()
        client.close()
        with pytest.raises(RemoteScoringError):
            client.ping()


class TestAsyncClient:
    def test_score_and_ping(self, server, serving_monitors, probe_frames):
        import asyncio

        from repro.serving import AsyncScoringClient

        async def run():
            async with AsyncScoringClient(server.address) as client:
                assert await client.ping() == b"ping"
                futures = [
                    asyncio.ensure_future(client.score(probe_frames))
                    for _ in range(3)
                ]
                return await asyncio.gather(*futures)

        all_warns = asyncio.run(run())
        monitor = serving_monitors["minmax"]
        expected = monitor.warn_batch(probe_frames)
        for warns in all_warns:
            np.testing.assert_array_equal(warns["minmax"], expected)

    def test_stats(self, server):
        import asyncio

        from repro.serving import AsyncScoringClient

        async def run():
            async with AsyncScoringClient(server.address) as client:
                return await client.stats()

        stats = asyncio.run(run())
        assert "frames_scored" in stats
