"""Worker pool tests: adaptive batching (fast) and real process pools (slow).

The :class:`AdaptiveBatcher` tests are clock-free and run in tier-1.  The
``slow``-marked classes spawn actual worker processes from the session
deployment bundle — verdict bit-parity with the offline monitors, crash
recovery without frame loss, and fully clean shutdown are the acceptance
criteria of the CI ``service-e2e`` leg.
"""

import multiprocessing
import time

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.exceptions import (
    ConfigurationError,
    ServiceClosedError,
    ServiceOverloadedError,
    ShapeError,
    WorkerCrashError,
)
from repro.service import BatchPolicy
from repro.service.streaming import FrameRequest
from repro.serving import AdaptiveBatcher, WorkerPool


class TestAdaptiveBatcher:
    def make(self, max_batch=8, max_latency=0.01):
        return AdaptiveBatcher(BatchPolicy(max_batch=max_batch, max_latency=max_latency))

    def put(self, batcher, count, at=0.0):
        for _ in range(count):
            batcher.append(FrameRequest(frame=np.zeros(4), enqueued_at=at))

    def test_empty_queue_has_no_deadline(self):
        assert self.make().deadline() is None

    def test_single_frame_keeps_almost_full_latency(self):
        batcher = self.make(max_batch=8, max_latency=0.01)
        self.put(batcher, 1, at=100.0)
        # one of eight pending → deadline shrinks by exactly 1/8 of the bound
        assert batcher.deadline() == pytest.approx(100.0 + 0.01 * (1 - 1 / 8))

    def test_deadline_shrinks_monotonically_with_depth(self):
        batcher = self.make(max_batch=8, max_latency=0.01)
        deadlines = []
        for _ in range(7):
            self.put(batcher, 1, at=100.0)
            deadlines.append(batcher.deadline())
        assert deadlines == sorted(deadlines, reverse=True)

    def test_full_queue_shrinks_to_zero_extra_wait(self):
        batcher = self.make(max_batch=4, max_latency=0.01)
        self.put(batcher, 4, at=100.0)
        assert batcher.deadline() == pytest.approx(100.0)

    def test_depth_beyond_max_batch_clamps(self):
        batcher = self.make(max_batch=4, max_latency=0.01)
        self.put(batcher, 12, at=100.0)
        assert batcher.deadline() == pytest.approx(100.0)

    def test_flush_reason_size(self):
        batcher = self.make(max_batch=2)
        self.put(batcher, 2, at=100.0)
        assert batcher.flush_reason(100.0) == "size"

    def test_flush_reason_adaptive_before_nominal_deadline(self):
        batcher = self.make(max_batch=8, max_latency=0.01)
        self.put(batcher, 4, at=100.0)
        # adaptive deadline passed, nominal (enqueued_at + max_latency) not
        now = 100.0 + 0.01 * (1 - 4 / 8) + 1e-6
        assert batcher.ready(now)
        assert batcher.flush_reason(now) == "adaptive"

    def test_flush_reason_deadline_after_nominal_deadline(self):
        batcher = self.make(max_batch=8, max_latency=0.01)
        self.put(batcher, 1, at=100.0)
        assert batcher.flush_reason(100.02) == "deadline"


def wait_for(predicate, timeout=30.0, interval=0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


@pytest.mark.slow
class TestWorkerPoolScoring:
    @pytest.fixture(scope="class")
    def pool(self, deployment_bundle):
        with WorkerPool(
            deployment_bundle,
            num_workers=2,
            policy=BatchPolicy(max_batch=16, max_latency=0.002),
        ) as running:
            yield running

    def test_two_workers_boot(self, pool):
        assert wait_for(lambda: pool.num_workers == 2)
        assert pool.monitor_names == ("boolean", "minmax")

    def test_verdicts_bit_identical_to_offline(
        self, pool, serving_monitors, probe_frames
    ):
        results = [future.result(60) for future in pool.submit_many(probe_frames)]
        for name, monitor in serving_monitors.items():
            remote = np.array([result.warns[name] for result in results])
            np.testing.assert_array_equal(remote, monitor.warn_batch(probe_frames))

    def test_single_frame_submit(self, pool, serving_monitors, rng):
        frame = rng.normal(size=6)
        result = pool.submit(frame).result(60)
        for name, monitor in serving_monitors.items():
            assert result.warns[name] == bool(monitor.warn_batch(frame[None, :])[0])

    def test_interleaved_bursts_from_threads(self, pool, serving_monitors, rng):
        import threading

        errors = []

        def producer(seed):
            try:
                local = np.random.default_rng(seed).normal(size=(17, 6))
                expected = serving_monitors["minmax"].warn_batch(local)
                for _ in range(3):
                    results = [f.result(60) for f in pool.submit_many(local)]
                    got = np.array([r.warns["minmax"] for r in results])
                    np.testing.assert_array_equal(got, expected)
            except Exception as exc:  # pragma: no cover - failure reporting
                errors.append(exc)

        threads = [threading.Thread(target=producer, args=(seed,)) for seed in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors

    def test_shape_mismatch_rejected_before_dispatch(self, pool):
        with pytest.raises(ShapeError):
            pool.submit_many(np.ones((3, 5)))

    def test_stats_ledger_counts_scored_frames(self, pool, rng):
        before = pool.stats.snapshot()["frames_scored"]
        [f.result(60) for f in pool.submit_many(rng.normal(size=(9, 6)))]
        snapshot = pool.stats.snapshot()
        assert snapshot["frames_scored"] >= before + 9
        assert sum(snapshot["flush_reasons"].values()) == snapshot["batches"]

    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(seed=st.integers(min_value=0, max_value=2**16), rows=st.integers(1, 24))
    def test_parity_property(self, pool, serving_monitors, seed, rows):
        frames = np.random.default_rng(seed).normal(size=(rows, 6))
        results = [future.result(60) for future in pool.submit_many(frames)]
        for name, monitor in serving_monitors.items():
            remote = np.array([result.warns[name] for result in results])
            np.testing.assert_array_equal(remote, monitor.warn_batch(frames))


@pytest.mark.slow
class TestWorkerPoolRecovery:
    def test_injected_crash_loses_no_accepted_frames(
        self, deployment_bundle, serving_monitors, rng
    ):
        with WorkerPool(
            deployment_bundle,
            num_workers=2,
            policy=BatchPolicy(max_batch=16, max_latency=0.002),
        ) as pool:
            assert wait_for(lambda: pool.num_workers == 2)
            probe = rng.normal(size=(24, 6))
            pool.inject_worker_crash()
            futures = pool.submit_many(probe)
            results = [future.result(120) for future in futures]
            # every accepted frame resolved, with correct verdicts
            remote = np.array([result.warns["minmax"] for result in results])
            np.testing.assert_array_equal(
                remote, serving_monitors["minmax"].warn_batch(probe)
            )
            assert pool.restarts >= 1
            assert wait_for(lambda: pool.num_workers == 2)
            # the pool keeps scoring normally after the restart
            again = [f.result(60) for f in pool.submit_many(probe[:5])]
            assert len(again) == 5

    def test_restart_budget_exhaustion_breaks_the_pool(
        self, deployment_bundle, rng
    ):
        pool = WorkerPool(
            deployment_bundle,
            num_workers=1,
            max_restarts=0,
            policy=BatchPolicy(max_batch=8, max_latency=0.002),
        )
        pool.start()
        try:
            assert wait_for(lambda: pool.num_workers == 1)
            pool.inject_worker_crash()
            futures = pool.submit_many(rng.normal(size=(4, 6)))
            for future in futures:
                with pytest.raises(WorkerCrashError):
                    future.result(120)
            with pytest.raises(WorkerCrashError):
                pool.submit_many(rng.normal(size=(2, 6)))
        finally:
            pool.close(drain=False)

    def test_configuration_validation(self, deployment_bundle):
        with pytest.raises(ConfigurationError):
            WorkerPool(deployment_bundle, num_workers=0)
        with pytest.raises(ConfigurationError):
            WorkerPool(deployment_bundle, num_workers=2, max_restarts=-1)
        with pytest.raises(ConfigurationError):
            WorkerPool(deployment_bundle, num_workers=4, slot_count=2)


@pytest.mark.slow
class TestWorkerPoolShutdown:
    def test_drain_close_scores_everything_and_reaps_children(
        self, deployment_bundle, serving_monitors, rng
    ):
        pool = WorkerPool(
            deployment_bundle,
            num_workers=2,
            policy=BatchPolicy(max_batch=16, max_latency=0.05),
        )
        pool.start()
        assert wait_for(lambda: pool.num_workers == 2)
        probe = rng.normal(size=(20, 6))
        futures = pool.submit_many(probe)
        ring_name = pool._ring.name
        pool.close(drain=True, timeout=120)
        # drain resolved every accepted future with correct verdicts
        results = [future.result(0) for future in futures]
        remote = np.array([result.warns["boolean"] for result in results])
        np.testing.assert_array_equal(
            remote, serving_monitors["boolean"].warn_batch(probe)
        )
        # no child processes survive close() — the CI leg's hard assertion
        assert wait_for(lambda: not multiprocessing.active_children(), timeout=10)
        # and the shared-memory segment is gone
        from multiprocessing import shared_memory

        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=ring_name)

    def test_close_without_drain_cancels_queued_frames(self, deployment_bundle, rng):
        pool = WorkerPool(
            deployment_bundle,
            num_workers=1,
            # A latency bound far above the test's lifetime keeps the queued
            # frames pending until close() decides their fate.
            policy=BatchPolicy(max_batch=64, max_latency=60.0),
        )
        pool.start()
        assert wait_for(lambda: pool.num_workers == 1)
        futures = pool.submit_many(rng.normal(size=(6, 6)))
        pool.close(drain=False, timeout=120)
        assert all(future.cancelled() for future in futures)
        assert pool.stats.snapshot()["frames_cancelled"] >= 6

    def test_submit_after_close_raises(self, deployment_bundle, rng):
        pool = WorkerPool(deployment_bundle, num_workers=1)
        pool.start()
        assert wait_for(lambda: pool.num_workers == 1)
        pool.close(drain=True, timeout=120)
        with pytest.raises(ServiceClosedError):
            pool.submit_many(rng.normal(size=(2, 6)))

    def test_backpressure_overload(self, deployment_bundle, rng):
        pool = WorkerPool(
            deployment_bundle,
            num_workers=1,
            # A 60 s latency bound parks a below-max_batch burst in the
            # queue, so the second burst must trip the max_pending bound.
            policy=BatchPolicy(max_batch=8, max_latency=60.0, max_pending=8),
        )
        pool.start()
        try:
            assert wait_for(lambda: pool.num_workers == 1)
            pool.submit_many(rng.normal(size=(7, 6)))
            with pytest.raises(ServiceOverloadedError):
                pool.submit_many(rng.normal(size=(2, 6)))
        finally:
            pool.close(drain=False)
