"""Deployment bundle tests: the artefact unit worker processes boot from."""

import json

import numpy as np
import pytest

from repro.exceptions import SerializationError
from repro.serving import DeploymentBundle, save_deployment
from repro.serving.artifacts import MANIFEST_NAME


class TestSaveDeployment:
    def test_writes_manifest_and_artifacts(self, tmp_path, tiny_network, serving_monitors):
        manifest = save_deployment(tmp_path, tiny_network, serving_monitors)
        assert manifest.name == MANIFEST_NAME
        data = json.loads(manifest.read_text())
        assert data["input_dim"] == 6
        assert set(data["monitors"]) == {"minmax", "boolean"}
        for relative in data["monitors"].values():
            assert (tmp_path / relative).exists()
        assert (tmp_path / data["network"]).exists()

    def test_refuses_empty_monitor_set(self, tmp_path, tiny_network):
        with pytest.raises(SerializationError):
            save_deployment(tmp_path, tiny_network, {})


class TestDeploymentBundle:
    def test_loads_bit_identical_monitors(
        self, deployment_bundle, serving_monitors, probe_frames
    ):
        network = deployment_bundle.load_network()
        loaded = deployment_bundle.load_monitors(network)
        assert set(loaded) == set(serving_monitors)
        for name, monitor in serving_monitors.items():
            np.testing.assert_array_equal(
                loaded[name].warn_batch(probe_frames), monitor.warn_batch(probe_frames)
            )

    def test_accepts_manifest_path_or_directory(self, deployment_dir):
        by_dir = DeploymentBundle(deployment_dir)
        by_manifest = DeploymentBundle(deployment_dir / MANIFEST_NAME)
        assert by_dir.input_dim == by_manifest.input_dim == 6
        assert by_dir.monitor_names == by_manifest.monitor_names

    def test_describe(self, deployment_bundle):
        description = deployment_bundle.describe()
        assert description["input_dim"] == 6
        assert sorted(description["monitors"]) == ["boolean", "minmax"]

    def test_missing_manifest_rejected(self, tmp_path):
        with pytest.raises(SerializationError):
            DeploymentBundle(tmp_path)

    def test_missing_artifact_rejected(self, tmp_path, tiny_network, serving_monitors):
        save_deployment(tmp_path, tiny_network, serving_monitors)
        (tmp_path / "monitor_minmax.npz").unlink()
        with pytest.raises(SerializationError, match="minmax"):
            DeploymentBundle(tmp_path)

    def test_unsupported_format_rejected(self, tmp_path, tiny_network, serving_monitors):
        manifest = save_deployment(tmp_path, tiny_network, serving_monitors)
        data = json.loads(manifest.read_text())
        data["format"] = 99
        manifest.write_text(json.dumps(data))
        with pytest.raises(SerializationError, match="format"):
            DeploymentBundle(tmp_path)
