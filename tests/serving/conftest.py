"""Shared fixtures for the out-of-process serving tests.

The tier-1 tests in this package exercise the wire protocol and the socket
server over the *in-process* streaming scorer (threads only, fast); the
``slow``-marked tests boot real spawned worker processes from a deployment
bundle — those are the CI ``service-e2e`` leg.
"""

import numpy as np
import pytest

from repro.monitors.builder import MonitorBuilder
from repro.serving import save_deployment
from repro.serving.artifacts import DeploymentBundle
from repro.service import BatchPolicy, StreamingScorer

LAYER = 4  # last hidden activation layer of the 6-10-8-3 tiny network


@pytest.fixture(scope="session")
def serving_monitors(tiny_network, tiny_inputs):
    """Two fitted monitors of different families on the tiny network."""
    return {
        "minmax": MonitorBuilder("minmax", LAYER).build_and_fit(tiny_network, tiny_inputs),
        "boolean": MonitorBuilder("boolean", LAYER).build_and_fit(tiny_network, tiny_inputs),
    }


@pytest.fixture(scope="session")
def deployment_dir(tmp_path_factory, tiny_network, serving_monitors):
    """A saved deployment bundle every pool test boots workers from."""
    directory = tmp_path_factory.mktemp("deployment")
    save_deployment(directory, tiny_network, serving_monitors)
    return directory


@pytest.fixture(scope="session")
def deployment_bundle(deployment_dir):
    return DeploymentBundle(deployment_dir)


@pytest.fixture
def probe_frames(rng):
    return rng.normal(size=(48, 6))


@pytest.fixture
def local_scorer(tiny_network, serving_monitors):
    """A started in-process scorer serving the session monitors."""
    scorer = StreamingScorer(
        tiny_network, policy=BatchPolicy(max_batch=16, max_latency=0.002)
    )
    for name, monitor in serving_monitors.items():
        scorer.register(name, monitor)
    scorer.start()
    yield scorer
    scorer.close(drain=False)
