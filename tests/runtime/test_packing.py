"""Tests for the bit-packing primitives of the runtime substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError, ShapeError
from repro.runtime.packing import (
    WORD_BITS,
    pack_bool_matrix,
    popcount,
    unpack_bool_matrix,
    words_for_bits,
)


class TestWordsForBits:
    @pytest.mark.parametrize(
        "num_bits,expected",
        [(1, 1), (63, 1), (64, 1), (65, 2), (128, 2), (129, 3)],
    )
    def test_word_counts(self, num_bits, expected):
        assert words_for_bits(num_bits) == expected

    def test_non_positive_rejected(self):
        with pytest.raises(ConfigurationError):
            words_for_bits(0)


class TestPackRoundTrip:
    @pytest.mark.parametrize("num_bits", [1, 3, 63, 64, 65, 100, 128, 200])
    def test_round_trip(self, num_bits):
        rng = np.random.default_rng(num_bits)
        bits = rng.random((17, num_bits)) < 0.5
        packed = pack_bool_matrix(bits)
        assert packed.dtype == np.uint64
        assert packed.shape == (17, words_for_bits(num_bits))
        recovered = unpack_bool_matrix(packed, num_bits)
        np.testing.assert_array_equal(recovered, bits)

    def test_padding_bits_are_zero(self):
        """Trailing pad bits must be zero so rows hash/compare canonically."""
        bits = np.ones((4, 70), dtype=bool)
        packed = pack_bool_matrix(bits)
        # Word 1 holds bits 64..69 only: value (1 << 6) - 1.
        assert np.all(packed[:, 1] == np.uint64((1 << 6) - 1))

    def test_bit_layout_is_lsb_first(self):
        bits = np.zeros((1, WORD_BITS), dtype=bool)
        bits[0, 0] = True
        bits[0, 5] = True
        packed = pack_bool_matrix(bits)
        assert packed[0, 0] == np.uint64(1 | (1 << 5))

    def test_non_2d_rejected(self):
        with pytest.raises(ShapeError):
            pack_bool_matrix(np.zeros(8, dtype=bool))
        with pytest.raises(ShapeError):
            unpack_bool_matrix(np.zeros(2, dtype=np.uint64), 8)

    def test_word_count_mismatch_rejected(self):
        with pytest.raises(ShapeError):
            unpack_bool_matrix(np.zeros((3, 2), dtype=np.uint64), 8)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=1, max_value=150), st.integers(min_value=0, max_value=2**32))
    def test_round_trip_property(self, num_bits, seed):
        rng = np.random.default_rng(seed)
        bits = rng.random((5, num_bits)) < rng.random()
        np.testing.assert_array_equal(
            unpack_bool_matrix(pack_bool_matrix(bits), num_bits), bits
        )


class TestPopcount:
    def test_matches_python_bit_count(self):
        rng = np.random.default_rng(0)
        packed = rng.integers(0, 2**63, size=(6, 4), dtype=np.int64).astype(np.uint64)
        counts = popcount(packed)
        for row, count_row in zip(packed, counts):
            for value, count in zip(row, count_row):
                assert count == bin(int(value)).count("1")

    def test_counts_packed_bits(self):
        rng = np.random.default_rng(1)
        bits = rng.random((9, 130)) < 0.3
        assert popcount(pack_bool_matrix(bits)).sum() == bits.sum()
