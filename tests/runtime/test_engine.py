"""Tests for the batched scoring engine and its activation cache."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.monitors.boolean import BooleanPatternMonitor
from repro.monitors.builder import ClassConditionalMonitor, MonitorBuilder
from repro.monitors.minmax import MinMaxMonitor
from repro.runtime.engine import ActivationCache, BatchScoringEngine


class TestActivationCache:
    def test_cached_activations_are_bit_identical_to_forward_to(self, tiny_network, tiny_inputs):
        cache = ActivationCache(tiny_network)
        for layer_index in (2, 4):
            cached = cache.layer_activations(tiny_inputs, layer_index)
            direct = tiny_network.forward_to(layer_index, tiny_inputs)
            np.testing.assert_array_equal(cached, direct)

    def test_repeated_batches_hit_the_cache(self, tiny_network, tiny_inputs):
        cache = ActivationCache(tiny_network)
        cache.layer_activations(tiny_inputs, 2)
        cache.layer_activations(tiny_inputs, 4)  # same batch, other layer
        cache.layer_activations(tiny_inputs.copy(), 2)  # same content
        assert cache.misses == 1
        assert cache.hits == 2

    def test_lru_eviction(self, tiny_network, rng):
        cache = ActivationCache(tiny_network, max_entries=2)
        batches = [rng.random((4, 6)) for _ in range(3)]
        for batch in batches:
            cache.layer_activations(batch, 2)
        cache.layer_activations(batches[0], 2)  # evicted: a miss again
        assert cache.misses == 4

    def test_weight_change_invalidates_cache(self, tiny_inputs):
        """Continuing to train the network must not serve stale activations."""
        from repro.nn.network import mlp

        network = mlp(6, [10, 8], 3, activation="relu", seed=7)
        cache = ActivationCache(network)
        before = cache.layer_activations(tiny_inputs, 2).copy()
        weights = network.get_weights()
        weights[0] = weights[0] + 0.5
        network.set_weights(weights)
        after = cache.layer_activations(tiny_inputs, 2)
        assert cache.misses == 2  # same inputs, new weights -> fresh pass
        assert not np.array_equal(before, after)
        np.testing.assert_array_equal(after, network.forward_to(2, tiny_inputs))

    def test_invalid_layer_rejected(self, tiny_network, tiny_inputs):
        cache = ActivationCache(tiny_network)
        with pytest.raises(ConfigurationError):
            cache.layer_activations(tiny_inputs, 99)

    def test_invalid_capacity_rejected(self, tiny_network):
        with pytest.raises(ConfigurationError):
            ActivationCache(tiny_network, max_entries=0)


class TestBatchScoringEngine:
    def test_engine_matches_direct_warn_batch(self, tiny_network, tiny_inputs, rng):
        minmax = MinMaxMonitor(tiny_network, 4).fit(tiny_inputs)
        boolean = BooleanPatternMonitor(tiny_network, 4, thresholds="mean").fit(tiny_inputs)
        engine = BatchScoringEngine(tiny_network)
        probes = rng.uniform(-2.0, 2.0, size=(30, 6))
        score = engine.score_batch({"minmax": minmax, "boolean": boolean}, probes)
        np.testing.assert_array_equal(score.warns["minmax"], minmax.warn_batch(probes))
        np.testing.assert_array_equal(score.warns["boolean"], boolean.warn_batch(probes))
        # Two monitors on the same layer share one forward pass — and since
        # the whole-entry refactor, one cache lookup per batch.
        assert engine.cache.misses == 1
        assert engine.cache.hits == 0
        # Re-scoring the same batch replays the cached pass.
        engine.score_batch({"minmax": minmax, "boolean": boolean}, probes)
        assert engine.cache.misses == 1
        assert engine.cache.hits == 1

    def test_uncached_scoring_is_identical_and_leaves_no_entry(
        self, tiny_network, tiny_inputs, rng
    ):
        minmax = MinMaxMonitor(tiny_network, 4).fit(tiny_inputs)
        engine = BatchScoringEngine(tiny_network)
        probes = rng.uniform(-2.0, 2.0, size=(16, 6))
        uncached = engine.score_batch({"m": minmax}, probes, use_cache=False)
        np.testing.assert_array_equal(uncached.warns["m"], minmax.warn_batch(probes))
        assert engine.cache.misses == 0 and engine.cache.num_entries == 0

    def test_engine_verdicts(self, tiny_network, tiny_inputs, rng):
        minmax = MinMaxMonitor(tiny_network, 4).fit(tiny_inputs)
        engine = BatchScoringEngine(tiny_network)
        probes = rng.uniform(-2.0, 2.0, size=(10, 6))
        score = engine.score_batch({"minmax": minmax}, probes, want_verdicts=True)
        direct = minmax.verdict_batch(probes)
        assert [v.warn for v in score.verdicts["minmax"]] == [v.warn for v in direct]
        np.testing.assert_array_equal(
            score.warns["minmax"], np.array([v.warn for v in direct])
        )

    def test_foreign_monitor_falls_back(self, trained_digits, rng):
        """Monitors without the layer API are scored via their own warn_batch."""
        network, train, test = trained_digits
        conditional = ClassConditionalMonitor(
            MonitorBuilder("minmax", 4), num_classes=4
        ).fit(network, train.inputs)
        engine = BatchScoringEngine(network)
        score = engine.score_batch({"cc": conditional}, test.inputs)
        np.testing.assert_array_equal(
            score.warns["cc"], conditional.warn_batch(test.inputs)
        )

    def test_warning_rate_helper(self, tiny_network, tiny_inputs):
        minmax = MinMaxMonitor(tiny_network, 4).fit(tiny_inputs)
        engine = BatchScoringEngine(tiny_network)
        score = engine.score_batch({"m": minmax}, tiny_inputs)
        assert score.warning_rate("m") == pytest.approx(
            float(np.mean(minmax.warn_batch(tiny_inputs)))
        )


class TestScoreBatchEdgeCases:
    def test_empty_batch_returns_empty_vectors(self, tiny_network, tiny_inputs):
        minmax = MinMaxMonitor(tiny_network, 4).fit(tiny_inputs)
        engine = BatchScoringEngine(tiny_network)
        score = engine.score_batch({"m": minmax}, np.zeros((0, 6)))
        assert score.warns["m"].shape == (0,)
        assert score.warns["m"].dtype == bool
        # No forward pass, no cache traffic for an empty batch.
        assert engine.cache.misses == 0 and engine.cache.hits == 0
        assert engine.cache.num_entries == 0

    def test_width_zero_rows_still_fail_the_forward_pass(
        self, tiny_network, tiny_inputs
    ):
        """(N, 0) is a malformed batch, not an empty one: it must raise."""
        minmax = MinMaxMonitor(tiny_network, 4).fit(tiny_inputs)
        engine = BatchScoringEngine(tiny_network)
        with pytest.raises(Exception):
            engine.score_batch({"m": minmax}, np.zeros((5, 0)))

    def test_empty_batch_with_verdicts(self, tiny_network, tiny_inputs):
        minmax = MinMaxMonitor(tiny_network, 4).fit(tiny_inputs)
        engine = BatchScoringEngine(tiny_network)
        score = engine.score_batch({"m": minmax}, np.zeros((0, 6)), want_verdicts=True)
        assert score.verdicts["m"] == []
        with pytest.raises(ConfigurationError):
            score.warning_rate("m")

    def test_single_frame_batch(self, tiny_network, tiny_inputs, rng):
        minmax = MinMaxMonitor(tiny_network, 4).fit(tiny_inputs)
        engine = BatchScoringEngine(tiny_network)
        frame = rng.uniform(-2.0, 2.0, size=6)
        score = engine.score_batch({"m": minmax}, frame)
        assert score.warns["m"].shape == (1,)
        assert score.warns["m"][0] == bool(minmax.warn_batch(frame[None, :])[0])

    def test_foreign_network_monitor_misses_shared_path(self, tiny_inputs, rng):
        """A monitor on another network must not read this engine's cache."""
        from repro.nn.network import mlp

        host = mlp(6, [10, 8], 3, activation="relu", seed=7)
        other = mlp(6, [10, 8], 3, activation="relu", seed=41)
        host_monitor = MinMaxMonitor(host, 4).fit(tiny_inputs)
        foreign_monitor = MinMaxMonitor(other, 4).fit(tiny_inputs)
        engine = BatchScoringEngine(host)
        assert engine._shares_network(host_monitor)
        assert not engine._shares_network(foreign_monitor)
        probes = rng.uniform(-2.0, 2.0, size=(12, 6))
        score = engine.score_batch(
            {"host": host_monitor, "foreign": foreign_monitor}, probes
        )
        # Only the host monitor went through the shared cache...
        assert engine.cache.misses == 1
        # ...and the foreign monitor's answer is its own network's, which
        # differs from the host's on some probe (different weights).
        np.testing.assert_array_equal(
            score.warns["foreign"], foreign_monitor.warn_batch(probes)
        )
        np.testing.assert_array_equal(
            score.warns["host"], host_monitor.warn_batch(probes)
        )

    def test_duck_typed_monitor_without_layer_api(self, tiny_network, rng):
        """Objects exposing only warn_batch score through the fallback path."""

        class ConstantMonitor:
            def warn_batch(self, inputs):
                return np.ones(inputs.shape[0], dtype=bool)

        engine = BatchScoringEngine(tiny_network)
        probes = rng.uniform(-1.0, 1.0, size=(5, 6))
        score = engine.score_batch({"const": ConstantMonitor()}, probes)
        assert score.warns["const"].all()
        assert engine.cache.misses == 0
