"""Tests for the batched scoring engine and its activation cache."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.monitors.boolean import BooleanPatternMonitor
from repro.monitors.builder import ClassConditionalMonitor, MonitorBuilder
from repro.monitors.minmax import MinMaxMonitor
from repro.runtime.engine import ActivationCache, BatchScoringEngine


class TestActivationCache:
    def test_cached_activations_are_bit_identical_to_forward_to(self, tiny_network, tiny_inputs):
        cache = ActivationCache(tiny_network)
        for layer_index in (2, 4):
            cached = cache.layer_activations(tiny_inputs, layer_index)
            direct = tiny_network.forward_to(layer_index, tiny_inputs)
            np.testing.assert_array_equal(cached, direct)

    def test_repeated_batches_hit_the_cache(self, tiny_network, tiny_inputs):
        cache = ActivationCache(tiny_network)
        cache.layer_activations(tiny_inputs, 2)
        cache.layer_activations(tiny_inputs, 4)  # same batch, other layer
        cache.layer_activations(tiny_inputs.copy(), 2)  # same content
        assert cache.misses == 1
        assert cache.hits == 2

    def test_lru_eviction(self, tiny_network, rng):
        cache = ActivationCache(tiny_network, max_entries=2)
        batches = [rng.random((4, 6)) for _ in range(3)]
        for batch in batches:
            cache.layer_activations(batch, 2)
        cache.layer_activations(batches[0], 2)  # evicted: a miss again
        assert cache.misses == 4

    def test_weight_change_invalidates_cache(self, tiny_inputs):
        """Continuing to train the network must not serve stale activations."""
        from repro.nn.network import mlp

        network = mlp(6, [10, 8], 3, activation="relu", seed=7)
        cache = ActivationCache(network)
        before = cache.layer_activations(tiny_inputs, 2).copy()
        weights = network.get_weights()
        weights[0] = weights[0] + 0.5
        network.set_weights(weights)
        after = cache.layer_activations(tiny_inputs, 2)
        assert cache.misses == 2  # same inputs, new weights -> fresh pass
        assert not np.array_equal(before, after)
        np.testing.assert_array_equal(after, network.forward_to(2, tiny_inputs))

    def test_invalid_layer_rejected(self, tiny_network, tiny_inputs):
        cache = ActivationCache(tiny_network)
        with pytest.raises(ConfigurationError):
            cache.layer_activations(tiny_inputs, 99)

    def test_invalid_capacity_rejected(self, tiny_network):
        with pytest.raises(ConfigurationError):
            ActivationCache(tiny_network, max_entries=0)


class TestBatchScoringEngine:
    def test_engine_matches_direct_warn_batch(self, tiny_network, tiny_inputs, rng):
        minmax = MinMaxMonitor(tiny_network, 4).fit(tiny_inputs)
        boolean = BooleanPatternMonitor(tiny_network, 4, thresholds="mean").fit(tiny_inputs)
        engine = BatchScoringEngine(tiny_network)
        probes = rng.uniform(-2.0, 2.0, size=(30, 6))
        score = engine.score_batch({"minmax": minmax, "boolean": boolean}, probes)
        np.testing.assert_array_equal(score.warns["minmax"], minmax.warn_batch(probes))
        np.testing.assert_array_equal(score.warns["boolean"], boolean.warn_batch(probes))
        # Two monitors on the same layer share one forward pass.
        assert engine.cache.misses == 1
        assert engine.cache.hits == 1

    def test_engine_verdicts(self, tiny_network, tiny_inputs, rng):
        minmax = MinMaxMonitor(tiny_network, 4).fit(tiny_inputs)
        engine = BatchScoringEngine(tiny_network)
        probes = rng.uniform(-2.0, 2.0, size=(10, 6))
        score = engine.score_batch({"minmax": minmax}, probes, want_verdicts=True)
        direct = minmax.verdict_batch(probes)
        assert [v.warn for v in score.verdicts["minmax"]] == [v.warn for v in direct]
        np.testing.assert_array_equal(
            score.warns["minmax"], np.array([v.warn for v in direct])
        )

    def test_foreign_monitor_falls_back(self, trained_digits, rng):
        """Monitors without the layer API are scored via their own warn_batch."""
        network, train, test = trained_digits
        conditional = ClassConditionalMonitor(
            MonitorBuilder("minmax", 4), num_classes=4
        ).fit(network, train.inputs)
        engine = BatchScoringEngine(network)
        score = engine.score_batch({"cc": conditional}, test.inputs)
        np.testing.assert_array_equal(
            score.warns["cc"], conditional.warn_batch(test.inputs)
        )

    def test_warning_rate_helper(self, tiny_network, tiny_inputs):
        minmax = MinMaxMonitor(tiny_network, 4).fit(tiny_inputs)
        engine = BatchScoringEngine(tiny_network)
        score = engine.score_batch({"m": minmax}, tiny_inputs)
        assert score.warning_rate("m") == pytest.approx(
            float(np.mean(minmax.warn_batch(tiny_inputs)))
        )
