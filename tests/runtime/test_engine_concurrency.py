"""Concurrent-access stress tests for the activation/bound caches.

Before the streaming service, :class:`ActivationCache` was only ever touched
from one thread; now a scorer worker and any number of evaluating threads
share it.  These tests hammer both LRU levels from many threads — with a
capacity small enough to force continuous eviction churn — and assert that
every returned array is bit-identical to the single-threaded answer, that no
call raises, and that the hit/miss ledger balances exactly (which only holds
when lookup + insert + evict are atomic).
"""

import threading

import numpy as np
import pytest

from repro.monitors.perturbation import PerturbationSpec, collect_bound_arrays
from repro.runtime.engine import ActivationCache, BatchScoringEngine

TIMEOUT = 60.0


def _hammer(threads):
    errors = []

    def wrap(target):
        def run():
            try:
                target()
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        return run

    workers = [threading.Thread(target=wrap(target)) for target in threads]
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join(TIMEOUT)
    assert not errors, f"worker raised: {errors[0]!r}"


def _reference_activations(network, batches, layer_index):
    return [network.forward_to(layer_index, batch) for batch in batches]


class TestActivationCacheConcurrency:
    def test_concurrent_layer_activations_quick(self, tiny_network, rng):
        batches = [rng.random((6, 6)) for _ in range(6)]
        reference = _reference_activations(tiny_network, batches, 2)
        cache = ActivationCache(tiny_network, max_entries=4)  # forces eviction
        iterations = 30

        def worker(seed):
            order = np.random.default_rng(seed)

            def run():
                for _ in range(iterations):
                    index = int(order.integers(len(batches)))
                    out = cache.layer_activations(batches[index], 2)
                    np.testing.assert_array_equal(out, reference[index])

            return run

        num_threads = 4
        _hammer([worker(seed) for seed in range(num_threads)])
        assert cache.hits + cache.misses == num_threads * iterations
        assert cache.num_entries <= cache.max_entries

    @pytest.mark.slow
    def test_concurrent_mixed_levels_stress(self, tiny_network, rng):
        """Both LRU levels under heavy churn from eight threads."""
        batches = [rng.random((5, 6)) for _ in range(10)]
        specs = [
            PerturbationSpec(delta=delta, layer=0, method="box")
            for delta in (0.01, 0.05)
        ]
        layer = 4
        act_reference = _reference_activations(tiny_network, batches, layer)
        bound_reference = {
            (index, spec.cache_key): collect_bound_arrays(
                tiny_network, batches[index], layer, spec
            )
            for index in range(len(batches))
            for spec in specs
        }
        cache = ActivationCache(tiny_network, max_entries=3)
        iterations = 50

        def worker(seed):
            order = np.random.default_rng(seed)

            def run():
                for _ in range(iterations):
                    index = int(order.integers(len(batches)))
                    if order.integers(2):
                        out = cache.layer_activations(batches[index], layer)
                        np.testing.assert_array_equal(out, act_reference[index])
                    else:
                        spec = specs[int(order.integers(len(specs)))]
                        lows, highs = cache.bound_arrays(batches[index], layer, spec)
                        ref_lows, ref_highs = bound_reference[(index, spec.cache_key)]
                        np.testing.assert_array_equal(lows, ref_lows)
                        np.testing.assert_array_equal(highs, ref_highs)

            return run

        _hammer([worker(seed) for seed in range(8)])
        assert cache.num_entries <= cache.max_entries
        assert cache.num_bound_entries <= cache.max_entries
        assert cache.bound_hits + cache.bound_misses > 0

    @pytest.mark.slow
    def test_engine_shared_across_scoring_threads(
        self, tiny_network, tiny_inputs, rng
    ):
        """One engine serving score_batch from several threads stays correct."""
        from repro.monitors.minmax import MinMaxMonitor

        monitor = MinMaxMonitor(tiny_network, 4).fit(tiny_inputs)
        engine = BatchScoringEngine(tiny_network, max_cache_entries=2)
        batches = [rng.uniform(-2.0, 2.0, size=(8, 6)) for _ in range(6)]
        reference = [monitor.warn_batch(batch) for batch in batches]

        def worker(seed):
            order = np.random.default_rng(seed)

            def run():
                for _ in range(40):
                    index = int(order.integers(len(batches)))
                    warns = engine.warn_batch(monitor, batches[index])
                    np.testing.assert_array_equal(warns, reference[index])

            return run

        _hammer([worker(seed) for seed in range(6)])
