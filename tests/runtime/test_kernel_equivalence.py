"""Property tests: every matcher back-end is bit-identical to ``numpy``.

The back-end registry's contract is that kernels are interchangeable
*executions* of one plan, never different semantics.  These tests generate
random mixes of exact, ternary and range structures over random codec
shapes — widths deliberately straddling the 64-bit machine-word boundary —
and pin every registered back-end (plus a forced-sharding configuration
that always splits the probe batch) to the reference verdict vector, both
on live matchers and across the ``packed_state`` → ``from_packed_state``
serialisation round-trip.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bdd.patterns import PatternSet
from repro.runtime import PackedMatcher, WordCodec
from repro.runtime.codec import PatternCodec
from repro.runtime.kernels import (
    NumpyMatcherKernel,
    ShardedMatcherKernel,
    matcher_backends,
)

BACKENDS = sorted(matcher_backends())


def alternate_kernels():
    """Every registered back-end plus a forced-multi-shard configuration."""
    kernels = list(BACKENDS)
    kernels.append(
        ShardedMatcherKernel(inner=NumpyMatcherKernel(), min_shard_rows=4, max_workers=4)
    )
    return kernels


@st.composite
def matcher_workloads(draw):
    """A random codec shape plus exact/ternary/range structures and probes."""
    num_positions = draw(st.integers(min_value=1, max_value=70))
    bits = draw(st.integers(min_value=1, max_value=2))
    num_codes = 1 << bits
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)

    num_exact = draw(st.integers(min_value=0, max_value=8))
    exact = rng.integers(0, num_codes, size=(num_exact, num_positions))

    num_ranges = draw(st.integers(min_value=0, max_value=4))
    low = rng.integers(0, num_codes, size=(num_ranges, num_positions))
    width = rng.integers(0, num_codes, size=(num_ranges, num_positions))
    high = np.minimum(low + width, num_codes - 1)

    num_probes = draw(st.integers(min_value=0, max_value=30))
    probes = rng.integers(0, num_codes, size=(num_probes, num_positions))
    # Re-probe some stored rows so positive hits are guaranteed to occur.
    for source in (exact, low, high):
        if source.shape[0] and probes.shape[0]:
            take = min(source.shape[0], max(1, probes.shape[0] // 4))
            probes[:take] = source[:take]

    # Ternary entries as feature intervals (encoded through the codec so
    # value/mask planes are generated exactly like monitor fits generate
    # them); ``span`` widens some positions into don't-cares.
    # Ternary planes exist only for 1-bit codecs (on/off activation patterns).
    num_ternary = draw(st.integers(min_value=0, max_value=4)) if bits == 1 else 0
    centres = rng.normal(size=(num_ternary, num_positions))
    spans = rng.uniform(0.0, 1.5, size=(num_ternary, num_positions))
    return {
        "num_positions": num_positions,
        "bits": bits,
        "exact": exact,
        "range_low": low,
        "range_high": high,
        "ternary_centres": centres,
        "ternary_spans": spans,
        "probes": probes,
    }


def build_matcher(codec, workload, backend):
    matcher = PackedMatcher(codec.word_codec, backend=backend)
    if workload["exact"].shape[0]:
        matcher.add_exact_packed(codec.word_codec.pack_codes(workload["exact"]))
    if workload["range_low"].shape[0]:
        matcher.add_code_ranges(workload["range_low"], workload["range_high"])
    if workload["ternary_centres"].shape[0]:
        low = workload["ternary_centres"] - workload["ternary_spans"]
        high = workload["ternary_centres"] + workload["ternary_spans"]
        matcher.add_ternary(codec.ternary_planes(low, high))
    return matcher


def make_codec(workload):
    cuts = np.linspace(-1.0, 1.0, (1 << workload["bits"]) - 1)
    cut_points = np.tile(cuts, (workload["num_positions"], 1))
    return PatternCodec(cut_points)


class TestBackendEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(workload=matcher_workloads())
    def test_all_backends_bit_identical(self, workload):
        codec = make_codec(workload)
        reference = build_matcher(codec, workload, "numpy")
        expected = reference.contains_codes(workload["probes"])
        packed = codec.word_codec.pack_codes(workload["probes"])
        for backend in alternate_kernels():
            candidate = build_matcher(codec, workload, backend)
            np.testing.assert_array_equal(
                candidate.contains_codes(workload["probes"]),
                expected,
                err_msg=f"backend {backend!r} diverged on codes",
            )
            np.testing.assert_array_equal(
                candidate.contains_packed(packed),
                expected,
                err_msg=f"backend {backend!r} diverged on packed probes",
            )

    @settings(max_examples=25, deadline=None)
    @given(workload=matcher_workloads())
    def test_export_state_reload_keeps_equivalence(self, workload):
        codec = make_codec(workload)
        reference = build_matcher(codec, workload, "numpy")
        expected = reference.contains_codes(workload["probes"])
        state = reference.export_state()
        for backend in alternate_kernels():
            clone = PackedMatcher(codec.word_codec, backend=backend)
            clone.add_exact_packed(state["exact"])
            if state["ternary_values"].shape[0]:
                from repro.runtime.codec import TernaryPlanes

                clone.add_ternary(
                    TernaryPlanes(
                        values=state["ternary_values"], masks=state["ternary_masks"]
                    )
                )
            if state["range_low"].shape[0]:
                clone.add_code_ranges(state["range_low"], state["range_high"])
            np.testing.assert_array_equal(
                clone.contains_codes(workload["probes"]),
                expected,
                err_msg=f"backend {backend!r} diverged after export_state reload",
            )


class TestPatternSetEquivalence:
    """The monitor-facing surface: contains_batch and format-2 round-trips."""

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        num_positions=st.integers(min_value=1, max_value=66),
    )
    def test_contains_batch_across_backends(self, seed, num_positions):
        rng = np.random.default_rng(seed)
        words = rng.integers(0, 2, size=(10, num_positions))
        probes = np.vstack([words[:5], rng.integers(0, 2, size=(20, num_positions))])
        reference = PatternSet(num_positions)
        reference.add_patterns(words)
        expected = reference.contains_batch(probes)
        assert expected[:5].all()
        for backend in alternate_kernels():
            candidate = PatternSet(num_positions, matcher_backend=backend)
            candidate.add_patterns(words)
            np.testing.assert_array_equal(candidate.contains_batch(probes), expected)

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        num_positions=st.integers(min_value=1, max_value=40),
        bits=st.integers(min_value=1, max_value=2),
    )
    def test_format2_roundtrip_across_backends(self, seed, num_positions, bits):
        rng = np.random.default_rng(seed)
        num_codes = 1 << bits
        low = rng.integers(0, num_codes, size=(4, num_positions))
        high = np.minimum(low + rng.integers(0, 2, size=low.shape), num_codes - 1)
        words = rng.integers(0, num_codes, size=(6, num_positions))
        original = PatternSet(num_positions, bits_per_position=bits)
        original.add_patterns(words)
        original.add_range_patterns(low, high)
        probes = np.vstack(
            [words, low, rng.integers(0, num_codes, size=(25, num_positions))]
        )
        expected = original.contains_batch(probes)
        state = original.packed_state()
        for backend in alternate_kernels():
            restored = PatternSet.from_packed_state(
                num_positions,
                bits,
                state,
                insertions=original.insertions,
                matcher_backend=backend,
            )
            np.testing.assert_array_equal(restored.contains_batch(probes), expected)
            if isinstance(backend, str):
                assert restored.matcher_backend == backend


def test_unknown_backend_rejected_with_choice_list():
    matcher = PackedMatcher(WordCodec(8, 1), backend="no-such-kernel")
    matcher.add_ternary_raw([1], [3])
    with pytest.raises(ValueError) as excinfo:
        matcher.contains_packed(np.zeros((2, 1), dtype=np.uint64))
    message = str(excinfo.value)
    assert "no-such-kernel" in message
    for name in matcher_backends():
        assert name in message
