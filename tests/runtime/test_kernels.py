"""Matcher-kernel back-end registry, selection and per-backend edge cases."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.runtime import PackedMatcher, WordCodec
from repro.runtime.codec import PatternCodec, TernaryPlanes
from repro.runtime.kernels import (
    MATCHER_BACKEND_ENV,
    CompiledMatcherKernel,
    MatcherKernel,
    NumpyMatcherKernel,
    ShardedMatcherKernel,
    matcher_backends,
    register_matcher_backend,
    resolve_matcher_backend,
    unregister_matcher_backend,
)
from repro.runtime.packing import full_mask_words, tail_word_mask, words_for_bits

BACKENDS = sorted(matcher_backends())

#: Widths straddling machine-word boundaries (the tail-masking matrix).
EDGE_WIDTHS = [1, 63, 64, 65, 127, 128, 130]


class CountingKernel(NumpyMatcherKernel):
    """Spy back-end: the reference passes plus a dispatch counter."""

    name = "counting"

    def __init__(self):
        self.calls = 0

    def match(self, plan, packed, codes=None):
        self.calls += 1
        return super().match(plan, packed, codes=codes)


# ----------------------------------------------------------------------
# registry + selection
# ----------------------------------------------------------------------
class TestRegistry:
    def test_builtins_registered(self):
        assert {"numpy", "compiled", "sharded"} <= set(matcher_backends())

    def test_resolve_reuses_instances(self):
        assert resolve_matcher_backend("numpy") is resolve_matcher_backend("numpy")

    def test_resolve_passes_instances_through(self):
        kernel = NumpyMatcherKernel()
        assert resolve_matcher_backend(kernel) is kernel

    def test_unknown_backend_is_value_error_listing_choices(self):
        with pytest.raises(ValueError, match="valid backends are") as excinfo:
            resolve_matcher_backend("zontope")
        for name in matcher_backends():
            assert name in str(excinfo.value)

    def test_unknown_backend_surfaces_on_first_nonempty_query(self, one_bit_probes):
        codec, probes, words = one_bit_probes
        matcher = PackedMatcher(codec.word_codec, backend="typo")
        # An empty matcher never dispatches, so the bad name is not hit yet.
        assert not matcher.contains_packed(probes).any()
        matcher.add_exact_packed(codec.word_codec.pack_codes(words))
        with pytest.raises(ValueError, match="unknown matcher backend 'typo'"):
            matcher.contains_packed(probes)

    def test_env_override_selects_backend(self, monkeypatch, one_bit_probes):
        codec, probes, words = one_bit_probes
        monkeypatch.setenv(MATCHER_BACKEND_ENV, "sharded")
        matcher = PackedMatcher(codec.word_codec)
        matcher.add_exact_packed(codec.word_codec.pack_codes(words))
        assert matcher.backend_name == "sharded"
        assert matcher.contains_codes(words).all()

    def test_register_and_unregister_custom_backend(self, one_bit_probes):
        codec, probes, words = one_bit_probes
        spy = CountingKernel()
        register_matcher_backend("counting", lambda: spy)
        try:
            matcher = PackedMatcher(codec.word_codec, backend="counting")
            matcher.add_exact_packed(codec.word_codec.pack_codes(words))
            assert matcher.contains_codes(words).all()
            assert spy.calls == 1
        finally:
            unregister_matcher_backend("counting")
        with pytest.raises(ValueError):
            resolve_matcher_backend("counting")

    def test_bad_registrations_rejected(self):
        with pytest.raises(ConfigurationError):
            register_matcher_backend("", NumpyMatcherKernel)
        with pytest.raises(ConfigurationError):
            register_matcher_backend("broken", "not-a-factory")
        register_matcher_backend("broken", lambda: object())
        try:
            with pytest.raises(ConfigurationError, match="not a MatcherKernel"):
                resolve_matcher_backend("broken")
        finally:
            unregister_matcher_backend("broken")

    def test_compiled_backend_reports_fallback_honestly(self):
        kernel = resolve_matcher_backend("compiled")
        assert kernel.name == "compiled"
        assert kernel.effective_name in ("compiled", "numpy")
        info = kernel.describe()
        assert info["backend"] == "compiled"

    def test_abstract_kernel_passes_unimplemented(self):
        kernel = MatcherKernel()
        with pytest.raises(NotImplementedError):
            kernel.match_exact(np.zeros((1, 1), np.uint64), np.zeros((1, 1), np.uint64))


@pytest.fixture
def one_bit_probes():
    rng = np.random.default_rng(7)
    codec = PatternCodec.from_thresholds(np.zeros(10))
    words = rng.integers(0, 2, size=(6, 10))
    probes = codec.word_codec.pack_codes(rng.integers(0, 2, size=(4, 10)))
    return codec, probes, words


# ----------------------------------------------------------------------
# empty-matcher early-out (satellite: no dispatch, no warm-up)
# ----------------------------------------------------------------------
class TestEmptyMatcherEarlyOut:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_allocated_all_false_on_every_backend(self, backend):
        codec = WordCodec(70, 1)
        matcher = PackedMatcher(codec, backend=backend)
        probes = np.zeros((5, codec.num_words), dtype=np.uint64)
        hits = matcher.contains_packed(probes)
        assert hits.shape == (5,) and hits.dtype == bool and not hits.any()
        assert matcher.contains_codes(np.zeros((3, 70), dtype=np.int64)).shape == (3,)
        assert matcher.is_empty

    def test_no_kernel_dispatch_while_empty(self):
        spy = CountingKernel()
        codec = WordCodec(16, 1)
        matcher = PackedMatcher(codec, backend=spy)
        probes = np.zeros((8, codec.num_words), dtype=np.uint64)
        assert not matcher.contains_packed(probes).any()
        assert spy.calls == 0
        matcher.add_ternary_raw([1], [3])
        matcher.contains_packed(probes)
        assert spy.calls == 1

    def test_zero_probe_batch_skips_dispatch(self):
        spy = CountingKernel()
        codec = WordCodec(16, 1)
        matcher = PackedMatcher(codec, backend=spy)
        matcher.add_ternary_raw([1], [3])
        hits = matcher.contains_packed(np.zeros((0, codec.num_words), dtype=np.uint64))
        assert hits.shape == (0,)
        assert spy.calls == 0


# ----------------------------------------------------------------------
# tail-word masking at widths that are not multiples of 64
# ----------------------------------------------------------------------
class TestTailWordMasking:
    def test_tail_mask_values(self):
        assert tail_word_mask(64) == np.uint64(0xFFFF_FFFF_FFFF_FFFF)
        assert tail_word_mask(65) == np.uint64(1)
        assert tail_word_mask(63) == np.uint64((1 << 63) - 1)
        mask = full_mask_words(65)
        assert mask.shape == (2,)
        assert mask[0] == np.uint64(0xFFFF_FFFF_FFFF_FFFF) and mask[1] == np.uint64(1)

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("width", EDGE_WIDTHS)
    def test_exact_membership_at_word_boundaries(self, backend, width):
        rng = np.random.default_rng(width)
        codec = WordCodec(width, 1)
        matcher = PackedMatcher(codec, backend=backend)
        words = rng.integers(0, 2, size=(12, width))
        matcher.add_exact_packed(codec.pack_codes(words))
        assert matcher.contains_codes(words).all()
        # Flipping only the *last* position (the tail-word bit) must miss
        # unless the flipped word was independently inserted.
        flipped = words.copy()
        flipped[:, -1] ^= 1
        stored = {tuple(row) for row in words}
        expected = np.array([tuple(row) in stored for row in flipped])
        np.testing.assert_array_equal(matcher.contains_codes(flipped), expected)

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("width", EDGE_WIDTHS)
    def test_ternary_dont_care_in_tail_word(self, backend, width):
        codec = WordCodec(width, 1)
        matcher = PackedMatcher(codec, backend=backend)
        # One ternary word: every position constrained to 0 except the last,
        # which is a don't-care (for width 1 that makes the word match all).
        num_words = words_for_bits(width)
        masks = full_mask_words(width)[None, :].copy()
        tail_bit = np.uint64(1) << np.uint64((width - 1) % 64)
        masks[0, -1] &= ~tail_bit
        values = np.zeros((1, num_words), dtype=np.uint64)
        matcher.add_ternary(TernaryPlanes(values=values, masks=masks))
        zeros = np.zeros((1, width), dtype=np.int64)
        last_set = zeros.copy()
        last_set[0, -1] = 1
        assert matcher.contains_codes(zeros)[0]
        assert matcher.contains_codes(last_set)[0]
        if width > 1:
            first_set = zeros.copy()
            first_set[0, 0] = 1
            assert not matcher.contains_codes(first_set)[0]

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_range_membership_with_tail_positions(self, backend):
        # 33 positions × 2 bits = 66 bits: the last position's bits live in
        # the second machine word.
        codec = WordCodec(33, 2)
        matcher = PackedMatcher(codec, backend=backend)
        low = np.ones((1, 33), dtype=np.int64)
        high = np.full((1, 33), 2, dtype=np.int64)
        matcher.add_code_ranges(low, high)
        inside = np.full((1, 33), 2, dtype=np.int64)
        outside_tail = inside.copy()
        outside_tail[0, -1] = 3
        assert matcher.contains_codes(inside)[0]
        assert not matcher.contains_codes(outside_tail)[0]

    @pytest.mark.parametrize("width", EDGE_WIDTHS)
    def test_packed_padding_bits_stay_zero(self, width):
        rng = np.random.default_rng(width + 1)
        codec = WordCodec(width, 1)
        packed = codec.pack_codes(rng.integers(0, 2, size=(9, width)))
        assert not np.any(packed & ~full_mask_words(width)[None, :])


# ----------------------------------------------------------------------
# per-backend behaviour
# ----------------------------------------------------------------------
class TestBackendBehaviour:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_mixed_structures_match_reference(self, backend):
        rng = np.random.default_rng(42)
        codec = PatternCodec(np.linspace(-1.0, 1.0, 40 * 3).reshape(40, 3))
        reference = PackedMatcher(codec.word_codec, backend="numpy")
        candidate = PackedMatcher(codec.word_codec, backend=backend)
        words = rng.integers(0, 4, size=(30, 40))
        low = np.maximum(words[:10] - 1, 0)
        high = np.minimum(words[:10] + 1, 3)
        for matcher in (reference, candidate):
            matcher.add_exact_packed(codec.word_codec.pack_codes(words[10:]))
            matcher.add_code_ranges(low, high)
        probes = np.vstack([words, rng.integers(0, 4, size=(200, 40))])
        np.testing.assert_array_equal(
            candidate.contains_codes(probes), reference.contains_codes(probes)
        )

    def test_set_backend_rebinds_live_matcher(self):
        rng = np.random.default_rng(3)
        codec = PatternCodec.from_thresholds(np.zeros(20))
        matcher = PackedMatcher(codec.word_codec)
        feats = rng.normal(size=(15, 20))
        matcher.add_ternary(codec.ternary_planes(feats - 0.2, feats + 0.2))
        probes = codec.encode(rng.normal(size=(50, 20)))
        before = matcher.contains_packed(probes)
        for backend in BACKENDS:
            matcher.set_backend(backend)
            assert matcher.backend_name == backend
            np.testing.assert_array_equal(matcher.contains_packed(probes), before)

    def test_sharded_kernel_actually_shards(self):
        inner = CountingKernel()
        kernel = ShardedMatcherKernel(inner=inner, min_shard_rows=16, max_workers=4)
        assert kernel.effective_name.startswith("sharded[")
        assert kernel.describe()["inner"]["backend"] == "counting"
        rng = np.random.default_rng(11)
        codec = PatternCodec.from_thresholds(np.zeros(12))
        matcher = PackedMatcher(codec.word_codec, backend=kernel)
        feats = rng.normal(size=(10, 12))
        matcher.add_ternary(codec.ternary_planes(feats - 0.3, feats + 0.3))
        reference = PackedMatcher(codec.word_codec, backend="numpy")
        reference.add_ternary(codec.ternary_planes(feats - 0.3, feats + 0.3))
        probes = codec.encode(rng.normal(size=(257, 12)))
        np.testing.assert_array_equal(
            matcher.contains_packed(probes), reference.contains_packed(probes)
        )
        # 257 rows at min_shard_rows=16 must have split into several shards.
        assert inner.calls > 1

    def test_sharded_small_batch_skips_pool(self):
        inner = CountingKernel()
        kernel = ShardedMatcherKernel(inner=inner, min_shard_rows=1024)
        codec = PatternCodec.from_thresholds(np.zeros(4))
        matcher = PackedMatcher(codec.word_codec, backend=kernel)
        matcher.add_ternary_raw([1], [15])
        matcher.contains_packed(np.zeros((5, 1), dtype=np.uint64))
        assert inner.calls == 1

    def test_compiled_fallback_is_bit_identical(self):
        # Whether or not numba is installed, the compiled kernel must agree
        # with the reference (locally it degrades to numpy; on the numba CI
        # leg it runs the fused jitted pass).
        rng = np.random.default_rng(23)
        kernel = CompiledMatcherKernel()
        codec = PatternCodec(np.linspace(-0.5, 0.5, 70 * 1).reshape(70, 1))
        reference = PackedMatcher(codec.word_codec, backend="numpy")
        candidate = PackedMatcher(codec.word_codec, backend=kernel)
        words = rng.integers(0, 2, size=(25, 70))
        feats = rng.normal(size=(10, 70))
        for matcher in (reference, candidate):
            matcher.add_exact_packed(codec.word_codec.pack_codes(words))
            matcher.add_ternary(codec.ternary_planes(feats - 0.1, feats + 0.1))
        probes = np.vstack([words, rng.integers(0, 2, size=(300, 70))])
        np.testing.assert_array_equal(
            candidate.contains_codes(probes), reference.contains_codes(probes)
        )
