"""Batch-vs-single equivalence: ``warn_batch(X) == [warn(x) for x in X]``.

This is the central contract of the batched runtime refactor: the vectorised
batch path is authoritative and the single-sample wrappers delegate to it,
so both views of every monitor family must agree on a fixed-seed workload —
including values produced by forward passes of different batch sizes.
"""

import numpy as np
import pytest

from repro.monitors.boolean import BooleanPatternMonitor, RobustBooleanPatternMonitor
from repro.monitors.builder import ClassConditionalMonitor, MonitorBuilder
from repro.monitors.ensemble import MonitorEnsemble
from repro.monitors.interval import IntervalPatternMonitor, RobustIntervalPatternMonitor
from repro.monitors.minmax import MinMaxMonitor, RobustMinMaxMonitor
from repro.monitors.perturbation import PerturbationSpec
from repro.monitors.quantitative import EnvelopeDistanceMonitor, PatternDistanceMonitor


@pytest.fixture(scope="module")
def probes():
    """Mixed in-range / out-of-range probe batch (fixed seed)."""
    rng = np.random.default_rng(2026)
    inside = rng.uniform(-1.0, 1.0, size=(24, 6))
    outside = rng.uniform(-4.0, 4.0, size=(12, 6))
    return np.vstack([inside, outside])


def assert_batch_equals_single(monitor, probes):
    batched = np.asarray(monitor.warn_batch(probes), dtype=bool)
    single = np.array([monitor.warn(row) for row in probes], dtype=bool)
    np.testing.assert_array_equal(batched, single)


class TestBatchSingleEquivalence:
    def test_minmax(self, tiny_network, tiny_inputs, probes):
        monitor = MinMaxMonitor(tiny_network, 4).fit(tiny_inputs)
        assert_batch_equals_single(monitor, probes)

    def test_robust_minmax(self, tiny_network, tiny_inputs, probes):
        monitor = RobustMinMaxMonitor(
            tiny_network, 4, PerturbationSpec(delta=0.05)
        ).fit(tiny_inputs)
        assert_batch_equals_single(monitor, probes)

    @pytest.mark.parametrize("thresholds", ["zero", "mean", "percentile"])
    def test_boolean(self, tiny_network, tiny_inputs, probes, thresholds):
        monitor = BooleanPatternMonitor(
            tiny_network, 4, thresholds=thresholds
        ).fit(tiny_inputs)
        assert_batch_equals_single(monitor, probes)

    def test_boolean_with_hamming_tolerance(self, tiny_network, tiny_inputs, probes):
        monitor = BooleanPatternMonitor(
            tiny_network, 4, thresholds="mean", hamming_tolerance=1
        ).fit(tiny_inputs)
        assert_batch_equals_single(monitor, probes)

    def test_robust_boolean(self, tiny_network, tiny_inputs, probes):
        monitor = RobustBooleanPatternMonitor(
            tiny_network, 4, PerturbationSpec(delta=0.05), thresholds="mean"
        ).fit(tiny_inputs)
        assert_batch_equals_single(monitor, probes)

    @pytest.mark.parametrize("cut_strategy", ["percentile", "range_extension"])
    def test_interval(self, tiny_network, tiny_inputs, probes, cut_strategy):
        monitor = IntervalPatternMonitor(
            tiny_network, 4, num_cuts=3, cut_strategy=cut_strategy
        ).fit(tiny_inputs)
        assert_batch_equals_single(monitor, probes)

    def test_robust_interval(self, tiny_network, tiny_inputs, probes):
        monitor = RobustIntervalPatternMonitor(
            tiny_network, 4, PerturbationSpec(delta=0.05), num_cuts=3
        ).fit(tiny_inputs)
        assert_batch_equals_single(monitor, probes)

    def test_ensemble(self, tiny_network, tiny_inputs, probes):
        ensemble = MonitorEnsemble(
            [
                MinMaxMonitor(tiny_network, 2),
                MinMaxMonitor(tiny_network, 4),
                BooleanPatternMonitor(tiny_network, 4, thresholds="mean"),
            ],
            vote="majority",
        ).fit(tiny_inputs)
        assert_batch_equals_single(ensemble, probes)

    def test_class_conditional(self, trained_digits):
        network, train, test = trained_digits
        monitor = ClassConditionalMonitor(
            MonitorBuilder("boolean", 4, thresholds="mean"), num_classes=4
        ).fit(network, train.inputs)
        assert_batch_equals_single(monitor, test.inputs)

    def test_envelope_distance(self, tiny_network, tiny_inputs, probes):
        wrapped = MinMaxMonitor(tiny_network, 4).fit(tiny_inputs)
        scorer = EnvelopeDistanceMonitor(wrapped, threshold=0.1)
        assert_batch_equals_single(scorer, probes)
        batched_scores = scorer.score_batch(probes)
        single_scores = np.array([scorer.score(row) for row in probes])
        np.testing.assert_allclose(batched_scores, single_scores, rtol=0, atol=1e-12)

    def test_pattern_distance(self, tiny_network, tiny_inputs, probes):
        wrapped = BooleanPatternMonitor(tiny_network, 4, thresholds="mean").fit(
            tiny_inputs
        )
        scorer = PatternDistanceMonitor(wrapped, threshold=0.2, max_distance=2)
        assert_batch_equals_single(scorer, probes)
        np.testing.assert_array_equal(
            scorer.distance_batch(probes),
            np.array([scorer.distance(row) for row in probes]),
        )

    def test_training_data_accepted_row_by_row(self, tiny_network, tiny_inputs):
        """Fit-time batch and op-time single-row passes agree on the data."""
        for monitor in (
            MinMaxMonitor(tiny_network, 4).fit(tiny_inputs),
            BooleanPatternMonitor(tiny_network, 4, thresholds="mean").fit(tiny_inputs),
            IntervalPatternMonitor(
                tiny_network, 4, num_cuts=3, cut_strategy="range_extension"
            ).fit(tiny_inputs),
        ):
            assert not any(monitor.warn(row) for row in tiny_inputs)
