"""Tests for the pattern codec: binarisation, packing, ternary semantics."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, ShapeError
from repro.monitors.encoding import codes_of_values
from repro.runtime.codec import PatternCodec, TernaryPlanes, WordCodec
from repro.runtime.packing import popcount, unpack_bool_matrix


class TestWordCodec:
    @pytest.mark.parametrize("bits", [1, 2, 3, 4])
    def test_pack_codes_round_trip(self, bits):
        rng = np.random.default_rng(bits)
        codec = WordCodec(37, bits)
        codes = rng.integers(0, 1 << bits, size=(25, 37))
        np.testing.assert_array_equal(codec.unpack_codes(codec.pack_codes(codes)), codes)

    def test_bit_order_matches_pattern_set(self):
        """Bit ``b`` (MSB first) of position ``p`` lives at index ``p·bpp + b``."""
        codec = WordCodec(3, 2)
        codes = np.array([[0b10, 0b01, 0b11]])
        bits = unpack_bool_matrix(codec.pack_codes(codes), codec.num_bits)[0]
        assert list(bits.astype(int)) == [1, 0, 0, 1, 1, 1]

    def test_code_out_of_range_rejected(self):
        codec = WordCodec(4, 2)
        with pytest.raises(ConfigurationError):
            codec.pack_codes(np.full((1, 4), 4))

    def test_wrong_width_rejected(self):
        codec = WordCodec(4, 2)
        with pytest.raises(ShapeError):
            codec.pack_codes(np.zeros((1, 5), dtype=np.int64))


class TestPatternCodecCodes:
    def test_strict_codes_match_encoding_module(self):
        rng = np.random.default_rng(7)
        cuts = np.sort(rng.standard_normal((9, 3)), axis=1)
        codec = PatternCodec(cuts, tolerance=0.0)
        features = rng.standard_normal((50, 9))
        np.testing.assert_array_equal(codec.codes(features), codes_of_values(features, cuts))

    def test_encode_decode_round_trip(self):
        rng = np.random.default_rng(8)
        cuts = np.sort(rng.standard_normal((11, 3)), axis=1)
        codec = PatternCodec(cuts)
        features = rng.standard_normal((30, 11))
        codes = codec.codes(features)
        np.testing.assert_array_equal(codec.decode(codec.encode(features)), codes)

    def test_tolerance_keeps_boundary_values_below_cut(self):
        """A value exactly on a cut codes below it — stable under 1-ulp noise."""
        codec = PatternCodec(np.array([[0.5]]))
        exact = codec.codes(np.array([[0.5]]))[0, 0]
        nudged = codec.codes(np.array([[0.5 + 1e-13]]))[0, 0]
        clearly_above = codec.codes(np.array([[0.6]]))[0, 0]
        assert exact == nudged == 0
        assert clearly_above == 1

    def test_decreasing_cuts_rejected(self):
        with pytest.raises(ConfigurationError):
            PatternCodec(np.array([[1.0, 0.5]]))

    def test_wrong_feature_width_rejected(self):
        codec = PatternCodec(np.zeros((4, 1)))
        with pytest.raises(ShapeError):
            codec.codes(np.zeros((2, 5)))

    def test_from_thresholds_is_one_bit(self):
        codec = PatternCodec.from_thresholds(np.zeros(6))
        assert codec.bits_per_position == 1
        assert codec.num_codes == 2


class TestTernaryPlanes:
    def test_bound_codes_are_monotone_ranges(self):
        rng = np.random.default_rng(9)
        cuts = np.sort(rng.standard_normal((7, 3)), axis=1)
        codec = PatternCodec(cuts, tolerance=0.0)
        low = rng.standard_normal((20, 7))
        high = low + rng.random((20, 7))
        low_codes, high_codes = codec.bound_codes(low, high)
        assert np.all(low_codes <= high_codes)
        # Any sampled value inside the bound codes inside the range.
        mid = low + (high - low) * rng.random((20, 7))
        mid_codes = codec.codes(mid)
        assert np.all((mid_codes >= low_codes) & (mid_codes <= high_codes))

    def test_ternary_semantics(self):
        """1 when low clears the cut, 0 when high stays below, else don't-care."""
        codec = PatternCodec.from_thresholds(np.zeros(3), tolerance=0.0)
        low = np.array([[0.2, -0.9, -0.4]])
        high = np.array([[0.8, -0.1, 0.7]])
        planes = codec.ternary_planes(low, high)
        values = unpack_bool_matrix(planes.values, 3)[0]
        masks = unpack_bool_matrix(planes.masks, 3)[0]
        assert list(masks) == [True, True, False]
        assert list(values) == [True, False, False]

    def test_dont_care_value_bits_are_zero(self):
        """Unconstrained value bits are canonically zero (hashable rows)."""
        codec = PatternCodec.from_thresholds(np.zeros(2), tolerance=0.0)
        planes = codec.ternary_planes(
            np.array([[-1.0, -1.0]]), np.array([[1.0, 1.0]])
        )
        assert popcount(planes.values).sum() == 0
        assert popcount(planes.masks).sum() == 0

    def test_ternary_requires_one_bit(self):
        codec = PatternCodec(np.sort(np.random.default_rng(0).random((3, 3)), axis=1))
        with pytest.raises(ConfigurationError):
            codec.ternary_planes(np.zeros((1, 3)), np.ones((1, 3)))

    def test_planes_shape_validation(self):
        with pytest.raises(ShapeError):
            TernaryPlanes(
                values=np.zeros((2, 1), dtype=np.uint64),
                masks=np.zeros((3, 1), dtype=np.uint64),
            )
