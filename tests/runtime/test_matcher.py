"""Tests for the TCAM-style packed matcher against brute-force membership."""

import numpy as np
import pytest

from repro.exceptions import ShapeError
from repro.runtime.codec import PatternCodec, WordCodec
from repro.runtime.matcher import PackedMatcher


@pytest.fixture
def one_bit_codec():
    return WordCodec(12, 1)


class TestExactMembership:
    def test_added_words_are_members(self, one_bit_codec):
        rng = np.random.default_rng(0)
        matcher = PackedMatcher(one_bit_codec)
        words = rng.integers(0, 2, size=(40, 12))
        matcher.add_exact_packed(one_bit_codec.pack_codes(words))
        assert matcher.contains_codes(words).all()
        probes = rng.integers(0, 2, size=(200, 12))
        expected = np.array(
            [any((w == p).all() for w in words) for p in probes]
        )
        np.testing.assert_array_equal(matcher.contains_codes(probes), expected)

    def test_wrong_width_rejected(self, one_bit_codec):
        matcher = PackedMatcher(one_bit_codec)
        with pytest.raises(ShapeError):
            matcher.add_exact_packed(np.zeros((2, 3), dtype=np.uint64))


class TestTernaryMembership:
    def test_dont_care_bits_match_both_values(self):
        """The core word2set semantics: a don't-care accepts 0 and 1."""
        codec = PatternCodec.from_thresholds(np.zeros(4), tolerance=0.0)
        matcher = PackedMatcher(codec.word_codec)
        # Ternary word (1, -, 0, -): low/high straddle the cut on bits 1, 3.
        low = np.array([[0.5, -1.0, -1.0, -1.0]])
        high = np.array([[1.0, 1.0, -0.5, 1.0]])
        matcher.add_ternary(codec.ternary_planes(low, high))
        for b1 in (0, 1):
            for b3 in (0, 1):
                assert matcher.contains_codes(np.array([[1, b1, 0, b3]]))[0]
        assert not matcher.contains_codes(np.array([[0, 0, 0, 0]]))[0]
        assert not matcher.contains_codes(np.array([[1, 1, 1, 1]]))[0]

    def test_fully_constrained_rows_become_exact(self):
        codec = PatternCodec.from_thresholds(np.zeros(3), tolerance=0.0)
        matcher = PackedMatcher(codec.word_codec)
        low = np.array([[0.5, 0.5, -1.0]])
        high = np.array([[1.0, 1.0, -0.5]])
        matcher.add_ternary(codec.ternary_planes(low, high))
        assert matcher.num_exact == 1
        assert matcher.num_ternary == 0
        assert matcher.contains_codes(np.array([[1, 1, 0]]))[0]

    def test_raw_rows_match_after_consolidation(self):
        codec = WordCodec(70, 1)  # spans two machine words
        rng = np.random.default_rng(3)
        matcher = PackedMatcher(codec)
        stored = []
        for _ in range(15):
            mask = rng.integers(0, 2, size=70).astype(bool)
            value = rng.integers(0, 2, size=70).astype(bool) & mask
            stored.append((value, mask))
            value_words = [0, 0]
            mask_words = [0, 0]
            for index in range(70):
                if mask[index]:
                    mask_words[index >> 6] |= 1 << (index & 63)
                    if value[index]:
                        value_words[index >> 6] |= 1 << (index & 63)
            matcher.add_ternary_raw(value_words, mask_words)
        probes = rng.integers(0, 2, size=(120, 70))
        expected = np.array(
            [
                any(((p.astype(bool) == v) | ~m).all() for v, m in stored)
                for p in probes
            ]
        )
        np.testing.assert_array_equal(matcher.contains_codes(probes), expected)


class TestRangeMembership:
    def test_range_entries(self):
        codec = WordCodec(5, 2)
        rng = np.random.default_rng(4)
        matcher = PackedMatcher(codec)
        low = rng.integers(0, 3, size=(8, 5))
        high = low + rng.integers(0, 2, size=(8, 5))
        matcher.add_code_ranges(low, high)
        probes = rng.integers(0, 4, size=(150, 5))
        expected = np.array(
            [
                any(((p >= lo) & (p <= hi)).all() for lo, hi in zip(low, high))
                for p in probes
            ]
        )
        np.testing.assert_array_equal(matcher.contains_codes(probes), expected)

    def test_point_ranges_become_exact(self):
        codec = WordCodec(4, 2)
        matcher = PackedMatcher(codec)
        word = np.array([[1, 2, 0, 3]])
        matcher.add_code_ranges(word, word)
        assert matcher.num_exact == 1
        assert matcher.num_ranges == 0
        assert matcher.contains_codes(word)[0]


class TestMerge:
    def test_merge_unions_entries(self):
        codec = WordCodec(6, 1)
        rng = np.random.default_rng(5)
        left = PackedMatcher(codec)
        right = PackedMatcher(codec)
        words_left = rng.integers(0, 2, size=(10, 6))
        words_right = rng.integers(0, 2, size=(10, 6))
        left.add_exact_packed(codec.pack_codes(words_left))
        right.add_exact_packed(codec.pack_codes(words_right))
        left.merge(right)
        assert left.contains_codes(words_left).all()
        assert left.contains_codes(words_right).all()

    def test_merge_width_mismatch_rejected(self):
        with pytest.raises(ShapeError):
            PackedMatcher(WordCodec(6, 1)).merge(PackedMatcher(WordCodec(7, 1)))
