"""Tests for end-to-end monitoring pipelines and reference workloads."""

import pytest

from repro.core.pipeline import (
    MonitoringWorkload,
    MonitorPipeline,
    build_digits_workload,
    build_track_workload,
    default_monitored_layer,
)
from repro.exceptions import ConfigurationError
from repro.monitors.perturbation import PerturbationSpec
from repro.nn.layers import Dense
from repro.nn.network import Sequential, mlp


class TestDefaultMonitoredLayer:
    def test_last_hidden_activation_is_chosen(self):
        network = mlp(4, [8, 6], 2, seed=0)
        # Layers: Dense, ReLU, Dense, ReLU, Dense -> last hidden activation is 4.
        assert default_monitored_layer(network) == 4

    def test_output_activation_is_not_chosen(self):
        network = mlp(4, [8], 2, output_activation="sigmoid", seed=0)
        # Layers: Dense, ReLU, Dense, Sigmoid -> monitor the hidden ReLU (2).
        assert default_monitored_layer(network) == 2

    def test_network_without_activations_falls_back(self):
        network = Sequential([Dense(4), Dense(2)], input_dim=3, seed=0)
        assert default_monitored_layer(network) == 1

    def test_single_layer_network(self):
        network = Sequential([Dense(2)], input_dim=3, seed=0)
        assert default_monitored_layer(network) == 1


@pytest.fixture(scope="module")
def track_workload():
    return build_track_workload(num_samples=150, epochs=6, seed=0)


@pytest.fixture(scope="module")
def digits_workload():
    return build_digits_workload(num_samples=200, num_classes=3, epochs=6, seed=0)


class TestWorkloadConstruction:
    def test_track_workload_components(self, track_workload):
        assert isinstance(track_workload, MonitoringWorkload)
        assert track_workload.train.num_samples > 0
        assert track_workload.in_odd_eval.num_samples > 0
        assert set(track_workload.out_of_odd_eval) == {"dark", "construction", "ice"}
        assert track_workload.network.output_dim == 2

    def test_digits_workload_components(self, digits_workload):
        assert digits_workload.network.output_dim == 3
        assert digits_workload.train.is_classification

    def test_workload_experiment_conversion(self, track_workload):
        experiment = track_workload.experiment()
        assert experiment.fit_inputs.shape[0] == track_workload.train.num_samples
        assert set(experiment.out_of_odd_inputs) == set(track_workload.out_of_odd_eval)

    def test_custom_scenarios(self):
        workload = build_track_workload(
            num_samples=80, epochs=2, scenarios=["fog"], seed=1
        )
        assert set(workload.out_of_odd_eval) == {"fog"}


class TestMonitorPipeline:
    def test_run_produces_standard_and_robust_scores(self, track_workload):
        pipeline = MonitorPipeline(
            track_workload,
            family="minmax",
            perturbation=PerturbationSpec(delta=0.02),
        )
        result = pipeline.run()
        assert set(result.scores) == {"standard", "robust"}
        assert (
            result.score("robust").false_positive_rate
            <= result.score("standard").false_positive_rate
        )

    def test_default_layer_selection(self, track_workload):
        pipeline = MonitorPipeline(track_workload, family="minmax")
        assert pipeline.layer_index == default_monitored_layer(track_workload.network)

    def test_boolean_family_pipeline(self, track_workload):
        pipeline = MonitorPipeline(
            track_workload,
            family="boolean",
            perturbation=PerturbationSpec(delta=0.02),
            thresholds="mean",
        )
        result = pipeline.run()
        assert 0.0 <= result.score("robust").false_positive_rate <= 1.0

    def test_zero_delta_rejected(self, track_workload):
        with pytest.raises(ConfigurationError):
            MonitorPipeline(
                track_workload, family="minmax", perturbation=PerturbationSpec(delta=0.0)
            )

    def test_describe(self, track_workload):
        pipeline = MonitorPipeline(
            track_workload, family="interval", perturbation=PerturbationSpec(delta=0.05)
        )
        info = pipeline.describe()
        assert info["family"] == "interval"
        assert info["workload"] == "track-waypoints"
