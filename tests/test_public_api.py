"""Tests of the top-level public API surface.

A downstream user should be able to drive the whole reproduction from
``import repro``: these tests pin the exported names, check that ``__all__``
matches what is actually importable, and exercise the documented quickstart
path at a miniature scale.
"""

import numpy as np
import pytest

import repro


class TestExports:
    def test_version_is_exposed(self):
        assert repro.__version__

    def test_all_names_are_importable(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"__all__ lists '{name}' but it is missing"

    @pytest.mark.parametrize(
        "name",
        [
            "Sequential",
            "mlp",
            "Box",
            "Zonotope",
            "StarSet",
            "MinMaxMonitor",
            "RobustMinMaxMonitor",
            "BooleanPatternMonitor",
            "RobustBooleanPatternMonitor",
            "IntervalPatternMonitor",
            "RobustIntervalPatternMonitor",
            "MonitorBuilder",
            "ClassConditionalMonitor",
            "MonitorEnsemble",
            "PerturbationSpec",
            "MonitorPipeline",
            "build_track_workload",
            "build_digits_workload",
            "default_monitored_layer",
            "ReproError",
        ],
    )
    def test_key_symbols_in_all(self, name):
        assert name in repro.__all__

    def test_exception_hierarchy(self):
        for exc in (
            repro.ConfigurationError,
            repro.ShapeError,
            repro.LayerIndexError,
            repro.NotFittedError,
            repro.PropagationError,
            repro.SerializationError,
            repro.DataError,
        ):
            assert issubclass(exc, repro.ReproError)
            assert issubclass(exc, Exception)

    def test_subpackage_exports(self):
        from repro.eval import monitorability_report  # noqa: F401
        from repro.monitors import EnvelopeDistanceMonitor, save_monitor  # noqa: F401
        from repro.bdd import BDDManager, PatternSet  # noqa: F401
        from repro.data import generate_track_dataset  # noqa: F401


class TestDocumentedQuickstartPath:
    def test_quickstart_sequence_runs(self):
        """The README quickstart, at miniature scale."""
        workload = repro.build_track_workload(num_samples=80, epochs=2, seed=0)
        pipeline = repro.MonitorPipeline(
            workload,
            family="minmax",
            perturbation=repro.PerturbationSpec(delta=0.01, layer=0, method="box"),
        )
        result = pipeline.run()
        standard = result.score("standard")
        robust = result.score("robust")
        assert robust.false_positive_rate <= standard.false_positive_rate
        assert isinstance(result.format(), str)

    def test_direct_monitor_usage(self):
        """The README 'using the monitors directly' snippet, at miniature scale."""
        rng = np.random.default_rng(0)
        network = repro.mlp(input_dim=12, hidden_dims=[8], output_dim=2, seed=0)
        train_inputs = rng.random((40, 12))
        standard = repro.BooleanPatternMonitor(network, layer_index=2, thresholds="mean")
        standard.fit(train_inputs)
        robust = repro.RobustBooleanPatternMonitor(
            network,
            layer_index=2,
            perturbation=repro.PerturbationSpec(delta=0.01),
            thresholds="mean",
        )
        robust.fit(train_inputs)
        frame = rng.random(12)
        assert isinstance(standard.warn(frame), bool)
        assert isinstance(robust.warn(frame), bool)
        assert not np.any(robust.warn_batch(train_inputs))
