"""Synthetic race-track imagery with visual-waypoint regression targets.

The paper's evaluation (Section IV, Figure 2) uses a physical laboratory race
track: a DNN predicts visual waypoints from camera images and a monitor
watches a close-to-output layer for out-of-ODD situations such as darkness,
a construction site on the track or ice.  This module substitutes a
procedural top-down track-view generator:

* each image shows a road band crossing a textured background, with the road
  lateral offset and heading drawn from the operational design domain (ODD);
* the regression target is the normalised ``(lateral offset, heading)`` pair
  of the next waypoint, which a small MLP learns easily;
* aleatory in-ODD variation (lighting, texture noise, slight blur) models the
  randomness of a real data-collection campaign — the source of the false
  positives the robust monitor is designed to suppress;
* the out-of-ODD scenario transforms live in :mod:`repro.data.scenarios`.

Images are 16×16 grayscale, flattened to 256-dimensional input vectors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..exceptions import DataError
from .datasets import Dataset

__all__ = ["TrackConfig", "render_track_image", "generate_track_dataset"]

#: Side length of the square track images.
TRACK_IMAGE_SIZE = 16


@dataclass(frozen=True)
class TrackConfig:
    """Parameters of the procedural track-image generator.

    ``offset_range`` and ``heading_range`` define the ODD: lateral offsets
    (fraction of image width, 0.5 = centre) and headings (radians) outside
    these ranges are by definition out-of-ODD.
    """

    image_size: int = TRACK_IMAGE_SIZE
    road_width: float = 0.30
    offset_range: Tuple[float, float] = (0.30, 0.70)
    heading_range: Tuple[float, float] = (-0.45, 0.45)
    ambient_brightness: float = 0.35
    road_brightness: float = 0.95
    lane_marking: bool = True
    noise: float = 0.03

    def __post_init__(self) -> None:
        if self.image_size < 8:
            raise DataError("track images need at least 8 pixels per side")
        if not 0.05 <= self.road_width <= 0.9:
            raise DataError("road width must lie in [0.05, 0.9]")
        if not 0.0 <= self.offset_range[0] < self.offset_range[1] <= 1.0:
            raise DataError("offset range must be an increasing pair inside [0, 1]")
        if self.heading_range[0] >= self.heading_range[1]:
            raise DataError("heading range must be increasing")


def render_track_image(
    offset: float,
    heading: float,
    config: TrackConfig = TrackConfig(),
    rng: Optional[np.random.Generator] = None,
    brightness_scale: float = 1.0,
) -> np.ndarray:
    """Render one top-down track image.

    Parameters
    ----------
    offset:
        Lateral position of the road centre at the bottom of the image as a
        fraction of the image width.
    heading:
        Road heading in radians; positive values bend the road towards the
        right as it recedes towards the top of the image.
    brightness_scale:
        Global illumination multiplier (used by the "dark" scenario).
    """
    if rng is None:
        rng = np.random.default_rng()
    size = config.image_size
    ys, xs = np.mgrid[0:size, 0:size]
    px = (xs + 0.5) / size
    py = (ys + 0.5) / size  # 0 at the top, 1 at the bottom
    # Road centreline: at the bottom the centre is `offset`, and it shifts
    # with the heading as the row moves towards the top of the image.
    depth = 1.0 - py
    centre = offset + np.tan(heading) * depth * 0.6
    distance = np.abs(px - centre)
    half_width = config.road_width / 2.0
    road_mask = np.clip(1.0 - (distance / half_width) ** 2, 0.0, 1.0)
    image = config.ambient_brightness * (0.8 + 0.2 * depth)
    image = image + (config.road_brightness - config.ambient_brightness) * road_mask
    if config.lane_marking:
        marking = np.clip(1.0 - (distance / (half_width * 0.12)) ** 2, 0.0, 1.0)
        dashes = ((ys // 2) % 2 == 0).astype(np.float64)
        image = image + 0.25 * marking * dashes
    image = image * brightness_scale
    if config.noise > 0:
        image = image + rng.normal(0.0, config.noise, size=image.shape)
    return np.clip(image, 0.0, 1.0)


def _sample_pose(
    config: TrackConfig, rng: np.random.Generator
) -> Tuple[float, float]:
    offset = rng.uniform(*config.offset_range)
    heading = rng.uniform(*config.heading_range)
    return float(offset), float(heading)


def generate_track_dataset(
    num_samples: int,
    config: TrackConfig = TrackConfig(),
    seed: Optional[int] = None,
    lighting_variation: float = 0.1,
    name: str = "track-waypoints",
) -> Dataset:
    """Generate an in-ODD track dataset with waypoint regression targets.

    The regression target of each image is ``(offset, heading_normalised)``
    where the heading is rescaled to roughly ``[0, 1]`` so both outputs share
    the same scale.  ``lighting_variation`` is the standard deviation of the
    per-image global brightness factor — the aleatory in-ODD uncertainty.
    """
    if num_samples <= 0:
        raise DataError("num_samples must be positive")
    if lighting_variation < 0:
        raise DataError("lighting_variation must be non-negative")
    rng = np.random.default_rng(seed)
    size = config.image_size
    inputs = np.empty((num_samples, size * size), dtype=np.float64)
    targets = np.empty((num_samples, 2), dtype=np.float64)
    heading_low, heading_high = config.heading_range
    heading_span = heading_high - heading_low
    for index in range(num_samples):
        offset, heading = _sample_pose(config, rng)
        brightness = float(np.clip(1.0 + rng.normal(0.0, lighting_variation), 0.5, 1.5))
        image = render_track_image(
            offset, heading, config=config, rng=rng, brightness_scale=brightness
        )
        inputs[index] = image.ravel()
        targets[index, 0] = offset
        targets[index, 1] = (heading - heading_low) / heading_span
    return Dataset(
        inputs,
        targets,
        name=name,
        metadata={
            "generator": "track",
            "image_size": size,
            "lighting_variation": lighting_variation,
            "config": {
                "road_width": config.road_width,
                "offset_range": list(config.offset_range),
                "heading_range": list(config.heading_range),
            },
            "seed": seed,
        },
    )
