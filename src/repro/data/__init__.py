"""Data substrate: synthetic workloads and out-of-ODD scenario generators.

Replaces the paper's MNIST/GTSRB datasets and the physical laboratory race
track with procedural, seedable generators:

* :mod:`repro.data.synthetic_digits` — MNIST-like digit classification;
* :mod:`repro.data.track` — top-down track images with waypoint regression
  targets (the Figure 2 workload);
* :mod:`repro.data.scenarios` — in-ODD jitter and out-of-ODD scenarios
  (dark, construction, ice, fog, sensor noise, occlusion);
* :mod:`repro.data.perturbations` — Δ-bounded input perturbation samplers
  used by the robustness experiments and property tests.
"""

from .datasets import Dataset, train_validation_test_split
from .perturbations import (
    corner_perturbations,
    gaussian_perturbations,
    perturb_dataset_inputs,
    uniform_perturbations,
)
from .scenarios import (
    SCENARIOS,
    apply_scenario,
    construction_scenario,
    dark_scenario,
    fog_scenario,
    ice_scenario,
    in_odd_jitter,
    occlusion_scenario,
    scenario_suite,
    sensor_noise_scenario,
)
from .synthetic_digits import (
    IMAGE_SIZE,
    generate_digits,
    generate_novel_glyphs,
    render_digit,
)
from .track import TrackConfig, generate_track_dataset, render_track_image

__all__ = [
    "Dataset",
    "train_validation_test_split",
    "IMAGE_SIZE",
    "generate_digits",
    "generate_novel_glyphs",
    "render_digit",
    "TrackConfig",
    "generate_track_dataset",
    "render_track_image",
    "SCENARIOS",
    "apply_scenario",
    "scenario_suite",
    "in_odd_jitter",
    "dark_scenario",
    "construction_scenario",
    "ice_scenario",
    "fog_scenario",
    "sensor_noise_scenario",
    "occlusion_scenario",
    "uniform_perturbations",
    "corner_perturbations",
    "gaussian_perturbations",
    "perturb_dataset_inputs",
]
