"""Procedural MNIST-like digit dataset.

The paper's prior-work baselines are evaluated on MNIST/GTSRB.  Because the
reproduction runs fully offline, this module generates a *synthetic* digit
classification workload with the properties the monitor evaluation needs:

* several visually distinct classes whose members cluster in feature space;
* controllable aleatory noise inside the distribution (small pixel jitter,
  brightness variation, translation) — the source of false positives;
* clearly out-of-distribution variants (novel glyphs, inverted contrast,
  heavy corruption) produced by :mod:`repro.data.scenarios`.

Digits are rendered as 16×16 grayscale images from stroke templates defined
on a 4×4 segment grid (a seven-segment-style construction extended with
diagonals), then blurred, jittered and normalised to ``[0, 1]``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import DataError
from .datasets import Dataset

__all__ = [
    "IMAGE_SIZE",
    "digit_template",
    "render_digit",
    "generate_digits",
    "generate_novel_glyphs",
]

#: Side length of the square digit images.
IMAGE_SIZE = 16

# Segment endpoints on a unit square: classic seven-segment layout plus two
# diagonals, expressed as ((x0, y0), (x1, y1)) with y growing downwards.
_SEGMENTS: Dict[str, Tuple[Tuple[float, float], Tuple[float, float]]] = {
    "top": ((0.2, 0.15), (0.8, 0.15)),
    "top_left": ((0.2, 0.15), (0.2, 0.5)),
    "top_right": ((0.8, 0.15), (0.8, 0.5)),
    "middle": ((0.2, 0.5), (0.8, 0.5)),
    "bottom_left": ((0.2, 0.5), (0.2, 0.85)),
    "bottom_right": ((0.8, 0.5), (0.8, 0.85)),
    "bottom": ((0.2, 0.85), (0.8, 0.85)),
    "diag_down": ((0.2, 0.15), (0.8, 0.85)),
    "diag_up": ((0.2, 0.85), (0.8, 0.15)),
}

# Which segments light up for each digit class (seven-segment digits 0-9).
_DIGIT_SEGMENTS: Dict[int, Sequence[str]] = {
    0: ("top", "top_left", "top_right", "bottom_left", "bottom_right", "bottom"),
    1: ("top_right", "bottom_right"),
    2: ("top", "top_right", "middle", "bottom_left", "bottom"),
    3: ("top", "top_right", "middle", "bottom_right", "bottom"),
    4: ("top_left", "top_right", "middle", "bottom_right"),
    5: ("top", "top_left", "middle", "bottom_right", "bottom"),
    6: ("top", "top_left", "middle", "bottom_left", "bottom_right", "bottom"),
    7: ("top", "top_right", "bottom_right"),
    8: (
        "top",
        "top_left",
        "top_right",
        "middle",
        "bottom_left",
        "bottom_right",
        "bottom",
    ),
    9: ("top", "top_left", "top_right", "middle", "bottom_right", "bottom"),
}

# Glyphs that never appear in training: used as the out-of-distribution set.
_NOVEL_GLYPH_SEGMENTS: Dict[str, Sequence[str]] = {
    "X": ("diag_down", "diag_up"),
    "Z": ("top", "diag_up", "bottom"),
    "N": ("top_left", "bottom_left", "diag_down", "top_right", "bottom_right"),
    "H": ("top_left", "bottom_left", "middle", "top_right", "bottom_right"),
    "L": ("top_left", "bottom_left", "bottom"),
}


def digit_template(digit: int) -> Sequence[str]:
    """Return the segment names lit for ``digit`` (0-9)."""
    if digit not in _DIGIT_SEGMENTS:
        raise DataError(f"digit must be in 0..9, got {digit}")
    return _DIGIT_SEGMENTS[digit]


def _draw_segment(image: np.ndarray, segment: str, thickness: float) -> None:
    """Rasterise one segment as a soft line into ``image`` (in place)."""
    (x0, y0), (x1, y1) = _SEGMENTS[segment]
    size = image.shape[0]
    ys, xs = np.mgrid[0:size, 0:size]
    px = (xs + 0.5) / size
    py = (ys + 0.5) / size
    # Distance from each pixel centre to the segment.
    dx, dy = x1 - x0, y1 - y0
    length_sq = dx * dx + dy * dy
    t = np.clip(((px - x0) * dx + (py - y0) * dy) / max(length_sq, 1e-12), 0.0, 1.0)
    nearest_x = x0 + t * dx
    nearest_y = y0 + t * dy
    distance = np.hypot(px - nearest_x, py - nearest_y)
    intensity = np.clip(1.0 - distance / thickness, 0.0, 1.0)
    np.maximum(image, intensity, out=image)


def render_glyph(
    segments: Sequence[str],
    rng: np.random.Generator,
    jitter: float = 0.03,
    thickness: float = 0.09,
    brightness: float = 1.0,
    noise: float = 0.03,
    shift: Tuple[int, int] = (0, 0),
) -> np.ndarray:
    """Render a glyph from segment names into a noisy IMAGE_SIZE² image."""
    image = np.zeros((IMAGE_SIZE, IMAGE_SIZE), dtype=np.float64)
    for segment in segments:
        _draw_segment(image, segment, thickness * (1.0 + rng.normal(0.0, jitter)))
    image *= brightness
    if shift != (0, 0):
        image = np.roll(image, shift, axis=(0, 1))
    if noise > 0:
        image = image + rng.normal(0.0, noise, size=image.shape)
    return np.clip(image, 0.0, 1.0)


def render_digit(
    digit: int,
    rng: Optional[np.random.Generator] = None,
    **style,
) -> np.ndarray:
    """Render a single digit image (flattened callers use ``.ravel()``)."""
    if rng is None:
        rng = np.random.default_rng()
    return render_glyph(digit_template(digit), rng, **style)


def _sample_style(rng: np.random.Generator, variability: float) -> Dict[str, object]:
    """Randomise per-sample rendering style to model aleatory uncertainty."""
    max_shift = 1 if variability > 0 else 0
    return {
        "jitter": 0.03 * variability,
        "thickness": 0.09 * (1.0 + rng.normal(0.0, 0.1 * variability)),
        "brightness": float(np.clip(1.0 + rng.normal(0.0, 0.12 * variability), 0.4, 1.4)),
        "noise": 0.03 * variability,
        "shift": (
            int(rng.integers(-max_shift, max_shift + 1)),
            int(rng.integers(-max_shift, max_shift + 1)),
        ),
    }


def generate_digits(
    num_samples: int,
    num_classes: int = 10,
    variability: float = 1.0,
    seed: Optional[int] = None,
    name: str = "synthetic-digits",
) -> Dataset:
    """Generate a balanced synthetic digit classification dataset.

    Parameters
    ----------
    num_samples: total number of images.
    num_classes: number of digit classes (2-10).
    variability: scale of the aleatory rendering noise (0 = clean templates).
    seed: RNG seed for reproducibility.
    """
    if num_samples <= 0:
        raise DataError("num_samples must be positive")
    if not 2 <= num_classes <= 10:
        raise DataError("num_classes must be between 2 and 10")
    if variability < 0:
        raise DataError("variability must be non-negative")
    rng = np.random.default_rng(seed)
    inputs = np.empty((num_samples, IMAGE_SIZE * IMAGE_SIZE), dtype=np.float64)
    labels = np.empty(num_samples, dtype=np.int64)
    for index in range(num_samples):
        digit = index % num_classes
        style = _sample_style(rng, variability)
        image = render_digit(digit, rng, **style)
        inputs[index] = image.ravel()
        labels[index] = digit
    order = rng.permutation(num_samples)
    return Dataset(
        inputs[order],
        labels[order],
        name=name,
        metadata={
            "generator": "synthetic_digits",
            "num_classes": num_classes,
            "variability": variability,
            "image_size": IMAGE_SIZE,
            "seed": seed,
        },
    )


def generate_novel_glyphs(
    num_samples: int,
    variability: float = 1.0,
    seed: Optional[int] = None,
    name: str = "novel-glyphs",
) -> Dataset:
    """Generate out-of-distribution glyph images never seen in training.

    The returned targets are the glyph indices (useful for analysis only —
    the classifier has no matching class), so the dataset models genuine
    out-of-ODD inputs for the digits workload.
    """
    if num_samples <= 0:
        raise DataError("num_samples must be positive")
    rng = np.random.default_rng(seed)
    glyph_names: List[str] = sorted(_NOVEL_GLYPH_SEGMENTS)
    inputs = np.empty((num_samples, IMAGE_SIZE * IMAGE_SIZE), dtype=np.float64)
    labels = np.empty(num_samples, dtype=np.int64)
    for index in range(num_samples):
        glyph = glyph_names[index % len(glyph_names)]
        style = _sample_style(rng, variability)
        image = render_glyph(_NOVEL_GLYPH_SEGMENTS[glyph], rng, **style)
        inputs[index] = image.ravel()
        labels[index] = glyph_names.index(glyph)
    return Dataset(
        inputs,
        labels,
        name=name,
        metadata={
            "generator": "novel_glyphs",
            "glyphs": glyph_names,
            "variability": variability,
            "seed": seed,
        },
    )
