"""Out-of-ODD scenario transforms.

Section IV of the paper evaluates the monitor against engineered abnormal
situations on the laboratory track — dark conditions, a construction site and
ice on the track (Figure 2) — plus the in-ODD aleatory perturbations that
cause the false positives the robust construction suppresses.

Each scenario is a deterministic-given-seed transformation applied to the
flattened images of a :class:`~repro.data.datasets.Dataset`, so the same
nominal test set can be replayed under every condition:

* ``dark`` — strong global illumination drop with additive sensor noise;
* ``construction`` — bright blocky obstacles placed on the road surface;
* ``ice`` — high-reflectance patches washing out road/background contrast;
* ``fog`` — contrast compression towards a bright haze value;
* ``sensor_noise`` — heavy pixel noise (failing imager);
* ``occlusion`` — a dark band occluding part of the view;
* ``in_odd_jitter`` — *small* brightness/noise jitter that stays inside the
  ODD and should NOT be detected (used to measure false positives).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

import numpy as np

from ..exceptions import DataError
from .datasets import Dataset

__all__ = [
    "SCENARIOS",
    "apply_scenario",
    "scenario_suite",
    "in_odd_jitter",
    "dark_scenario",
    "construction_scenario",
    "ice_scenario",
    "fog_scenario",
    "sensor_noise_scenario",
    "occlusion_scenario",
]


def _square_size(num_features: int) -> int:
    size = int(round(np.sqrt(num_features)))
    if size * size != num_features:
        raise DataError(
            f"scenario transforms expect square images; {num_features} features "
            "is not a perfect square"
        )
    return size


def _transform(
    dataset: Dataset,
    per_image: Callable[[np.ndarray, np.random.Generator], np.ndarray],
    name: str,
    seed: Optional[int],
) -> Dataset:
    rng = np.random.default_rng(seed)
    size = _square_size(dataset.num_features)
    outputs = np.empty_like(dataset.inputs)
    for index in range(dataset.num_samples):
        image = dataset.inputs[index].reshape(size, size)
        outputs[index] = np.clip(per_image(image, rng), 0.0, 1.0).ravel()
    transformed = dataset.with_inputs(outputs, name=f"{dataset.name}-{name}")
    transformed.metadata["scenario"] = name
    return transformed


# ----------------------------------------------------------------------
# in-ODD aleatory perturbation (should NOT raise warnings)
# ----------------------------------------------------------------------
def in_odd_jitter(
    dataset: Dataset,
    brightness_std: float = 0.03,
    noise_std: float = 0.01,
    seed: Optional[int] = None,
) -> Dataset:
    """Small lighting/noise jitter representing in-ODD aleatory uncertainty."""
    if brightness_std < 0 or noise_std < 0:
        raise DataError("jitter magnitudes must be non-negative")

    def per_image(image: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        factor = 1.0 + rng.normal(0.0, brightness_std)
        return image * factor + rng.normal(0.0, noise_std, size=image.shape)

    return _transform(dataset, per_image, "in-odd-jitter", seed)


# ----------------------------------------------------------------------
# out-of-ODD scenarios (SHOULD raise warnings)
# ----------------------------------------------------------------------
def dark_scenario(
    dataset: Dataset,
    brightness: float = 0.25,
    noise_std: float = 0.05,
    seed: Optional[int] = None,
) -> Dataset:
    """Dark conditions: strong illumination drop plus sensor noise."""
    if not 0.0 <= brightness <= 1.0:
        raise DataError("brightness must lie in [0, 1]")

    def per_image(image: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        return image * brightness + rng.normal(0.0, noise_std, size=image.shape)

    return _transform(dataset, per_image, "dark", seed)


def construction_scenario(
    dataset: Dataset,
    num_obstacles: int = 3,
    obstacle_size: int = 3,
    brightness: float = 1.0,
    seed: Optional[int] = None,
) -> Dataset:
    """Construction site: bright blocky obstacles dropped onto the scene."""
    if num_obstacles <= 0 or obstacle_size <= 0:
        raise DataError("construction scenario needs positive obstacle parameters")

    def per_image(image: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        size = image.shape[0]
        result = np.array(image, copy=True)
        for _ in range(num_obstacles):
            row = int(rng.integers(0, max(size - obstacle_size, 1)))
            col = int(rng.integers(0, max(size - obstacle_size, 1)))
            result[row : row + obstacle_size, col : col + obstacle_size] = brightness
            # Striped warning pattern on alternate rows of the obstacle.
            result[row : row + obstacle_size : 2, col : col + obstacle_size] = 0.1
        return result

    return _transform(dataset, per_image, "construction", seed)


def ice_scenario(
    dataset: Dataset,
    num_patches: int = 4,
    patch_size: int = 4,
    reflectance: float = 0.95,
    seed: Optional[int] = None,
) -> Dataset:
    """Ice on the track: large high-reflectance patches wash out contrast."""
    if num_patches <= 0 or patch_size <= 0:
        raise DataError("ice scenario needs positive patch parameters")

    def per_image(image: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        size = image.shape[0]
        result = np.array(image, copy=True)
        for _ in range(num_patches):
            row = int(rng.integers(0, max(size - patch_size, 1)))
            col = int(rng.integers(0, max(size - patch_size, 1)))
            patch = result[row : row + patch_size, col : col + patch_size]
            result[row : row + patch_size, col : col + patch_size] = (
                0.3 * patch + 0.7 * reflectance
            )
        return result

    return _transform(dataset, per_image, "ice", seed)


def fog_scenario(
    dataset: Dataset, density: float = 0.6, haze: float = 0.8, seed: Optional[int] = None
) -> Dataset:
    """Fog: blend every pixel towards a bright haze value."""
    if not 0.0 <= density <= 1.0:
        raise DataError("fog density must lie in [0, 1]")

    def per_image(image: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        return (1.0 - density) * image + density * haze

    return _transform(dataset, per_image, "fog", seed)


def sensor_noise_scenario(
    dataset: Dataset, noise_std: float = 0.25, seed: Optional[int] = None
) -> Dataset:
    """Failing imager: heavy independent pixel noise."""
    if noise_std <= 0:
        raise DataError("sensor noise std must be positive")

    def per_image(image: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        return image + rng.normal(0.0, noise_std, size=image.shape)

    return _transform(dataset, per_image, "sensor-noise", seed)


def occlusion_scenario(
    dataset: Dataset, band_width: int = 5, seed: Optional[int] = None
) -> Dataset:
    """A dark band (e.g. dirt on the lens) occluding part of the image."""
    if band_width <= 0:
        raise DataError("occlusion band width must be positive")

    def per_image(image: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        size = image.shape[0]
        result = np.array(image, copy=True)
        start = int(rng.integers(0, max(size - band_width, 1)))
        result[:, start : start + band_width] = 0.05
        return result

    return _transform(dataset, per_image, "occlusion", seed)


#: Registry of out-of-ODD scenario constructors keyed by name.
SCENARIOS: Dict[str, Callable[..., Dataset]] = {
    "dark": dark_scenario,
    "construction": construction_scenario,
    "ice": ice_scenario,
    "fog": fog_scenario,
    "sensor_noise": sensor_noise_scenario,
    "occlusion": occlusion_scenario,
}


def apply_scenario(name: str, dataset: Dataset, seed: Optional[int] = None, **kwargs) -> Dataset:
    """Apply the named out-of-ODD scenario to ``dataset``."""
    try:
        scenario = SCENARIOS[name]
    except KeyError as exc:
        known = ", ".join(sorted(SCENARIOS))
        raise DataError(f"unknown scenario '{name}'; known scenarios: {known}") from exc
    return scenario(dataset, seed=seed, **kwargs)


def scenario_suite(
    dataset: Dataset,
    names: Optional[List[str]] = None,
    seed: Optional[int] = None,
) -> Dict[str, Dataset]:
    """Apply several scenarios to the same dataset and return them by name.

    The default suite is the paper's three Figure-2 scenarios (dark,
    construction, ice).
    """
    if names is None:
        names = ["dark", "construction", "ice"]
    suite = {}
    for index, name in enumerate(names):
        scenario_seed = None if seed is None else seed + index
        suite[name] = apply_scenario(name, dataset, seed=scenario_seed)
    return suite
