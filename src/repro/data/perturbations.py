"""Input-space perturbation samplers.

Lemma 1 guarantees that the robust monitor never warns on an input whose
layer-``k_p`` representation is within ``Δ`` of a training point.  The
empirical counterpart — and the property-based tests — need to *sample*
perturbed versions of training inputs; this module provides the samplers
(uniform-in-box, worst-case corners, Gaussian clipped to the budget).
"""

from __future__ import annotations

from typing import Iterator, Optional

import numpy as np

from ..exceptions import DataError

__all__ = [
    "uniform_perturbations",
    "corner_perturbations",
    "gaussian_perturbations",
    "perturb_dataset_inputs",
]


def uniform_perturbations(
    vector: np.ndarray,
    delta: float,
    count: int,
    rng: Optional[np.random.Generator] = None,
    clip_range: Optional[tuple] = None,
) -> np.ndarray:
    """Sample ``count`` perturbations uniformly from the ∞-ball of radius Δ."""
    if delta < 0:
        raise DataError("delta must be non-negative")
    if count <= 0:
        raise DataError("count must be positive")
    if rng is None:
        rng = np.random.default_rng()
    vector = np.asarray(vector, dtype=np.float64).reshape(-1)
    noise = rng.uniform(-delta, delta, size=(count, vector.shape[0]))
    perturbed = vector[None, :] + noise
    if clip_range is not None:
        perturbed = np.clip(perturbed, clip_range[0], clip_range[1])
    return perturbed


def corner_perturbations(
    vector: np.ndarray,
    delta: float,
    count: int,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Sample perturbations at corners of the Δ-box (each coordinate ±Δ).

    Corner perturbations maximise the per-dimension displacement and are the
    hardest cases for the non-robust monitor, so they make the false-positive
    contrast between standard and robust monitors most visible.
    """
    if delta < 0:
        raise DataError("delta must be non-negative")
    if count <= 0:
        raise DataError("count must be positive")
    if rng is None:
        rng = np.random.default_rng()
    vector = np.asarray(vector, dtype=np.float64).reshape(-1)
    signs = rng.choice([-1.0, 1.0], size=(count, vector.shape[0]))
    return vector[None, :] + delta * signs


def gaussian_perturbations(
    vector: np.ndarray,
    delta: float,
    count: int,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Gaussian noise truncated to the Δ-box (a softer aleatory model)."""
    if delta < 0:
        raise DataError("delta must be non-negative")
    if count <= 0:
        raise DataError("count must be positive")
    if rng is None:
        rng = np.random.default_rng()
    vector = np.asarray(vector, dtype=np.float64).reshape(-1)
    noise = rng.normal(0.0, delta / 2.0 if delta > 0 else 0.0, size=(count, vector.shape[0]))
    noise = np.clip(noise, -delta, delta)
    return vector[None, :] + noise


def perturb_dataset_inputs(
    inputs: np.ndarray,
    delta: float,
    rng: Optional[np.random.Generator] = None,
    kind: str = "uniform",
) -> np.ndarray:
    """Return one perturbed copy of every row of ``inputs``."""
    if rng is None:
        rng = np.random.default_rng()
    inputs = np.atleast_2d(np.asarray(inputs, dtype=np.float64))
    samplers = {
        "uniform": uniform_perturbations,
        "corner": corner_perturbations,
        "gaussian": gaussian_perturbations,
    }
    if kind not in samplers:
        raise DataError(f"unknown perturbation kind '{kind}'")
    sampler = samplers[kind]
    return np.vstack([sampler(row, delta, 1, rng=rng) for row in inputs])


def perturbation_stream(
    vector: np.ndarray,
    delta: float,
    rng: Optional[np.random.Generator] = None,
) -> Iterator[np.ndarray]:
    """Infinite stream of uniform Δ-bounded perturbations of one vector."""
    if rng is None:
        rng = np.random.default_rng()
    while True:
        yield uniform_perturbations(vector, delta, 1, rng=rng)[0]
