"""Dataset containers and split utilities.

All workloads in the reproduction are expressed as a :class:`Dataset` — a
bundle of flattened input vectors plus targets (integer class labels for the
digits workload, waypoint coordinates for the track workload) with helpers
for shuffling, splitting, batching and summary statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional, Tuple

import numpy as np

from ..exceptions import DataError, ShapeError

__all__ = ["Dataset", "train_validation_test_split"]


@dataclass
class Dataset:
    """A supervised dataset of flattened inputs and targets.

    ``inputs`` has shape ``(num_samples, num_features)``; ``targets`` is
    either 1-D (integer labels) or 2-D (regression targets).  ``metadata``
    carries generator parameters so experiments can be reproduced exactly.
    """

    inputs: np.ndarray
    targets: np.ndarray
    name: str = "dataset"
    metadata: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        inputs = np.asarray(self.inputs, dtype=np.float64)
        targets = np.asarray(self.targets)
        if inputs.ndim != 2:
            inputs = inputs.reshape(inputs.shape[0], -1)
        if targets.shape[0] != inputs.shape[0]:
            raise ShapeError(
                f"inputs have {inputs.shape[0]} samples but targets have "
                f"{targets.shape[0]}"
            )
        self.inputs = inputs
        self.targets = targets

    # ------------------------------------------------------------------
    @property
    def num_samples(self) -> int:
        return int(self.inputs.shape[0])

    @property
    def num_features(self) -> int:
        return int(self.inputs.shape[1])

    @property
    def is_classification(self) -> bool:
        """True when targets are 1-D integer class labels."""
        return self.targets.ndim == 1 and np.issubdtype(self.targets.dtype, np.integer)

    @property
    def num_classes(self) -> int:
        if not self.is_classification:
            raise DataError(f"dataset '{self.name}' is not a classification dataset")
        return int(self.targets.max()) + 1 if self.num_samples else 0

    def __len__(self) -> int:
        return self.num_samples

    # ------------------------------------------------------------------
    def shuffled(self, seed: Optional[int] = None) -> "Dataset":
        """Return a copy with rows shuffled."""
        rng = np.random.default_rng(seed)
        order = rng.permutation(self.num_samples)
        return Dataset(
            self.inputs[order],
            self.targets[order],
            name=self.name,
            metadata=dict(self.metadata),
        )

    def subset(self, indices: np.ndarray, name: Optional[str] = None) -> "Dataset":
        """Return the rows selected by ``indices`` as a new dataset."""
        indices = np.asarray(indices)
        return Dataset(
            self.inputs[indices],
            self.targets[indices],
            name=name or self.name,
            metadata=dict(self.metadata),
        )

    def take(self, count: int, name: Optional[str] = None) -> "Dataset":
        """Return the first ``count`` rows."""
        if count < 0:
            raise DataError("take() count must be non-negative")
        return self.subset(np.arange(min(count, self.num_samples)), name=name)

    def split(self, fraction: float, seed: Optional[int] = None) -> Tuple["Dataset", "Dataset"]:
        """Split into two datasets; the first receives ``fraction`` of the rows."""
        if not 0.0 < fraction < 1.0:
            raise DataError("split fraction must lie strictly between 0 and 1")
        shuffled = self.shuffled(seed)
        cut = int(round(fraction * self.num_samples))
        cut = min(max(cut, 1), self.num_samples - 1)
        first = shuffled.subset(np.arange(cut), name=f"{self.name}-a")
        second = shuffled.subset(np.arange(cut, self.num_samples), name=f"{self.name}-b")
        return first, second

    def class_subset(self, class_id: int) -> "Dataset":
        """Rows whose label equals ``class_id`` (classification only)."""
        if not self.is_classification:
            raise DataError("class_subset() requires a classification dataset")
        mask = self.targets == int(class_id)
        return self.subset(np.nonzero(mask)[0], name=f"{self.name}-class{class_id}")

    def batches(self, batch_size: int) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """Yield contiguous ``(inputs, targets)`` batches."""
        if batch_size <= 0:
            raise DataError("batch_size must be positive")
        for start in range(0, self.num_samples, batch_size):
            stop = start + batch_size
            yield self.inputs[start:stop], self.targets[start:stop]

    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, object]:
        """Lightweight statistics used by the experiment reports."""
        info: Dict[str, object] = {
            "name": self.name,
            "num_samples": self.num_samples,
            "num_features": self.num_features,
            "input_min": float(self.inputs.min()) if self.num_samples else None,
            "input_max": float(self.inputs.max()) if self.num_samples else None,
        }
        if self.is_classification and self.num_samples:
            counts = np.bincount(self.targets, minlength=self.num_classes)
            info["class_counts"] = counts.tolist()
        return info

    def with_inputs(self, inputs: np.ndarray, name: Optional[str] = None) -> "Dataset":
        """Same targets, different inputs (used by scenario transforms)."""
        return Dataset(
            inputs,
            self.targets,
            name=name or self.name,
            metadata=dict(self.metadata),
        )


def train_validation_test_split(
    dataset: Dataset,
    train_fraction: float = 0.7,
    validation_fraction: float = 0.15,
    seed: Optional[int] = None,
) -> Tuple[Dataset, Dataset, Dataset]:
    """Split a dataset into train/validation/test portions.

    The remaining ``1 - train - validation`` fraction becomes the test split.
    """
    if train_fraction <= 0 or validation_fraction < 0:
        raise DataError("split fractions must be positive")
    if train_fraction + validation_fraction >= 1.0:
        raise DataError("train + validation fractions must leave room for a test split")
    shuffled = dataset.shuffled(seed)
    n = shuffled.num_samples
    train_end = int(round(train_fraction * n))
    validation_end = train_end + int(round(validation_fraction * n))
    train_end = max(1, min(train_end, n - 2))
    validation_end = max(train_end + 1, min(validation_end, n - 1))
    train = shuffled.subset(np.arange(train_end), name=f"{dataset.name}-train")
    validation = shuffled.subset(
        np.arange(train_end, validation_end), name=f"{dataset.name}-validation"
    )
    test = shuffled.subset(np.arange(validation_end, n), name=f"{dataset.name}-test")
    return train, validation, test
