"""Parameter sweeps over the robust-monitor construction knobs.

The interesting axes are:

* the perturbation budget ``Δ`` — larger budgets suppress more false
  positives but eventually blunt detection;
* the perturbation layer ``k_p`` — input-level vs. feature-level similarity;
* the bound-propagation back-end — box vs. zonotope vs. star precision;
* the number of bits (cut points) per neuron for interval monitors.

Each sweep fits one monitor per parameter value on the same
:class:`~repro.eval.experiments.MonitorExperiment` and returns a list of row
dictionaries ready for :func:`~repro.eval.reporting.format_results_table`.

Fitting and scoring both go through the experiment's batched engine.  On the
scoring side the activation cache is keyed by evaluation-set content: the
network forward passes are computed once for the first parameter value and
reused by every subsequent one, so a sweep of ``n`` monitors pays for one set
of forward passes, not ``n``.  On the fitting side the engine's bound cache
does the same for the symbolic propagations of robust fits: sweeps over
perturbation deltas reuse the cached anchor pass over the training set, and
repeated fits under one ``(Δ, k_p, method)`` model (e.g. a bit-width sweep of
robust interval monitors) reuse the whole propagation.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..exceptions import ConfigurationError
from ..monitors.builder import MonitorBuilder
from ..monitors.perturbation import PerturbationSpec
from .experiments import MonitorExperiment
from .reporting import format_rate

__all__ = ["delta_sweep", "method_sweep", "bit_width_sweep", "layer_sweep"]


def _row_from_score(score, **extra) -> Dict[str, object]:
    row: Dict[str, object] = dict(extra)
    row["false_positive_rate"] = score.false_positive_rate
    row["false_positive_rate_pct"] = format_rate(score.false_positive_rate)
    row["mean_detection_rate"] = score.mean_detection_rate
    row["mean_detection_rate_pct"] = format_rate(score.mean_detection_rate)
    for scenario, rate in score.detection_rates.items():
        row[f"detect[{scenario}]"] = format_rate(rate)
    return row


def delta_sweep(
    experiment: MonitorExperiment,
    family: str,
    layer_index: int,
    deltas: Sequence[float],
    perturbation_layer: int = 0,
    method: str = "box",
    **options,
) -> List[Dict[str, object]]:
    """Fit one robust monitor per Δ value (Δ = 0 is the standard monitor)."""
    if not deltas:
        raise ConfigurationError("delta_sweep needs at least one delta value")
    rows = []
    for delta in deltas:
        if delta == 0.0:
            builder = MonitorBuilder(family, layer_index, perturbation=None, **options)
        else:
            spec = PerturbationSpec(delta=delta, layer=perturbation_layer, method=method)
            builder = MonitorBuilder(family, layer_index, perturbation=spec, **options)
        monitor = builder.build_and_fit(
            experiment.network, experiment.fit_inputs, engine=experiment.engine
        )
        score = experiment.evaluate_monitor(f"{family}-delta-{delta}", monitor)
        rows.append(_row_from_score(score, delta=delta, family=family))
    return rows


def method_sweep(
    experiment: MonitorExperiment,
    family: str,
    layer_index: int,
    delta: float,
    methods: Sequence[str] = ("box", "zonotope", "star"),
    perturbation_layer: int = 0,
    **options,
) -> List[Dict[str, object]]:
    """Fit one robust monitor per bound-propagation back-end."""
    if delta <= 0:
        raise ConfigurationError("method_sweep needs a strictly positive delta")
    rows = []
    for method in methods:
        spec = PerturbationSpec(delta=delta, layer=perturbation_layer, method=method)
        builder = MonitorBuilder(family, layer_index, perturbation=spec, **options)
        monitor = builder.build_and_fit(
            experiment.network, experiment.fit_inputs, engine=experiment.engine
        )
        score = experiment.evaluate_monitor(f"{family}-{method}", monitor)
        rows.append(_row_from_score(score, method=method, delta=delta, family=family))
    return rows


def bit_width_sweep(
    experiment: MonitorExperiment,
    layer_index: int,
    cut_counts: Sequence[int] = (1, 3, 7),
    delta: Optional[float] = None,
    perturbation_layer: int = 0,
    method: str = "box",
    cut_strategy: str = "percentile",
) -> List[Dict[str, object]]:
    """Fit interval monitors of increasing granularity (1, 2, 3 bits, ...).

    ``cut_counts`` gives the number of cut points per neuron; the code width
    is ``ceil(log2(cuts + 1))`` bits.  With ``delta`` set, robust monitors are
    built; otherwise standard ones.
    """
    if not cut_counts:
        raise ConfigurationError("bit_width_sweep needs at least one cut count")
    rows = []
    for num_cuts in cut_counts:
        spec = (
            PerturbationSpec(delta=delta, layer=perturbation_layer, method=method)
            if delta
            else None
        )
        builder = MonitorBuilder(
            "interval",
            layer_index,
            perturbation=spec,
            num_cuts=num_cuts,
            cut_strategy=cut_strategy,
        )
        monitor = builder.build_and_fit(
            experiment.network, experiment.fit_inputs, engine=experiment.engine
        )
        score = experiment.evaluate_monitor(f"interval-{num_cuts}cuts", monitor)
        rows.append(
            _row_from_score(
                score,
                num_cuts=num_cuts,
                bits=monitor.bits_per_neuron,
                robust=spec is not None,
            )
        )
    return rows


def layer_sweep(
    experiment: MonitorExperiment,
    family: str,
    layer_indices: Sequence[int],
    delta: float = 0.0,
    perturbation_layer: int = 0,
    method: str = "box",
    **options,
) -> List[Dict[str, object]]:
    """Fit one monitor per monitored layer to study layer choice."""
    if not layer_indices:
        raise ConfigurationError("layer_sweep needs at least one layer index")
    rows = []
    for layer_index in layer_indices:
        spec = (
            PerturbationSpec(delta=delta, layer=perturbation_layer, method=method)
            if delta
            else None
        )
        builder = MonitorBuilder(family, layer_index, perturbation=spec, **options)
        monitor = builder.build_and_fit(
            experiment.network, experiment.fit_inputs, engine=experiment.engine
        )
        score = experiment.evaluate_monitor(f"{family}-layer-{layer_index}", monitor)
        rows.append(_row_from_score(score, layer_index=layer_index, family=family))
    return rows
