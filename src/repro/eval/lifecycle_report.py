"""Human-readable reports for the monitor-lifecycle subsystem.

:mod:`repro.lifecycle` snapshots are JSON-able dicts (they travel over the
serving wire); this module renders them in the same table style as the
experiment and service reports:

- :func:`format_lifecycle_report` — one row per stored version of every
  managed monitor, with its state-machine position (shadow / candidate /
  live / retired) and the live pointer;
- :func:`format_shadow_report` — the agreement/disagreement ledgers of the
  attached shadow scorers, the evidence a promotion guard reads.
"""

from __future__ import annotations

from typing import Mapping, Optional

from ..exceptions import ConfigurationError
from .reporting import format_table

__all__ = ["format_lifecycle_report", "format_shadow_report"]


def format_lifecycle_report(
    status: Mapping[str, object], title: Optional[str] = None
) -> str:
    """Render a :meth:`LifecycleManager.status` snapshot as a table.

    Accepts the exact dict :meth:`~repro.lifecycle.manager.LifecycleManager.status`
    returns (also what :meth:`~repro.serving.ScoringClient.lifecycle_status`
    receives over the wire), so local and remote operators read the same
    report.
    """
    monitors = status.get("monitors")
    if not isinstance(monitors, Mapping):
        raise ConfigurationError(
            "expected a LifecycleManager.status() snapshot with a 'monitors' map"
        )
    rows = []
    for name in sorted(monitors):
        entry = monitors[name]
        live = entry.get("live")
        versions = entry.get("versions", {})
        stored = entry.get("stored_versions", [])
        staged = entry.get("staged")
        # Keys arrive as ints locally and as strings after a JSON round
        # trip; normalise so both render identically.
        states = {int(version): state for version, state in versions.items()}
        for version in sorted(set(states) | {int(v) for v in stored}):
            state = states.get(version, "stored")
            notes = []
            if live is not None and int(live) == version:
                notes.append("serving")
            if staged and int(staged.get("version", -1)) == version:
                notes.append("staged")
            if entry.get("watch") and state == "live":
                notes.append(f"watched by {entry['watch']}")
            rows.append([name, f"v{version}", state, ", ".join(notes) or "-"])
    if not rows:
        rows.append(["(none)", "-", "-", "-"])
    front_end = status.get("front_end", "?")
    return format_table(
        ["monitor", "version", "state", "notes"],
        rows,
        title=title or f"Monitor lifecycle ({front_end})",
    )


def format_shadow_report(
    reports: Mapping[str, Mapping[str, object]], title: Optional[str] = None
) -> str:
    """Render :meth:`LifecycleManager.shadow_report` ledgers as a table.

    One row per attached shadow: the compared population, the agreement /
    disagreement split (``shadow_only`` — candidate warned alone,
    ``live_only`` — live warned alone), the running disagreement rate and
    whether the budget is breached.
    """
    rows = []
    for shadow_name in sorted(reports):
        entry = reports[shadow_name]
        ledger = entry.get("ledger", {})
        budget = ledger.get("disagreement_budget")
        rows.append(
            [
                shadow_name,
                str(entry.get("live", "?")),
                ledger.get("frames", 0),
                ledger.get("both_warn", 0),
                ledger.get("both_accept", 0),
                ledger.get("shadow_only", 0),
                ledger.get("live_only", 0),
                f"{float(ledger.get('disagreement_rate', 0.0)):.4f}",
                "-" if budget is None else f"{float(budget):.4f}",
                "yes" if ledger.get("breached") else "no",
            ]
        )
    if not rows:
        rows.append(["(no shadows attached)"] + ["-"] * 9)
    return format_table(
        [
            "shadow",
            "trails",
            "frames",
            "both warn",
            "both accept",
            "shadow only",
            "live only",
            "rate",
            "budget",
            "breached",
        ],
        rows,
        title=title or "Shadow scoring ledgers",
    )
