"""Experiment runners comparing standard and robust monitors.

The central object is :class:`MonitorExperiment`: a frozen description of one
workload — trained network, training inputs used to fit the monitors, an
in-ODD evaluation set (nominal plus aleatory perturbation) and a dictionary
of out-of-ODD scenario evaluation sets — together with the machinery to fit
any number of monitors on it and score them side by side.

This is the code path behind the E1/E2/E4/E9 benchmarks and the example
scripts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Sequence, Union

import numpy as np

from ..exceptions import ConfigurationError, ShapeError
from ..monitors.base import ActivationMonitor
from ..monitors.builder import ClassConditionalMonitor, MonitorBuilder
from ..nn.network import Sequential
from ..runtime.engine import BatchScoringEngine
from .metrics import MonitorScore, reduction_factor, score_monitor
from .reporting import format_rate, format_results_table

__all__ = ["MonitorExperiment", "ExperimentResult", "compare_monitors"]

MonitorLike = Union[ActivationMonitor, ClassConditionalMonitor]


@dataclass
class ExperimentResult:
    """Scores of every monitor evaluated in one experiment."""

    scores: Dict[str, MonitorScore] = field(default_factory=dict)

    def score(self, name: str) -> MonitorScore:
        try:
            return self.scores[name]
        except KeyError as exc:
            raise ConfigurationError(f"no monitor named '{name}' in the result") from exc

    def false_positive_reduction(self, baseline: str, improved: str) -> float:
        """Relative FP-rate reduction of ``improved`` over ``baseline``."""
        return reduction_factor(
            self.score(baseline).false_positive_rate,
            self.score(improved).false_positive_rate,
        )

    def detection_rate_change(self, baseline: str, improved: str) -> float:
        """Absolute change in mean detection rate (improved − baseline)."""
        return (
            self.score(improved).mean_detection_rate
            - self.score(baseline).mean_detection_rate
        )

    def as_rows(self) -> Sequence[Dict[str, object]]:
        rows = []
        for name, score in self.scores.items():
            row: Dict[str, object] = {
                "monitor": name,
                "false_positive_rate": format_rate(score.false_positive_rate),
                "mean_detection_rate": format_rate(score.mean_detection_rate),
            }
            for scenario, rate in score.detection_rates.items():
                row[f"detect[{scenario}]"] = format_rate(rate)
            rows.append(row)
        return rows

    def format(self, title: Optional[str] = None) -> str:
        rows = self.as_rows()
        if not rows:
            return "no monitors evaluated"
        columns = list(rows[0].keys())
        return format_results_table(rows, columns, title=title)


@dataclass
class MonitorExperiment:
    """One workload on which monitors are fitted and scored.

    Parameters
    ----------
    network:
        The trained, frozen network.
    fit_inputs:
        Training inputs ``D_tr`` used to build every monitor's abstraction.
    in_odd_inputs:
        In-ODD evaluation inputs (nominal held-out data and/or data with
        aleatory perturbation applied); warnings here are false positives.
    out_of_odd_inputs:
        Mapping from scenario name to out-of-ODD evaluation inputs; warnings
        here are detections.
    """

    network: Sequential
    fit_inputs: np.ndarray
    in_odd_inputs: np.ndarray
    out_of_odd_inputs: Mapping[str, np.ndarray]

    def __post_init__(self) -> None:
        self.fit_inputs = np.atleast_2d(np.asarray(self.fit_inputs, dtype=np.float64))
        self.in_odd_inputs = np.atleast_2d(np.asarray(self.in_odd_inputs, dtype=np.float64))
        if self.fit_inputs.shape[0] == 0 or self.in_odd_inputs.shape[0] == 0:
            raise ShapeError("experiment needs non-empty fit and in-ODD sets")
        if not self.out_of_odd_inputs:
            raise ConfigurationError("experiment needs at least one out-of-ODD scenario")
        self.out_of_odd_inputs = {
            name: np.atleast_2d(np.asarray(inputs, dtype=np.float64))
            for name, inputs in self.out_of_odd_inputs.items()
        }
        # Shared batched scoring path: monitors on this experiment's network
        # reuse one forward pass per evaluation set (cached across monitors
        # and across repeated evaluate_monitor calls, e.g. parameter sweeps).
        # The cache must hold every evaluation set at once or sequential
        # sweeps would evict the entry they need next.
        self._engine = BatchScoringEngine(
            self.network,
            max_cache_entries=len(self.out_of_odd_inputs) + 4,
        )

    # ------------------------------------------------------------------
    @property
    def engine(self) -> BatchScoringEngine:
        """The experiment's batched scoring engine (shared activation cache)."""
        return self._engine

    def evaluate_monitor(self, name: str, monitor: MonitorLike) -> MonitorScore:
        """Score one already-fitted monitor on the experiment's evaluation sets."""
        return self.evaluate_monitors({name: monitor})[name]

    def evaluate_monitors(
        self, monitors: Mapping[str, MonitorLike]
    ) -> Dict[str, MonitorScore]:
        """Score several fitted monitors with shared forward passes."""
        in_odd = self._engine.score_batch(monitors, self.in_odd_inputs).warns
        scenario_warns = {
            scenario: self._engine.score_batch(monitors, inputs).warns
            for scenario, inputs in self.out_of_odd_inputs.items()
        }
        return {
            name: score_monitor(
                name,
                in_odd[name],
                {
                    scenario: warns[name]
                    for scenario, warns in scenario_warns.items()
                },
            )
            for name in monitors
        }

    def run(self, monitors: Mapping[str, MonitorLike]) -> ExperimentResult:
        """Fit (if necessary) and score every monitor in ``monitors``."""
        for name, monitor in monitors.items():
            if isinstance(monitor, ClassConditionalMonitor):
                if not monitor.is_fitted:
                    monitor.fit(self.network, self.fit_inputs)
            elif isinstance(monitor, ActivationMonitor):
                if not monitor.is_fitted:
                    monitor.fit(self.fit_inputs)
            else:
                raise ConfigurationError(
                    f"monitor '{name}' is neither an ActivationMonitor nor a "
                    "ClassConditionalMonitor"
                )
        result = ExperimentResult()
        result.scores.update(self.evaluate_monitors(monitors))
        return result

    def run_builders(self, builders: Mapping[str, MonitorBuilder]) -> ExperimentResult:
        """Build, fit and score a monitor per builder specification."""
        monitors = {
            name: builder.build(self.network) for name, builder in builders.items()
        }
        return self.run(monitors)


def compare_monitors(
    experiment: MonitorExperiment,
    standard: MonitorLike,
    robust: MonitorLike,
    standard_name: str = "standard",
    robust_name: str = "robust",
) -> ExperimentResult:
    """Convenience wrapper scoring a standard/robust monitor pair."""
    return experiment.run({standard_name: standard, robust_name: robust})
