"""Monitorability and abstraction-coverage metrics.

Section IV of the paper observes that some monitors, "although demonstrating
0% false positive, are inefficient in that only a few warnings are raised",
and proposes studying how to train networks with better *monitorability*.
This module provides the measurements such a study needs:

* **abstraction coverage** — what fraction of the representable pattern space
  the fitted abstraction occupies (a fully saturated abstraction can never
  warn, so lower is better for detection capability);
* **envelope occupancy** — the analogous measure for min-max monitors: the
  envelope volume relative to a reference operating range;
* **neuron saturation** — the fraction of monitored neurons whose bit/code is
  constant across the training data (a saturated neuron contributes nothing
  to the monitor's discriminative power);
* **monitorability score** — a single figure of merit combining coverage and
  saturation, suitable for comparing candidate layers or network trainings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Union

import numpy as np

from ..exceptions import ConfigurationError, NotFittedError
from ..monitors.boolean import BooleanPatternMonitor
from ..monitors.interval import IntervalPatternMonitor
from ..monitors.minmax import MinMaxMonitor

__all__ = [
    "pattern_space_coverage",
    "envelope_occupancy",
    "neuron_saturation",
    "MonitorabilityReport",
    "monitorability_report",
]

PatternMonitor = Union[BooleanPatternMonitor, IntervalPatternMonitor]


def _require_fitted(monitor) -> None:
    if not monitor.is_fitted:
        raise NotFittedError("coverage metrics require a fitted monitor")


def pattern_space_coverage(monitor: PatternMonitor) -> float:
    """Fraction of the representable code space stored in the abstraction.

    A Boolean monitor over ``m`` neurons can represent ``2^m`` words; an
    interval monitor with ``b`` bits per neuron ``2^(m·b)``.  The coverage is
    ``|stored set| / |representable set|`` computed exactly from the BDD model
    count (as a float; for wide layers the denominator is astronomically
    large, which is precisely the point — useful monitors occupy a vanishing
    fraction of the space).
    """
    if not isinstance(monitor, (BooleanPatternMonitor, IntervalPatternMonitor)):
        raise ConfigurationError("pattern_space_coverage needs a pattern monitor")
    _require_fitted(monitor)
    total_bits = monitor.patterns.num_bits
    stored = monitor.patterns.cardinality()
    return float(stored) / float(2**total_bits)


def envelope_occupancy(
    monitor: MinMaxMonitor, reference_low: np.ndarray, reference_high: np.ndarray
) -> float:
    """Mean per-neuron fraction of a reference range covered by the envelope.

    ``reference_low`` / ``reference_high`` describe the operating range the
    monitored neurons can plausibly take (e.g. the min/max observed over a
    large probe set).  An occupancy of 1.0 means the envelope spans the whole
    reference range in every dimension — such a monitor can never warn inside
    that range.
    """
    if not isinstance(monitor, MinMaxMonitor):
        raise ConfigurationError("envelope_occupancy needs a min-max monitor")
    _require_fitted(monitor)
    reference_low = np.asarray(reference_low, dtype=np.float64).reshape(-1)
    reference_high = np.asarray(reference_high, dtype=np.float64).reshape(-1)
    if reference_low.shape != monitor.lower.shape:
        raise ConfigurationError("reference range dimension does not match the monitor")
    reference_width = np.maximum(reference_high - reference_low, 1e-12)
    overlap_low = np.maximum(monitor.lower, reference_low)
    overlap_high = np.minimum(monitor.upper, reference_high)
    overlap = np.maximum(overlap_high - overlap_low, 0.0)
    return float(np.mean(overlap / reference_width))


def neuron_saturation(monitor: PatternMonitor) -> float:
    """Fraction of monitored neurons whose code never varies in the stored set.

    Computed from the stored words: a position whose code is identical in
    every stored word cannot distinguish any two inputs, so a high saturation
    means the monitor's warnings are driven by only a few neurons.
    """
    if not isinstance(monitor, (BooleanPatternMonitor, IntervalPatternMonitor)):
        raise ConfigurationError("neuron_saturation needs a pattern monitor")
    _require_fitted(monitor)
    words = np.array(list(monitor.patterns.iterate_words(limit=4096)), dtype=np.int64)
    if words.size == 0:
        return 1.0
    constant = np.all(words == words[0][None, :], axis=0)
    return float(np.mean(constant))


@dataclass
class MonitorabilityReport:
    """Summary of how much discriminative power a fitted monitor retains."""

    coverage: float
    saturation: float
    pattern_count: int
    bdd_nodes: int

    @property
    def monitorability(self) -> float:
        """Figure of merit in ``[0, 1]``: high when coverage and saturation are low.

        Defined as ``(1 − coverage) · (1 − saturation)``: a monitor that
        covers the whole code space or whose neurons never vary scores 0.
        """
        return (1.0 - min(self.coverage, 1.0)) * (1.0 - min(self.saturation, 1.0))

    def as_dict(self) -> Dict[str, float]:
        return {
            "coverage": self.coverage,
            "saturation": self.saturation,
            "pattern_count": self.pattern_count,
            "bdd_nodes": self.bdd_nodes,
            "monitorability": self.monitorability,
        }


def monitorability_report(monitor: PatternMonitor) -> MonitorabilityReport:
    """Compute the coverage/saturation report for a fitted pattern monitor."""
    return MonitorabilityReport(
        coverage=pattern_space_coverage(monitor),
        saturation=neuron_saturation(monitor),
        pattern_count=monitor.pattern_count(),
        bdd_nodes=monitor.bdd_size(),
    )
