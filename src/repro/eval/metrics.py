"""Evaluation metrics for monitor experiments.

The paper reports two headline quantities:

* **false-positive rate** — fraction of in-ODD inputs that raise a warning
  (0.62% for the standard monitor, 0.125% for the robust monitor in the lab
  deployment, an ~80% reduction);
* **detection rate** — fraction of out-of-ODD inputs (dark, construction,
  ice, ...) that raise a warning, which should stay roughly unchanged when
  switching to the robust construction.

This module computes these together with the usual derived quantities
(precision/recall/F1 over the combined evaluation set, reduction factors,
per-scenario detection tables).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping

import numpy as np

from ..exceptions import ShapeError

__all__ = [
    "false_positive_rate",
    "detection_rate",
    "reduction_factor",
    "ConfusionCounts",
    "confusion_counts",
    "MonitorScore",
    "score_monitor",
]


def _warning_rate(warnings: np.ndarray) -> float:
    warnings = np.asarray(warnings, dtype=bool).reshape(-1)
    if warnings.size == 0:
        raise ShapeError("cannot compute a rate over zero samples")
    return float(np.mean(warnings))


def false_positive_rate(in_odd_warnings: np.ndarray) -> float:
    """Fraction of in-ODD inputs that (wrongly) raised a warning."""
    return _warning_rate(in_odd_warnings)


def detection_rate(out_of_odd_warnings: np.ndarray) -> float:
    """Fraction of out-of-ODD inputs that (correctly) raised a warning."""
    return _warning_rate(out_of_odd_warnings)


def reduction_factor(baseline_rate: float, improved_rate: float) -> float:
    """Relative reduction ``(baseline - improved) / baseline``.

    Returns 0.0 when the baseline is already zero (nothing to reduce), which
    keeps sweep tables well-defined at the degenerate end.
    """
    if baseline_rate < 0 or improved_rate < 0:
        raise ShapeError("rates must be non-negative")
    if baseline_rate == 0.0:
        return 0.0
    return (baseline_rate - improved_rate) / baseline_rate


@dataclass(frozen=True)
class ConfusionCounts:
    """Warning-vs-ground-truth confusion counts.

    "Positive" means out-of-ODD (the event the monitor should detect).
    """

    true_positives: int
    false_positives: int
    true_negatives: int
    false_negatives: int

    @property
    def total(self) -> int:
        return (
            self.true_positives
            + self.false_positives
            + self.true_negatives
            + self.false_negatives
        )

    @property
    def precision(self) -> float:
        denominator = self.true_positives + self.false_positives
        return self.true_positives / denominator if denominator else 0.0

    @property
    def recall(self) -> float:
        denominator = self.true_positives + self.false_negatives
        return self.true_positives / denominator if denominator else 0.0

    @property
    def f1(self) -> float:
        precision, recall = self.precision, self.recall
        if precision + recall == 0.0:
            return 0.0
        return 2.0 * precision * recall / (precision + recall)

    @property
    def accuracy(self) -> float:
        return (self.true_positives + self.true_negatives) / self.total if self.total else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "true_positives": self.true_positives,
            "false_positives": self.false_positives,
            "true_negatives": self.true_negatives,
            "false_negatives": self.false_negatives,
            "precision": self.precision,
            "recall": self.recall,
            "f1": self.f1,
            "accuracy": self.accuracy,
        }


def confusion_counts(
    in_odd_warnings: np.ndarray, out_of_odd_warnings: np.ndarray
) -> ConfusionCounts:
    """Confusion counts from warnings on in-ODD and out-of-ODD evaluation sets."""
    in_odd = np.asarray(in_odd_warnings, dtype=bool).reshape(-1)
    out_of_odd = np.asarray(out_of_odd_warnings, dtype=bool).reshape(-1)
    if in_odd.size == 0 or out_of_odd.size == 0:
        raise ShapeError("both evaluation sets must be non-empty")
    return ConfusionCounts(
        true_positives=int(out_of_odd.sum()),
        false_negatives=int((~out_of_odd).sum()),
        false_positives=int(in_odd.sum()),
        true_negatives=int((~in_odd).sum()),
    )


@dataclass
class MonitorScore:
    """Aggregate score of one monitor on one workload."""

    name: str
    false_positive_rate: float
    detection_rates: Dict[str, float]
    confusion: ConfusionCounts

    @property
    def mean_detection_rate(self) -> float:
        if not self.detection_rates:
            return 0.0
        return float(np.mean(list(self.detection_rates.values())))

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "false_positive_rate": self.false_positive_rate,
            "mean_detection_rate": self.mean_detection_rate,
            "detection_rates": dict(self.detection_rates),
            **{f"confusion_{k}": v for k, v in self.confusion.as_dict().items()},
        }


def score_monitor(
    name: str,
    in_odd_warnings: np.ndarray,
    scenario_warnings: Mapping[str, np.ndarray],
) -> MonitorScore:
    """Build a :class:`MonitorScore` from raw warning vectors.

    ``scenario_warnings`` maps each out-of-ODD scenario name to its warning
    vector; the confusion counts pool every scenario together.
    """
    if not scenario_warnings:
        raise ShapeError("score_monitor needs at least one out-of-ODD scenario")
    detection = {
        scenario: detection_rate(warnings)
        for scenario, warnings in scenario_warnings.items()
    }
    pooled = np.concatenate(
        [np.asarray(w, dtype=bool).reshape(-1) for w in scenario_warnings.values()]
    )
    return MonitorScore(
        name=name,
        false_positive_rate=false_positive_rate(in_odd_warnings),
        detection_rates=detection,
        confusion=confusion_counts(in_odd_warnings, pooled),
    )
