"""Plain-text table formatting for experiment output.

Benchmarks print the same rows the paper reports (false-positive rates,
per-scenario detection rates, reduction factors).  The formatter is
dependency-free: fixed-width columns, rendered to a string so both pytest
benchmarks and example scripts can reuse it.
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Optional, Sequence, Union

__all__ = ["format_table", "format_rate", "format_results_table"]

Cell = Union[str, int, float, None]


def format_rate(value: Optional[float], digits: int = 3) -> str:
    """Format a rate (0..1) as a percentage string, e.g. ``0.62%``."""
    if value is None:
        return "-"
    return f"{100.0 * value:.{digits}f}%"


def _format_cell(value: Cell) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.4f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Cell]],
    title: Optional[str] = None,
) -> str:
    """Render a fixed-width text table."""
    formatted_rows: List[List[str]] = [[_format_cell(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in formatted_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = " | ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-+-".join("-" * w for w in widths))
    for row in formatted_rows:
        lines.append(" | ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def format_results_table(
    results: Sequence[Mapping[str, Cell]],
    columns: Sequence[str],
    title: Optional[str] = None,
) -> str:
    """Render a list of dictionaries as a table with the chosen ``columns``."""
    rows = [[result.get(column) for column in columns] for result in results]
    return format_table(columns, rows, title=title)
