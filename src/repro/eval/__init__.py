"""Evaluation harness: metrics, experiment runners, sweeps, coverage and reporting."""

from .coverage import (
    MonitorabilityReport,
    envelope_occupancy,
    monitorability_report,
    neuron_saturation,
    pattern_space_coverage,
)
from .experiments import ExperimentResult, MonitorExperiment, compare_monitors
from .lifecycle_report import format_lifecycle_report, format_shadow_report
from .metrics import (
    ConfusionCounts,
    MonitorScore,
    confusion_counts,
    detection_rate,
    false_positive_rate,
    reduction_factor,
    score_monitor,
)
from .reporting import format_rate, format_results_table, format_table
from .service_report import (
    format_scaling_report,
    format_service_report,
    measure_remote_throughput,
    measure_streaming_throughput,
)
from .sweep import bit_width_sweep, delta_sweep, layer_sweep, method_sweep

__all__ = [
    "MonitorExperiment",
    "ExperimentResult",
    "compare_monitors",
    "false_positive_rate",
    "detection_rate",
    "reduction_factor",
    "confusion_counts",
    "ConfusionCounts",
    "MonitorScore",
    "score_monitor",
    "format_table",
    "format_rate",
    "format_results_table",
    "format_lifecycle_report",
    "format_scaling_report",
    "format_service_report",
    "format_shadow_report",
    "measure_remote_throughput",
    "measure_streaming_throughput",
    "delta_sweep",
    "method_sweep",
    "bit_width_sweep",
    "layer_sweep",
    "MonitorabilityReport",
    "monitorability_report",
    "pattern_space_coverage",
    "envelope_occupancy",
    "neuron_saturation",
]
