"""Throughput / latency reporting for the streaming service path.

The offline metrics in this package answer "how well does the monitor
detect?"; this module answers the serving question — "how fast, and at what
tail latency, does the deployed scorer run?".  It formats the statistics
snapshot of a :class:`~repro.service.streaming.StreamingScorer` into the
same table style as the experiment reports, and offers a small measurement
harness that replays a frame set through a scorer to obtain
wall-clock-grounded throughput numbers (used by the streaming benchmark and
the example script).
"""

from __future__ import annotations

import time
from typing import Dict, Mapping, Optional

import numpy as np

from ..exceptions import ConfigurationError
from .reporting import format_table

__all__ = [
    "format_scaling_report",
    "format_service_report",
    "measure_remote_throughput",
    "measure_streaming_throughput",
]


def _format_seconds(seconds: float) -> str:
    if seconds < 1e-3:
        return f"{seconds * 1e6:.0f} us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.2f} ms"
    return f"{seconds:.3f} s"


def format_service_report(
    snapshot: Mapping[str, object], title: Optional[str] = None
) -> str:
    """Render a :meth:`ServiceStats.snapshot` as a readable table."""
    reasons = snapshot.get("flush_reasons", {})
    rows = [
        ["frames submitted", snapshot.get("frames_submitted", 0)],
        ["frames scored", snapshot.get("frames_scored", 0)],
        ["frames failed", snapshot.get("frames_failed", 0)],
        ["frames cancelled", snapshot.get("frames_cancelled", 0)],
        ["micro-batches", snapshot.get("batches", 0)],
        ["mean batch size", f"{snapshot.get('mean_batch_size', 0.0):.1f}"],
        ["max batch size", snapshot.get("max_batch_size", 0)],
    ]
    if isinstance(reasons, Mapping):
        # Render whatever reasons the front-end actually recorded ("size",
        # "deadline", "drain", the pool's "adaptive", anything future) —
        # hard-coding the key set here is how new reasons go invisible.
        labels = " / ".join(str(reason) for reason in reasons)
        counts = " / ".join(str(count) for count in reasons.values())
        rows.append([f"flushes ({labels})", counts])
    events = snapshot.get("event_counts", {})
    if isinstance(events, Mapping) and events:
        # Registry churn: register/promote/rollback/attach_shadow/… — the
        # lifecycle side of the ledger, same open-key treatment as reasons.
        labels = " / ".join(str(kind) for kind in sorted(events))
        counts = " / ".join(str(events[kind]) for kind in sorted(events))
        rows.append([f"events ({labels})", counts])
    for key, label in (
        ("latency_mean_s", "latency mean"),
        ("latency_p50_s", "latency p50"),
        ("latency_p95_s", "latency p95"),
        ("latency_max_s", "latency max"),
    ):
        if key in snapshot:
            rows.append([label, _format_seconds(float(snapshot[key]))])
    return format_table(
        ["metric", "value"], rows, title=title or "Streaming service report"
    )


def measure_streaming_throughput(
    scorer,
    frames: np.ndarray,
    burst_size: int = 0,
) -> Dict[str, float]:
    """Replay ``frames`` through a running scorer and measure throughput.

    ``burst_size`` controls how many frames each :meth:`submit_many` call
    carries (``0`` submits the whole set as one burst; ``1`` degenerates to
    per-frame :meth:`submit` traffic).  Blocks until every future resolved;
    returns wall time, frames/second and the mean wall time *per frame*
    (inverse throughput — for true submit-to-resolve latency percentiles
    read ``scorer.stats.snapshot()``).
    """
    frames = np.atleast_2d(np.asarray(frames, dtype=np.float64))
    if frames.shape[0] == 0:
        raise ConfigurationError("throughput measurement needs at least one frame")
    if burst_size < 0:
        raise ConfigurationError("burst_size must be non-negative")
    burst = frames.shape[0] if burst_size == 0 else int(burst_size)
    futures = []
    start = time.perf_counter()
    for begin in range(0, frames.shape[0], burst):
        futures.extend(scorer.submit_many(frames[begin : begin + burst]))
    results = [future.result() for future in futures]
    elapsed = time.perf_counter() - start
    return {
        "frames": float(len(results)),
        "wall_time_s": elapsed,
        "frames_per_second": len(results) / elapsed if elapsed > 0 else float("inf"),
        "mean_seconds_per_frame": elapsed / len(results),
    }


def measure_remote_throughput(
    client,
    frames: np.ndarray,
    burst_size: int = 0,
    timeout: Optional[float] = None,
) -> Dict[str, float]:
    """Replay ``frames`` through a socket client and measure throughput.

    The remote twin of :func:`measure_streaming_throughput`: each burst goes
    out as one pipelined :meth:`~repro.serving.ScoringClient.score_async`
    request (so the connection keeps many bursts in flight, exactly how a
    deployment drives the server), then all responses are awaited.  Returns
    the same metric dict, so scaling reports can mix local and remote rows.
    """
    frames = np.atleast_2d(np.asarray(frames, dtype=np.float64))
    if frames.shape[0] == 0:
        raise ConfigurationError("throughput measurement needs at least one frame")
    if burst_size < 0:
        raise ConfigurationError("burst_size must be non-negative")
    burst = frames.shape[0] if burst_size == 0 else int(burst_size)
    futures = []
    start = time.perf_counter()
    for begin in range(0, frames.shape[0], burst):
        futures.append(client.score_async(frames[begin : begin + burst]))
    total = 0
    for future in futures:
        warns = future.result(timeout)
        total += len(next(iter(warns.values()))) if warns else 0
    elapsed = time.perf_counter() - start
    count = int(frames.shape[0])
    return {
        "frames": float(count),
        "frames_resolved": float(total),
        "wall_time_s": elapsed,
        "frames_per_second": count / elapsed if elapsed > 0 else float("inf"),
        "mean_seconds_per_frame": elapsed / count,
    }


def format_scaling_report(
    measurements: Mapping[str, Mapping[str, float]],
    baseline: Optional[str] = None,
    title: Optional[str] = None,
) -> str:
    """Tabulate throughput measurements side by side with speedup factors.

    ``measurements`` maps a configuration label (e.g. ``"in-process"``,
    ``"remote w=4"``) to a metric dict from either measurement helper.
    ``baseline`` names the row every speedup is computed against (defaults
    to the first row).
    """
    if not measurements:
        raise ConfigurationError("scaling report needs at least one measurement")
    labels = list(measurements)
    base_label = baseline if baseline is not None else labels[0]
    if base_label not in measurements:
        raise ConfigurationError(f"baseline '{base_label}' is not a measured row")
    base_fps = float(measurements[base_label]["frames_per_second"])
    rows = []
    for label in labels:
        metrics = measurements[label]
        fps = float(metrics["frames_per_second"])
        rows.append(
            [
                label,
                f"{int(metrics['frames'])}",
                _format_seconds(float(metrics["wall_time_s"])),
                f"{fps:.0f}",
                f"{fps / base_fps:.2f}x" if base_fps > 0 else "n/a",
            ]
        )
    return format_table(
        ["configuration", "frames", "wall time", "frames/s", f"vs {base_label}"],
        rows,
        title=title or "Scoring throughput scaling",
    )
