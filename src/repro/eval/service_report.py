"""Throughput / latency reporting for the streaming service path.

The offline metrics in this package answer "how well does the monitor
detect?"; this module answers the serving question — "how fast, and at what
tail latency, does the deployed scorer run?".  It formats the statistics
snapshot of a :class:`~repro.service.streaming.StreamingScorer` into the
same table style as the experiment reports, and offers a small measurement
harness that replays a frame set through a scorer to obtain
wall-clock-grounded throughput numbers (used by the streaming benchmark and
the example script).
"""

from __future__ import annotations

import time
from typing import Dict, Mapping, Optional

import numpy as np

from ..exceptions import ConfigurationError
from .reporting import format_table

__all__ = ["format_service_report", "measure_streaming_throughput"]


def _format_seconds(seconds: float) -> str:
    if seconds < 1e-3:
        return f"{seconds * 1e6:.0f} us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.2f} ms"
    return f"{seconds:.3f} s"


def format_service_report(
    snapshot: Mapping[str, object], title: Optional[str] = None
) -> str:
    """Render a :meth:`ServiceStats.snapshot` as a readable table."""
    reasons = snapshot.get("flush_reasons", {})
    rows = [
        ["frames submitted", snapshot.get("frames_submitted", 0)],
        ["frames scored", snapshot.get("frames_scored", 0)],
        ["frames failed", snapshot.get("frames_failed", 0)],
        ["frames cancelled", snapshot.get("frames_cancelled", 0)],
        ["micro-batches", snapshot.get("batches", 0)],
        ["mean batch size", f"{snapshot.get('mean_batch_size', 0.0):.1f}"],
        ["max batch size", snapshot.get("max_batch_size", 0)],
        [
            "flushes (size / deadline / drain)",
            f"{reasons.get('size', 0)} / {reasons.get('deadline', 0)} / "
            f"{reasons.get('drain', 0)}",
        ],
    ]
    for key, label in (
        ("latency_mean_s", "latency mean"),
        ("latency_p50_s", "latency p50"),
        ("latency_p95_s", "latency p95"),
        ("latency_max_s", "latency max"),
    ):
        if key in snapshot:
            rows.append([label, _format_seconds(float(snapshot[key]))])
    return format_table(
        ["metric", "value"], rows, title=title or "Streaming service report"
    )


def measure_streaming_throughput(
    scorer,
    frames: np.ndarray,
    burst_size: int = 0,
) -> Dict[str, float]:
    """Replay ``frames`` through a running scorer and measure throughput.

    ``burst_size`` controls how many frames each :meth:`submit_many` call
    carries (``0`` submits the whole set as one burst; ``1`` degenerates to
    per-frame :meth:`submit` traffic).  Blocks until every future resolved;
    returns wall time, frames/second and the mean wall time *per frame*
    (inverse throughput — for true submit-to-resolve latency percentiles
    read ``scorer.stats.snapshot()``).
    """
    frames = np.atleast_2d(np.asarray(frames, dtype=np.float64))
    if frames.shape[0] == 0:
        raise ConfigurationError("throughput measurement needs at least one frame")
    if burst_size < 0:
        raise ConfigurationError("burst_size must be non-negative")
    burst = frames.shape[0] if burst_size == 0 else int(burst_size)
    futures = []
    start = time.perf_counter()
    for begin in range(0, frames.shape[0], burst):
        futures.extend(scorer.submit_many(frames[begin : begin + burst]))
    results = [future.result() for future in futures]
    elapsed = time.perf_counter() - start
    return {
        "frames": float(len(results)),
        "wall_time_s": elapsed,
        "frames_per_second": len(results) / elapsed if elapsed > 0 else float("inf"),
        "mean_seconds_per_frame": elapsed / len(results),
    }
