"""Star-set LP bound back-ends: batched bound queries behind a registry.

The star domain answers every per-dimension bound query with a linear
program over the star's predicate polytope.  The seed implementation
entered ``scipy.optimize.linprog`` once per dimension per sense — ``2·d``
Python round-trips into the solver for every star, which is why the star
back-end trailed the fully vectorised box/zonotope paths by ~25×.  This
module makes the bound machinery pluggable the same way matcher kernels
(:func:`repro.runtime.kernels.matcher_backends`) and propagation domains
(:func:`repro.symbolic.propagation.propagation_backends`) are pluggable,
with three built-in tiers:

``loop``
    The seed reference: one dense ``linprog`` call per dimension per sense.
    Kept as the ground truth every other back-end is pinned against.

``stacked``
    Two fast paths.  (1) *Closed form*: while the predicate polytope is
    still the default hypercube ``alpha ∈ [-1, 1]^m`` (no unstable ReLU
    crossed yet — the common case in early layers), the bounds are exactly
    ``center ± |basis|ᵀ·1`` — zero LPs, vectorised across all queried stars
    at once.  (2) *Block stacking*: for genuinely constrained stars the
    ``2·d`` unit-direction objectives of many stars are assembled into one
    block-diagonal sparse HiGHS program per chunk.  The blocks share no
    variables, so the one solve optimises every objective independently and
    simultaneously; scipy is entered ``O(chunks)`` instead of
    ``O(stars · 2·d)`` times.  Dimensions whose basis column is all-zero
    are fixed points (``bound = center``) and skipped entirely.

``sharded``
    The stacked tier driven from a shared thread pool, chunking over
    constrained stars.  HiGHS runs outside the GIL for the bulk of a
    solve, so shards genuinely overlap on multi-core hosts.

Selection mirrors the matcher-kernel convention: per star set via
``StarSet(..., lp_backend=...)``, per call via the ``star_lp_backend``
keyword of the propagation / bound-collection APIs, process-wide via the
``REPRO_STAR_LP_BACKEND`` environment variable, or by registering a custom
back-end with :func:`register_star_lp_backend`.  Unknown names raise a
:class:`~repro.exceptions.ConfigurationError` (a ``ValueError``) listing
the valid :func:`star_lp_backends` keys.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np
from scipy import sparse
from scipy.optimize import linprog

from ..exceptions import ConfigurationError, PropagationError

__all__ = [
    "StarLPBackend",
    "LoopStarLPBackend",
    "StackedStarLPBackend",
    "ShardedStarLPBackend",
    "STAR_LP_BACKEND_ENV",
    "DEFAULT_STAR_LP_BACKEND",
    "DEFAULT_STACK_CHUNK_ELEMENTS",
    "star_lp_backends",
    "register_star_lp_backend",
    "unregister_star_lp_backend",
    "resolve_star_lp_backend",
]

#: Environment variable that selects the process-wide default back-end.
STAR_LP_BACKEND_ENV = "REPRO_STAR_LP_BACKEND"

#: Back-end used when neither a call-site choice nor the env var is set.
DEFAULT_STAR_LP_BACKEND = "stacked"

#: Budget on the (estimated) non-zero count of one block-diagonal constraint
#: matrix.  Each objective block replicates its star's polytope, so the
#: estimate for a star with ``nnz`` polytope non-zeros and ``q`` LP-queried
#: dimensions is ``2·q·nnz``; chunks are cut at star granularity once the
#: running total would exceed this.
DEFAULT_STACK_CHUNK_ELEMENTS = 4_000_000

#: Below this many constrained stars the sharded driver skips the pool.
DEFAULT_MIN_SHARD_STARS = 4


def _needs_lp(star) -> bool:
    """True when a star's bounds require solving LPs (constrained polytope)."""
    return star.num_predicates > 0 and not star.is_hypercube_domain


class StarLPBackend:
    """Interface of a star-LP bound back-end.

    The one required operation is :meth:`bounds_many` — per-dimension
    lower/upper bounds of a sequence of equal-dimension star sets, returned
    as ``(N, d)`` matrices.  :meth:`bounds` is the single-star convenience
    wrapper used by :meth:`repro.symbolic.star.StarSet.bounds`.
    """

    name = "abstract"

    def bounds_many(self, stars: Sequence) -> Tuple[np.ndarray, np.ndarray]:
        raise NotImplementedError

    def bounds(self, star) -> Tuple[np.ndarray, np.ndarray]:
        lows, highs = self.bounds_many([star])
        return lows[0], highs[0]

    def describe(self) -> dict:
        return {"name": self.name, "class": type(self).__name__}

    # ------------------------------------------------------------------
    @staticmethod
    def _output_arrays(stars: Sequence) -> Tuple[np.ndarray, np.ndarray]:
        dimension = stars[0].dimension
        for star in stars:
            if star.dimension != dimension:
                raise ConfigurationError(
                    "bounds_many needs stars of equal dimension, got "
                    f"{star.dimension} next to {dimension}"
                )
        return (
            np.empty((len(stars), dimension)),
            np.empty((len(stars), dimension)),
        )


class LoopStarLPBackend(StarLPBackend):
    """The seed per-dimension walk: ``2·d`` dense ``linprog`` calls per star.

    Deliberately unoptimised — no closed form, no stacking — so it stays an
    executable reference of the original semantics for equivalence tests
    and the benchmark baseline.
    """

    name = "loop"

    def bounds_many(self, stars: Sequence) -> Tuple[np.ndarray, np.ndarray]:
        if not stars:
            return np.zeros((0, 0)), np.zeros((0, 0))
        lows, highs = self._output_arrays(stars)
        for index, star in enumerate(stars):
            lows[index], highs[index] = star._bounds_loop()
        return lows, highs


class StackedStarLPBackend(StarLPBackend):
    """Closed-form hypercube tier + block-stacked sparse HiGHS solves."""

    name = "stacked"

    def __init__(self, chunk_elements: int = DEFAULT_STACK_CHUNK_ELEMENTS) -> None:
        self.chunk_elements = max(1, int(chunk_elements))
        self._stats_lock = threading.Lock()
        self.reset_stats()

    def reset_stats(self) -> None:
        """Zero the tier-attribution counters (shared across threads)."""
        with self._stats_lock:
            self.stats: Dict[str, int] = {
                "closed_form_stars": 0,
                "lp_stars": 0,
                "lp_programs": 0,
                "lp_objectives": 0,
                "skipped_zero_columns": 0,
            }

    def _count(self, **increments: int) -> None:
        with self._stats_lock:
            for key, value in increments.items():
                self.stats[key] = self.stats.get(key, 0) + int(value)

    def describe(self) -> dict:
        info = super().describe()
        info["chunk_elements"] = self.chunk_elements
        return info

    # ------------------------------------------------------------------
    def bounds_many(self, stars: Sequence) -> Tuple[np.ndarray, np.ndarray]:
        if not stars:
            return np.zeros((0, 0)), np.zeros((0, 0))
        lows, highs = self._output_arrays(stars)
        closed = [i for i, star in enumerate(stars) if not _needs_lp(star)]
        constrained = [i for i, star in enumerate(stars) if _needs_lp(star)]
        if closed:
            self._closed_form(stars, closed, lows, highs)
        if constrained:
            self._lp_bounds(stars, constrained, lows, highs)
        return lows, highs

    # ------------------------------------------------------------------
    # Tier 1: closed form on hypercube predicate domains
    # ------------------------------------------------------------------
    def _closed_form(
        self,
        stars: Sequence,
        indices: List[int],
        lows: np.ndarray,
        highs: np.ndarray,
    ) -> None:
        """Exact bounds without any LP: ``center ± |basis|ᵀ·1``.

        Over ``alpha ∈ [-1, 1]^m`` the extremum of ``basis[:, j] · alpha``
        is ``±Σ_i |basis[i, j]|``, attained at ``alpha_i = ±sign``.  Stars
        are grouped by basis shape so each group is one stacked ``(N, m, d)``
        absolute-sum — the reduction per star slice is the same memory walk
        as the single-star ``|basis|.sum(axis=0)``, so batched and
        single-star closed forms agree bit-for-bit.
        """
        groups: Dict[Tuple[int, int], List[int]] = {}
        for i in indices:
            groups.setdefault(stars[i].basis.shape, []).append(i)
        for shape, members in groups.items():
            where = np.array(members)
            centers = np.stack([stars[i].center for i in members])
            if shape[0] == 0:
                lows[where] = centers
                highs[where] = centers
            else:
                bases = np.stack([stars[i].basis for i in members])
                radii = np.abs(bases).sum(axis=1)
                lows[where] = centers - radii
                highs[where] = centers + radii
        self._count(closed_form_stars=len(indices))

    # ------------------------------------------------------------------
    # Tier 2: block-diagonal stacked LP solves
    # ------------------------------------------------------------------
    def _lp_bounds(
        self,
        stars: Sequence,
        indices: List[int],
        lows: np.ndarray,
        highs: np.ndarray,
    ) -> None:
        """LP-tier bounds for genuinely constrained stars, chunk-stacked."""
        jobs = []
        skipped = 0
        for i in indices:
            star = stars[i]
            # Fixed-point initialisation: dimensions with an all-zero basis
            # column cannot move off the centre, so they need no objective.
            columns = np.nonzero(np.any(star.basis != 0.0, axis=0))[0]
            lows[i] = star.center
            highs[i] = star.center
            skipped += star.dimension - columns.size
            if columns.size == 0:
                continue
            polytope = sparse.csc_matrix(star.constraints_a)
            cost = 2 * columns.size * max(1, polytope.nnz)
            jobs.append((i, polytope, columns, cost))
        self._count(
            lp_stars=len(jobs),
            closed_form_stars=len(indices) - len(jobs),
            skipped_zero_columns=skipped,
        )
        chunk: List[tuple] = []
        running = 0
        for job in jobs:
            if chunk and running + job[3] > self.chunk_elements:
                self._solve_chunk(stars, chunk, lows, highs)
                chunk, running = [], 0
            chunk.append(job)
            running += job[3]
        if chunk:
            self._solve_chunk(stars, chunk, lows, highs)

    def _solve_chunk(
        self,
        stars: Sequence,
        jobs: List[tuple],
        lows: np.ndarray,
        highs: np.ndarray,
    ) -> None:
        """One HiGHS call covering every objective of every star in ``jobs``.

        Each objective (one dimension, one sense) owns a private copy of its
        star's predicate variables, constrained by a private copy of the
        star's polytope on the block diagonal.  Minimising the concatenated
        objective therefore minimises every block independently — one solver
        entry, ``Σ 2·q_i`` LP answers.
        """
        blocks = []
        rhs_parts = []
        objective_parts = []
        meta = []  # (star_index, dimension, is_upper, var_offset, num_vars)
        offset = 0
        for star_index, polytope, columns, _ in jobs:
            star = stars[star_index]
            num_vars = star.num_predicates
            for j in columns:
                coefficients = star.basis[:, j]
                for is_upper in (False, True):
                    blocks.append(polytope)
                    rhs_parts.append(star.constraints_b)
                    # Lower bound minimises +c·alpha; the upper bound
                    # minimises -c·alpha, i.e. maximises c·alpha.
                    objective_parts.append(-coefficients if is_upper else coefficients)
                    meta.append((star_index, j, is_upper, offset, num_vars))
                    offset += num_vars
        stacked = sparse.block_diag(blocks, format="csc")
        result = linprog(
            np.concatenate(objective_parts),
            A_ub=stacked,
            b_ub=np.concatenate(rhs_parts),
            bounds=(None, None),
            method="highs",
        )
        if not result.success:
            raise PropagationError(
                f"stacked LP bound query failed: {result.message} "
                f"(status {result.status})"
            )
        solution = result.x
        for star_index, j, is_upper, var_offset, num_vars in meta:
            star = stars[star_index]
            value = float(
                star.basis[:, j] @ solution[var_offset : var_offset + num_vars]
            )
            if is_upper:
                highs[star_index, j] = star.center[j] + value
            else:
                lows[star_index, j] = star.center[j] + value
        self._count(lp_programs=1, lp_objectives=len(meta))


_POOL_LOCK = threading.Lock()
_POOL: Optional[ThreadPoolExecutor] = None


def _shared_pool() -> ThreadPoolExecutor:
    """Lazily created process-wide pool shared by every sharded back-end."""
    global _POOL
    with _POOL_LOCK:
        if _POOL is None:
            workers = min(8, os.cpu_count() or 1)
            _POOL = ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="repro-star-lp-shard"
            )
        return _POOL


class ShardedStarLPBackend(StarLPBackend):
    """Stacked solves driven from a shared thread pool, chunked over stars.

    HiGHS spends the bulk of a solve in native code outside the GIL, so
    contiguous shards of constrained stars genuinely overlap.  Closed-form
    stars never touch the pool (they are one vectorised pass), and small
    constrained batches fall through to the inner stacked back-end — the
    sharded driver is safe to select unconditionally.
    """

    name = "sharded"

    def __init__(
        self,
        inner: Optional[StackedStarLPBackend] = None,
        min_shard_stars: int = DEFAULT_MIN_SHARD_STARS,
        max_workers: Optional[int] = None,
    ) -> None:
        self.inner = inner if inner is not None else StackedStarLPBackend()
        self.min_shard_stars = max(1, int(min_shard_stars))
        # None tracks the machine (min(8, cpu_count)); an explicit value
        # forces the shard ceiling regardless of detected cores.
        self.max_workers = None if max_workers is None else max(1, int(max_workers))

    @property
    def stats(self) -> Dict[str, int]:
        return self.inner.stats

    def reset_stats(self) -> None:
        self.inner.reset_stats()

    def describe(self) -> dict:
        info = super().describe()
        info["inner"] = self.inner.describe()
        return info

    def _num_shards(self, num_constrained: int) -> int:
        workers = self.max_workers
        if workers is None:
            workers = min(8, os.cpu_count() or 1)
        return max(1, min(workers, num_constrained // self.min_shard_stars))

    def bounds_many(self, stars: Sequence) -> Tuple[np.ndarray, np.ndarray]:
        if not stars:
            return np.zeros((0, 0)), np.zeros((0, 0))
        constrained = [i for i, star in enumerate(stars) if _needs_lp(star)]
        num_shards = self._num_shards(len(constrained))
        if num_shards == 1:
            return self.inner.bounds_many(stars)
        lows, highs = self._output_arrays(stars)
        closed = [i for i, star in enumerate(stars) if not _needs_lp(star)]
        if closed:
            self.inner._closed_form(stars, closed, lows, highs)
        # Shards write disjoint row sets of the shared output matrices.
        bounds = np.linspace(0, len(constrained), num_shards + 1, dtype=np.int64)
        pool = _shared_pool()
        futures = [
            pool.submit(
                self.inner._lp_bounds,
                stars,
                constrained[int(bounds[s]) : int(bounds[s + 1])],
                lows,
                highs,
            )
            for s in range(num_shards)
        ]
        for future in futures:
            future.result()
        return lows, highs


BackendChoice = Union[None, str, StarLPBackend]

_BACKENDS: Dict[str, Callable[[], StarLPBackend]] = {}
#: One shared instance per registry name (back-ends are stateless apart
#: from attribution counters, and ``sharded`` deliberately shares its pool).
_INSTANCES: Dict[str, StarLPBackend] = {}


def register_star_lp_backend(name: str, factory: Callable[[], StarLPBackend]) -> None:
    """Register (or replace) a star-LP back-end under ``name``.

    ``factory`` is a zero-argument callable returning a
    :class:`StarLPBackend`; it is invoked once and the instance reused for
    every star set that selects ``name``.
    """
    if not isinstance(name, str) or not name:
        raise ConfigurationError("star-LP back-end name must be a non-empty string")
    if not callable(factory):
        raise ConfigurationError(f"star-LP back-end '{name}' factory is not callable")
    _BACKENDS[name] = factory
    _INSTANCES.pop(name, None)


def unregister_star_lp_backend(name: str) -> None:
    """Remove a back-end from the registry (built-ins may be re-registered)."""
    _BACKENDS.pop(name, None)
    _INSTANCES.pop(name, None)


def star_lp_backends() -> Dict[str, Callable[[], StarLPBackend]]:
    """Mapping of registered back-end name to factory (a copy)."""
    return dict(_BACKENDS)


def resolve_star_lp_backend(choice: BackendChoice = None) -> StarLPBackend:
    """Turn a back-end choice into a ready back-end instance.

    ``choice`` may be a back-end instance (returned as-is), a registry
    name, or ``None`` — which reads ``REPRO_STAR_LP_BACKEND`` and falls
    back to the ``stacked`` default.  Unknown names raise a
    :class:`~repro.exceptions.ConfigurationError` (a ``ValueError``)
    listing the valid :func:`star_lp_backends` keys.
    """
    if isinstance(choice, StarLPBackend):
        return choice
    name = choice
    if name is None:
        name = os.environ.get(STAR_LP_BACKEND_ENV, "").strip() or DEFAULT_STAR_LP_BACKEND
    if name not in _BACKENDS:
        valid = ", ".join(sorted(_BACKENDS))
        raise ConfigurationError(
            f"unknown star-LP backend '{name}'; valid backends are: {valid}"
        )
    instance = _INSTANCES.get(name)
    if instance is None:
        instance = _BACKENDS[name]()
        if not isinstance(instance, StarLPBackend):
            raise ConfigurationError(
                f"star-LP backend '{name}' factory returned "
                f"{type(instance).__name__}, not a StarLPBackend"
            )
        _INSTANCES[name] = instance
    return instance


register_star_lp_backend("loop", LoopStarLPBackend)
register_star_lp_backend("stacked", StackedStarLPBackend)
register_star_lp_backend("sharded", ShardedStarLPBackend)
