"""Unified sound bound propagation through a trained network.

This module implements the computational core of Definition 1 of the paper:
given a training input ``v_tr``, a perturbation layer ``k_p``, a perturbation
budget ``Δ`` and a monitored layer ``k``, compute per-neuron bounds
``(l_j, u_j)`` that are guaranteed to contain ``G^{k_p+1 ↪ k}_j(v̆)`` for every
``v̆`` obtained by perturbing ``G^{k_p}(v_tr)`` by at most ``Δ`` in every
dimension.

Three back-ends are provided, matching the three techniques cited by the
paper: ``"box"`` (interval bound propagation [3]), ``"zonotope"`` [4] and
``"star"`` [5].  All three are sound; they differ only in tightness and cost.

Two API levels are offered:

* single-sample — :func:`propagate_bounds` / :func:`perturbation_bounds`
  take one :class:`~repro.symbolic.interval.Box` / input vector;
* batched — :func:`propagate_bounds_batch` / :func:`perturbation_bounds_batch`
  take ``(N, d)`` bound/input matrices and push the whole batch through the
  abstract transformers at once (see :mod:`repro.symbolic.batched`).  The
  box and zonotope back-ends vectorise fully; the star back-end walks all
  rows in lockstep, layer by layer, so every bound query of the batch goes
  through one :mod:`~repro.symbolic.star_lp` back-end call — closed form
  (zero LPs) while predicate polytopes are still hypercubes, block-stacked
  sparse HiGHS solves (optionally thread-sharded) once ReLUs go unstable.
  The seed one-row-at-a-time star walk is kept as :func:`_star_bounds_loop`,
  the reference the batched path is pinned against.

The batched level is what robust monitor construction uses
(:func:`repro.monitors.perturbation.collect_bound_arrays`); row ``i`` of a
batched result agrees with the single-sample result of row ``i``.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

import numpy as np

from ..exceptions import ConfigurationError, LayerIndexError, PropagationError
from ..nn.activations import ReLU
from ..nn.layers import ActivationLayer, Dense, Dropout, Flatten, Scale
from ..nn.network import Sequential
from .batched import BatchedBox, BatchedZonotope
from .interval import Box
from .star import StarSet
from .star_lp import resolve_star_lp_backend
from .zonotope import Zonotope

__all__ = [
    "PROPAGATION_METHODS",
    "propagate_box",
    "propagate_zonotope",
    "propagate_star",
    "propagate_bounds",
    "propagate_bounds_batch",
    "perturbation_bounds",
    "perturbation_bounds_batch",
    "propagation_backends",
]

PROPAGATION_METHODS = ("box", "zonotope", "star")

#: Element budget for one batched-zonotope generator tensor.  The batch is
#: split so that ``rows_per_chunk * num_symbols * dimension`` stays under
#: this (~64 MB of float64), bounding peak memory on wide input layers where
#: a whole training set at once would allocate O(N·d²) dense generators.
ZONOTOPE_CHUNK_ELEMENTS = 8_000_000


def _check_slice(network: Sequential, from_layer: int, to_layer: int) -> None:
    if not 0 <= from_layer <= network.num_layers:
        raise LayerIndexError(f"from_layer {from_layer} outside network")
    if not 1 <= to_layer <= network.num_layers:
        raise LayerIndexError(f"to_layer {to_layer} outside network")
    if from_layer >= to_layer:
        raise LayerIndexError(
            f"from_layer ({from_layer}) must be strictly before to_layer ({to_layer})"
        )


def propagate_box(
    network: Sequential, box: Box, from_layer: int, to_layer: int
) -> Box:
    """Interval bound propagation from layer ``from_layer`` to ``to_layer``."""
    _check_slice(network, from_layer, to_layer)
    low, high = network.propagate_box(box.low, box.high, from_layer, to_layer)
    return Box(low, high)


def _propagate_geometric(
    network: Sequential,
    abstract,
    from_layer: int,
    to_layer: int,
) -> "Zonotope | StarSet":
    """Shared layer walk for the zonotope and star back-ends."""
    for layer in network.layers[from_layer:to_layer]:
        if isinstance(layer, Dense):
            abstract = abstract.affine(layer.weights, layer.bias)
        elif isinstance(layer, ActivationLayer):
            if isinstance(layer.activation, ReLU):
                abstract = abstract.relu()
            else:
                abstract = abstract.elementwise_monotone(
                    layer.activation.bound_transform
                )
        elif isinstance(layer, (Dropout, Flatten)):
            # Inference-time identity layers.
            continue
        elif isinstance(layer, Scale):
            dimension = abstract.dimension
            weights = np.eye(dimension) * layer.scale
            bias = np.full(dimension, layer.shift)
            abstract = abstract.affine(weights, bias)
        else:
            raise PropagationError(
                f"layer type {type(layer).__name__} has no geometric propagation rule"
            )
    return abstract


def propagate_zonotope(
    network: Sequential, box: Box, from_layer: int, to_layer: int
) -> Zonotope:
    """Zonotope propagation from layer ``from_layer`` to ``to_layer``."""
    _check_slice(network, from_layer, to_layer)
    return _propagate_geometric(network, Zonotope.from_box(box), from_layer, to_layer)


def propagate_star(
    network: Sequential,
    box: Box,
    from_layer: int,
    to_layer: int,
    star_lp_backend=None,
) -> StarSet:
    """Star-set propagation from layer ``from_layer`` to ``to_layer``.

    ``star_lp_backend`` selects the star-LP bound back-end
    (:func:`repro.symbolic.star_lp.star_lp_backends`) answering the walk's
    bound queries; ``None`` defers to ``REPRO_STAR_LP_BACKEND`` / the
    ``stacked`` default.
    """
    _check_slice(network, from_layer, to_layer)
    return _propagate_geometric(
        network, StarSet.from_box(box, lp_backend=star_lp_backend), from_layer, to_layer
    )


def _check_method(method: str) -> None:
    """Validate a back-end name with an actionable error message.

    Raises :class:`~repro.exceptions.ConfigurationError` (a ``ValueError``)
    listing the valid :func:`propagation_backends` keys, so a typo like
    ``"zontope"`` fails with the available choices instead of a bare lookup
    error deep inside the dispatch.
    """
    if method not in PROPAGATION_METHODS:
        valid = ", ".join(sorted(propagation_backends()))
        raise ConfigurationError(
            f"unknown propagation method '{method}'; valid backends are: {valid}"
        )


def _propagate_zonotope_batch_walk(
    network: Sequential,
    batched_box: BatchedBox,
    from_layer: int,
    to_layer: int,
) -> BatchedZonotope:
    """Batched layer walk of the zonotope back-end (mirrors the single walk)."""
    abstract = BatchedZonotope.from_batched_box(batched_box)
    for layer in network.layers[from_layer:to_layer]:
        if isinstance(layer, Dense):
            abstract = abstract.affine(layer.weights, layer.bias)
        elif isinstance(layer, ActivationLayer):
            if isinstance(layer.activation, ReLU):
                abstract = abstract.relu()
            else:
                abstract = abstract.elementwise_monotone(
                    layer.activation.bound_transform
                )
        elif isinstance(layer, (Dropout, Flatten)):
            continue
        elif isinstance(layer, Scale):
            abstract = abstract.scale_shift(layer.scale, layer.shift)
        else:
            raise PropagationError(
                f"layer type {type(layer).__name__} has no geometric propagation rule"
            )
    return abstract


def _zonotope_rows_per_chunk(network: Sequential, from_layer: int, to_layer: int) -> int:
    """Rows per chunk keeping one generator tensor under the element budget.

    The symbol count grows along the walk: the input embedding contributes up
    to ``d_in`` symbols and every ReLU layer up to its width, so the peak
    per-row tensor is about ``total_symbols * widest_layer`` elements.
    """
    input_dim = network.layer_output_dim(from_layer)
    total_symbols = input_dim
    widest = input_dim
    for index in range(from_layer, to_layer):
        width = network.layer_output_dim(index + 1)
        widest = max(widest, width)
        layer = network.layers[index]
        if isinstance(layer, ActivationLayer) and isinstance(layer.activation, ReLU):
            total_symbols += width
    per_row = max(1, total_symbols * widest)
    return max(1, ZONOTOPE_CHUNK_ELEMENTS // per_row)


def _propagate_zonotope_batch(
    network: Sequential,
    batched_box: BatchedBox,
    from_layer: int,
    to_layer: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """Zonotope bounds for a batch of boxes, memory-bounded via row chunks.

    Rows are independent, so chunking changes peak memory only — row ``i`` of
    the result is the same (up to generator-slot layout, which bound sums are
    insensitive to) whatever the chunk size.
    """
    batch = batched_box.batch_size
    rows = _zonotope_rows_per_chunk(network, from_layer, to_layer)
    if rows >= batch:
        return _propagate_zonotope_batch_walk(
            network, batched_box, from_layer, to_layer
        ).bounds()
    out_dim = network.layer_output_dim(to_layer)
    lows = np.empty((batch, out_dim))
    highs = np.empty((batch, out_dim))
    for start in range(0, batch, rows):
        stop = min(start + rows, batch)
        chunk = BatchedBox(batched_box.lows[start:stop], batched_box.highs[start:stop])
        lows[start:stop], highs[start:stop] = _propagate_zonotope_batch_walk(
            network, chunk, from_layer, to_layer
        ).bounds()
    return lows, highs


def _propagate_star_batch(
    network: Sequential,
    batched_box: BatchedBox,
    from_layer: int,
    to_layer: int,
    star_lp_backend=None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Star back-end over a batch of boxes, walked in lockstep.

    Each row owns its predicate polytope, but the *bound queries* of all
    rows at a given layer are independent LPs — so the walk keeps every
    row's star alive, advances them layer by layer together, and answers
    each layer's batch of bound queries with one
    :meth:`~repro.symbolic.star_lp.StarLPBackend.bounds_many` call: closed
    form while the polytopes are hypercubes, chunked block-stacked HiGHS
    programs once they are constrained.  Row ``i`` of the result matches
    the single-sample star propagation of row ``i`` (exactly on the
    closed-form tier, to LP tolerance on the stacked tier).
    """
    backend = resolve_star_lp_backend(star_lp_backend)
    stars = [
        StarSet.from_box(Box(*batched_box.row(index)), lp_backend=backend)
        for index in range(batched_box.batch_size)
    ]
    for layer in network.layers[from_layer:to_layer]:
        if isinstance(layer, Dense):
            stars = [star.affine(layer.weights, layer.bias) for star in stars]
        elif isinstance(layer, ActivationLayer):
            lows, highs = backend.bounds_many(stars)
            if isinstance(layer.activation, ReLU):
                stars = [
                    star.relu(bounds=(lows[index], highs[index]))
                    for index, star in enumerate(stars)
                ]
            else:
                transform = layer.activation.bound_transform
                stars = [
                    star.elementwise_monotone(
                        transform, bounds=(lows[index], highs[index])
                    )
                    for index, star in enumerate(stars)
                ]
        elif isinstance(layer, (Dropout, Flatten)):
            continue
        elif isinstance(layer, Scale):
            dimension = stars[0].dimension if stars else 0
            weights = np.eye(dimension) * layer.scale
            bias = np.full(dimension, layer.shift)
            stars = [star.affine(weights, bias) for star in stars]
        else:
            raise PropagationError(
                f"layer type {type(layer).__name__} has no geometric propagation rule"
            )
    return backend.bounds_many(stars)


def _star_bounds_loop(
    network: Sequential,
    batched_box: BatchedBox,
    from_layer: int,
    to_layer: int,
    star_lp_backend="loop",
) -> Tuple[np.ndarray, np.ndarray]:
    """Seed reference: the star back-end walked one row at a time.

    Each row runs its own full symbolic walk and answers its bound queries
    through ``star_lp_backend`` — by default the ``loop`` back-end, i.e. the
    original ``2·d``-LPs-per-query path.  Kept as the ground truth the
    lockstep :func:`_propagate_star_batch` is pinned against (exact on
    hypercube stars when given a closed-form-capable back-end, LP-tolerance
    otherwise) and as the baseline the E15 benchmark measures against.
    """
    backend = resolve_star_lp_backend(star_lp_backend)
    batch = batched_box.batch_size
    out_dim = network.layer_output_dim(to_layer)
    lows = np.empty((batch, out_dim))
    highs = np.empty((batch, out_dim))
    for index in range(batch):
        low, high = batched_box.row(index)
        star = _propagate_geometric(
            network,
            StarSet.from_box(Box(low, high), lp_backend=backend),
            from_layer,
            to_layer,
        )
        lows[index], highs[index] = star.bounds()
    return lows, highs


def propagate_bounds_batch(
    network: Sequential,
    lows: np.ndarray,
    highs: np.ndarray,
    from_layer: int,
    to_layer: int,
    method: str = "box",
    star_lp_backend=None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Sound per-neuron bounds at ``to_layer`` for a whole batch of boxes.

    ``lows`` / ``highs`` are ``(N, d)`` matrices describing one input box per
    row; the result is the ``(N, d_k)`` pair of bound matrices whose row ``i``
    is the axis-aligned hull of propagating box ``i`` with the chosen
    back-end — identical (box) or tolerance-close (zonotope, star) to the
    single-sample :func:`propagate_bounds` of that row.  ``star_lp_backend``
    selects the star-LP bound back-end of the ``star`` method (ignored by
    the others); ``None`` defers to ``REPRO_STAR_LP_BACKEND``.
    """
    _check_method(method)
    _check_slice(network, from_layer, to_layer)
    batched_box = BatchedBox(lows, highs)
    expected = network.layer_output_dim(from_layer)
    if batched_box.dimension != expected:
        raise ConfigurationError(
            f"batched bounds have dimension {batched_box.dimension}, layer "
            f"{from_layer} produces {expected}"
        )
    if method == "box":
        return network.propagate_box_batch(
            batched_box.lows, batched_box.highs, from_layer, to_layer
        )
    if method == "zonotope":
        return _propagate_zonotope_batch(network, batched_box, from_layer, to_layer)
    return _propagate_star_batch(
        network, batched_box, from_layer, to_layer, star_lp_backend=star_lp_backend
    )


def propagate_bounds(
    network: Sequential,
    box: Box,
    from_layer: int,
    to_layer: int,
    method: str = "box",
    star_lp_backend=None,
) -> Box:
    """Sound per-neuron bounds at ``to_layer`` for any point of ``box``.

    Returns the axis-aligned bounding box of the chosen abstraction; the
    result is always a sound over-approximation regardless of the back-end.
    """
    _check_method(method)
    if method == "box":
        return propagate_box(network, box, from_layer, to_layer)
    if method == "zonotope":
        return propagate_zonotope(network, box, from_layer, to_layer).to_box()
    return propagate_star(
        network, box, from_layer, to_layer, star_lp_backend=star_lp_backend
    ).to_box()


def perturbation_bounds(
    network: Sequential,
    input_vector: np.ndarray,
    monitored_layer: int,
    perturbation_layer: int = 0,
    delta: float = 0.0,
    method: str = "box",
    star_lp_backend=None,
) -> Box:
    """Compute the perturbation estimate ``pe^G_k(v, k_p, Δ)`` of Definition 1.

    The feature vector at ``perturbation_layer`` is computed concretely, a
    box of radius ``delta`` is placed around it, and the box is propagated
    soundly to ``monitored_layer``.  With ``delta = 0`` the result is the
    degenerate box containing exactly ``G^k(v)`` (up to the over-approximation
    of the chosen back-end, which is exact for a point input).
    """
    if delta < 0:
        raise ConfigurationError("perturbation bound delta must be non-negative")
    if not 0 <= perturbation_layer < monitored_layer:
        raise ConfigurationError(
            "perturbation layer must satisfy 0 <= k_p < k (monitored layer)"
        )
    anchor = network.forward_to(perturbation_layer, np.asarray(input_vector))
    box = Box.from_center(np.asarray(anchor, dtype=np.float64).reshape(-1), delta)
    if delta == 0.0:
        # Point propagation: evaluate concretely, avoiding any relaxation.
        value = network.forward_from_to(
            perturbation_layer + 1, monitored_layer, box.center
        )
        return Box.from_point(value)
    return propagate_bounds(
        network,
        box,
        perturbation_layer,
        monitored_layer,
        method=method,
        star_lp_backend=star_lp_backend,
    )


def perturbation_bounds_batch(
    network: Sequential,
    inputs: np.ndarray,
    monitored_layer: int,
    perturbation_layer: int = 0,
    delta: float = 0.0,
    method: str = "box",
    anchors: "np.ndarray | None" = None,
    star_lp_backend=None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Batched Definition-1 perturbation estimates: one row per input.

    The anchor feature vectors at ``perturbation_layer`` are computed with a
    single batched forward pass (or taken from ``anchors``, e.g. an engine
    activation cache — this is what lets a sweep over ``delta`` values pay
    for the concrete pass once), a box of radius ``delta`` is placed around
    every row, and the whole batch of boxes is propagated soundly to
    ``monitored_layer``.  Returns ``(lows, highs)`` matrices of shape
    ``(N, d_k)``; with ``delta = 0`` both equal the concrete features.
    """
    _check_method(method)
    if delta < 0:
        raise ConfigurationError("perturbation bound delta must be non-negative")
    if not 0 <= perturbation_layer < monitored_layer:
        raise ConfigurationError(
            "perturbation layer must satisfy 0 <= k_p < k (monitored layer)"
        )
    inputs = np.atleast_2d(np.asarray(inputs, dtype=np.float64))
    if anchors is None:
        anchors = network.forward_to(perturbation_layer, inputs)
    anchors = np.atleast_2d(np.asarray(anchors, dtype=np.float64))
    if anchors.shape[0] != inputs.shape[0]:
        raise ConfigurationError(
            f"anchors have {anchors.shape[0]} rows for {inputs.shape[0]} inputs"
        )
    if delta == 0.0:
        # Point propagation: evaluate concretely, avoiding any relaxation.
        values = np.atleast_2d(
            network.forward_from_to(perturbation_layer + 1, monitored_layer, anchors)
        )
        return values, np.array(values, copy=True)
    return propagate_bounds_batch(
        network,
        anchors - delta,
        anchors + delta,
        perturbation_layer,
        monitored_layer,
        method=method,
        star_lp_backend=star_lp_backend,
    )


def propagation_backends() -> Dict[str, Callable]:
    """Return a mapping of back-end name to propagation callable."""
    return {
        "box": propagate_box,
        "zonotope": propagate_zonotope,
        "star": propagate_star,
    }
