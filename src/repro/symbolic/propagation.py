"""Unified sound bound propagation through a trained network.

This module implements the computational core of Definition 1 of the paper:
given a training input ``v_tr``, a perturbation layer ``k_p``, a perturbation
budget ``Δ`` and a monitored layer ``k``, compute per-neuron bounds
``(l_j, u_j)`` that are guaranteed to contain ``G^{k_p+1 ↪ k}_j(v̆)`` for every
``v̆`` obtained by perturbing ``G^{k_p}(v_tr)`` by at most ``Δ`` in every
dimension.

Three back-ends are provided, matching the three techniques cited by the
paper: ``"box"`` (interval bound propagation [3]), ``"zonotope"`` [4] and
``"star"`` [5].  All three are sound; they differ only in tightness and cost.
"""

from __future__ import annotations

from typing import Callable, Dict, Union

import numpy as np

from ..exceptions import ConfigurationError, LayerIndexError, PropagationError
from ..nn.activations import ReLU
from ..nn.layers import ActivationLayer, Dense, Dropout, Flatten, Scale
from ..nn.network import Sequential
from .interval import Box
from .star import StarSet
from .zonotope import Zonotope

__all__ = [
    "PROPAGATION_METHODS",
    "propagate_box",
    "propagate_zonotope",
    "propagate_star",
    "propagate_bounds",
    "perturbation_bounds",
]

PROPAGATION_METHODS = ("box", "zonotope", "star")


def _check_slice(network: Sequential, from_layer: int, to_layer: int) -> None:
    if not 0 <= from_layer <= network.num_layers:
        raise LayerIndexError(f"from_layer {from_layer} outside network")
    if not 1 <= to_layer <= network.num_layers:
        raise LayerIndexError(f"to_layer {to_layer} outside network")
    if from_layer >= to_layer:
        raise LayerIndexError(
            f"from_layer ({from_layer}) must be strictly before to_layer ({to_layer})"
        )


def propagate_box(
    network: Sequential, box: Box, from_layer: int, to_layer: int
) -> Box:
    """Interval bound propagation from layer ``from_layer`` to ``to_layer``."""
    _check_slice(network, from_layer, to_layer)
    low, high = network.propagate_box(box.low, box.high, from_layer, to_layer)
    return Box(low, high)


def _propagate_geometric(
    network: Sequential,
    abstract,
    from_layer: int,
    to_layer: int,
) -> "Zonotope | StarSet":
    """Shared layer walk for the zonotope and star back-ends."""
    for layer in network.layers[from_layer:to_layer]:
        if isinstance(layer, Dense):
            abstract = abstract.affine(layer.weights, layer.bias)
        elif isinstance(layer, ActivationLayer):
            if isinstance(layer.activation, ReLU):
                abstract = abstract.relu()
            else:
                abstract = abstract.elementwise_monotone(
                    layer.activation.bound_transform
                )
        elif isinstance(layer, (Dropout, Flatten)):
            # Inference-time identity layers.
            continue
        elif isinstance(layer, Scale):
            dimension = abstract.dimension
            weights = np.eye(dimension) * layer.scale
            bias = np.full(dimension, layer.shift)
            abstract = abstract.affine(weights, bias)
        else:
            raise PropagationError(
                f"layer type {type(layer).__name__} has no geometric propagation rule"
            )
    return abstract


def propagate_zonotope(
    network: Sequential, box: Box, from_layer: int, to_layer: int
) -> Zonotope:
    """Zonotope propagation from layer ``from_layer`` to ``to_layer``."""
    _check_slice(network, from_layer, to_layer)
    return _propagate_geometric(network, Zonotope.from_box(box), from_layer, to_layer)


def propagate_star(
    network: Sequential, box: Box, from_layer: int, to_layer: int
) -> StarSet:
    """Star-set propagation from layer ``from_layer`` to ``to_layer``."""
    _check_slice(network, from_layer, to_layer)
    return _propagate_geometric(network, StarSet.from_box(box), from_layer, to_layer)


def propagate_bounds(
    network: Sequential,
    box: Box,
    from_layer: int,
    to_layer: int,
    method: str = "box",
) -> Box:
    """Sound per-neuron bounds at ``to_layer`` for any point of ``box``.

    Returns the axis-aligned bounding box of the chosen abstraction; the
    result is always a sound over-approximation regardless of the back-end.
    """
    if method not in PROPAGATION_METHODS:
        raise ConfigurationError(
            f"unknown propagation method '{method}'; choose one of "
            f"{PROPAGATION_METHODS}"
        )
    if method == "box":
        return propagate_box(network, box, from_layer, to_layer)
    if method == "zonotope":
        return propagate_zonotope(network, box, from_layer, to_layer).to_box()
    return propagate_star(network, box, from_layer, to_layer).to_box()


def perturbation_bounds(
    network: Sequential,
    input_vector: np.ndarray,
    monitored_layer: int,
    perturbation_layer: int = 0,
    delta: float = 0.0,
    method: str = "box",
) -> Box:
    """Compute the perturbation estimate ``pe^G_k(v, k_p, Δ)`` of Definition 1.

    The feature vector at ``perturbation_layer`` is computed concretely, a
    box of radius ``delta`` is placed around it, and the box is propagated
    soundly to ``monitored_layer``.  With ``delta = 0`` the result is the
    degenerate box containing exactly ``G^k(v)`` (up to the over-approximation
    of the chosen back-end, which is exact for a point input).
    """
    if delta < 0:
        raise ConfigurationError("perturbation bound delta must be non-negative")
    if not 0 <= perturbation_layer < monitored_layer:
        raise ConfigurationError(
            "perturbation layer must satisfy 0 <= k_p < k (monitored layer)"
        )
    anchor = network.forward_to(perturbation_layer, np.asarray(input_vector))
    box = Box.from_center(np.asarray(anchor, dtype=np.float64).reshape(-1), delta)
    if delta == 0.0:
        # Point propagation: evaluate concretely, avoiding any relaxation.
        value = network.forward_from_to(
            perturbation_layer + 1, monitored_layer, box.center
        )
        return Box.from_point(value)
    return propagate_bounds(
        network, box, perturbation_layer, monitored_layer, method=method
    )


def propagation_backends() -> Dict[str, Callable]:
    """Return a mapping of back-end name to propagation callable."""
    return {
        "box": propagate_box,
        "zonotope": propagate_zonotope,
        "star": propagate_star,
    }
