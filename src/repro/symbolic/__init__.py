"""Sound symbolic reasoning substrate (abstract interpretation domains).

Provides the three bound-propagation back-ends the paper cites for computing
the perturbation estimate of Definition 1: axis-aligned boxes (interval bound
propagation), zonotopes and star sets, together with a unified
:func:`~repro.symbolic.propagation.propagate_bounds` /
:func:`~repro.symbolic.propagation.perturbation_bounds` API.
"""

from .interval import Box
from .propagation import (
    PROPAGATION_METHODS,
    perturbation_bounds,
    propagate_bounds,
    propagate_box,
    propagate_star,
    propagate_zonotope,
    propagation_backends,
)
from .star import StarSet
from .zonotope import Zonotope

__all__ = [
    "Box",
    "Zonotope",
    "StarSet",
    "PROPAGATION_METHODS",
    "propagate_bounds",
    "propagate_box",
    "propagate_zonotope",
    "propagate_star",
    "perturbation_bounds",
    "propagation_backends",
]
