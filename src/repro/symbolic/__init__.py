"""Sound symbolic reasoning substrate (abstract interpretation domains).

Provides the three bound-propagation back-ends the paper cites for computing
the perturbation estimate of Definition 1: axis-aligned boxes (interval bound
propagation), zonotopes and star sets, together with a unified
:func:`~repro.symbolic.propagation.propagate_bounds` /
:func:`~repro.symbolic.propagation.perturbation_bounds` API.

Every back-end also has a batched form carrying a leading batch axis
(:class:`~repro.symbolic.batched.BatchedBox`,
:class:`~repro.symbolic.batched.BatchedZonotope`, and the lockstep star
walk) behind :func:`~repro.symbolic.propagation.propagate_bounds_batch` /
:func:`~repro.symbolic.propagation.perturbation_bounds_batch` — the code
path robust monitor fits use to estimate whole training sets in one
propagation.

The star back-end's LP bound queries are themselves pluggable behind
:func:`~repro.symbolic.star_lp.star_lp_backends` (closed-form hypercube
tier, block-stacked sparse HiGHS solves, thread-sharded solves), selected
per call, per :class:`~repro.symbolic.star.StarSet`, or via the
``REPRO_STAR_LP_BACKEND`` environment variable.
"""

from .batched import BatchedBox, BatchedZonotope
from .interval import Box
from .propagation import (
    PROPAGATION_METHODS,
    perturbation_bounds,
    perturbation_bounds_batch,
    propagate_bounds,
    propagate_bounds_batch,
    propagate_box,
    propagate_star,
    propagate_zonotope,
    propagation_backends,
)
from .star import StarSet
from .star_lp import (
    DEFAULT_STAR_LP_BACKEND,
    STAR_LP_BACKEND_ENV,
    LoopStarLPBackend,
    ShardedStarLPBackend,
    StackedStarLPBackend,
    StarLPBackend,
    register_star_lp_backend,
    resolve_star_lp_backend,
    star_lp_backends,
    unregister_star_lp_backend,
)
from .zonotope import Zonotope

__all__ = [
    "Box",
    "BatchedBox",
    "BatchedZonotope",
    "Zonotope",
    "StarSet",
    "PROPAGATION_METHODS",
    "propagate_bounds",
    "propagate_bounds_batch",
    "propagate_box",
    "propagate_zonotope",
    "propagate_star",
    "perturbation_bounds",
    "perturbation_bounds_batch",
    "propagation_backends",
    "StarLPBackend",
    "LoopStarLPBackend",
    "StackedStarLPBackend",
    "ShardedStarLPBackend",
    "STAR_LP_BACKEND_ENV",
    "DEFAULT_STAR_LP_BACKEND",
    "star_lp_backends",
    "register_star_lp_backend",
    "unregister_star_lp_backend",
    "resolve_star_lp_backend",
]
