"""Batched abstract domains: whole training sets through one propagation.

The single-sample domains (:class:`~repro.symbolic.interval.Box`,
:class:`~repro.symbolic.zonotope.Zonotope`) compute the Definition-1
perturbation estimate of *one* training input.  Robust monitor construction
needs the estimate of *every* training input, and pushing them through the
back-ends one at a time was the last major per-sample Python loop in the
code base.  This module carries a leading batch axis through the abstract
transformers instead:

* :class:`BatchedBox` — ``(N, d)`` lower/upper matrices; affine and monotone
  transformers are the same midpoint/radius arithmetic as the single-sample
  box, evaluated as one matrix product per layer.
* :class:`BatchedZonotope` — ``(N, d)`` centers and ``(N, m, d)`` generators;
  affine layers are one reshaped matrix product, and the DeepZ ReLU
  relaxation is evaluated with elementwise masks over the whole batch.

Both domains are sound row-for-row: row ``i`` of a batched propagation is a
(floating-point-tolerance) match of propagating row ``i`` alone, which
``tests/symbolic/test_batched.py`` pins per layer type and per domain.

Star sets keep one polytope per row (each row owns its own LP), so the
batched star path in :mod:`repro.symbolic.propagation` advances all rows'
stars in lockstep layer by layer and answers each layer's bound queries
with a single :meth:`~repro.symbolic.star_lp.StarLPBackend.bounds_many`
call — closed-form for hypercube-domain stars, block-stacked sparse HiGHS
programs for constrained ones (see :mod:`repro.symbolic.star_lp`).

Batch semantics of the ReLU relaxation
--------------------------------------
Different rows generally have different unstable neurons, so a row-exact
batched zonotope would need ragged generator counts.  Instead each ReLU layer
appends one fresh generator *slot* per dimension for every row; rows where a
neuron is stable carry a zero generator in that slot.  Zero generators do not
change the concretisation (they add ``0.0`` to every bound sum), so soundness
and tightness are unaffected, and all-zero slots are pruned after each layer
to bound memory.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..exceptions import ShapeError

__all__ = ["BatchedBox", "BatchedZonotope"]


def _as_bound_matrix(values: np.ndarray, name: str) -> np.ndarray:
    matrix = np.asarray(values, dtype=np.float64)
    if matrix.ndim == 1:
        matrix = matrix[None, :]
    if matrix.ndim != 2:
        raise ShapeError(f"{name} must be a (batch, dimension) matrix, got {matrix.shape}")
    return matrix


class BatchedBox:
    """``N`` axis-aligned boxes stored as ``(N, d)`` lower/upper matrices.

    Row ``i`` is the box ``{x : lows[i] <= x <= highs[i]}``.  Every transformer
    acts on all rows at once; the arithmetic per row is identical to
    :class:`~repro.symbolic.interval.Box`, so the batched result matches the
    single-sample result row-for-row.
    """

    def __init__(self, lows: np.ndarray, highs: np.ndarray) -> None:
        lows = _as_bound_matrix(lows, "lows")
        highs = _as_bound_matrix(highs, "highs")
        if lows.shape != highs.shape:
            raise ShapeError(
                f"batched box bounds disagree on shape: {lows.shape} vs {highs.shape}"
            )
        if np.any(lows > highs + 1e-12):
            raise ShapeError("batched box lower bound exceeds upper bound")
        self.lows = lows
        self.highs = np.maximum(lows, highs)

    # ------------------------------------------------------------------
    @classmethod
    def from_centers(cls, centers: np.ndarray, radius: "float | np.ndarray") -> "BatchedBox":
        """Boxes centred at the rows of ``centers`` with common ``radius``."""
        centers = _as_bound_matrix(centers, "centers")
        radius_arr = np.broadcast_to(np.asarray(radius, dtype=np.float64), centers.shape)
        if np.any(radius_arr < 0):
            raise ShapeError("box radius must be non-negative")
        return cls(centers - radius_arr, centers + radius_arr)

    @classmethod
    def from_points(cls, points: np.ndarray) -> "BatchedBox":
        """Degenerate boxes: one point per row."""
        points = _as_bound_matrix(points, "points")
        return cls(points, np.array(points, copy=True))

    # ------------------------------------------------------------------
    @property
    def batch_size(self) -> int:
        return int(self.lows.shape[0])

    @property
    def dimension(self) -> int:
        return int(self.lows.shape[1])

    @property
    def centers(self) -> np.ndarray:
        return (self.lows + self.highs) / 2.0

    @property
    def radii(self) -> np.ndarray:
        return (self.highs - self.lows) / 2.0

    def bounds(self) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(lows, highs)`` copies as plain ``(N, d)`` arrays."""
        return np.array(self.lows, copy=True), np.array(self.highs, copy=True)

    def row(self, index: int) -> Tuple[np.ndarray, np.ndarray]:
        """The ``(low, high)`` pair of one batch row."""
        return self.lows[index], self.highs[index]

    # ------------------------------------------------------------------
    def affine(self, weights: np.ndarray, bias: np.ndarray) -> "BatchedBox":
        """Exact image of every row under ``x -> x @ weights + bias``."""
        weights = np.asarray(weights, dtype=np.float64)
        bias = np.asarray(bias, dtype=np.float64)
        if weights.shape[0] != self.dimension:
            raise ShapeError(
                f"weight rows {weights.shape[0]} do not match box dimension "
                f"{self.dimension}"
            )
        centers = self.centers @ weights + bias
        radii = self.radii @ np.abs(weights)
        return BatchedBox(centers - radii, centers + radii)

    def elementwise_monotone(self, bound_transform) -> "BatchedBox":
        """Image under an elementwise monotone non-decreasing function."""
        new_lows, new_highs = bound_transform(self.lows, self.highs)
        return BatchedBox(new_lows, new_highs)

    def scale_shift(self, scale: float, shift: float) -> "BatchedBox":
        """Image under the fixed rescaling ``x * scale + shift``."""
        a = self.lows * scale + shift
        b = self.highs * scale + shift
        return BatchedBox(np.minimum(a, b), np.maximum(a, b))

    # ------------------------------------------------------------------
    def contains_points(self, points: np.ndarray, tolerance: float = 1e-9) -> np.ndarray:
        """Row-wise membership: does ``points[i]`` lie inside box ``i``?"""
        points = _as_bound_matrix(points, "points")
        if points.shape != self.lows.shape:
            raise ShapeError(
                f"points shape {points.shape} does not match batched box shape "
                f"{self.lows.shape}"
            )
        inside_low = points >= self.lows - tolerance
        inside_high = points <= self.highs + tolerance
        return np.all(inside_low & inside_high, axis=1)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BatchedBox(batch={self.batch_size}, dimension={self.dimension})"


class BatchedZonotope:
    """``N`` zonotopes sharing one generator layout.

    ``centers`` has shape ``(N, d)``; ``generators`` has shape ``(N, m, d)``
    so ``generators[i]`` are the ``m`` noise-symbol rows of batch row ``i``.
    All rows share the symbol count ``m`` — rows that do not need a symbol
    carry a zero row in that slot, which leaves their concretisation
    unchanged.
    """

    def __init__(self, centers: np.ndarray, generators: np.ndarray) -> None:
        centers = _as_bound_matrix(centers, "centers")
        generators = np.asarray(generators, dtype=np.float64)
        if generators.ndim != 3 or generators.shape[0] != centers.shape[0] or (
            generators.shape[2] != centers.shape[1]
        ):
            raise ShapeError(
                f"generators must have shape ({centers.shape[0]}, m, "
                f"{centers.shape[1]}), got {generators.shape}"
            )
        self.centers = centers
        self.generators = generators

    # ------------------------------------------------------------------
    @classmethod
    def from_batched_box(cls, box: BatchedBox) -> "BatchedZonotope":
        """One axis-aligned noise symbol per dimension, per row.

        Slots are allocated only for dimensions that are non-degenerate in at
        least one row, so the generator tensor is ``(N, n_active, d)`` rather
        than a dense ``(N, d, d)`` block.
        """
        radii = box.radii
        batch, dimension = radii.shape
        active = np.nonzero(np.any(radii > 0, axis=0))[0]
        generators = np.zeros((batch, active.shape[0], dimension))
        generators[:, np.arange(active.shape[0]), active] = radii[:, active]
        return cls(box.centers, generators)

    # ------------------------------------------------------------------
    @property
    def batch_size(self) -> int:
        return int(self.centers.shape[0])

    @property
    def dimension(self) -> int:
        return int(self.centers.shape[1])

    @property
    def num_generators(self) -> int:
        return int(self.generators.shape[1])

    def radii(self) -> np.ndarray:
        """Per-row, per-dimension half-width of the bounding boxes."""
        if self.num_generators == 0:
            return np.zeros((self.batch_size, self.dimension))
        return np.abs(self.generators).sum(axis=1)

    def bounds(self) -> Tuple[np.ndarray, np.ndarray]:
        """Tightest ``(N, d)`` bounding-box matrices of every row."""
        radii = self.radii()
        return self.centers - radii, self.centers + radii

    def to_batched_box(self) -> BatchedBox:
        lows, highs = self.bounds()
        return BatchedBox(lows, highs)

    def _prune_zero_slots(self) -> "BatchedZonotope":
        """Drop generator slots that are zero in every row (no-op on bounds)."""
        if self.num_generators == 0:
            return self
        live = np.any(self.generators != 0.0, axis=(0, 2))
        if np.all(live):
            return self
        return BatchedZonotope(self.centers, self.generators[:, live, :])

    # ------------------------------------------------------------------
    def affine(self, weights: np.ndarray, bias: np.ndarray) -> "BatchedZonotope":
        """Exact image of every row under ``x -> x @ weights + bias``."""
        weights = np.asarray(weights, dtype=np.float64)
        bias = np.asarray(bias, dtype=np.float64)
        if weights.shape[0] != self.dimension:
            raise ShapeError(
                f"weight rows {weights.shape[0]} do not match zonotope dimension "
                f"{self.dimension}"
            )
        centers = self.centers @ weights + bias
        batch, symbols, _ = self.generators.shape
        flat = self.generators.reshape(batch * symbols, self.dimension) @ weights
        generators = flat.reshape(batch, symbols, weights.shape[1])
        return BatchedZonotope(centers, generators)

    def relu(self) -> "BatchedZonotope":
        """DeepZ minimal-area ReLU relaxation over the whole batch.

        Per row and neuron, with pre-activation bounds ``[l, u]``:

        * ``l >= 0`` — identity (slope 1, offset 0, no fresh noise);
        * ``u <= 0`` — exactly zero (slope 0, offset 0);
        * ``l < 0 < u`` — affine form ``λ·x + μ`` with ``λ = u/(u−l)``,
          ``μ = −λ·l/2`` plus a fresh noise symbol of magnitude ``μ``.

        Each neuron contributes one fresh generator slot shared by all rows;
        rows where the neuron is stable put a zero in the slot.
        """
        lows, highs = self.bounds()
        unstable = (lows < 0.0) & (highs > 0.0)
        negative = highs <= 0.0

        slope = np.ones_like(self.centers)
        slope[negative] = 0.0
        # Guard the division on stable neurons; the mask overwrites them.
        denominator = np.where(unstable, highs - lows, 1.0)
        slope = np.where(unstable, highs / denominator, slope)
        mu = np.where(unstable, -slope * lows / 2.0, 0.0)

        centers = slope * self.centers + mu
        generators = self.generators * slope[:, None, :]

        # Fresh slots only for neurons unstable in at least one row: the
        # tensor stays (N, n_unstable, d) instead of a dense (N, d, d) block.
        unstable_columns = np.nonzero(np.any(unstable, axis=0))[0]
        if unstable_columns.size:
            batch, dimension = self.centers.shape
            fresh = np.zeros((batch, unstable_columns.shape[0], dimension))
            fresh[:, np.arange(unstable_columns.shape[0]), unstable_columns] = mu[
                :, unstable_columns
            ]
            generators = np.concatenate([generators, fresh], axis=1)
        return BatchedZonotope(centers, generators)._prune_zero_slots()

    def elementwise_monotone(self, bound_transform) -> "BatchedZonotope":
        """Sound relaxation of a monotone activation via the box hull."""
        lows, highs = self.bounds()
        new_lows, new_highs = bound_transform(lows, highs)
        return BatchedZonotope.from_batched_box(BatchedBox(new_lows, new_highs))

    def scale_shift(self, scale: float, shift: float) -> "BatchedZonotope":
        """Image under the fixed rescaling ``x * scale + shift``."""
        return BatchedZonotope(self.centers * scale + shift, self.generators * scale)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BatchedZonotope(batch={self.batch_size}, dimension={self.dimension}, "
            f"generators={self.num_generators})"
        )
