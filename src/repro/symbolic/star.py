"""Star-set abstract domain with LP-based bound queries.

A (generalised) star set is

    S = { c + V @ alpha  :  C @ alpha <= d }

where ``c`` is the centre, the rows of ``V`` are basis vectors (one per
predicate variable ``alpha_i``) and ``C alpha <= d`` is a polyhedral
constraint on the predicate variables (Tran et al., FM 2019 — reference [5]
of the paper).  Star sets propagate *exactly* through affine layers, and the
per-dimension bounds needed by the monitor construction are linear programs
over the predicate polytope.  How those LPs are answered is pluggable
(:mod:`repro.symbolic.star_lp`): while the polytope is still the default
hypercube the bounds have an exact closed form (no LP at all), and
genuinely constrained stars batch their ``2·d`` objectives into
block-stacked sparse HiGHS solves instead of one ``scipy.optimize.linprog``
call per dimension.

ReLU layers are handled with the sound single-star over-approximation (the
triangle relaxation applied per neuron, introducing one fresh predicate
variable per unstable neuron).  Exact ReLU splitting would produce a set of
stars; the over-approximating variant keeps the cost linear in the number of
neurons, which is what the runtime-monitor construction needs.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np
from scipy.optimize import linprog

from ..exceptions import PropagationError, ShapeError
from .interval import Box
from .star_lp import resolve_star_lp_backend

__all__ = ["StarSet"]


class StarSet:
    """A star set ``{center + basis.T @ alpha : constraints_A @ alpha <= constraints_b}``.

    ``basis`` has shape ``(num_predicates, dimension)`` (one row per predicate
    variable, mirroring the zonotope generator layout).

    ``lp_backend`` selects the star-LP bound back-end
    (:func:`repro.symbolic.star_lp.star_lp_backends`) answering this star's
    bound queries: a registry name, a ready back-end instance, or ``None``
    for the ``REPRO_STAR_LP_BACKEND`` / ``stacked`` default.  The choice is
    inherited by every star derived through :meth:`affine`, :meth:`relu` and
    :meth:`elementwise_monotone`.

    ``hypercube_domain`` asserts that the supplied constraints are the
    default hypercube ``alpha ∈ [-1, 1]^m`` — the flag that unlocks the
    closed-form (zero-LP) bound tier.  It is tracked automatically by the
    constructors and transformers; only pass it when rebuilding a star from
    parts you know came from the default domain.
    """

    def __init__(
        self,
        center: np.ndarray,
        basis: np.ndarray,
        constraints_a: Optional[np.ndarray] = None,
        constraints_b: Optional[np.ndarray] = None,
        lp_backend=None,
        hypercube_domain: Optional[bool] = None,
    ) -> None:
        center = np.asarray(center, dtype=np.float64).reshape(-1)
        basis = np.asarray(basis, dtype=np.float64)
        if basis.ndim != 2 or basis.shape[1] != center.shape[0]:
            raise ShapeError(
                f"basis must have shape (m, {center.shape[0]}), got {basis.shape}"
            )
        num_predicates = basis.shape[0]
        if constraints_a is None:
            # Default predicate domain: the unit hyper-cube alpha in [-1, 1]^m.
            constraints_a = np.vstack([np.eye(num_predicates), -np.eye(num_predicates)])
            constraints_b = np.ones(2 * num_predicates)
            hypercube_domain = True
        constraints_a = np.asarray(constraints_a, dtype=np.float64)
        constraints_b = np.asarray(constraints_b, dtype=np.float64).reshape(-1)
        if constraints_a.shape[1] != num_predicates:
            raise ShapeError(
                "constraint matrix columns must equal the number of predicates"
            )
        if constraints_a.shape[0] != constraints_b.shape[0]:
            raise ShapeError("constraint matrix and vector disagree on row count")
        self.center = center
        self.basis = basis
        self.constraints_a = constraints_a
        self.constraints_b = constraints_b
        self.lp_backend = lp_backend
        self._hypercube_domain = bool(hypercube_domain)

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_box(cls, box: Box, lp_backend=None) -> "StarSet":
        """Star whose predicate variables are the box's noise directions."""
        radius = box.radius
        nonzero = np.nonzero(radius > 0)[0]
        basis = np.zeros((nonzero.shape[0], box.dimension))
        basis[np.arange(nonzero.shape[0]), nonzero] = radius[nonzero]
        return cls(box.center, basis, lp_backend=lp_backend)

    @classmethod
    def from_point(cls, point: np.ndarray, lp_backend=None) -> "StarSet":
        point = np.asarray(point, dtype=np.float64).reshape(-1)
        return cls(point, np.zeros((0, point.shape[0])), lp_backend=lp_backend)

    # ------------------------------------------------------------------
    # geometry
    # ------------------------------------------------------------------
    @property
    def dimension(self) -> int:
        return int(self.center.shape[0])

    @property
    def num_predicates(self) -> int:
        return int(self.basis.shape[0])

    @property
    def is_hypercube_domain(self) -> bool:
        """True while the predicate polytope is the default ``[-1, 1]^m`` box.

        Hypercube stars answer bound queries in closed form — no LP — and
        are trivially non-empty.  The flag survives :meth:`affine` (which
        never touches the polytope) and :meth:`relu` on fully stable layers;
        the first unstable ReLU clears it.
        """
        return self._hypercube_domain

    def _dimension_bound(self, direction: np.ndarray, maximise: bool) -> float:
        """LP bound of ``direction . x`` over the star (x = c + V^T alpha)."""
        offset = float(direction @ self.center)
        if self.num_predicates == 0:
            return offset
        coefficients = self.basis @ direction
        sign = -1.0 if maximise else 1.0
        result = linprog(
            sign * coefficients,
            A_ub=self.constraints_a,
            b_ub=self.constraints_b,
            bounds=[(None, None)] * self.num_predicates,
            method="highs",
        )
        if not result.success:
            raise PropagationError(
                f"LP bound query failed: {result.message} (status {result.status})"
            )
        value = float(coefficients @ result.x)
        return offset + value

    def bounds(self) -> Tuple[np.ndarray, np.ndarray]:
        """Exact per-dimension lower/upper bounds through the LP back-end.

        Dispatches to this star's :mod:`~repro.symbolic.star_lp` back-end:
        closed form (zero LPs) on a hypercube predicate domain, block-stacked
        HiGHS solves otherwise.  Semantically identical to the seed
        per-dimension walk kept in :meth:`_bounds_loop`.
        """
        return resolve_star_lp_backend(self.lp_backend).bounds(self)

    def _bounds_loop(self) -> Tuple[np.ndarray, np.ndarray]:
        """Seed reference: one dense LP per dimension per sense (``2·d`` calls).

        This is the original bound walk, preserved verbatim as the ground
        truth the registered back-ends are pinned against (and as the body
        of the ``loop`` back-end).
        """
        low = np.empty(self.dimension)
        high = np.empty(self.dimension)
        for j in range(self.dimension):
            direction = np.zeros(self.dimension)
            direction[j] = 1.0
            low[j] = self._dimension_bound(direction, maximise=False)
            high[j] = self._dimension_bound(direction, maximise=True)
        return low, high

    def to_box(self) -> Box:
        low, high = self.bounds()
        return Box(low, high)

    def is_empty(self) -> bool:
        """True when the predicate polytope has no feasible point.

        A hypercube predicate domain always contains the origin, so the
        common case answers without entering the LP solver at all.
        """
        if self.num_predicates == 0 or self._hypercube_domain:
            return False
        result = linprog(
            np.zeros(self.num_predicates),
            A_ub=self.constraints_a,
            b_ub=self.constraints_b,
            bounds=[(None, None)] * self.num_predicates,
            method="highs",
        )
        return not result.success

    # ------------------------------------------------------------------
    # transformations
    # ------------------------------------------------------------------
    def affine(self, weights: np.ndarray, bias: np.ndarray) -> "StarSet":
        """Exact image under ``x -> x @ weights + bias``."""
        weights = np.asarray(weights, dtype=np.float64)
        bias = np.asarray(bias, dtype=np.float64)
        if weights.shape[0] != self.dimension:
            raise ShapeError(
                f"weight rows {weights.shape[0]} do not match star dimension "
                f"{self.dimension}"
            )
        return StarSet(
            self.center @ weights + bias,
            self.basis @ weights,
            self.constraints_a,
            self.constraints_b,
            lp_backend=self.lp_backend,
            hypercube_domain=self._hypercube_domain,
        )

    def relu(self, bounds: Optional[Tuple[np.ndarray, np.ndarray]] = None) -> "StarSet":
        """Sound single-star over-approximation of elementwise ReLU.

        Stable neurons keep their affine form (identity or zero).  Each
        unstable neuron ``j`` (``l_j < 0 < u_j``) gets a fresh predicate
        variable ``beta_j`` constrained by the triangle relaxation

            beta_j >= 0,   beta_j >= x_j,   beta_j <= u_j (x_j - l_j)/(u_j - l_j)

        and the output dimension ``j`` becomes exactly ``beta_j``.

        ``bounds`` optionally supplies precomputed pre-activation bounds of
        this star — the batched lockstep walk passes them so the bound
        queries of a whole batch share one stacked solve instead of one
        back-end dispatch per row.
        """
        low, high = bounds if bounds is not None else self.bounds()
        center = np.array(self.center, copy=True)
        basis = np.array(self.basis, copy=True)
        constraints_a = self.constraints_a
        constraints_b = self.constraints_b
        num_predicates = self.num_predicates

        unstable = [j for j in range(self.dimension) if low[j] < 0.0 < high[j]]
        negative = [j for j in range(self.dimension) if high[j] <= 0.0]

        for j in negative:
            center[j] = 0.0
            if basis.shape[0]:
                basis[:, j] = 0.0

        if not unstable:
            return StarSet(
                center,
                basis,
                constraints_a,
                constraints_b,
                lp_backend=self.lp_backend,
                hypercube_domain=self._hypercube_domain,
            )

        fresh_count = len(unstable)
        # Extend existing constraints with columns for the fresh predicates.
        extended_a = np.hstack(
            [constraints_a, np.zeros((constraints_a.shape[0], fresh_count))]
        )
        extra_rows = []
        extra_b = []
        new_basis = np.vstack([basis, np.zeros((fresh_count, self.dimension))])
        for idx, j in enumerate(unstable):
            l, u = low[j], high[j]
            slope = u / (u - l)
            beta_column = num_predicates + idx
            x_coefficients = basis[:, j] if basis.shape[0] else np.zeros(0)
            x_offset = center[j]

            # beta_j >= 0   ->  -beta_j <= 0
            row = np.zeros(num_predicates + fresh_count)
            row[beta_column] = -1.0
            extra_rows.append(row)
            extra_b.append(0.0)

            # beta_j >= x_j ->  x_j - beta_j <= 0
            row = np.zeros(num_predicates + fresh_count)
            row[:num_predicates] = x_coefficients
            row[beta_column] = -1.0
            extra_rows.append(row)
            extra_b.append(-x_offset)

            # beta_j <= slope * (x_j - l) -> beta_j - slope*x_j <= -slope*l
            row = np.zeros(num_predicates + fresh_count)
            row[:num_predicates] = -slope * x_coefficients
            row[beta_column] = 1.0
            extra_rows.append(row)
            extra_b.append(slope * (x_offset - l))

            # Output dimension j is exactly beta_j.
            center[j] = 0.0
            new_basis[:num_predicates, j] = 0.0
            new_basis[beta_column, j] = 1.0

        constraints_a = np.vstack([extended_a, np.array(extra_rows)])
        constraints_b = np.concatenate([constraints_b, np.array(extra_b)])
        # Triangle-relaxation rows leave the default hypercube domain.
        return StarSet(
            center, new_basis, constraints_a, constraints_b, lp_backend=self.lp_backend
        )

    def elementwise_monotone(
        self, bound_transform, bounds: Optional[Tuple[np.ndarray, np.ndarray]] = None
    ) -> "StarSet":
        """Sound relaxation of a general monotone activation via the box hull.

        ``bounds`` optionally supplies precomputed bounds of this star (see
        :meth:`relu`).
        """
        low, high = bounds if bounds is not None else self.bounds()
        new_low, new_high = bound_transform(low, high)
        return StarSet.from_box(Box(new_low, new_high), lp_backend=self.lp_backend)

    # ------------------------------------------------------------------
    def sample(
        self, count: int, rng: Optional[np.random.Generator] = None, max_tries: int = 200
    ) -> np.ndarray:
        """Rejection-sample points from the star (used only by tests)."""
        if rng is None:
            rng = np.random.default_rng()
        if self.num_predicates == 0:
            return np.tile(self.center, (count, 1))
        # Sample alpha from the bounding box of the predicate polytope.
        alpha_low = np.full(self.num_predicates, -1.0)
        alpha_high = np.full(self.num_predicates, 1.0)
        accepted = []
        tries = 0
        while len(accepted) < count and tries < max_tries:
            tries += 1
            candidates = rng.uniform(
                alpha_low, alpha_high, size=(count * 4, self.num_predicates)
            )
            feasible = np.all(
                candidates @ self.constraints_a.T <= self.constraints_b[None, :] + 1e-9,
                axis=1,
            )
            accepted.extend(candidates[feasible][: count - len(accepted)])
        if not accepted:
            return np.tile(self.center, (count, 1))
        alphas = np.array(accepted)
        return self.center[None, :] + alphas @ self.basis

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"StarSet(dimension={self.dimension}, predicates={self.num_predicates}, "
            f"constraints={self.constraints_a.shape[0]})"
        )
