"""Axis-aligned box (interval vector) abstract domain.

The box domain is the abstraction the paper's implementation uses for the
perturbation estimate (interval bound propagation, reference [3]).  A box is
stored as a pair of numpy vectors ``(low, high)`` and supports the interval
arithmetic needed to propagate soundly through affine layers and monotone
activations, plus the set operations used by tests and monitors (membership,
join, intersection, sampling).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Tuple

import numpy as np

from ..exceptions import ShapeError

__all__ = ["Box"]


@dataclass(frozen=True)
class Box:
    """An axis-aligned hyper-rectangle ``{x : low <= x <= high}``."""

    low: np.ndarray
    high: np.ndarray

    def __post_init__(self) -> None:
        low = np.asarray(self.low, dtype=np.float64).reshape(-1)
        high = np.asarray(self.high, dtype=np.float64).reshape(-1)
        if low.shape != high.shape:
            raise ShapeError(
                f"box bounds disagree on dimension: {low.shape} vs {high.shape}"
            )
        if np.any(low > high + 1e-12):
            raise ShapeError("box lower bound exceeds upper bound")
        object.__setattr__(self, "low", low)
        object.__setattr__(self, "high", np.maximum(low, high))

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_center(cls, center: np.ndarray, radius: "float | np.ndarray") -> "Box":
        """Box centred at ``center`` with (scalar or per-dim) ``radius``."""
        center = np.asarray(center, dtype=np.float64).reshape(-1)
        radius_arr = np.broadcast_to(
            np.asarray(radius, dtype=np.float64), center.shape
        ).astype(np.float64)
        if np.any(radius_arr < 0):
            raise ShapeError("box radius must be non-negative")
        return cls(center - radius_arr, center + radius_arr)

    @classmethod
    def from_point(cls, point: np.ndarray) -> "Box":
        """Degenerate box containing a single point."""
        return cls.from_center(point, 0.0)

    @classmethod
    def hull_of_points(cls, points: np.ndarray) -> "Box":
        """Smallest box containing every row of ``points``."""
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        return cls(points.min(axis=0), points.max(axis=0))

    # ------------------------------------------------------------------
    # geometry
    # ------------------------------------------------------------------
    @property
    def dimension(self) -> int:
        return int(self.low.shape[0])

    @property
    def center(self) -> np.ndarray:
        return (self.low + self.high) / 2.0

    @property
    def radius(self) -> np.ndarray:
        return (self.high - self.low) / 2.0

    @property
    def widths(self) -> np.ndarray:
        return self.high - self.low

    def width_sum(self) -> float:
        """Total width (L1 size) — a scalar precision measure used in benches."""
        return float(np.sum(self.widths))

    def max_width(self) -> float:
        return float(np.max(self.widths)) if self.dimension else 0.0

    def is_degenerate(self, tolerance: float = 0.0) -> bool:
        """True when every dimension has width at most ``tolerance``."""
        return bool(np.all(self.widths <= tolerance))

    # ------------------------------------------------------------------
    # set operations
    # ------------------------------------------------------------------
    def contains(self, point: np.ndarray, tolerance: float = 1e-9) -> bool:
        """True when ``point`` lies inside the box up to ``tolerance``."""
        point = np.asarray(point, dtype=np.float64).reshape(-1)
        if point.shape != self.low.shape:
            raise ShapeError(
                f"point dimension {point.shape} does not match box dimension "
                f"{self.low.shape}"
            )
        return bool(
            np.all(point >= self.low - tolerance) and np.all(point <= self.high + tolerance)
        )

    def contains_box(self, other: "Box", tolerance: float = 1e-9) -> bool:
        """True when ``other`` is entirely inside this box."""
        return bool(
            np.all(other.low >= self.low - tolerance)
            and np.all(other.high <= self.high + tolerance)
        )

    def join(self, other: "Box") -> "Box":
        """Smallest box containing both boxes (the lattice join)."""
        if other.dimension != self.dimension:
            raise ShapeError("cannot join boxes of different dimensions")
        return Box(np.minimum(self.low, other.low), np.maximum(self.high, other.high))

    def intersect(self, other: "Box") -> Optional["Box"]:
        """Intersection of two boxes, or ``None`` when they are disjoint."""
        if other.dimension != self.dimension:
            raise ShapeError("cannot intersect boxes of different dimensions")
        low = np.maximum(self.low, other.low)
        high = np.minimum(self.high, other.high)
        if np.any(low > high):
            return None
        return Box(low, high)

    def widen(self, amount: "float | np.ndarray") -> "Box":
        """Enlarge the box by ``amount`` on every side."""
        amount_arr = np.broadcast_to(
            np.asarray(amount, dtype=np.float64), self.low.shape
        )
        if np.any(amount_arr < 0):
            raise ShapeError("widening amount must be non-negative")
        return Box(self.low - amount_arr, self.high + amount_arr)

    # ------------------------------------------------------------------
    # arithmetic (interval arithmetic on the whole vector)
    # ------------------------------------------------------------------
    def affine(self, weights: np.ndarray, bias: np.ndarray) -> "Box":
        """Exact box image under ``x -> x @ weights + bias``."""
        weights = np.asarray(weights, dtype=np.float64)
        bias = np.asarray(bias, dtype=np.float64)
        if weights.shape[0] != self.dimension:
            raise ShapeError(
                f"weight rows {weights.shape[0]} do not match box dimension "
                f"{self.dimension}"
            )
        center = self.center @ weights + bias
        radius = self.radius @ np.abs(weights)
        return Box(center - radius, center + radius)

    def elementwise_monotone(self, function) -> "Box":
        """Image under an elementwise monotone non-decreasing ``function``."""
        return Box(function(self.low), function(self.high))

    def scale(self, factor: float) -> "Box":
        """Image under multiplication by a scalar ``factor``."""
        a = self.low * factor
        b = self.high * factor
        return Box(np.minimum(a, b), np.maximum(a, b))

    def translate(self, offset: np.ndarray) -> "Box":
        """Image under translation by ``offset``."""
        offset = np.asarray(offset, dtype=np.float64).reshape(-1)
        return Box(self.low + offset, self.high + offset)

    # ------------------------------------------------------------------
    # sampling & iteration
    # ------------------------------------------------------------------
    def sample(
        self, count: int, rng: Optional[np.random.Generator] = None
    ) -> np.ndarray:
        """Draw ``count`` uniform samples from the box (rows of the result)."""
        if rng is None:
            rng = np.random.default_rng()
        return rng.uniform(self.low, self.high, size=(count, self.dimension))

    def corners(self, limit: int = 1024) -> Iterator[np.ndarray]:
        """Iterate over box corners (capped at ``limit`` to avoid blow-up)."""
        dims = self.dimension
        total = 1 << dims if dims < 31 else limit + 1
        emitted = 0
        for index in range(min(total, limit)):
            corner = np.where(
                [(index >> d) & 1 for d in range(dims)], self.high, self.low
            )
            yield corner.astype(np.float64)
            emitted += 1
            if emitted >= limit:
                return

    # ------------------------------------------------------------------
    def as_bounds(self) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(low, high)`` copies as plain arrays."""
        return np.array(self.low, copy=True), np.array(self.high, copy=True)

    def __iter__(self) -> Iterator[Tuple[float, float]]:
        for lo, hi in zip(self.low, self.high):
            yield float(lo), float(hi)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Box):
            return NotImplemented
        return bool(
            self.dimension == other.dimension
            and np.allclose(self.low, other.low)
            and np.allclose(self.high, other.high)
        )

    def __hash__(self) -> int:  # dataclass(frozen) would use array hash otherwise
        return hash((self.low.tobytes(), self.high.tobytes()))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.dimension <= 4:
            pairs = ", ".join(f"[{lo:.3g}, {hi:.3g}]" for lo, hi in self)
            return f"Box({pairs})"
        return f"Box(dimension={self.dimension}, width_sum={self.width_sum():.3g})"
