"""Zonotope abstract domain for sound neuron-bound estimation.

A zonotope is an affine image of a hyper-cube:

    Z = { c + G @ eps  :  eps in [-1, 1]^m }

where ``c`` is the centre vector and the rows of ``G`` (one per noise symbol)
are the generators.  Zonotopes propagate *exactly* through affine layers and
keep linear correlations between neurons, which makes the perturbation
estimate of Definition 1 considerably tighter than plain interval bound
propagation when layers share inputs.  ReLU layers are handled with the
standard DeepZ-style minimal-area relaxation (Gehr et al., AI2 / DeepZ); other
monotone activations fall back to a sound per-dimension interval relaxation.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..exceptions import ShapeError
from .interval import Box

__all__ = ["Zonotope"]


class Zonotope:
    """A zonotope ``{center + generators.T @ eps : eps ∈ [-1, 1]^m}``.

    ``generators`` is stored with shape ``(num_symbols, dimension)`` so that
    each row is one noise symbol's contribution.
    """

    def __init__(self, center: np.ndarray, generators: Optional[np.ndarray] = None):
        center = np.asarray(center, dtype=np.float64).reshape(-1)
        if generators is None:
            generators = np.zeros((0, center.shape[0]))
        generators = np.asarray(generators, dtype=np.float64)
        if generators.ndim != 2 or generators.shape[1] != center.shape[0]:
            raise ShapeError(
                f"generators must have shape (m, {center.shape[0]}), got "
                f"{generators.shape}"
            )
        self.center = center
        self.generators = generators

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_box(cls, box: Box) -> "Zonotope":
        """Zonotope with one noise symbol per non-degenerate dimension."""
        radius = box.radius
        nonzero = np.nonzero(radius > 0)[0]
        generators = np.zeros((nonzero.shape[0], box.dimension))
        for row, dim in enumerate(nonzero):
            generators[row, dim] = radius[dim]
        return cls(box.center, generators)

    @classmethod
    def from_point(cls, point: np.ndarray) -> "Zonotope":
        return cls(np.asarray(point, dtype=np.float64).reshape(-1))

    # ------------------------------------------------------------------
    # geometry
    # ------------------------------------------------------------------
    @property
    def dimension(self) -> int:
        return int(self.center.shape[0])

    @property
    def num_generators(self) -> int:
        return int(self.generators.shape[0])

    def radius(self) -> np.ndarray:
        """Per-dimension half-width of the bounding box."""
        if self.num_generators == 0:
            return np.zeros(self.dimension)
        return np.abs(self.generators).sum(axis=0)

    def to_box(self) -> Box:
        """Tightest axis-aligned bounding box of the zonotope."""
        radius = self.radius()
        return Box(self.center - radius, self.center + radius)

    def bounds(self) -> Tuple[np.ndarray, np.ndarray]:
        box = self.to_box()
        return box.low, box.high

    # ------------------------------------------------------------------
    # transformations
    # ------------------------------------------------------------------
    def affine(self, weights: np.ndarray, bias: np.ndarray) -> "Zonotope":
        """Exact image under ``x -> x @ weights + bias``."""
        weights = np.asarray(weights, dtype=np.float64)
        bias = np.asarray(bias, dtype=np.float64)
        if weights.shape[0] != self.dimension:
            raise ShapeError(
                f"weight rows {weights.shape[0]} do not match zonotope dimension "
                f"{self.dimension}"
            )
        return Zonotope(self.center @ weights + bias, self.generators @ weights)

    def translate(self, offset: np.ndarray) -> "Zonotope":
        offset = np.asarray(offset, dtype=np.float64).reshape(-1)
        return Zonotope(self.center + offset, self.generators)

    def relu(self) -> "Zonotope":
        """Sound over-approximation of elementwise ReLU (DeepZ relaxation).

        For a neuron with pre-activation bounds ``[l, u]``:

        * ``l >= 0`` — ReLU is the identity, nothing changes;
        * ``u <= 0`` — the output is exactly zero;
        * otherwise — the output is over-approximated by the affine form
          ``λ·x + μ + new_noise`` with ``λ = u/(u−l)``, ``μ = −λ·l/2`` and a
          fresh noise symbol of magnitude ``μ``, the minimal-area parallelogram
          enclosing the ReLU graph on ``[l, u]``.
        """
        low, high = self.bounds()
        dimension = self.dimension
        new_center = np.array(self.center, copy=True)
        new_generators = np.array(self.generators, copy=True)
        fresh_rows = []
        for j in range(dimension):
            l, u = low[j], high[j]
            if l >= 0.0:
                continue
            if u <= 0.0:
                new_center[j] = 0.0
                if new_generators.shape[0]:
                    new_generators[:, j] = 0.0
                continue
            slope = u / (u - l)
            mu = -slope * l / 2.0
            new_center[j] = slope * new_center[j] + mu
            if new_generators.shape[0]:
                new_generators[:, j] *= slope
            fresh = np.zeros(dimension)
            fresh[j] = mu
            fresh_rows.append(fresh)
        if fresh_rows:
            new_generators = np.vstack([new_generators, np.array(fresh_rows)])
        return Zonotope(new_center, new_generators)

    def elementwise_monotone(self, bound_transform) -> "Zonotope":
        """Sound relaxation of an arbitrary monotone elementwise function.

        The zonotope is reduced to its bounding box, the activation's
        ``bound_transform`` is applied, and the result is re-embedded as an
        axis-aligned zonotope.  Correlations are lost but soundness is kept,
        which is all the monitor construction requires.
        """
        low, high = self.bounds()
        new_low, new_high = bound_transform(low, high)
        return Zonotope.from_box(Box(new_low, new_high))

    def reduce_generators(self, max_generators: int) -> "Zonotope":
        """Order-reduction: merge the smallest generators into a box term.

        Keeps at most ``max_generators`` rows by replacing the generators with
        the smallest L1 norm by their interval hull (one axis-aligned
        generator per dimension).  The result is a sound enclosure of the
        original zonotope.
        """
        if max_generators < 0:
            raise ShapeError("max_generators must be non-negative")
        if self.num_generators <= max_generators:
            return self
        norms = np.abs(self.generators).sum(axis=1)
        order = np.argsort(norms)
        keep = max(max_generators - self.dimension, 0)
        if keep:
            kept_rows = self.generators[order[self.num_generators - keep :]]
        else:
            kept_rows = np.zeros((0, self.dimension))
        merged_rows = self.generators[order[: self.num_generators - keep]]
        box_radius = np.abs(merged_rows).sum(axis=0)
        box_generators = np.diag(box_radius)
        box_generators = box_generators[box_radius > 0]
        if box_generators.size:
            new_generators = np.vstack([kept_rows, box_generators])
        else:
            new_generators = kept_rows
        return Zonotope(self.center, new_generators)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def sample(
        self, count: int, rng: Optional[np.random.Generator] = None
    ) -> np.ndarray:
        """Sample points from the zonotope by sampling noise symbols."""
        if rng is None:
            rng = np.random.default_rng()
        eps = rng.uniform(-1.0, 1.0, size=(count, self.num_generators))
        return self.center[None, :] + eps @ self.generators

    def contains_in_bounding_box(self, point: np.ndarray, tolerance: float = 1e-9) -> bool:
        """Cheap membership test against the bounding box (sound necessary test)."""
        return self.to_box().contains(point, tolerance=tolerance)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Zonotope(dimension={self.dimension}, "
            f"generators={self.num_generators})"
        )
