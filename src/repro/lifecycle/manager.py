"""Lifecycle state machine: shadow → candidate → live → retired.

:class:`LifecycleManager` ties the lifecycle pieces together over one
serving front-end: the :class:`~repro.lifecycle.store.MonitorStore` holds
every version durably, the front-end serves exactly one live version per
name, and every transition is an explicit, validated state change:

* ``deploy``   — first go-live of a name (version archived, registered,
  live pointer set);
* ``stage``    — archive a candidate version and (on an in-process scorer)
  attach it as a :class:`~repro.lifecycle.shadow.ShadowScorer` trailing the
  live monitor: state **shadow**;
* ``clear``    — a shadowed candidate whose ledger passed the disagreement
  guard becomes a **candidate** (``promote`` does this implicitly);
* ``promote``  — atomic swap: the front-end is quiesced (every frame
  submitted before the promotion resolves against the old version), then
  the registry entry is replaced under its lock — each micro-batch scores
  entirely against old or new, with a monotone boundary in submission
  order (pinned by the hypothesis interleaving test).  Old live version:
  **retired**;
* ``rollback`` — move the live pointer back to an earlier stored version
  and swap it in the same way.  Never deletes anything;
* a shadowed candidate whose disagreement rate breaches its budget is
  **retired automatically** (never served); a post-promotion watch
  (``promote(watch_budget=...)``) keeps the *old* version scoring in shadow
  of the new live and rolls back automatically when the new live diverges
  beyond the budget on real traffic.

Front-end capability is duck-typed: an in-process
:class:`~repro.service.StreamingScorer` (has ``registry``) supports the
full machine including shadows; a :class:`~repro.serving.pool.WorkerPool`
(has ``reload_workers``) supports deploy/promote/rollback via artefact
swap + worker reload, but not shadow scoring — its members live in other
processes and cannot share the engine pass.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional

import numpy as np

from ..exceptions import LifecycleStateError
from .refit import incremental_refit
from .store import MonitorStore

__all__ = [
    "LifecycleManager",
    "STATE_SHADOW",
    "STATE_CANDIDATE",
    "STATE_LIVE",
    "STATE_RETIRED",
]

STATE_SHADOW = "shadow"
STATE_CANDIDATE = "candidate"
STATE_LIVE = "live"
STATE_RETIRED = "retired"


class _Staged:
    """One staged (not yet live) version of a managed name."""

    __slots__ = ("version", "monitor", "shadow_name", "state")

    def __init__(self, version, monitor, shadow_name, state):
        self.version = version
        self.monitor = monitor
        self.shadow_name = shadow_name
        self.state = state


class LifecycleManager:
    """Versioned promote/rollback control over one serving front-end.

    Parameters
    ----------
    scorer:
        The front-end: a :class:`~repro.service.StreamingScorer` (full
        machine) or :class:`~repro.serving.pool.WorkerPool`
        (deploy/promote/rollback only).
    store:
        The :class:`MonitorStore` (or a directory path to open one in).
    network:
        Host network for loading stored versions; defaults to the scorer's
        (required for a pool front-end only when loading monitors locally).
    """

    def __init__(self, scorer, store, network=None) -> None:
        self.scorer = scorer
        self.store = store if isinstance(store, MonitorStore) else MonitorStore(store)
        self.network = network if network is not None else getattr(
            scorer, "network", None
        )
        # RLock: a shadow-breach callback fires on the scorer's worker
        # thread and re-enters rollback()/retire paths while a control
        # thread may be reading status().
        self._lock = threading.RLock()
        #: name -> version -> lifecycle state (the full history this
        #: manager has driven; the store holds the durable part).
        self._states: Dict[str, Dict[int, str]] = {}
        self._staged: Dict[str, _Staged] = {}
        #: name -> shadow name of the post-promotion watch (old version
        #: trailing the new live for automatic rollback).
        self._watches: Dict[str, str] = {}

    # ------------------------------------------------------------------
    # front-end capability (duck-typed)
    # ------------------------------------------------------------------
    @property
    def _in_process(self) -> bool:
        return hasattr(self.scorer, "registry")

    @property
    def _pooled(self) -> bool:
        return hasattr(self.scorer, "reload_workers")

    def _require_shadow_capable(self, operation: str) -> None:
        if not self._in_process:
            raise LifecycleStateError(
                f"{operation} needs shadow scoring, which requires an "
                "in-process streaming scorer; a worker pool's members live "
                "in other processes and cannot share the engine pass "
                "(stage with shadow=False instead)"
            )

    def _swap_live(self, name: str, monitor, version: int, timeout: float, quiesce: bool) -> None:
        """Make ``version`` the served state of ``name`` on the front-end."""
        if self._in_process:
            if quiesce:
                # Promotion barrier: every frame submitted before this point
                # resolves against the old version before the swap happens.
                self.scorer.quiesce(timeout=timeout)
            self.scorer.replace(name, monitor, version=version)
        elif self._pooled:
            from ..serving.artifacts import update_monitor_artifact

            update_monitor_artifact(
                self.scorer.bundle, name, self.store.path(name, version)
            )
            if not self.scorer.reload_workers(timeout=timeout):
                raise LifecycleStateError(
                    f"worker pool failed to reload within {timeout}s while "
                    f"promoting '{name}' v{version}"
                )
        else:
            raise LifecycleStateError(
                "the front-end supports neither in-process replacement "
                "(registry) nor worker reload (reload_workers)"
            )

    def _set_state(self, name: str, version: int, state: str) -> None:
        self._states.setdefault(name, {})[int(version)] = state

    def _record_event(self, kind: str, name: str, **detail) -> None:
        stats = getattr(self.scorer, "stats", None)
        if stats is not None and hasattr(stats, "record_event"):
            stats.record_event(kind, name, **detail)

    # ------------------------------------------------------------------
    # transitions
    # ------------------------------------------------------------------
    def deploy(self, name: str, monitor=None, version: Optional[int] = None, metadata=None) -> int:
        """First go-live of ``name``; returns the live version.

        Either archives ``monitor`` as a new version or promotes an
        existing stored ``version``.  On an in-process scorer the monitor
        is registered; on a pool the bundle is expected to already serve it
        (the pool boots whole bundles, it cannot grow names mid-flight).
        """
        with self._lock:
            already_live = (
                name in self.store.names()
                and self.store.live_version(name) is not None
            )
            if already_live:
                raise LifecycleStateError(
                    f"monitor '{name}' is already deployed "
                    f"(live v{self.store.live_version(name)}); use stage/promote"
                )
            if monitor is not None:
                version = self.store.put(name, monitor, metadata=metadata)
            elif version is None:
                version = self.store.latest(name)
            else:
                self.store.fingerprint(name, version)  # validates existence
            if monitor is None:
                monitor = self.store.load(name, version, self.network)
            if self._in_process:
                if name in self.scorer.registry:
                    self.scorer.replace(name, monitor, version=version)
                else:
                    self.scorer.register(name, monitor, version=version)
            elif self._pooled and name not in self.scorer.monitor_names:
                raise LifecycleStateError(
                    f"cannot deploy new name '{name}' on a worker pool; the "
                    "bundle the workers booted from does not serve it"
                )
            self.store.set_live(name, version)
            self._set_state(name, version, STATE_LIVE)
            self._record_event("deploy", name, version=version)
            return int(version)

    def stage(
        self,
        name: str,
        candidate=None,
        version: Optional[int] = None,
        shadow: bool = True,
        disagreement_budget: Optional[float] = None,
        min_frames: int = 64,
        metadata=None,
    ) -> int:
        """Archive a candidate version of ``name``; returns its version.

        With ``shadow=True`` (in-process front-ends) the candidate scores
        every live micro-batch in shadow, accumulating an agreement ledger
        against the live monitor; a breach of ``disagreement_budget``
        retires it automatically before it is ever served.  With
        ``shadow=False`` it is staged as a plain candidate.
        """
        with self._lock:
            live = self.store.live_version(name) if name in self.store.names() else None
            if live is None:
                raise LifecycleStateError(
                    f"monitor '{name}' has no live version; deploy() first"
                )
            if name in self._staged:
                raise LifecycleStateError(
                    f"monitor '{name}' already has staged version "
                    f"v{self._staged[name].version}; promote or discard it first"
                )
            if candidate is not None:
                version = self.store.put(name, candidate, metadata=metadata)
            elif version is None:
                raise LifecycleStateError(
                    "stage() needs a candidate monitor or a stored version"
                )
            else:
                self.store.fingerprint(name, version)  # validates existence
                candidate = self.store.load(name, version, self.network)
            if shadow:
                self._require_shadow_capable(f"staging '{name}' with shadow scoring")
                shadow_name = f"{name}@shadow-v{version}"
                self.scorer.attach_shadow(
                    shadow_name,
                    candidate,
                    name,
                    disagreement_budget=disagreement_budget,
                    min_frames=min_frames,
                    on_breach=self._breach_handler(name, int(version)),
                )
                state = STATE_SHADOW
            else:
                shadow_name = None
                state = STATE_CANDIDATE
            self._staged[name] = _Staged(int(version), candidate, shadow_name, state)
            self._set_state(name, version, state)
            self._record_event("stage", name, version=version, shadow=shadow)
            return int(version)

    def _breach_handler(self, name: str, version: int):
        def on_breach(ledger) -> None:
            self._on_shadow_breach(name, version, ledger)

        return on_breach

    def _on_shadow_breach(self, name: str, version: int, ledger) -> None:
        """A shadow exceeded its disagreement budget (scorer worker thread).

        A *staged* candidate is retired before ever serving a frame.  A
        post-promotion *watch* (the old version trailing the new live)
        triggers automatic rollback — without quiescing: the callback runs
        on the scoring thread itself, which cannot wait for its own batch
        to resolve, and per-batch atomicity already comes from the
        registry-snapshot swap.
        """
        with self._lock:
            staged = self._staged.get(name)
            if staged is not None and staged.version == version:
                del self._staged[name]
                if staged.shadow_name is not None:
                    self.scorer.detach_shadow(staged.shadow_name)
                self._set_state(name, version, STATE_RETIRED)
                self._record_event(
                    "shadow_breach",
                    name,
                    version=version,
                    disagreement_rate=ledger.disagreement_rate(),
                )
                return
            if self._watches.get(name) is not None:
                self._record_event(
                    "watch_breach",
                    name,
                    version=version,
                    disagreement_rate=ledger.disagreement_rate(),
                )
                self.rollback(name, _quiesce=False)

    def clear(self, name: str) -> int:
        """Shadow → candidate: assert the staged shadow passed its guard."""
        with self._lock:
            staged = self._require_staged(name)
            if staged.state == STATE_SHADOW:
                self._guard_shadow(name, staged)
                self._promote_to_candidate(name, staged)
            return staged.version

    def _require_staged(self, name: str) -> _Staged:
        staged = self._staged.get(name)
        if staged is None:
            raise LifecycleStateError(
                f"monitor '{name}' has no staged version; stage() first"
            )
        return staged

    def _guard_shadow(self, name: str, staged: _Staged) -> None:
        shadow = self.scorer.registry.get(staged.shadow_name)
        if shadow is None:  # detached behind our back
            raise LifecycleStateError(
                f"staged shadow '{staged.shadow_name}' of '{name}' is gone"
            )
        report = shadow.ledger.snapshot()
        if report["breached"]:
            raise LifecycleStateError(
                f"cannot promote '{name}' v{staged.version}: its shadow "
                f"breached the disagreement budget "
                f"({report['disagreement_rate']:.3f} > "
                f"{report['disagreement_budget']})"
            )
        if report["frames"] < report["min_frames"]:
            raise LifecycleStateError(
                f"cannot promote '{name}' v{staged.version}: only "
                f"{report['frames']} shadow frame(s) observed, "
                f"{report['min_frames']} required (pass guard=False to force)"
            )

    def _promote_to_candidate(self, name: str, staged: _Staged) -> None:
        if staged.shadow_name is not None:
            self.scorer.detach_shadow(staged.shadow_name)
            staged.shadow_name = None
        staged.state = STATE_CANDIDATE
        self._set_state(name, staged.version, STATE_CANDIDATE)

    def promote(
        self,
        name: str,
        guard: bool = True,
        timeout: float = 10.0,
        watch_budget: Optional[float] = None,
        watch_frames: int = 64,
    ) -> int:
        """Make the staged version of ``name`` live; returns its version.

        ``guard=True`` requires a shadowed candidate to have observed its
        ``min_frames`` without breaching the disagreement budget.  The
        swap is atomic: the front-end quiesces (frames submitted before
        the promotion provably score against the old version), then the
        registry entry (or worker bundle) flips in one step.

        ``watch_budget`` keeps the *outgoing* version scoring in shadow of
        the new live; if post-promotion disagreement on real traffic
        breaches the budget, the manager rolls back automatically.
        """
        with self._lock:
            staged = self._require_staged(name)
            if staged.state == STATE_SHADOW:
                if guard:
                    self._guard_shadow(name, staged)
                self._promote_to_candidate(name, staged)
            old_version = self.store.live_version(name)
            old_monitor = None
            if watch_budget is not None:
                self._require_shadow_capable("promote(watch_budget=...)")
                old_monitor = self.scorer.registry.get(name)
            self._swap_live(
                name, staged.monitor, staged.version, timeout, quiesce=True
            )
            self.store.set_live(name, staged.version)
            del self._staged[name]
            if old_version is not None:
                self._set_state(name, old_version, STATE_RETIRED)
            self._set_state(name, staged.version, STATE_LIVE)
            if watch_budget is not None and old_monitor is not None:
                watch_name = f"{name}@watch-v{old_version}"
                self.scorer.attach_shadow(
                    watch_name,
                    old_monitor,
                    name,
                    disagreement_budget=watch_budget,
                    min_frames=watch_frames,
                    on_breach=self._breach_handler(name, int(staged.version)),
                )
                self._watches[name] = watch_name
            return staged.version

    def discard(self, name: str) -> int:
        """Retire a staged version without promoting it (manual reject)."""
        with self._lock:
            staged = self._require_staged(name)
            del self._staged[name]
            if staged.shadow_name is not None:
                self.scorer.detach_shadow(staged.shadow_name)
            self._set_state(name, staged.version, STATE_RETIRED)
            self._record_event("discard", name, version=staged.version)
            return staged.version

    def rollback(
        self,
        name: str,
        version: Optional[int] = None,
        timeout: float = 10.0,
        _quiesce: bool = True,
    ) -> int:
        """Move ``name`` back to an earlier stored version; returns it.

        The rolled-back-from version is retired, never deleted — its
        archive stays in the store for post-mortems.
        """
        with self._lock:
            old_live = self.store.live_version(name)
            watch_name = self._watches.pop(name, None)
            if watch_name is not None and self._in_process:
                # Drop the post-promotion watch first: after the rollback
                # the old version *is* live again and trailing it would
                # only re-measure perfect agreement (or re-fire a breach).
                try:
                    self.scorer.detach_shadow(watch_name)
                except LifecycleStateError:  # already detached
                    pass
            version = self.store.rollback(name, version)
            monitor = self.store.load(name, version, self.network)
            self._swap_live(name, monitor, version, timeout, quiesce=_quiesce)
            if old_live is not None:
                self._set_state(name, old_live, STATE_RETIRED)
            self._set_state(name, version, STATE_LIVE)
            self._record_event(
                "rollback", name, version=version, rolled_back_from=old_live
            )
            return int(version)

    # ------------------------------------------------------------------
    # refit convenience
    # ------------------------------------------------------------------
    def refit_and_stage(
        self, name: str, frames, shadow: bool = True, disagreement_budget: Optional[float] = None, min_frames: int = 64
    ) -> int:
        """Incrementally refit the live version with nominal ``frames`` and
        stage the result (in shadow by default); returns the new version.

        The live monitor is cloned through a format-2 round-trip and
        extended on the clone — the served monitor is never mutated, and
        the refit stays on the packed mirror (no BDD build).
        """
        with self._lock:
            live_version = self.store.live_version(name)
            if live_version is None:
                raise LifecycleStateError(
                    f"monitor '{name}' has no live version to refit"
                )
            live = self.store.load(name, live_version, self.network)
            refit = incremental_refit(live, frames, network=self.network)
            version = self.store.put(
                name,
                refit,
                metadata={
                    "refit_of": live_version,
                    "refit_frames": int(np.atleast_2d(frames).shape[0]),
                },
            )
            return self.stage(
                name,
                version=version,
                shadow=shadow,
                disagreement_budget=disagreement_budget,
                min_frames=min_frames,
            )

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def state(self, name: str, version: int) -> str:
        with self._lock:
            states = self._states.get(name)
            if states is None or int(version) not in states:
                raise LifecycleStateError(
                    f"lifecycle of '{name}' v{version} is not managed here"
                )
            return states[int(version)]

    def status(self) -> Dict[str, object]:
        """JSON-able snapshot of every managed name's lifecycle."""
        with self._lock:
            names: Dict[str, object] = {}
            managed = set(self._states) | set(self.store.names())
            for name in sorted(managed):
                entry: Dict[str, object] = {
                    "live": (
                        self.store.live_version(name)
                        if name in self.store.names()
                        else None
                    ),
                    "versions": {
                        version: state
                        for version, state in sorted(
                            self._states.get(name, {}).items()
                        )
                    },
                }
                staged = self._staged.get(name)
                if staged is not None:
                    entry["staged"] = {
                        "version": staged.version,
                        "state": staged.state,
                    }
                if name in self.store.names():
                    entry["stored_versions"] = self.store.versions(name)
                watch = self._watches.get(name)
                if watch is not None:
                    entry["watch"] = watch
                names[name] = entry
            return {
                "front_end": (
                    "streaming_scorer" if self._in_process
                    else "worker_pool" if self._pooled
                    else type(self.scorer).__name__
                ),
                "store": str(self.store.directory),
                "monitors": names,
            }

    def shadow_report(self, name: Optional[str] = None) -> Dict[str, object]:
        """Ledger snapshots of the attached shadows (staged and watches)."""
        self._require_shadow_capable("shadow_report()")
        reports: Dict[str, object] = {}
        for shadow_name in self.scorer.shadow_names():
            shadow = self.scorer.registry.get(shadow_name)
            if shadow is None:
                continue
            if name is not None and shadow.live_name != name:
                continue
            reports[shadow_name] = {
                "live": shadow.live_name,
                "candidate_class": type(shadow.candidate).__name__,
                "ledger": shadow.ledger.snapshot(),
            }
        return reports

    def staged_version(self, name: str) -> Optional[int]:
        with self._lock:
            staged = self._staged.get(name)
            return None if staged is None else staged.version

    def live_version(self, name: str) -> Optional[int]:
        return self.store.live_version(name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LifecycleManager(store={str(self.store.directory)!r}, "
            f"staged={sorted(self._staged)})"
        )
