"""Shadow scoring: observe a candidate monitor on live traffic, serve nothing.

Promoting a refit monitor on faith is how a lifecycle breaks a deployment:
the candidate was fitted offline, and the only evidence that matters is how
it behaves on the *live* distribution.  A :class:`ShadowScorer` wraps the
candidate and registers next to the live members: every live micro-batch is
scored through the same shared
:class:`~repro.runtime.engine.BatchScoringEngine` pass (the wrapper
delegates ``network``/``warn_batch_from_layer``, so the engine slices it the
cached activations like any other member), but its verdicts are diverted
into a :class:`ShadowLedger` — a per-frame confusion against the live
monitor it trails — and stripped from served results.  A shadow candidate is
*observed*, never served.

The ledger turns observation into a promotion/rollback signal: once at least
``min_frames`` frames have been compared, a disagreement rate above
``disagreement_budget`` fires ``on_breach`` exactly once.  The lifecycle
manager wires that callback to automatic rollback.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Callable, Dict, Optional

import numpy as np

from ..exceptions import ConfigurationError

__all__ = ["ShadowLedger", "ShadowScorer"]


class ShadowLedger:
    """Running confusion of a shadow candidate against its live monitor.

    Thread-safe (the scorer worker thread records while control threads
    snapshot).  Counts the 2x2 confusion per *frame*:

    * ``both_warn`` / ``both_accept`` — agreement;
    * ``shadow_only`` — the candidate warned where live accepted (the
      candidate is stricter there);
    * ``live_only`` — the candidate accepted where live warned (coverage the
      candidate would lose).

    Disagreement events (frame index + direction) are kept in a bounded
    window so a long-running shadow reports *recent* behaviour without
    unbounded growth.
    """

    def __init__(
        self,
        disagreement_budget: Optional[float] = None,
        min_frames: int = 64,
        on_breach: Optional[Callable[["ShadowLedger"], None]] = None,
        event_window: int = 256,
    ) -> None:
        if disagreement_budget is not None and not 0.0 <= disagreement_budget <= 1.0:
            raise ConfigurationError(
                "disagreement_budget must be a rate in [0, 1]"
            )
        if min_frames < 1:
            raise ConfigurationError("min_frames must be at least 1")
        self.disagreement_budget = disagreement_budget
        self.min_frames = int(min_frames)
        self.on_breach = on_breach
        self._lock = threading.Lock()
        self.both_warn = 0
        self.both_accept = 0
        self.shadow_only = 0
        self.live_only = 0
        #: Frames observed without a live counterpart (live monitor retired
        #: mid-shadow); counted but never compared.
        self.unpaired = 0
        self.breached = False
        self._events: "deque[Dict[str, object]]" = deque(maxlen=int(event_window))

    # ------------------------------------------------------------------
    @property
    def frames(self) -> int:
        """Frames with a live counterpart (the comparison population)."""
        return self.both_warn + self.both_accept + self.shadow_only + self.live_only

    @property
    def disagreements(self) -> int:
        return self.shadow_only + self.live_only

    def disagreement_rate(self) -> float:
        """Fraction of compared frames where candidate and live disagreed."""
        with self._lock:
            frames = self.frames
            return self.disagreements / frames if frames else 0.0

    def observe(
        self, shadow_warns: np.ndarray, live_warns: Optional[np.ndarray]
    ) -> None:
        """Record one scored micro-batch of paired warn vectors."""
        shadow_warns = np.asarray(shadow_warns, dtype=bool)
        breach_callback = None
        with self._lock:
            if live_warns is None:
                self.unpaired += int(shadow_warns.size)
            else:
                live_warns = np.asarray(live_warns, dtype=bool)
                self.both_warn += int(np.sum(shadow_warns & live_warns))
                self.both_accept += int(np.sum(~shadow_warns & ~live_warns))
                shadow_only = shadow_warns & ~live_warns
                live_only = ~shadow_warns & live_warns
                self.shadow_only += int(np.sum(shadow_only))
                self.live_only += int(np.sum(live_only))
                for row in np.flatnonzero(shadow_only | live_only):
                    self._events.append(
                        {
                            "time": time.time(),
                            "direction": (
                                "shadow_only" if shadow_only[row] else "live_only"
                            ),
                        }
                    )
            if (
                not self.breached
                and self.disagreement_budget is not None
                and self.frames >= self.min_frames
                and self.disagreements > self.disagreement_budget * self.frames
            ):
                self.breached = True
                breach_callback = self.on_breach
        # The callback runs outside the lock: a breach handler that rolls the
        # lifecycle back re-enters scorer/registry code and must not deadlock
        # against a concurrent snapshot() of this ledger.
        if breach_callback is not None:
            breach_callback(self)

    def snapshot(self) -> Dict[str, object]:
        """Consistent copy of the confusion, rates and recent disagreements."""
        with self._lock:
            frames = self.frames
            return {
                "frames": frames,
                "unpaired": self.unpaired,
                "both_warn": self.both_warn,
                "both_accept": self.both_accept,
                "shadow_only": self.shadow_only,
                "live_only": self.live_only,
                "disagreements": self.disagreements,
                "disagreement_rate": (
                    self.disagreements / frames if frames else 0.0
                ),
                "disagreement_budget": self.disagreement_budget,
                "min_frames": self.min_frames,
                "breached": self.breached,
                "recent_disagreements": [dict(event) for event in self._events],
            }


class ShadowScorer:
    """Scoreable wrapper running ``candidate`` in shadow of a live monitor.

    Registered in a :class:`~repro.monitors.registry.MonitorRegistry` under
    its own name, the wrapper delegates the whole batched scoring contract
    to the candidate — including ``warn_batch_from_layer``, so the engine
    feeds it the *same* cached layer activations as the live members (one
    extra matcher pass per micro-batch, zero extra forward passes).  The
    streaming scorer detects the ``is_shadow`` marker, feeds the paired warn
    vectors to :meth:`observe` and strips the shadow's verdicts from served
    results.
    """

    is_shadow = True

    def __init__(
        self,
        name: str,
        candidate,
        live_name: str,
        disagreement_budget: Optional[float] = None,
        min_frames: int = 64,
        on_breach: Optional[Callable[[ShadowLedger], None]] = None,
    ) -> None:
        if not isinstance(name, str) or not name:
            raise ConfigurationError("shadow name must be a non-empty string")
        if not isinstance(live_name, str) or not live_name:
            raise ConfigurationError("live_name must be a non-empty string")
        if name == live_name:
            raise ConfigurationError(
                "a shadow cannot trail itself; use a distinct shadow name"
            )
        if not callable(getattr(candidate, "warn_batch", None)):
            raise ConfigurationError(
                "shadow candidate does not implement the batched API (warn_batch)"
            )
        self.name = name
        self.candidate = candidate
        self.live_name = live_name
        self.ledger = ShadowLedger(
            disagreement_budget=disagreement_budget,
            min_frames=min_frames,
            on_breach=on_breach,
        )

    # ------------------------------------------------------------------
    # scoring contract (delegated so the engine shares its forward pass)
    # ------------------------------------------------------------------
    @property
    def network(self):
        return getattr(self.candidate, "network", None)

    @property
    def layer_index(self):
        return self.candidate.layer_index

    @property
    def is_fitted(self) -> bool:
        return bool(getattr(self.candidate, "is_fitted", False))

    def warn_batch(self, inputs):
        return self.candidate.warn_batch(inputs)

    def warn_batch_from_layer(self, activations):
        return self.candidate.warn_batch_from_layer(activations)

    def verdict_batch_from_layer(self, activations):
        return self.candidate.verdict_batch_from_layer(activations)

    def verdict_batch(self, inputs):
        return self.candidate.verdict_batch(inputs)

    def set_matcher_backend(self, backend):
        setter = getattr(self.candidate, "set_matcher_backend", None)
        if setter is not None:
            setter(backend)

    # ------------------------------------------------------------------
    def observe(
        self, shadow_warns: np.ndarray, live_warns: Optional[np.ndarray]
    ) -> None:
        """Feed one micro-batch of (candidate, live) warn vectors to the ledger."""
        self.ledger.observe(shadow_warns, live_warns)

    def describe(self) -> Dict[str, object]:
        return {
            "shadow_of": self.live_name,
            "candidate_class": type(self.candidate).__name__,
            "ledger": self.ledger.snapshot(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShadowScorer(name={self.name!r}, live={self.live_name!r}, "
            f"frames={self.ledger.frames})"
        )
