"""Online monitor lifecycle: versioned artefacts, shadow scoring, promotion.

The serving stack (``repro.service`` / ``repro.serving``) answers *how* a
monitor scores live traffic; this package answers *which monitor state* is
serving, and how that state changes safely while frames are in flight:

* :class:`MonitorStore` — a directory of versioned format-2 artefacts with
  an atomic manifest: monotone version ids, content fingerprints, a live
  pointer per name, retention GC and rollback;
* :class:`ShadowScorer` / :class:`ShadowLedger` — score a candidate on
  every live micro-batch through the same shared engine pass, record its
  agreement with the live monitor, serve nothing;
* :class:`LifecycleManager` — the explicit state machine
  (shadow → candidate → live → retired) with atomic promotion (quiesce,
  then registry-snapshot swap: every frame scores against exactly one of
  {old, new}, the boundary monotone in submission order) and automatic
  rollback when shadow disagreement exceeds its budget;
* :func:`incremental_refit` / :class:`RefitAccumulator` — extend a monitor
  from streamed nominal frames on a *clone* (never the live object), on
  the packed mirror (never a BDD build), bit-identical to a from-scratch
  fit on the concatenated data.
"""

from .manager import (
    STATE_CANDIDATE,
    STATE_LIVE,
    STATE_RETIRED,
    STATE_SHADOW,
    LifecycleManager,
)
from .refit import RefitAccumulator, clone_monitor, incremental_refit, refit_monitor
from .shadow import ShadowLedger, ShadowScorer
from .store import MonitorStore

__all__ = [
    "STATE_CANDIDATE",
    "STATE_LIVE",
    "STATE_RETIRED",
    "STATE_SHADOW",
    "LifecycleManager",
    "MonitorStore",
    "RefitAccumulator",
    "ShadowLedger",
    "ShadowScorer",
    "clone_monitor",
    "incremental_refit",
    "refit_monitor",
]
