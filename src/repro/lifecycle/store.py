"""Versioned monitor artefact store: the durable half of the lifecycle.

A lifecycle needs more than a single deployment bundle: every refit produces
a *new* monitor state that must be shippable, attributable and revertible.
:class:`MonitorStore` is a directory of format-2 monitor archives plus one
``store.json`` manifest:

* versions are monotone per monitor name (``v1, v2, …``, never reused, even
  after GC);
* every version records the content fingerprint
  (:func:`~repro.monitors.fingerprint.monitor_fingerprint`) of the state it
  holds, so a verdict logged as "robust@v3" names one exact abstraction;
* a ``live`` pointer per name tracks which version is currently promoted;
  :meth:`rollback` moves it to an earlier version without deleting anything;
* :meth:`gc` enforces a retention bound, never collecting the live version
  or the newest one.

Manifest updates are atomic (written to a temp file, then ``os.replace``),
so a crash mid-``put`` leaves either the old manifest or the new one —
never a torn file.  Archive writes happen *before* the manifest names them,
so every version the manifest lists is loadable.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Dict, List, Optional, Union

from ..exceptions import LifecycleStateError, SerializationError
from ..monitors.fingerprint import monitor_fingerprint
from ..monitors.serialization import load_monitor, save_monitor

__all__ = ["MonitorStore"]

MANIFEST_NAME = "store.json"
_STORE_FORMAT = 1


class MonitorStore:
    """Directory of versioned monitor artefacts with an atomic manifest.

    ``retain`` bounds how many versions :meth:`gc` keeps per name (``None``
    keeps everything).  The store is re-openable: constructing it over an
    existing directory picks up the manifest written by a previous process.
    """

    def __init__(
        self, directory: Union[str, Path], retain: Optional[int] = None
    ) -> None:
        if retain is not None and retain < 1:
            raise LifecycleStateError("retain must keep at least one version")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.retain = retain
        self._manifest_path = self.directory / MANIFEST_NAME
        if self._manifest_path.exists():
            try:
                with open(self._manifest_path) as handle:
                    manifest = json.load(handle)
            except (OSError, json.JSONDecodeError) as exc:
                raise SerializationError(
                    f"failed to read {self._manifest_path}: {exc}"
                ) from exc
            if int(manifest.get("format", 0)) != _STORE_FORMAT:
                raise SerializationError(
                    f"unsupported store format {manifest.get('format')!r} "
                    f"in {self._manifest_path}"
                )
            self._manifest = manifest
        else:
            self._manifest = {"format": _STORE_FORMAT, "monitors": {}}

    # ------------------------------------------------------------------
    def _write_manifest(self) -> None:
        tmp_path = self._manifest_path.with_suffix(".json.tmp")
        with open(tmp_path, "w") as handle:
            json.dump(self._manifest, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(tmp_path, self._manifest_path)

    def _chain(self, name: str, create: bool = False) -> Dict[str, object]:
        chains = self._manifest["monitors"]
        if name not in chains:
            if not create:
                raise LifecycleStateError(
                    f"no monitor named '{name}' in the store"
                )
            chains[name] = {"next_version": 1, "live": None, "versions": {}}
        return chains[name]

    def _entry(self, name: str, version: int) -> Dict[str, object]:
        chain = self._chain(name)
        entry = chain["versions"].get(str(int(version)))
        if entry is None:
            raise LifecycleStateError(
                f"monitor '{name}' has no version {version} "
                f"(known: {self.versions(name)})"
            )
        return entry

    # ------------------------------------------------------------------
    def put(
        self,
        name: str,
        monitor,
        metadata: Optional[Dict[str, object]] = None,
    ) -> int:
        """Archive ``monitor`` as the next version of ``name``; returns it.

        The version id is monotone per name and never reused — a rolled
        back or garbage-collected version number stays burned, so logs
        referring to "robust@v3" are unambiguous forever.
        """
        if not isinstance(name, str) or not name:
            raise LifecycleStateError("monitor name must be a non-empty string")
        chain = self._chain(name, create=True)
        version = int(chain["next_version"])
        filename = f"{name}_v{version}.npz"
        save_monitor(monitor, self.directory / filename, format=2)
        chain["versions"][str(version)] = {
            "file": filename,
            "fingerprint": monitor_fingerprint(monitor),
            "class": type(monitor).__name__,
            "created": time.time(),
            "metadata": dict(metadata) if metadata else {},
        }
        chain["next_version"] = version + 1
        self._write_manifest()
        return version

    def load(self, name: str, version: Optional[int] = None, network=None, matcher_backend=None):
        """Reconstruct a stored version against ``network`` (default: live)."""
        if version is None:
            version = self.live_version(name)
            if version is None:
                version = self.latest(name)
        entry = self._entry(name, version)
        return load_monitor(
            self.directory / entry["file"], network,
            matcher_backend=matcher_backend,
        )

    def path(self, name: str, version: int) -> Path:
        """Filesystem path of one stored archive."""
        return self.directory / self._entry(name, version)["file"]

    def fingerprint(self, name: str, version: int) -> str:
        """Content fingerprint recorded for one stored version."""
        return str(self._entry(name, version)["fingerprint"])

    # ------------------------------------------------------------------
    def names(self) -> List[str]:
        return sorted(self._manifest["monitors"])

    def versions(self, name: str) -> List[int]:
        """Version ids of ``name`` still present, ascending."""
        return sorted(int(v) for v in self._chain(name)["versions"])

    def latest(self, name: str) -> int:
        versions = self.versions(name)
        if not versions:
            raise LifecycleStateError(
                f"monitor '{name}' has no stored versions"
            )
        return versions[-1]

    def live_version(self, name: str) -> Optional[int]:
        """The promoted version of ``name`` (``None`` before first promotion)."""
        live = self._chain(name)["live"]
        return None if live is None else int(live)

    def set_live(self, name: str, version: int) -> None:
        """Move the live pointer of ``name`` to an existing version."""
        self._entry(name, version)  # validates existence
        self._chain(name)["live"] = int(version)
        self._write_manifest()

    def rollback(self, name: str, version: Optional[int] = None) -> int:
        """Move the live pointer back to ``version`` (default: predecessor).

        Nothing is deleted: the rolled-back-from version stays in the store
        for post-mortems.  Returns the version now live.
        """
        live = self.live_version(name)
        if version is None:
            if live is None:
                raise LifecycleStateError(
                    f"monitor '{name}' has no live version to roll back from"
                )
            earlier = [v for v in self.versions(name) if v < live]
            if not earlier:
                raise LifecycleStateError(
                    f"monitor '{name}' has no version earlier than the live "
                    f"v{live} to roll back to"
                )
            version = earlier[-1]
        version = int(version)
        if live is not None and version > live:
            raise LifecycleStateError(
                f"cannot roll monitor '{name}' back to v{version}: it is "
                f"newer than the live v{live} (use set_live to promote)"
            )
        self.set_live(name, version)
        return version

    # ------------------------------------------------------------------
    def gc(self, name: Optional[str] = None, retain: Optional[int] = None) -> List[str]:
        """Delete old archives beyond the retention bound; returns filenames.

        Keeps the ``retain`` newest versions of each chain plus — always —
        the live version, whatever its age.  ``retain=None`` falls back to
        the store's construction-time bound; if that is also ``None``,
        nothing is collected.
        """
        retain = self.retain if retain is None else retain
        if retain is None:
            return []
        if retain < 1:
            raise LifecycleStateError("retain must keep at least one version")
        removed: List[str] = []
        names = [name] if name is not None else self.names()
        for chain_name in names:
            chain = self._chain(chain_name)
            versions = self.versions(chain_name)
            keep = set(versions[-retain:])
            live = self.live_version(chain_name)
            if live is not None:
                keep.add(live)
            for version in versions:
                if version in keep:
                    continue
                entry = chain["versions"].pop(str(version))
                removed.append(entry["file"])
        if removed:
            self._write_manifest()
            for filename in removed:
                try:
                    (self.directory / filename).unlink()
                except FileNotFoundError:  # pragma: no cover - already gone
                    pass
        return removed

    def describe(self) -> Dict[str, object]:
        """Manifest view: per name the live pointer and version metadata."""
        monitors: Dict[str, object] = {}
        for name in self.names():
            chain = self._chain(name)
            monitors[name] = {
                "live": self.live_version(name),
                "versions": {
                    int(v): {
                        "fingerprint": entry["fingerprint"],
                        "class": entry["class"],
                        "created": entry["created"],
                        "metadata": dict(entry.get("metadata", {})),
                    }
                    for v, entry in chain["versions"].items()
                },
            }
        return {"directory": str(self.directory), "monitors": monitors}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MonitorStore(directory={str(self.directory)!r}, names={self.names()})"
