"""Incremental refit: extend a monitor from streamed nominal frames.

The paper's abstractions are built by folding training samples in one at a
time (the ``⊎`` operator) — which means a deployed monitor can keep
absorbing the nominal distribution it actually sees, instead of being
frozen at its offline training set.  The lifecycle discipline here:

* **never mutate the live monitor in place** — an in-flight micro-batch
  must not observe a half-extended pattern set.  :func:`incremental_refit`
  clones the monitor through a format-2 save→load round-trip and folds the
  new frames into the *clone*;
* the clone path keeps refit cheap: a format-2 load restores the packed
  mirror with the BDD deferred, and ``update()`` on a deferred set extends
  the mirror only — refitting a deployed monitor never pays a BDD build
  (pinned by the ``_ensure_bdd``-spy test in ``tests/lifecycle``);
* the result is **bit-identical** to a from-scratch fit on the concatenated
  nominal set whenever the codec parameters are pinned (explicit
  ``thresholds``/``cut_points``), because ``fit`` on N+M samples and
  ``fit`` on N followed by ``update`` on M insert the same multiset of
  patterns (pinned per family by the refit equivalence test).

:class:`RefitAccumulator` is the collection half: it buffers frames the
live monitor *accepted* (warned-on frames are exactly what a nominal refit
must not absorb) until enough accumulate to justify a new version.
"""

from __future__ import annotations

import tempfile
import threading
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..exceptions import LifecycleStateError
from ..monitors.serialization import load_monitor, save_monitor
from .store import MonitorStore

__all__ = ["RefitAccumulator", "clone_monitor", "incremental_refit", "refit_monitor"]


def clone_monitor(monitor, network=None, matcher_backend=None):
    """Deep-copy a fitted monitor via a format-2 save→load round-trip.

    The round-trip is the cheapest correct clone: it shares no mutable
    state with the original (the mirror arrays are rebuilt from the
    archive) and the restored pattern set carries a *deferred* BDD, so
    subsequent ``update()`` calls stay on the packed mirror.  ``network``
    defaults to the monitor's own (clones share the frozen network —
    weights are never duplicated).
    """
    if network is None:
        network = monitor.network
    with tempfile.TemporaryDirectory(prefix="repro-refit-") as tmp:
        path = save_monitor(monitor, Path(tmp) / "clone.npz", format=2)
        return load_monitor(path, network, matcher_backend=matcher_backend)


def incremental_refit(monitor, frames: np.ndarray, network=None, matcher_backend=None):
    """Return a *new* monitor: ``monitor`` extended with nominal ``frames``.

    The input monitor is untouched (it may be live in a registry snapshot
    right now); the clone absorbs the frames through the family's
    ``update()`` operator and is returned ready to stage or promote.
    """
    frames = np.atleast_2d(np.asarray(frames, dtype=np.float64))
    if frames.shape[0] == 0:
        raise LifecycleStateError(
            "incremental refit needs at least one nominal frame"
        )
    if not callable(getattr(monitor, "update", None)):
        raise LifecycleStateError(
            f"monitor class {type(monitor).__name__} does not support "
            "incremental update()"
        )
    clone = clone_monitor(monitor, network=network,
                          matcher_backend=matcher_backend)
    clone.update(frames)
    return clone


def refit_monitor(
    store: MonitorStore,
    name: str,
    monitor,
    frames: np.ndarray,
    network=None,
    matcher_backend=None,
    metadata: Optional[Dict[str, object]] = None,
) -> Tuple[object, int]:
    """Refit ``monitor`` with ``frames`` and archive the result in ``store``.

    Returns ``(refit_monitor, version)``: the new monitor plus the store
    version it was archived as — ready for ``LifecycleManager.stage``.
    """
    refit = incremental_refit(
        monitor, frames, network=network, matcher_backend=matcher_backend
    )
    detail = {"refit_frames": int(np.atleast_2d(frames).shape[0])}
    if metadata:
        detail.update(metadata)
    version = store.put(name, refit, metadata=detail)
    return refit, version


class RefitAccumulator:
    """Bounded buffer of accepted nominal frames awaiting the next refit.

    Thread-safe: producers (or a future done-callback on the serving path)
    call :meth:`offer` with each frame and its live verdict; a control
    thread polls :meth:`ready` and drains with :meth:`take`.  Warned-on
    frames are rejected — absorbing them would teach the monitor that its
    own alarms are nominal.  ``capacity`` bounds memory; once full, further
    offers are dropped (counted) rather than blocking the scoring path.
    """

    def __init__(self, min_frames: int = 256, capacity: int = 65536) -> None:
        if min_frames < 1:
            raise LifecycleStateError("min_frames must be at least 1")
        if capacity < min_frames:
            raise LifecycleStateError("capacity must be at least min_frames")
        self.min_frames = int(min_frames)
        self.capacity = int(capacity)
        self._lock = threading.Lock()
        self._frames: List[np.ndarray] = []
        self.accepted = 0
        self.rejected_warned = 0
        self.dropped_full = 0

    def offer(self, frame: np.ndarray, warned: bool) -> bool:
        """Submit one frame with its live verdict; True when buffered."""
        if warned:
            with self._lock:
                self.rejected_warned += 1
            return False
        frame = np.array(frame, dtype=np.float64, copy=True).ravel()
        with self._lock:
            if len(self._frames) >= self.capacity:
                self.dropped_full += 1
                return False
            self._frames.append(frame)
            self.accepted += 1
            return True

    def __len__(self) -> int:
        with self._lock:
            return len(self._frames)

    def ready(self) -> bool:
        """True once at least ``min_frames`` nominal frames are buffered."""
        with self._lock:
            return len(self._frames) >= self.min_frames

    def take(self) -> np.ndarray:
        """Drain the buffer as one ``(N, d)`` refit batch."""
        with self._lock:
            if not self._frames:
                raise LifecycleStateError(
                    "no accumulated frames to refit from"
                )
            frames = self._frames
            self._frames = []
        return np.vstack(frames)

    def snapshot(self) -> Dict[str, int]:
        with self._lock:
            return {
                "buffered": len(self._frames),
                "accepted": self.accepted,
                "rejected_warned": self.rejected_warned,
                "dropped_full": self.dropped_full,
                "min_frames": self.min_frames,
            }
