"""Registration surface for hosting several monitors over one network.

A serving deployment typically runs a *set* of monitors next to one frozen
network — a standard and a robust variant, an ensemble across layers, a
class-conditional dispatcher — and needs to add or retire members without
restarting the scorer.  :class:`MonitorRegistry` is that surface: a named,
validated, thread-safe collection of scoreable monitors over one host
network.

Validation happens at registration time, where a configuration mistake is
cheap to report, instead of at scoring time, where it would fail a whole
micro-batch of in-flight frames:

* every member must already be fitted (a serving registry never sees
  training data);
* every member must expose the batched API contract (``warn_batch``);
* a member built on a *different* network than the host is legal — the
  scoring engine falls back to the member's own forward pass — but must be
  declared with ``allow_foreign=True`` so that a mixed-network deployment
  is an explicit decision, not a silent performance bug;
* names are unique, non-empty strings.

The registry hands out immutable snapshots (:meth:`snapshot`) so a scoring
thread iterates a consistent member set even while another thread registers
or unregisters monitors mid-stream.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterator, Mapping, Optional, Tuple

from ..exceptions import ConfigurationError, NotFittedError
from ..nn.network import Sequential

__all__ = ["MonitorRegistry"]


class MonitorRegistry:
    """Named, validated collection of fitted monitors over a host network."""

    def __init__(self, network: Sequential) -> None:
        self.network = network
        self._lock = threading.Lock()
        self._monitors: Dict[str, object] = {}

    # ------------------------------------------------------------------
    @staticmethod
    def _validate_scoreable(name: str, monitor: object) -> None:
        if not isinstance(name, str) or not name:
            raise ConfigurationError("monitor name must be a non-empty string")
        if not callable(getattr(monitor, "warn_batch", None)):
            raise ConfigurationError(
                f"monitor '{name}' does not implement the batched API "
                "(warn_batch); wrap it or use an ActivationMonitor subclass"
            )
        fitted = getattr(monitor, "is_fitted", None)
        if fitted is None:
            raise ConfigurationError(
                f"monitor '{name}' does not report is_fitted; only fitted "
                "monitors can be registered for serving"
            )
        if not fitted:
            raise NotFittedError(
                f"monitor '{name}' must be fitted before registration"
            )

    def register(
        self, name: str, monitor: object, allow_foreign: bool = False
    ) -> None:
        """Add a fitted monitor under ``name``.

        ``allow_foreign`` acknowledges that ``monitor`` is built on a
        different network than the registry's host and will therefore pay
        its own forward passes instead of sharing the host's cached ones.
        """
        self._validate_scoreable(name, monitor)
        member_network = getattr(monitor, "network", None)
        if (
            member_network is not None
            and member_network is not self.network
            and not allow_foreign
        ):
            raise ConfigurationError(
                f"monitor '{name}' is built on a different network than the "
                "registry's host; pass allow_foreign=True to register it "
                "anyway (it will not share the host's cached forward passes)"
            )
        with self._lock:
            if name in self._monitors:
                raise ConfigurationError(
                    f"a monitor named '{name}' is already registered"
                )
            self._monitors[name] = monitor

    def unregister(self, name: str) -> object:
        """Remove and return the monitor registered under ``name``."""
        with self._lock:
            try:
                return self._monitors.pop(name)
            except KeyError as exc:
                raise ConfigurationError(
                    f"no monitor named '{name}' is registered"
                ) from exc

    def get(self, name: str) -> Optional[object]:
        with self._lock:
            return self._monitors.get(name)

    def snapshot(self) -> Mapping[str, object]:
        """Immutable point-in-time view of the registered monitors.

        The returned mapping is safe to iterate from a scoring thread while
        other threads mutate the registry; it reflects the membership at
        call time.
        """
        with self._lock:
            return dict(self._monitors)

    def set_matcher_backend(self, backend) -> Tuple[str, ...]:
        """Re-bind every registered monitor to another matcher kernel.

        Threads the back-end choice through all members that expose
        ``set_matcher_backend`` (pattern monitors, ensembles,
        class-conditional dispatchers) and returns the names of the members
        that adopted it.  Back-ends are bit-for-bit equivalent, so this is
        safe mid-stream: in-flight micro-batches score the same verdicts
        either way.
        """
        switched = []
        for name, monitor in self.snapshot().items():
            setter = getattr(monitor, "set_matcher_backend", None)
            if setter is not None:
                setter(backend)
                switched.append(name)
        return tuple(switched)

    def names(self) -> Tuple[str, ...]:
        with self._lock:
            return tuple(self._monitors)

    def __len__(self) -> int:
        with self._lock:
            return len(self._monitors)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._monitors

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def describe(self) -> Dict[str, object]:
        snapshot = self.snapshot()
        return {
            "num_monitors": len(snapshot),
            "monitors": {
                name: (
                    monitor.describe()
                    if callable(getattr(monitor, "describe", None))
                    else type(monitor).__name__
                )
                for name, monitor in snapshot.items()
            },
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MonitorRegistry(names={list(self.names())})"
