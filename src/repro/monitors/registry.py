"""Registration surface for hosting several monitors over one network.

A serving deployment typically runs a *set* of monitors next to one frozen
network — a standard and a robust variant, an ensemble across layers, a
class-conditional dispatcher — and needs to add or retire members without
restarting the scorer.  :class:`MonitorRegistry` is that surface: a named,
validated, thread-safe collection of scoreable monitors over one host
network.

Validation happens at registration time, where a configuration mistake is
cheap to report, instead of at scoring time, where it would fail a whole
micro-batch of in-flight frames:

* every member must already be fitted (a serving registry never sees
  training data);
* every member must expose the batched API contract (``warn_batch``);
* a member built on a *different* network than the host is legal — the
  scoring engine falls back to the member's own forward pass — but must be
  declared with ``allow_foreign=True`` so that a mixed-network deployment
  is an explicit decision, not a silent performance bug;
* names are unique, non-empty strings.

The registry hands out immutable snapshots (:meth:`snapshot`) so a scoring
thread iterates a consistent member set even while another thread registers
or unregisters monitors mid-stream.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterator, Mapping, Optional, Tuple

from ..exceptions import ConfigurationError, NotFittedError
from ..nn.network import Sequential
from .fingerprint import monitor_fingerprint

__all__ = ["MonitorRegistry"]


class MonitorRegistry:
    """Named, validated collection of fitted monitors over a host network."""

    def __init__(self, network: Sequential) -> None:
        self.network = network
        self._lock = threading.Lock()
        self._monitors: Dict[str, object] = {}
        #: Lifecycle version per entry (``None`` for unmanaged monitors);
        #: maintained by register/replace so describe() can attribute
        #: verdicts to an artefact-store version.
        self._versions: Dict[str, Optional[int]] = {}

    # ------------------------------------------------------------------
    @staticmethod
    def _validate_scoreable(name: str, monitor: object) -> None:
        if not isinstance(name, str) or not name:
            raise ConfigurationError("monitor name must be a non-empty string")
        if not callable(getattr(monitor, "warn_batch", None)):
            raise ConfigurationError(
                f"monitor '{name}' does not implement the batched API "
                "(warn_batch); wrap it or use an ActivationMonitor subclass"
            )
        fitted = getattr(monitor, "is_fitted", None)
        if fitted is None:
            raise ConfigurationError(
                f"monitor '{name}' does not report is_fitted; only fitted "
                "monitors can be registered for serving"
            )
        if not fitted:
            raise NotFittedError(
                f"monitor '{name}' must be fitted before registration"
            )

    def register(
        self,
        name: str,
        monitor: object,
        allow_foreign: bool = False,
        version: Optional[int] = None,
    ) -> None:
        """Add a fitted monitor under ``name``.

        ``allow_foreign`` acknowledges that ``monitor`` is built on a
        different network than the registry's host and will therefore pay
        its own forward passes instead of sharing the host's cached ones.
        ``version`` optionally records the lifecycle (artefact-store)
        version the entry serves, surfaced by :meth:`describe`.
        """
        self._validate_scoreable(name, monitor)
        member_network = getattr(monitor, "network", None)
        if (
            member_network is not None
            and member_network is not self.network
            and not allow_foreign
        ):
            raise ConfigurationError(
                f"monitor '{name}' is built on a different network than the "
                "registry's host; pass allow_foreign=True to register it "
                "anyway (it will not share the host's cached forward passes)"
            )
        with self._lock:
            if name in self._monitors:
                raise ConfigurationError(
                    f"a monitor named '{name}' is already registered"
                )
            self._monitors[name] = monitor
            self._versions[name] = None if version is None else int(version)

    def unregister(self, name: str) -> object:
        """Remove and return the monitor registered under ``name``."""
        with self._lock:
            try:
                monitor = self._monitors.pop(name)
            except KeyError as exc:
                raise ConfigurationError(
                    f"no monitor named '{name}' is registered"
                ) from exc
            self._versions.pop(name, None)
            return monitor

    def replace(
        self, name: str, monitor: object, version: Optional[int] = None
    ) -> object:
        """Atomically swap the monitor registered under ``name``.

        The swap happens under the registry lock, so every
        :meth:`snapshot` observes either the old or the new member — never
        a gap or a mixture.  Combined with the streaming scorer's FIFO
        micro-batching this is what makes a lifecycle promotion atomic:
        each micro-batch scores entirely against one snapshot, and the
        old→new boundary is monotone in submission order.  Returns the
        replaced monitor.
        """
        self._validate_scoreable(name, monitor)
        member_network = getattr(monitor, "network", None)
        if member_network is not None and member_network is not self.network:
            raise ConfigurationError(
                f"replacement monitor '{name}' is built on a different "
                "network than the registry's host"
            )
        with self._lock:
            if name not in self._monitors:
                raise ConfigurationError(
                    f"no monitor named '{name}' is registered"
                )
            old = self._monitors[name]
            self._monitors[name] = monitor
            self._versions[name] = None if version is None else int(version)
            return old

    def version(self, name: str) -> Optional[int]:
        """Lifecycle version of an entry (``None`` when unmanaged)."""
        with self._lock:
            return self._versions.get(name)

    def get(self, name: str) -> Optional[object]:
        with self._lock:
            return self._monitors.get(name)

    def snapshot(self) -> Mapping[str, object]:
        """Immutable point-in-time view of the registered monitors.

        The returned mapping is safe to iterate from a scoring thread while
        other threads mutate the registry; it reflects the membership at
        call time.
        """
        with self._lock:
            return dict(self._monitors)

    def set_matcher_backend(self, backend) -> Tuple[str, ...]:
        """Re-bind every registered monitor to another matcher kernel.

        Threads the back-end choice through all members that expose
        ``set_matcher_backend`` (pattern monitors, ensembles,
        class-conditional dispatchers) and returns the names of the members
        that adopted it.  Back-ends are bit-for-bit equivalent, so this is
        safe mid-stream: in-flight micro-batches score the same verdicts
        either way.
        """
        switched = []
        for name, monitor in self.snapshot().items():
            setter = getattr(monitor, "set_matcher_backend", None)
            if setter is not None:
                setter(backend)
                switched.append(name)
        return tuple(switched)

    def names(self) -> Tuple[str, ...]:
        with self._lock:
            return tuple(self._monitors)

    def __len__(self) -> int:
        with self._lock:
            return len(self._monitors)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._monitors

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def describe(self) -> Dict[str, object]:
        """Identity-bearing description of every entry.

        Each entry carries a stable content fingerprint and its lifecycle
        version (when managed), so STATS frames and ``ServiceStats``
        snapshots can attribute served verdicts to one monitor state —
        "robust warned" becomes "robust@v3 (fingerprint abc…) warned".
        """
        with self._lock:
            snapshot = dict(self._monitors)
            versions = dict(self._versions)
        monitors: Dict[str, object] = {}
        for name, monitor in snapshot.items():
            entry: Dict[str, object] = {
                "class": type(monitor).__name__,
                "fingerprint": monitor_fingerprint(monitor),
                "version": versions.get(name),
            }
            if callable(getattr(monitor, "describe", None)):
                entry["detail"] = monitor.describe()
            monitors[name] = entry
        return {"num_monitors": len(snapshot), "monitors": monitors}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MonitorRegistry(names={list(self.names())})"
