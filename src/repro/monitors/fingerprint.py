"""Stable content fingerprints of fitted monitors.

A lifecycle deployment needs to *name* the exact abstraction a monitor
serves — "which version produced this verdict?" — across save/load
round-trips, matcher back-end switches and insertion-order differences.
:func:`monitor_fingerprint` digests the monitor's canonicalised state
(family, layer, neuron selection, codec parameters and the abstraction
content itself) into a short hex string with these properties:

* equal for a monitor and its ``save_monitor``/``load_monitor`` round-trip
  (the packed mirror is the canonical content, and exporting it never
  materialises a lazily restored BDD — fingerprinting a cold-started
  deployment artefact stays cheap);
* equal for pattern sets holding the same entries in a different insertion
  order (rows are lexicographically sorted before hashing);
* different whenever the served verdict function differs (envelope bounds,
  thresholds/cut points, stored patterns, perturbation model).

The fingerprint is what :class:`~repro.monitors.registry.MonitorRegistry`
reports per entry and what the artefact store records per version, so STATS
frames and store manifests attribute verdicts to one identifiable monitor
state.
"""

from __future__ import annotations

import hashlib

import numpy as np

from ..exceptions import ConfigurationError

__all__ = ["monitor_fingerprint"]


def _sorted_rows(matrix: np.ndarray) -> np.ndarray:
    """Rows of a 2-D array in lexicographic order (duplicates preserved)."""
    matrix = np.atleast_2d(np.asarray(matrix))
    if matrix.shape[0] < 2:
        return matrix
    order = np.lexsort(matrix.T[::-1])
    return matrix[order]


def _update_array(hasher, label: str, array) -> None:
    array = np.ascontiguousarray(np.asarray(array))
    hasher.update(label.encode())
    hasher.update(str(array.dtype.str).encode())
    hasher.update(str(array.shape).encode())
    hasher.update(array.tobytes())


def _update_patterns(hasher, patterns) -> None:
    try:
        state = patterns.packed_state()
    except ConfigurationError:
        # Mirror not exact (manual non-contiguous add_code_sets use): the
        # enumerated word list is the only canonical content left.  This
        # materialises the BDD, but such sets never come off the format-2
        # serving path.
        words = np.asarray(sorted(patterns.iterate_words()), dtype=np.int64)
        _update_array(hasher, "words", words.reshape(-1, patterns.num_positions))
        return
    _update_array(hasher, "exact", _sorted_rows(state["exact"]))
    # Ternary rows and ranges are insertion-ordered in the mirror; sort the
    # value/mask (and low/high) planes as paired rows so two sets holding
    # the same entries in a different order fingerprint identically.
    ternary = np.hstack(
        [
            np.atleast_2d(state["ternary_values"]),
            np.atleast_2d(state["ternary_masks"]),
        ]
    )
    _update_array(hasher, "ternary", _sorted_rows(ternary))
    ranges = np.hstack(
        [np.atleast_2d(state["range_low"]), np.atleast_2d(state["range_high"])]
    )
    _update_array(hasher, "ranges", _sorted_rows(ranges))


def monitor_fingerprint(monitor) -> str:
    """Stable hex fingerprint of a fitted monitor's served state.

    Works for every serialisable monitor family (min-max envelopes and
    Boolean/interval pattern monitors, standard and robust) and degrades
    gracefully for foreign scoreables: anything without recognised state
    hashes over its class name and ``describe()`` output.
    """
    hasher = hashlib.blake2b(digest_size=16)
    hasher.update(type(monitor).__name__.encode())
    layer_index = getattr(monitor, "layer_index", None)
    if layer_index is not None:
        hasher.update(f"layer={int(layer_index)}".encode())
    neuron_indices = getattr(monitor, "neuron_indices", None)
    if neuron_indices is not None:
        _update_array(hasher, "neurons", np.asarray(neuron_indices, dtype=np.int64))
    perturbation = getattr(monitor, "perturbation", None)
    if perturbation is not None:
        hasher.update(
            f"perturbation={perturbation.delta}:{perturbation.layer}:"
            f"{perturbation.method}".encode()
        )

    recognised = False
    lower = getattr(monitor, "lower", None)
    upper = getattr(monitor, "upper", None)
    if lower is not None and upper is not None:
        _update_array(hasher, "lower", lower)
        _update_array(hasher, "upper", upper)
        recognised = True
    thresholds = getattr(monitor, "thresholds", None)
    if thresholds is not None and not isinstance(thresholds, str):
        _update_array(hasher, "thresholds", thresholds)
        recognised = True
    cut_points = getattr(monitor, "cut_points", None)
    if cut_points is not None:
        _update_array(hasher, "cut_points", cut_points)
        recognised = True
    hamming = getattr(monitor, "hamming_tolerance", None)
    if hamming is not None:
        hasher.update(f"hamming={int(hamming)}".encode())
    patterns = getattr(monitor, "patterns", None)
    if patterns is not None and hasattr(patterns, "packed_state"):
        _update_patterns(hasher, patterns)
        recognised = True
    if not recognised:
        describe = getattr(monitor, "describe", None)
        if callable(describe):
            hasher.update(repr(sorted(describe().items())).encode())
    return hasher.hexdigest()
