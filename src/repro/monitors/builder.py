"""High-level monitor construction helpers.

:class:`MonitorBuilder` turns a declarative configuration (monitor family,
monitored layer, perturbation model, thresholds) into a fitted monitor, which
keeps the benchmark harness and examples free of per-family constructor
details.  :class:`ClassConditionalMonitor` builds one monitor per predicted
class of a classification network — the configuration used by the original
DATE'19 monitor on MNIST/GTSRB — and dispatches operational inputs to the
monitor of the class the network predicts.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..exceptions import ConfigurationError, NotFittedError, ShapeError
from ..nn.network import Sequential
from .base import ActivationMonitor, MonitorVerdict
from .boolean import BooleanPatternMonitor, RobustBooleanPatternMonitor
from .interval import IntervalPatternMonitor, RobustIntervalPatternMonitor
from .minmax import MinMaxMonitor, RobustMinMaxMonitor
from .perturbation import PerturbationSpec

__all__ = ["MonitorBuilder", "ClassConditionalMonitor", "MONITOR_FAMILIES"]

MONITOR_FAMILIES = ("minmax", "boolean", "interval")


class MonitorBuilder:
    """Declarative factory for standard and robust monitors.

    Parameters
    ----------
    family:
        One of ``"minmax"``, ``"boolean"`` or ``"interval"``.
    layer_index:
        The monitored layer ``k``.
    perturbation:
        ``None`` builds the standard monitor of the family; a
        :class:`PerturbationSpec` builds the robust variant.
    options:
        Family-specific keyword arguments forwarded to the monitor
        constructor (``thresholds``, ``num_cuts``, ``hamming_tolerance``,
        ``enlargement``, ``neuron_indices``, ...).
    """

    def __init__(
        self,
        family: str,
        layer_index: int,
        perturbation: Optional[PerturbationSpec] = None,
        **options,
    ) -> None:
        if family not in MONITOR_FAMILIES:
            raise ConfigurationError(
                f"unknown monitor family '{family}'; choose one of {MONITOR_FAMILIES}"
            )
        self.family = family
        self.layer_index = int(layer_index)
        self.perturbation = perturbation
        self.options = dict(options)

    @property
    def is_robust(self) -> bool:
        return self.perturbation is not None

    def build(self, network: Sequential, engine=None) -> ActivationMonitor:
        """Instantiate the (unfitted) monitor for ``network``.

        ``engine`` optionally binds a
        :class:`~repro.runtime.engine.BatchScoringEngine` so the monitor's
        fit and scoring share the engine's activation/bound caches with
        every other monitor bound to it.
        """
        monitor = self._instantiate(network)
        if engine is not None:
            monitor.bind_engine(engine)
        return monitor

    def _instantiate(self, network: Sequential) -> ActivationMonitor:
        options = dict(self.options)
        if self.family == "minmax":
            if self.is_robust:
                options.pop("enlargement", None)
                return RobustMinMaxMonitor(
                    network, self.layer_index, self.perturbation, **options
                )
            return MinMaxMonitor(network, self.layer_index, **options)
        if self.family == "boolean":
            if self.is_robust:
                return RobustBooleanPatternMonitor(
                    network, self.layer_index, self.perturbation, **options
                )
            return BooleanPatternMonitor(network, self.layer_index, **options)
        if self.is_robust:
            return RobustIntervalPatternMonitor(
                network, self.layer_index, self.perturbation, **options
            )
        return IntervalPatternMonitor(network, self.layer_index, **options)

    def build_and_fit(
        self, network: Sequential, training_inputs: np.ndarray, engine=None
    ) -> ActivationMonitor:
        """Instantiate the monitor and fit it on ``training_inputs``.

        A supplied ``engine`` is bound for the duration of the fit only (so
        concurrent fits share cached forward passes and symbolic
        propagations) and detached before returning: the fitted monitor's
        per-frame scoring path stays engine-free, and no fit-time cache is
        pinned by the monitor.  Call :meth:`build` and bind manually to keep
        a persistent binding.
        """
        monitor = self.build(network, engine=engine)
        try:
            monitor.fit(training_inputs)
        finally:
            if engine is not None:
                monitor.bind_engine(None)
        return monitor

    def describe(self) -> Dict[str, object]:
        return {
            "family": self.family,
            "layer_index": self.layer_index,
            "robust": self.is_robust,
            "perturbation": self.perturbation.describe() if self.perturbation else None,
            "options": dict(self.options),
        }


class ClassConditionalMonitor:
    """One monitor per predicted class of a classification network.

    The abstraction of class ``c`` is built only from the training inputs the
    network assigns to class ``c``; at operation time the input is first
    classified and then checked against the monitor of the predicted class.
    This is strictly tighter than a single class-agnostic monitor and matches
    the per-class BDD construction of the original DATE'19 work.
    """

    def __init__(self, builder: MonitorBuilder, num_classes: int) -> None:
        if num_classes <= 1:
            raise ConfigurationError("class-conditional monitoring needs >= 2 classes")
        self.builder = builder
        self.num_classes = int(num_classes)
        self._monitors: Dict[int, ActivationMonitor] = {}
        self._network: Optional[Sequential] = None
        self._fallback_warn = True

    @property
    def is_fitted(self) -> bool:
        return self._network is not None

    def fit(
        self,
        network: Sequential,
        training_inputs: np.ndarray,
        labels: Optional[np.ndarray] = None,
        engine=None,
    ) -> "ClassConditionalMonitor":
        """Fit one monitor per class.

        ``labels`` defaults to the network's own predictions, matching the
        deployment situation where ground truth is unavailable; passing the
        true training labels is also supported.  Every per-class monitor is
        bound to one shared :class:`~repro.runtime.engine.BatchScoringEngine`
        (``engine``, or a fresh one when not given) so the per-class fits —
        including robust symbolic propagations — go through one set of
        caches.
        """
        training_inputs = np.atleast_2d(np.asarray(training_inputs, dtype=np.float64))
        if training_inputs.shape[0] == 0:
            raise ShapeError("fit() needs at least one training input")
        if labels is None:
            labels = network.predict_classes(training_inputs)
        labels = np.asarray(labels, dtype=np.int64)
        if labels.shape[0] != training_inputs.shape[0]:
            raise ShapeError("labels and training inputs disagree on sample count")
        if engine is None:
            from ..runtime.engine import BatchScoringEngine

            engine = BatchScoringEngine(network, max_cache_entries=self.num_classes + 2)
        self._network = network
        self._monitors = {}
        for class_id in range(self.num_classes):
            members = training_inputs[labels == class_id]
            if members.shape[0] == 0:
                # No training data for this class: warn on any input routed here.
                continue
            self._monitors[class_id] = self.builder.build_and_fit(
                network, members, engine=engine
            )
        return self

    def set_matcher_backend(self, backend) -> "ClassConditionalMonitor":
        """Select the matcher kernel for every per-class pattern set.

        Applies to the already-fitted per-class monitors immediately and is
        recorded in the builder's options so classes (re)fitted later use
        the same back-end.  Returns ``self``.
        """
        if self.builder.family != "minmax":
            self.builder.options["matcher_backend"] = backend
        for monitor in self._monitors.values():
            setter = getattr(monitor, "set_matcher_backend", None)
            if setter is not None:
                setter(backend)
        return self

    def _require_fitted(self) -> None:
        if self._network is None:
            raise NotFittedError("ClassConditionalMonitor must be fitted before use")

    def verdict(self, input_vector: np.ndarray) -> MonitorVerdict:
        self._require_fitted()
        predicted = int(self._network.predict_classes(np.atleast_2d(input_vector))[0])
        monitor = self._monitors.get(predicted)
        if monitor is None:
            return MonitorVerdict(
                warn=self._fallback_warn,
                details={"predicted_class": predicted, "reason": "class never seen"},
            )
        verdict = monitor.verdict(input_vector)
        verdict.details["predicted_class"] = predicted
        return verdict

    def warn(self, input_vector: np.ndarray) -> bool:
        return self.verdict(input_vector).warn

    def warn_batch(self, inputs: np.ndarray) -> np.ndarray:
        """Batched dispatch: classify once, then score one batch per class.

        Inputs are grouped by predicted class so that each per-class monitor
        sees a single vectorised batch instead of one query per row; classes
        without a fitted monitor fall back to the configured warning default.
        """
        self._require_fitted()
        inputs = np.atleast_2d(np.asarray(inputs, dtype=np.float64))
        if inputs.shape[0] == 0:
            return np.zeros(0, dtype=bool)
        predicted = np.asarray(self._network.predict_classes(inputs), dtype=np.int64)
        warnings = np.full(inputs.shape[0], self._fallback_warn, dtype=bool)
        for class_id in np.unique(predicted):
            monitor = self._monitors.get(int(class_id))
            if monitor is None:
                continue
            members = np.nonzero(predicted == class_id)[0]
            warnings[members] = monitor.warn_batch(inputs[members])
        return warnings

    def warning_rate(self, inputs: np.ndarray) -> float:
        inputs = np.atleast_2d(np.asarray(inputs, dtype=np.float64))
        if inputs.shape[0] == 0:
            raise ShapeError("warning_rate needs at least one input")
        return float(np.mean(self.warn_batch(inputs)))

    def monitor_for_class(self, class_id: int) -> Optional[ActivationMonitor]:
        """Return the fitted monitor of ``class_id`` (None if never seen)."""
        self._require_fitted()
        return self._monitors.get(int(class_id))

    def describe(self) -> Dict[str, object]:
        return {
            "builder": self.builder.describe(),
            "num_classes": self.num_classes,
            "classes_with_monitors": sorted(self._monitors),
        }
