"""Min-max (value envelope) monitors — standard and robust variants.

The min-max monitor of Henzinger et al. ("outside the box") keeps, for every
monitored neuron ``j``, the minimum ``L_j`` and maximum ``U_j`` value visited
across the training data set and warns whenever an operational input produces
a neuron value outside ``[L_j, U_j]``.

The robust variant of the paper replaces each visited value with the
perturbation estimate ``[l_j, u_j]`` of Definition 1 and joins those bounds,
so the envelope already accounts for every Δ-bounded perturbation at layer
``k_p``; Lemma 1's guarantee follows directly.

Scoring is fully vectorised: a batch of inputs costs one forward pass and a
couple of elementwise comparisons against the envelope.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..exceptions import ConfigurationError, ShapeError
from ..nn.network import Sequential
from ..symbolic.interval import Box
from .base import ActivationMonitor, MonitorVerdict
from .perturbation import PerturbationSpec

__all__ = ["MinMaxMonitor", "RobustMinMaxMonitor"]


class MinMaxMonitor(ActivationMonitor):
    """Standard per-neuron ``[L_j, U_j]`` envelope monitor.

    Parameters
    ----------
    enlargement:
        Optional fractional enlargement of the envelope (e.g. ``0.05`` widens
        each neuron's interval by 5% of its width on both sides).  This is the
        classic, *non-robust* false-positive mitigation the paper argues is
        insufficient; it is provided so experiments can compare against it.
    """

    kind = "minmax"

    def __init__(
        self,
        network: Sequential,
        layer_index: int,
        neuron_indices: Optional[Sequence[int]] = None,
        enlargement: float = 0.0,
    ) -> None:
        super().__init__(network, layer_index, neuron_indices)
        if enlargement < 0:
            raise ConfigurationError("enlargement must be non-negative")
        self.enlargement = float(enlargement)
        self.lower: Optional[np.ndarray] = None
        self.upper: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    def fit(self, training_inputs: np.ndarray) -> "MinMaxMonitor":
        """Initialise ``(L_j, U_j) = (∞, −∞)`` and fold in every sample."""
        features = self.features(training_inputs)
        if features.shape[0] == 0:
            raise ShapeError("fit() needs at least one training input")
        self.lower = features.min(axis=0)
        self.upper = features.max(axis=0)
        if self.enlargement > 0:
            width = self.upper - self.lower
            self.lower = self.lower - self.enlargement * width
            self.upper = self.upper + self.enlargement * width
        self._fitted = True
        self._num_training_samples = int(features.shape[0])
        return self

    def update(self, inputs: np.ndarray) -> "MinMaxMonitor":
        """Fold additional data into an already fitted envelope.

        This mirrors the incremental ``⊎`` operator of the paper's generic
        construction algorithm and is the mechanism used to enlarge a monitor
        with a validation set.
        """
        self._require_fitted()
        features = self.features(inputs)
        self.lower = np.minimum(self.lower, features.min(axis=0))
        self.upper = np.maximum(self.upper, features.max(axis=0))
        self._num_training_samples += int(features.shape[0])
        return self

    # ------------------------------------------------------------------
    def envelope(self) -> Box:
        """The fitted envelope as a :class:`~repro.symbolic.interval.Box`."""
        self._require_fitted()
        return Box(self.lower, self.upper)

    def _envelope_violations(self, features: np.ndarray) -> np.ndarray:
        """Boolean ``(N, P)`` matrix of per-neuron envelope violations.

        Numeric tolerance: forward passes of different batch sizes may differ
        in the last float, and a training sample sitting exactly on the
        envelope boundary must not warn.
        """
        tolerance = 1e-9 * np.maximum(
            1.0, np.maximum(np.abs(self.lower), np.abs(self.upper))
        )
        below = features < self.lower[None, :] - tolerance[None, :]
        above = features > self.upper[None, :] + tolerance[None, :]
        return below | above

    def _warn_from_features(self, features: np.ndarray) -> np.ndarray:
        return self._envelope_violations(features).any(axis=1)

    def _verdicts_from_features(self, features: np.ndarray) -> List[MonitorVerdict]:
        violating = self._envelope_violations(features)
        distances = np.maximum(
            self.lower[None, :] - features, features - self.upper[None, :]
        )
        max_distances = distances.max(axis=1, initial=0.0)
        verdicts = []
        for row_violations, max_distance in zip(violating, max_distances):
            violations = np.nonzero(row_violations)[0]
            verdicts.append(
                MonitorVerdict(
                    warn=bool(violations.size > 0),
                    violations=tuple(int(v) for v in violations),
                    details={
                        "max_violation_distance": float(max_distance),
                        "num_violations": int(violations.size),
                    },
                )
            )
        return verdicts

    def describe(self) -> Dict[str, object]:
        info = super().describe()
        info["enlargement"] = self.enlargement
        if self._fitted:
            info["envelope_width_sum"] = float(np.sum(self.upper - self.lower))
        return info


class RobustMinMaxMonitor(MinMaxMonitor):
    """Robust min-max monitor ``M_{⟨G, k, k_p, Δ⟩}`` (Section III-B).

    Every training input contributes its *perturbation estimate* — a sound
    per-neuron bound under all Δ-bounded perturbations applied at layer
    ``k_p`` — and the envelope is the join of all those bounds.
    """

    kind = "robust_minmax"

    def __init__(
        self,
        network: Sequential,
        layer_index: int,
        perturbation: PerturbationSpec,
        neuron_indices: Optional[Sequence[int]] = None,
    ) -> None:
        super().__init__(network, layer_index, neuron_indices, enlargement=0.0)
        if perturbation.layer >= layer_index:
            raise ConfigurationError(
                "perturbation layer k_p must be strictly before the monitored layer"
            )
        self.perturbation = perturbation

    def _bound_arrays(self, inputs: np.ndarray) -> "tuple[np.ndarray, np.ndarray]":
        lows, highs = self._perturbation_bound_arrays(inputs, self.perturbation)
        return lows[:, self.neuron_indices], highs[:, self.neuron_indices]

    def fit(self, training_inputs: np.ndarray) -> "RobustMinMaxMonitor":
        """Join the perturbation estimates of every training input."""
        training_inputs = np.atleast_2d(np.asarray(training_inputs, dtype=np.float64))
        if training_inputs.shape[0] == 0:
            raise ShapeError("fit() needs at least one training input")
        lows, highs = self._bound_arrays(training_inputs)
        self.lower = lows.min(axis=0)
        self.upper = highs.max(axis=0)
        self._fitted = True
        self._num_training_samples = int(training_inputs.shape[0])
        return self

    def update(self, inputs: np.ndarray) -> "RobustMinMaxMonitor":
        """Fold additional data (with the same perturbation model) into the envelope."""
        self._require_fitted()
        inputs = np.atleast_2d(np.asarray(inputs, dtype=np.float64))
        lows, highs = self._bound_arrays(inputs)
        np.minimum(self.lower, lows.min(axis=0), out=self.lower)
        np.maximum(self.upper, highs.max(axis=0), out=self.upper)
        self._num_training_samples += int(inputs.shape[0])
        return self

    def describe(self) -> Dict[str, object]:
        info = super().describe()
        info["perturbation"] = self.perturbation.describe()
        return info
