"""Min-max (value envelope) monitors — standard and robust variants.

The min-max monitor of Henzinger et al. ("outside the box") keeps, for every
monitored neuron ``j``, the minimum ``L_j`` and maximum ``U_j`` value visited
across the training data set and warns whenever an operational input produces
a neuron value outside ``[L_j, U_j]``.

The robust variant of the paper replaces each visited value with the
perturbation estimate ``[l_j, u_j]`` of Definition 1 and joins those bounds,
so the envelope already accounts for every Δ-bounded perturbation at layer
``k_p``; Lemma 1's guarantee follows directly.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from ..exceptions import ConfigurationError, NotFittedError, ShapeError
from ..nn.network import Sequential
from ..symbolic.interval import Box
from .base import ActivationMonitor, MonitorVerdict
from .perturbation import PerturbationSpec, perturbation_estimates

__all__ = ["MinMaxMonitor", "RobustMinMaxMonitor"]


class MinMaxMonitor(ActivationMonitor):
    """Standard per-neuron ``[L_j, U_j]`` envelope monitor.

    Parameters
    ----------
    enlargement:
        Optional fractional enlargement of the envelope (e.g. ``0.05`` widens
        each neuron's interval by 5% of its width on both sides).  This is the
        classic, *non-robust* false-positive mitigation the paper argues is
        insufficient; it is provided so experiments can compare against it.
    """

    kind = "minmax"

    def __init__(
        self,
        network: Sequential,
        layer_index: int,
        neuron_indices: Optional[Sequence[int]] = None,
        enlargement: float = 0.0,
    ) -> None:
        super().__init__(network, layer_index, neuron_indices)
        if enlargement < 0:
            raise ConfigurationError("enlargement must be non-negative")
        self.enlargement = float(enlargement)
        self.lower: Optional[np.ndarray] = None
        self.upper: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    def fit(self, training_inputs: np.ndarray) -> "MinMaxMonitor":
        """Initialise ``(L_j, U_j) = (∞, −∞)`` and fold in every sample."""
        features = self.features(training_inputs)
        if features.shape[0] == 0:
            raise ShapeError("fit() needs at least one training input")
        self.lower = features.min(axis=0)
        self.upper = features.max(axis=0)
        if self.enlargement > 0:
            width = self.upper - self.lower
            self.lower = self.lower - self.enlargement * width
            self.upper = self.upper + self.enlargement * width
        self._fitted = True
        self._num_training_samples = int(features.shape[0])
        return self

    def update(self, inputs: np.ndarray) -> "MinMaxMonitor":
        """Fold additional data into an already fitted envelope.

        This mirrors the incremental ``⊎`` operator of the paper's generic
        construction algorithm and is the mechanism used to enlarge a monitor
        with a validation set.
        """
        self._require_fitted()
        features = self.features(inputs)
        self.lower = np.minimum(self.lower, features.min(axis=0))
        self.upper = np.maximum(self.upper, features.max(axis=0))
        self._num_training_samples += int(features.shape[0])
        return self

    # ------------------------------------------------------------------
    def envelope(self) -> Box:
        """The fitted envelope as a :class:`~repro.symbolic.interval.Box`."""
        self._require_fitted()
        return Box(self.lower, self.upper)

    def verdict(self, input_vector: np.ndarray) -> MonitorVerdict:
        self._require_fitted()
        feature = self.features(input_vector)[0]
        # Numeric tolerance: batched (fit-time) and single-input (operation-
        # time) forward passes may differ in the last float, and a training
        # sample sitting exactly on the envelope boundary must not warn.
        tolerance = 1e-9 * np.maximum(
            1.0, np.maximum(np.abs(self.lower), np.abs(self.upper))
        )
        below = feature < self.lower - tolerance
        above = feature > self.upper + tolerance
        violations = np.nonzero(below | above)[0]
        distances = np.maximum(self.lower - feature, feature - self.upper)
        return MonitorVerdict(
            warn=bool(violations.size > 0),
            violations=tuple(int(v) for v in violations),
            details={
                "max_violation_distance": float(distances.max(initial=0.0)),
                "num_violations": int(violations.size),
            },
        )

    def describe(self) -> Dict[str, object]:
        info = super().describe()
        info["enlargement"] = self.enlargement
        if self._fitted:
            info["envelope_width_sum"] = float(np.sum(self.upper - self.lower))
        return info


class RobustMinMaxMonitor(MinMaxMonitor):
    """Robust min-max monitor ``M_{⟨G, k, k_p, Δ⟩}`` (Section III-B).

    Every training input contributes its *perturbation estimate* — a sound
    per-neuron bound under all Δ-bounded perturbations applied at layer
    ``k_p`` — and the envelope is the join of all those bounds.
    """

    kind = "robust_minmax"

    def __init__(
        self,
        network: Sequential,
        layer_index: int,
        perturbation: PerturbationSpec,
        neuron_indices: Optional[Sequence[int]] = None,
    ) -> None:
        super().__init__(network, layer_index, neuron_indices, enlargement=0.0)
        if perturbation.layer >= layer_index:
            raise ConfigurationError(
                "perturbation layer k_p must be strictly before the monitored layer"
            )
        self.perturbation = perturbation

    def fit(self, training_inputs: np.ndarray) -> "RobustMinMaxMonitor":
        """Join the perturbation estimates of every training input."""
        training_inputs = np.atleast_2d(np.asarray(training_inputs, dtype=np.float64))
        if training_inputs.shape[0] == 0:
            raise ShapeError("fit() needs at least one training input")
        lower = None
        upper = None
        for estimate in perturbation_estimates(
            self.network, training_inputs, self.layer_index, self.perturbation
        ):
            est_low, est_high = self._select(estimate.low, estimate.high)
            if lower is None:
                lower, upper = est_low.copy(), est_high.copy()
            else:
                np.minimum(lower, est_low, out=lower)
                np.maximum(upper, est_high, out=upper)
        self.lower = lower
        self.upper = upper
        self._fitted = True
        self._num_training_samples = int(training_inputs.shape[0])
        return self

    def update(self, inputs: np.ndarray) -> "RobustMinMaxMonitor":
        """Fold additional data (with the same perturbation model) into the envelope."""
        self._require_fitted()
        inputs = np.atleast_2d(np.asarray(inputs, dtype=np.float64))
        for estimate in perturbation_estimates(
            self.network, inputs, self.layer_index, self.perturbation
        ):
            est_low, est_high = self._select(estimate.low, estimate.high)
            np.minimum(self.lower, est_low, out=self.lower)
            np.maximum(self.upper, est_high, out=self.upper)
        self._num_training_samples += int(inputs.shape[0])
        return self

    def describe(self) -> Dict[str, object]:
        info = super().describe()
        info["perturbation"] = self.perturbation.describe()
        return info
