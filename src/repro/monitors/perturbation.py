"""Perturbation specification and the perturbation estimate of Definition 1.

A :class:`PerturbationSpec` bundles the three ingredients of the paper's
robust construction:

* ``delta`` — the per-dimension perturbation budget ``Δ``;
* ``layer`` — the layer ``k_p`` at whose *output* the perturbation is applied
  (``0`` means the raw input, i.e. pixel-level perturbation);
* ``method`` — the sound bound-propagation back-end (``"box"``,
  ``"zonotope"`` or ``"star"``).

:func:`perturbation_estimate` computes ``pe^G_k(v, k_p, Δ)`` for a single
training input and :func:`perturbation_estimates` vectorises over a data set,
which is the inner loop of every robust monitor's ``fit``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

import numpy as np

from ..exceptions import ConfigurationError
from ..nn.network import Sequential
from ..symbolic.interval import Box
from ..symbolic.propagation import PROPAGATION_METHODS, perturbation_bounds

__all__ = [
    "PerturbationSpec",
    "perturbation_estimate",
    "perturbation_estimates",
    "collect_bound_arrays",
]


@dataclass(frozen=True)
class PerturbationSpec:
    """Perturbation model ``(Δ, k_p, back-end)`` used by robust monitors."""

    delta: float = 0.0
    layer: int = 0
    method: str = "box"

    def __post_init__(self) -> None:
        if self.delta < 0:
            raise ConfigurationError("perturbation delta must be non-negative")
        if self.layer < 0:
            raise ConfigurationError("perturbation layer k_p must be non-negative")
        if self.method not in PROPAGATION_METHODS:
            raise ConfigurationError(
                f"unknown propagation method '{self.method}'; choose one of "
                f"{PROPAGATION_METHODS}"
            )

    @property
    def is_trivial(self) -> bool:
        """True when ``Δ = 0`` so the estimate degenerates to a point."""
        return self.delta == 0.0

    def describe(self) -> str:
        return f"Δ={self.delta}, k_p={self.layer}, method={self.method}"


def perturbation_estimate(
    network: Sequential,
    input_vector: np.ndarray,
    monitored_layer: int,
    spec: PerturbationSpec,
) -> Box:
    """Compute ``pe^G_k(v, k_p, Δ)`` as a :class:`~repro.symbolic.interval.Box`.

    The returned box is a sound per-neuron enclosure of the monitored-layer
    feature vector of every input whose layer-``k_p`` representation is within
    ``Δ`` (infinity norm) of that of ``input_vector``.
    """
    if spec.layer >= monitored_layer:
        raise ConfigurationError(
            f"perturbation layer k_p={spec.layer} must be strictly before the "
            f"monitored layer k={monitored_layer}"
        )
    return perturbation_bounds(
        network,
        input_vector,
        monitored_layer=monitored_layer,
        perturbation_layer=spec.layer,
        delta=spec.delta,
        method=spec.method,
    )


def perturbation_estimates(
    network: Sequential,
    inputs: np.ndarray,
    monitored_layer: int,
    spec: PerturbationSpec,
) -> Iterator[Box]:
    """Yield the perturbation estimate of every row of ``inputs``.

    With a trivial spec (``Δ = 0``) the estimates are computed with a single
    batched forward pass for efficiency; otherwise each input is propagated
    symbolically on its own.
    """
    inputs = np.atleast_2d(np.asarray(inputs, dtype=np.float64))
    if spec.is_trivial:
        features = network.forward_to(monitored_layer, inputs)
        for row in np.atleast_2d(features):
            yield Box.from_point(row)
        return
    for row in inputs:
        yield perturbation_estimate(network, row, monitored_layer, spec)


def collect_estimates(
    network: Sequential,
    inputs: np.ndarray,
    monitored_layer: int,
    spec: PerturbationSpec,
) -> List[Box]:
    """Materialise :func:`perturbation_estimates` into a list."""
    return list(perturbation_estimates(network, inputs, monitored_layer, spec))


def collect_bound_arrays(
    network: Sequential,
    inputs: np.ndarray,
    monitored_layer: int,
    spec: PerturbationSpec,
) -> "tuple[np.ndarray, np.ndarray]":
    """Stack every row's perturbation estimate into ``(N, d_k)`` bound matrices.

    This is the batch-friendly form the vectorised robust monitors consume:
    row ``i`` of the returned ``(lows, highs)`` pair is ``pe^G_k`` of input
    ``i``.  A trivial spec (``Δ = 0``) degenerates to one batched forward
    pass with ``lows == highs``.
    """
    inputs = np.atleast_2d(np.asarray(inputs, dtype=np.float64))
    if spec.is_trivial:
        features = np.atleast_2d(network.forward_to(monitored_layer, inputs))
        return features, features
    lows: List[np.ndarray] = []
    highs: List[np.ndarray] = []
    for row in inputs:
        estimate = perturbation_estimate(network, row, monitored_layer, spec)
        lows.append(np.atleast_1d(estimate.low))
        highs.append(np.atleast_1d(estimate.high))
    return np.vstack(lows), np.vstack(highs)
