"""Perturbation specification and the perturbation estimate of Definition 1.

A :class:`PerturbationSpec` bundles the three ingredients of the paper's
robust construction:

* ``delta`` — the per-dimension perturbation budget ``Δ``;
* ``layer`` — the layer ``k_p`` at whose *output* the perturbation is applied
  (``0`` means the raw input, i.e. pixel-level perturbation);
* ``method`` — the sound bound-propagation back-end (``"box"``,
  ``"zonotope"`` or ``"star"``).

:func:`collect_bound_arrays` computes ``pe^G_k(v, k_p, Δ)`` for every row of
a data set through the batched symbolic back-ends
(:func:`repro.symbolic.propagation.perturbation_bounds_batch`) — one
propagation for the whole set, no per-sample Python loop for the box and
zonotope back-ends.  This is the inner loop of every robust monitor's
``fit``.  :func:`collect_bound_arrays_loop` keeps the original one-row-at-a-
time path as an executable reference for equivalence tests and benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

import numpy as np

from ..exceptions import ConfigurationError
from ..nn.network import Sequential
from ..symbolic.interval import Box
from ..symbolic.propagation import (
    PROPAGATION_METHODS,
    perturbation_bounds,
    perturbation_bounds_batch,
)

__all__ = [
    "PerturbationSpec",
    "perturbation_estimate",
    "perturbation_estimates",
    "collect_estimates",
    "collect_bound_arrays",
    "collect_bound_arrays_loop",
]


@dataclass(frozen=True)
class PerturbationSpec:
    """Perturbation model ``(Δ, k_p, back-end)`` used by robust monitors."""

    delta: float = 0.0
    layer: int = 0
    method: str = "box"

    def __post_init__(self) -> None:
        if self.delta < 0:
            raise ConfigurationError("perturbation delta must be non-negative")
        if self.layer < 0:
            raise ConfigurationError("perturbation layer k_p must be non-negative")
        if self.method not in PROPAGATION_METHODS:
            raise ConfigurationError(
                f"unknown propagation method '{self.method}'; choose one of "
                f"{PROPAGATION_METHODS}"
            )

    @property
    def is_trivial(self) -> bool:
        """True when ``Δ = 0`` so the estimate degenerates to a point."""
        return self.delta == 0.0

    @property
    def cache_key(self) -> Tuple[float, int, str]:
        """Hashable identity of the perturbation model (for bound caches)."""
        return (self.delta, self.layer, self.method)

    def describe(self) -> str:
        return f"Δ={self.delta}, k_p={self.layer}, method={self.method}"


def perturbation_estimate(
    network: Sequential,
    input_vector: np.ndarray,
    monitored_layer: int,
    spec: PerturbationSpec,
) -> Box:
    """Compute ``pe^G_k(v, k_p, Δ)`` as a :class:`~repro.symbolic.interval.Box`.

    The returned box is a sound per-neuron enclosure of the monitored-layer
    feature vector of every input whose layer-``k_p`` representation is within
    ``Δ`` (infinity norm) of that of ``input_vector``.
    """
    if spec.layer >= monitored_layer:
        raise ConfigurationError(
            f"perturbation layer k_p={spec.layer} must be strictly before the "
            f"monitored layer k={monitored_layer}"
        )
    return perturbation_bounds(
        network,
        input_vector,
        monitored_layer=monitored_layer,
        perturbation_layer=spec.layer,
        delta=spec.delta,
        method=spec.method,
    )


def perturbation_estimates(
    network: Sequential,
    inputs: np.ndarray,
    monitored_layer: int,
    spec: PerturbationSpec,
) -> Iterator[Box]:
    """Yield the perturbation estimate of every row of ``inputs``.

    The whole data set is propagated in one batched pass
    (:func:`collect_bound_arrays`) and the rows are wrapped as
    :class:`~repro.symbolic.interval.Box` objects on the way out.
    """
    lows, highs = collect_bound_arrays(network, inputs, monitored_layer, spec)
    for low, high in zip(lows, highs):
        yield Box(low, high)


def collect_estimates(
    network: Sequential,
    inputs: np.ndarray,
    monitored_layer: int,
    spec: PerturbationSpec,
) -> List[Box]:
    """Materialise :func:`perturbation_estimates` into a list."""
    return list(perturbation_estimates(network, inputs, monitored_layer, spec))


def collect_bound_arrays(
    network: Sequential,
    inputs: np.ndarray,
    monitored_layer: int,
    spec: PerturbationSpec,
    anchors: "np.ndarray | None" = None,
    star_lp_backend=None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Stack every row's perturbation estimate into ``(N, d_k)`` bound matrices.

    This is the batch-friendly form the vectorised robust monitors consume:
    row ``i`` of the returned ``(lows, highs)`` pair is ``pe^G_k`` of input
    ``i``.  The whole batch goes through one symbolic propagation — the box
    and zonotope back-ends perform no per-sample Python loop; the star
    back-end advances all rows' stars in lockstep and answers each layer's
    bound queries through a pluggable star-LP backend
    (:mod:`repro.symbolic.star_lp`), selectable via ``star_lp_backend``.
    A trivial spec (``Δ = 0``) degenerates to one batched forward pass with
    ``lows == highs``.

    ``anchors`` optionally supplies precomputed layer-``k_p`` activations of
    ``inputs`` (e.g. from a
    :class:`~repro.runtime.engine.ActivationCache`), skipping the concrete
    anchor pass — that is how a sweep over ``Δ`` values pays for the forward
    pass once.
    """
    if spec.layer >= monitored_layer:
        raise ConfigurationError(
            f"perturbation layer k_p={spec.layer} must be strictly before the "
            f"monitored layer k={monitored_layer}"
        )
    inputs = np.atleast_2d(np.asarray(inputs, dtype=np.float64))
    if spec.is_trivial:
        if anchors is not None:
            features = np.atleast_2d(
                network.forward_from_to(
                    spec.layer + 1, monitored_layer, np.asarray(anchors)
                )
            )
        else:
            features = np.atleast_2d(network.forward_to(monitored_layer, inputs))
        # Distinct arrays: callers that adjust one bound in place must not
        # silently drag the other (or a cached entry) along with it.
        return features, np.array(features, copy=True)
    return perturbation_bounds_batch(
        network,
        inputs,
        monitored_layer=monitored_layer,
        perturbation_layer=spec.layer,
        delta=spec.delta,
        method=spec.method,
        anchors=anchors,
        star_lp_backend=star_lp_backend,
    )


def collect_bound_arrays_loop(
    network: Sequential,
    inputs: np.ndarray,
    monitored_layer: int,
    spec: PerturbationSpec,
) -> Tuple[np.ndarray, np.ndarray]:
    """Reference implementation: one symbolic propagation per input row.

    Semantically identical to :func:`collect_bound_arrays` but pays one full
    abstract-domain walk per sample.  Kept as the ground truth the batched
    path is pinned against (``tests/symbolic/test_batched.py``,
    ``tests/monitors/test_robust_fit_batched.py``) and as the baseline the
    robust-fit benchmark measures its speedup over.
    """
    if spec.layer >= monitored_layer:
        raise ConfigurationError(
            f"perturbation layer k_p={spec.layer} must be strictly before the "
            f"monitored layer k={monitored_layer}"
        )
    inputs = np.atleast_2d(np.asarray(inputs, dtype=np.float64))
    if spec.is_trivial:
        features = np.atleast_2d(network.forward_to(monitored_layer, inputs))
        return features, np.array(features, copy=True)
    lows: List[np.ndarray] = []
    highs: List[np.ndarray] = []
    for row in inputs:
        estimate = perturbation_estimate(network, row, monitored_layer, spec)
        lows.append(np.atleast_1d(estimate.low))
        highs.append(np.atleast_1d(estimate.high))
    return np.vstack(lows), np.vstack(highs)
