"""Common interface of all activation-pattern monitors.

Every monitor observes the activation vector of a single network layer
(optionally restricted to a subset of neurons), is fitted on the training
data set and afterwards answers, for any operational input, whether the
observed activation pattern lies outside the abstraction built from the
training data (``warn = True``) or inside it (``warn = False``).

The class hierarchy mirrors the paper:

* :class:`ActivationMonitor` — shared plumbing (layer selection, feature
  extraction, batched warnings, evaluation helpers);
* concrete standard monitors (min-max, Boolean pattern, interval pattern)
  fitted directly on feature vectors;
* robust variants fitted on the perturbation estimates of Definition 1,
  configured through a :class:`~repro.monitors.perturbation.PerturbationSpec`.

Batched API contract
--------------------
The batch path is authoritative: subclasses implement
``_verdicts_from_features`` (and optionally a faster ``_warn_from_features``)
over a 2-D feature matrix, and the single-sample ``verdict`` / ``warn``
wrappers delegate to it with a one-row batch.  Feature extraction is one
vectorised forward pass per batch; because BLAS kernels may differ in the
last float across batch sizes, comparisons against learned constants use
small scale-relative tolerances (see :mod:`repro.runtime.codec`) so batch
and single-sample verdicts agree on any workload.
``warn_batch_from_layer`` / ``verdict_batch_from_layer`` accept precomputed
full-layer activations, which is how the
:class:`~repro.runtime.engine.BatchScoringEngine` shares one forward pass
across every monitor fitted on the same network.

A monitor may additionally be *bound* to an engine (:meth:`bind_engine`):
feature extraction then goes through the engine's activation cache, and
robust fits pull their perturbation-estimate matrices from the engine's
bound cache — so several robust monitor families sharing one perturbation
model and training set pay for a single symbolic propagation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..exceptions import ConfigurationError, NotFittedError, ShapeError
from ..nn.network import Sequential
from .perturbation import PerturbationSpec, collect_bound_arrays

__all__ = ["MonitorVerdict", "ActivationMonitor"]


@dataclass
class MonitorVerdict:
    """Detailed outcome of a monitor query for a single input.

    ``warn`` is the paper's ``M(v_op) = true``; ``violations`` lists the
    indices of monitored neurons whose value fell outside the abstraction
    (empty for pattern monitors that only give a set-membership answer), and
    ``details`` carries monitor-specific diagnostic values.
    """

    warn: bool
    violations: Sequence[int] = field(default_factory=tuple)
    details: Dict[str, object] = field(default_factory=dict)

    def __bool__(self) -> bool:
        return self.warn


class ActivationMonitor:
    """Base class for monitors over a single monitored layer.

    Parameters
    ----------
    network:
        The trained, frozen network ``G``.
    layer_index:
        The monitored layer ``k`` (1-based, as in the paper).
    neuron_indices:
        Optional subset of neuron indices of layer ``k`` to monitor; ``None``
        monitors every neuron in the layer.
    """

    #: Human-readable monitor family name, overridden by subclasses.
    kind = "activation"

    def __init__(
        self,
        network: Sequential,
        layer_index: int,
        neuron_indices: Optional[Sequence[int]] = None,
    ) -> None:
        if not 1 <= layer_index <= network.num_layers:
            raise ConfigurationError(
                f"monitored layer {layer_index} outside the network's "
                f"[1, {network.num_layers}] range"
            )
        self.network = network
        self.layer_index = int(layer_index)
        layer_width = network.layer_output_dim(self.layer_index)
        if neuron_indices is None:
            self.neuron_indices = np.arange(layer_width)
        else:
            indices = np.asarray(sorted(set(int(i) for i in neuron_indices)), dtype=np.int64)
            if indices.size == 0:
                raise ConfigurationError("neuron_indices must not be empty")
            if indices.min() < 0 or indices.max() >= layer_width:
                raise ConfigurationError(
                    f"neuron indices must lie in [0, {layer_width})"
                )
            self.neuron_indices = indices
        self._fitted = False
        self._num_training_samples = 0
        self._engine = None
        #: Matcher-kernel back-end choice for pattern-set membership (None
        #: defers to a bound engine's suggestion, then the env/default).
        self.matcher_backend = None

    # ------------------------------------------------------------------
    # shared plumbing
    # ------------------------------------------------------------------
    @property
    def num_monitored_neurons(self) -> int:
        return int(self.neuron_indices.shape[0])

    @property
    def is_fitted(self) -> bool:
        return self._fitted

    @property
    def num_training_samples(self) -> int:
        """Number of training samples the abstraction was built from."""
        return self._num_training_samples

    def _require_fitted(self) -> None:
        if not self._fitted:
            raise NotFittedError(
                f"{self.__class__.__name__} must be fitted before use"
            )

    def bind_engine(self, engine) -> "ActivationMonitor":
        """Attach a :class:`~repro.runtime.engine.BatchScoringEngine`.

        A bound monitor routes feature extraction and (for robust variants)
        perturbation-estimate computation through the engine's caches, so
        every monitor bound to the same engine shares forward passes and
        symbolic propagations.  The engine must wrap this monitor's network;
        pass ``None`` to detach.  Returns ``self`` for chaining.

        Binding is meant for *batch* work — fitting and bulk evaluation.
        Keep per-frame deployment scoring unbound: a one-row ``warn`` through
        the cache pays fingerprinting plus an all-layers forward pass and
        churns the LRU for no reuse.  The builder/ensemble/class-conditional
        helpers therefore bind only for the duration of ``fit`` and detach
        before returning.
        """
        if engine is not None and getattr(engine, "network", None) is not self.network:
            raise ConfigurationError(
                "bind_engine needs an engine built on this monitor's network"
            )
        self._engine = engine
        return self

    def matcher_backend_choice(self):
        """Effective matcher-kernel choice for pattern sets built by ``fit``.

        The monitor's own ``matcher_backend`` wins; otherwise a bound
        engine's ``matcher_backend`` applies; ``None`` defers to the
        ``REPRO_MATCHER_BACKEND`` environment variable / ``numpy`` default
        at dispatch time.
        """
        if self.matcher_backend is not None:
            return self.matcher_backend
        return getattr(self._engine, "matcher_backend", None)

    def set_matcher_backend(self, backend) -> "ActivationMonitor":
        """Select the matcher kernel for this monitor's pattern membership.

        Takes effect immediately on an already-fitted pattern set (the
        stored patterns are untouched — verdicts are bit-identical across
        back-ends) and is remembered for subsequent refits.  Monitors
        without a pattern set (min-max family) record the choice but have
        no batched membership pass to re-bind.  Returns ``self``.
        """
        self.matcher_backend = backend
        patterns = getattr(self, "patterns", None)
        if patterns is not None and hasattr(patterns, "set_matcher_backend"):
            patterns.set_matcher_backend(backend)
        return self

    def features(self, inputs: np.ndarray) -> np.ndarray:
        """Monitored-layer feature vectors of ``inputs`` (always 2-D).

        One vectorised forward pass for the whole batch — the runtime hot
        path.  Fit and scoring both go through here, so abstractions and
        queries see the same arithmetic for identical batches.  Monitors
        bound to an engine read the pass from its activation cache (the same
        sequential layer walk, so results are identical).
        """
        inputs = np.atleast_2d(np.asarray(inputs, dtype=np.float64))
        if inputs.shape[0] == 0:
            return np.zeros((0, self.num_monitored_neurons))
        if self._engine is not None:
            features = self._engine.layer_features(inputs, self.layer_index)
        else:
            features = np.atleast_2d(self.network.forward_to(self.layer_index, inputs))
        return features[:, self.neuron_indices]

    def _perturbation_bound_arrays(
        self, inputs: np.ndarray, spec: PerturbationSpec
    ) -> "tuple[np.ndarray, np.ndarray]":
        """Full-layer ``(lows, highs)`` perturbation estimates of ``inputs``.

        Robust fits call this instead of
        :func:`~repro.monitors.perturbation.collect_bound_arrays` directly so
        that engine-bound monitors share cached propagations (one per
        ``(training set, layer, spec)`` across all monitor families).
        """
        if self._engine is not None:
            return self._engine.bound_arrays(inputs, self.layer_index, spec)
        return collect_bound_arrays(self.network, inputs, self.layer_index, spec)

    def features_from_layer(self, layer_activations: np.ndarray) -> np.ndarray:
        """Monitored-neuron slice of precomputed full-layer activations."""
        layer_activations = np.atleast_2d(np.asarray(layer_activations, dtype=np.float64))
        expected = self.network.layer_output_dim(self.layer_index)
        if layer_activations.shape[1] != expected:
            raise ShapeError(
                f"layer activations have width {layer_activations.shape[1]}, "
                f"expected {expected}"
            )
        return layer_activations[:, self.neuron_indices]

    def _select(self, low: np.ndarray, high: np.ndarray) -> "tuple[np.ndarray, np.ndarray]":
        """Restrict per-neuron bounds to the monitored neuron subset."""
        return low[self.neuron_indices], high[self.neuron_indices]

    # ------------------------------------------------------------------
    # API to be implemented by subclasses
    # ------------------------------------------------------------------
    def fit(self, training_inputs: np.ndarray) -> "ActivationMonitor":
        """Build the abstraction from the training data set ``D_tr``."""
        raise NotImplementedError

    def _verdicts_from_features(self, features: np.ndarray) -> List[MonitorVerdict]:
        """Family-specific batched kernel: one verdict per feature row."""
        raise NotImplementedError

    def _warn_from_features(self, features: np.ndarray) -> np.ndarray:
        """Warning flags per feature row; subclasses may vectorise further."""
        verdicts = self._verdicts_from_features(features)
        return np.fromiter((v.warn for v in verdicts), dtype=bool, count=len(verdicts))

    # ------------------------------------------------------------------
    # batched scoring API
    # ------------------------------------------------------------------
    def verdict_batch(self, inputs: np.ndarray) -> List[MonitorVerdict]:
        """Full verdicts for every row of ``inputs`` in one batched pass."""
        self._require_fitted()
        return self._verdicts_from_features(self.features(inputs))

    def warn_batch(self, inputs: np.ndarray) -> np.ndarray:
        """Vector of warning flags for every row of ``inputs``."""
        self._require_fitted()
        return self._warn_from_features(self.features(inputs))

    def verdict_batch_from_layer(self, layer_activations: np.ndarray) -> List[MonitorVerdict]:
        """Batched verdicts from precomputed full-layer activations."""
        self._require_fitted()
        return self._verdicts_from_features(self.features_from_layer(layer_activations))

    def warn_batch_from_layer(self, layer_activations: np.ndarray) -> np.ndarray:
        """Batched warning flags from precomputed full-layer activations."""
        self._require_fitted()
        return self._warn_from_features(self.features_from_layer(layer_activations))

    # ------------------------------------------------------------------
    # single-sample wrappers
    # ------------------------------------------------------------------
    def verdict(self, input_vector: np.ndarray) -> MonitorVerdict:
        """Full verdict (warning flag + diagnostics) for one input."""
        return self.verdict_batch(np.atleast_2d(np.asarray(input_vector, dtype=np.float64)))[0]

    def warn(self, input_vector: np.ndarray) -> bool:
        """The paper's ``M(v_op)``: True when the input looks out-of-ODD."""
        return bool(self.verdict(input_vector).warn)

    def warning_rate(self, inputs: np.ndarray) -> float:
        """Fraction of inputs that trigger a warning.

        On in-distribution data this is the false-positive rate; on
        out-of-ODD data it is the detection rate.
        """
        inputs = np.atleast_2d(np.asarray(inputs, dtype=np.float64))
        if inputs.shape[0] == 0:
            raise ShapeError("warning_rate needs at least one input")
        return float(np.mean(self.warn_batch(inputs)))

    def describe(self) -> Dict[str, object]:
        """Human-readable summary of the monitor configuration and state."""
        return {
            "kind": self.kind,
            "layer_index": self.layer_index,
            "num_monitored_neurons": self.num_monitored_neurons,
            "fitted": self._fitted,
            "num_training_samples": self._num_training_samples,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{self.__class__.__name__}(layer={self.layer_index}, "
            f"neurons={self.num_monitored_neurons}, fitted={self._fitted})"
        )
