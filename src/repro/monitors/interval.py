"""Interval (multi-bit) activation-pattern monitors (Section III-C).

Instead of a single on/off bit per neuron, the interval monitor encodes which
of several value intervals — delimited by per-neuron cut points
``c_j1 < c_j2 < ...`` — the neuron value falls into.  With ``m`` cut points
the code needs ``ceil(log2(m+1))`` bits; the paper's exposition uses 2 bits
(3 cut points), and the footnote observes that the scheme strictly
generalises both the min-max monitor and the on/off monitor.

The robust variant maps each neuron's perturbation-estimate bound
``[l_j, u_j]`` to the *set* of codes reachable by any value inside the bound
(a contiguous code range, thanks to monotonicity of the encoding); the
per-neuron code sets are inserted via the BDD ``word2set`` so the stored set
is the Cartesian product without enumeration.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from ..exceptions import ConfigurationError, ShapeError
from ..nn.network import Sequential
from ..bdd.patterns import PatternSet
from .base import ActivationMonitor, MonitorVerdict
from .encoding import bits_for_cuts, code_sets_of_bounds, codes_of_values
from .perturbation import PerturbationSpec, perturbation_estimates
from .thresholds import get_threshold_strategy, validate_cut_points

__all__ = ["IntervalPatternMonitor", "RobustIntervalPatternMonitor"]


class IntervalPatternMonitor(ActivationMonitor):
    """Standard multi-bit interval activation monitor.

    Parameters
    ----------
    num_cuts:
        Number of cut points per neuron (``num_cuts + 1`` interval codes,
        ``3`` reproduces the paper's 2-bit setup).
    cut_strategy:
        Name of the threshold strategy used to place the cut points when an
        explicit ``cut_points`` array is not given.
    cut_points:
        Optional explicit array of shape ``(num_monitored_neurons, num_cuts)``.
    """

    kind = "interval_pattern"

    def __init__(
        self,
        network: Sequential,
        layer_index: int,
        num_cuts: int = 3,
        cut_strategy: str = "percentile",
        cut_points: Optional[np.ndarray] = None,
        neuron_indices: Optional[Sequence[int]] = None,
    ) -> None:
        super().__init__(network, layer_index, neuron_indices)
        if num_cuts < 1:
            raise ConfigurationError("num_cuts must be at least 1")
        self.num_cuts = int(num_cuts)
        self.cut_strategy = cut_strategy
        self._explicit_cut_points = cut_points
        self.cut_points: Optional[np.ndarray] = None
        self.patterns: Optional[PatternSet] = None

    # ------------------------------------------------------------------
    @property
    def bits_per_neuron(self) -> int:
        """Bits used to encode one neuron's interval code."""
        return bits_for_cuts(self.num_cuts)

    def _resolve_cut_points(self, activations: np.ndarray) -> np.ndarray:
        if self._explicit_cut_points is not None:
            cuts = validate_cut_points(np.asarray(self._explicit_cut_points, dtype=np.float64))
            if cuts.shape != (self.num_monitored_neurons, self.num_cuts):
                raise ShapeError(
                    f"cut_points must have shape "
                    f"({self.num_monitored_neurons}, {self.num_cuts}), got {cuts.shape}"
                )
            return cuts
        strategy = get_threshold_strategy(self.cut_strategy)
        return validate_cut_points(strategy(activations, self.num_cuts))

    def _codes(self, feature: np.ndarray) -> List[int]:
        return [int(code) for code in codes_of_values(feature, self.cut_points)]

    # ------------------------------------------------------------------
    def fit(self, training_inputs: np.ndarray) -> "IntervalPatternMonitor":
        features = self.features(training_inputs)
        if features.shape[0] == 0:
            raise ShapeError("fit() needs at least one training input")
        self.cut_points = self._resolve_cut_points(features)
        self.patterns = PatternSet(
            self.num_monitored_neurons, bits_per_position=self.bits_per_neuron
        )
        for row in features:
            self.patterns.add_word(self._codes(row))
        self._fitted = True
        self._num_training_samples = int(features.shape[0])
        return self

    def update(self, inputs: np.ndarray) -> "IntervalPatternMonitor":
        """Fold additional data into the stored pattern set."""
        self._require_fitted()
        for row in self.features(inputs):
            self.patterns.add_word(self._codes(row))
            self._num_training_samples += 1
        return self

    # ------------------------------------------------------------------
    def verdict(self, input_vector: np.ndarray) -> MonitorVerdict:
        self._require_fitted()
        feature = self.features(input_vector)[0]
        codes = self._codes(feature)
        known = self.patterns.contains(codes)
        return MonitorVerdict(
            warn=not known,
            details={"codes": tuple(codes), "bits_per_neuron": self.bits_per_neuron},
        )

    def pattern_count(self) -> int:
        """Number of distinct code words in the abstraction."""
        self._require_fitted()
        return self.patterns.cardinality()

    def bdd_size(self) -> int:
        """Number of BDD nodes storing the abstraction."""
        self._require_fitted()
        return self.patterns.dag_size()

    def describe(self) -> Dict[str, object]:
        info = super().describe()
        info["num_cuts"] = self.num_cuts
        info["bits_per_neuron"] = self.bits_per_neuron
        info["cut_strategy"] = self.cut_strategy
        if self._fitted:
            info["pattern_count"] = self.pattern_count()
            info["bdd_size"] = self.bdd_size()
        return info


class RobustIntervalPatternMonitor(IntervalPatternMonitor):
    """Robust multi-bit interval monitor (Section III-C, Figure 1).

    Each training input contributes the Cartesian product of its per-neuron
    admissible code sets — the codes reachable by any value inside the
    perturbation-estimate bound ``[l_j, u_j]``.
    """

    kind = "robust_interval_pattern"

    def __init__(
        self,
        network: Sequential,
        layer_index: int,
        perturbation: PerturbationSpec,
        num_cuts: int = 3,
        cut_strategy: str = "percentile",
        cut_points: Optional[np.ndarray] = None,
        neuron_indices: Optional[Sequence[int]] = None,
    ) -> None:
        super().__init__(
            network,
            layer_index,
            num_cuts=num_cuts,
            cut_strategy=cut_strategy,
            cut_points=cut_points,
            neuron_indices=neuron_indices,
        )
        if perturbation.layer >= layer_index:
            raise ConfigurationError(
                "perturbation layer k_p must be strictly before the monitored layer"
            )
        self.perturbation = perturbation
        self._ambiguous_positions = 0

    def fit(self, training_inputs: np.ndarray) -> "RobustIntervalPatternMonitor":
        training_inputs = np.atleast_2d(np.asarray(training_inputs, dtype=np.float64))
        if training_inputs.shape[0] == 0:
            raise ShapeError("fit() needs at least one training input")
        features = self.features(training_inputs)
        self.cut_points = self._resolve_cut_points(features)
        self.patterns = PatternSet(
            self.num_monitored_neurons, bits_per_position=self.bits_per_neuron
        )
        self._ambiguous_positions = 0
        for estimate in perturbation_estimates(
            self.network, training_inputs, self.layer_index, self.perturbation
        ):
            low, high = self._select(estimate.low, estimate.high)
            code_sets = code_sets_of_bounds(low, high, self.cut_points)
            self._ambiguous_positions += sum(1 for s in code_sets if len(s) > 1)
            self.patterns.add_code_sets(code_sets)
        self._fitted = True
        self._num_training_samples = int(training_inputs.shape[0])
        return self

    def update(self, inputs: np.ndarray) -> "RobustIntervalPatternMonitor":
        self._require_fitted()
        inputs = np.atleast_2d(np.asarray(inputs, dtype=np.float64))
        for estimate in perturbation_estimates(
            self.network, inputs, self.layer_index, self.perturbation
        ):
            low, high = self._select(estimate.low, estimate.high)
            code_sets = code_sets_of_bounds(low, high, self.cut_points)
            self._ambiguous_positions += sum(1 for s in code_sets if len(s) > 1)
            self.patterns.add_code_sets(code_sets)
            self._num_training_samples += 1
        return self

    @property
    def ambiguous_position_fraction(self) -> float:
        """Average fraction of neurons per sample whose code was ambiguous."""
        self._require_fitted()
        total = self._num_training_samples * self.num_monitored_neurons
        return self._ambiguous_positions / total

    def describe(self) -> Dict[str, object]:
        info = super().describe()
        info["perturbation"] = self.perturbation.describe()
        if self._fitted:
            info["ambiguous_position_fraction"] = self.ambiguous_position_fraction
        return info
