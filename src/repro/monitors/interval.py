"""Interval (multi-bit) activation-pattern monitors (Section III-C).

Instead of a single on/off bit per neuron, the interval monitor encodes which
of several value intervals — delimited by per-neuron cut points
``c_j1 < c_j2 < ...`` — the neuron value falls into.  With ``m`` cut points
the code needs ``ceil(log2(m+1))`` bits; the paper's exposition uses 2 bits
(3 cut points), and the footnote observes that the scheme strictly
generalises both the min-max monitor and the on/off monitor.

The robust variant maps each neuron's perturbation-estimate bound
``[l_j, u_j]`` to the *range* of codes reachable by any value inside the
bound (contiguous, thanks to monotonicity of the encoding); the per-neuron
code ranges are bulk-inserted via the BDD ``word2set`` so the stored set is
the Cartesian product without enumeration.

Both variants run on the :mod:`repro.runtime` pattern codec: whole batches
are coded against the cut-point matrix in one vectorised pass and scored
through the pattern set's vectorised membership mirror.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..exceptions import ConfigurationError, NotFittedError, ShapeError
from ..nn.network import Sequential
from ..bdd.patterns import PatternSet
from ..runtime.codec import PatternCodec
from .base import ActivationMonitor, MonitorVerdict
from .encoding import bits_for_cuts
from .perturbation import PerturbationSpec
from .thresholds import get_threshold_strategy, validate_cut_points

__all__ = ["IntervalPatternMonitor", "RobustIntervalPatternMonitor"]


class IntervalPatternMonitor(ActivationMonitor):
    """Standard multi-bit interval activation monitor.

    Parameters
    ----------
    num_cuts:
        Number of cut points per neuron (``num_cuts + 1`` interval codes,
        ``3`` reproduces the paper's 2-bit setup).
    cut_strategy:
        Name of the threshold strategy used to place the cut points when an
        explicit ``cut_points`` array is not given.
    cut_points:
        Optional explicit array of shape ``(num_monitored_neurons, num_cuts)``.
    """

    kind = "interval_pattern"

    def __init__(
        self,
        network: Sequential,
        layer_index: int,
        num_cuts: int = 3,
        cut_strategy: str = "percentile",
        cut_points: Optional[np.ndarray] = None,
        neuron_indices: Optional[Sequence[int]] = None,
        matcher_backend=None,
    ) -> None:
        super().__init__(network, layer_index, neuron_indices)
        self.matcher_backend = matcher_backend
        if num_cuts < 1:
            raise ConfigurationError("num_cuts must be at least 1")
        self.num_cuts = int(num_cuts)
        self.cut_strategy = cut_strategy
        self._explicit_cut_points = cut_points
        self.cut_points: Optional[np.ndarray] = None
        self.patterns: Optional[PatternSet] = None
        self._codec: Optional[PatternCodec] = None

    # ------------------------------------------------------------------
    @property
    def bits_per_neuron(self) -> int:
        """Bits used to encode one neuron's interval code."""
        return bits_for_cuts(self.num_cuts)

    @property
    def codec(self) -> PatternCodec:
        """The fitted multi-bit pattern codec (features → packed words)."""
        if self._codec is None:
            if self.cut_points is None:
                raise NotFittedError("the codec exists only after fitting")
            self._codec = PatternCodec(self.cut_points)
        return self._codec

    def _resolve_cut_points(self, activations: np.ndarray) -> np.ndarray:
        if self._explicit_cut_points is not None:
            cuts = validate_cut_points(np.asarray(self._explicit_cut_points, dtype=np.float64))
            if cuts.shape != (self.num_monitored_neurons, self.num_cuts):
                raise ShapeError(
                    "cut_points must have shape "
                    f"({self.num_monitored_neurons}, {self.num_cuts}), got {cuts.shape}"
                )
            return cuts
        strategy = get_threshold_strategy(self.cut_strategy)
        return validate_cut_points(strategy(activations, self.num_cuts))

    def _set_cut_points(self, cut_points: np.ndarray) -> None:
        self.cut_points = cut_points
        self._codec = None

    def _codes(self, feature: np.ndarray) -> List[int]:
        return [int(code) for code in self.codec.codes(np.atleast_2d(feature))[0]]

    # ------------------------------------------------------------------
    def fit(self, training_inputs: np.ndarray) -> "IntervalPatternMonitor":
        features = self.features(training_inputs)
        if features.shape[0] == 0:
            raise ShapeError("fit() needs at least one training input")
        self._set_cut_points(self._resolve_cut_points(features))
        self.patterns = PatternSet(
            self.num_monitored_neurons,
            bits_per_position=self.bits_per_neuron,
            matcher_backend=self.matcher_backend_choice(),
        )
        self.patterns.add_patterns(self.codec.codes(features))
        self._fitted = True
        self._num_training_samples = int(features.shape[0])
        return self

    def update(self, inputs: np.ndarray) -> "IntervalPatternMonitor":
        """Fold additional data into the stored pattern set."""
        self._require_fitted()
        features = self.features(inputs)
        self.patterns.add_patterns(self.codec.codes(features))
        self._num_training_samples += int(features.shape[0])
        return self

    # ------------------------------------------------------------------
    def _warn_from_features(self, features: np.ndarray) -> np.ndarray:
        return ~self.patterns.contains_batch(self.codec.codes(features))

    def _verdicts_from_features(self, features: np.ndarray) -> List[MonitorVerdict]:
        codes = self.codec.codes(features)
        known = self.patterns.contains_batch(codes)
        return [
            MonitorVerdict(
                warn=bool(not row_known),
                details={
                    "codes": tuple(int(code) for code in row_codes),
                    "bits_per_neuron": self.bits_per_neuron,
                },
            )
            for row_codes, row_known in zip(codes, known)
        ]

    def pattern_count(self) -> int:
        """Number of distinct code words in the abstraction."""
        self._require_fitted()
        return self.patterns.cardinality()

    def bdd_size(self) -> int:
        """Number of BDD nodes storing the abstraction."""
        self._require_fitted()
        return self.patterns.dag_size()

    def describe(self) -> Dict[str, object]:
        info = super().describe()
        info["num_cuts"] = self.num_cuts
        info["bits_per_neuron"] = self.bits_per_neuron
        info["cut_strategy"] = self.cut_strategy
        if self._fitted:
            info["pattern_count"] = self.pattern_count()
            info["bdd_size"] = self.bdd_size()
        return info


class RobustIntervalPatternMonitor(IntervalPatternMonitor):
    """Robust multi-bit interval monitor (Section III-C, Figure 1).

    Each training input contributes the Cartesian product of its per-neuron
    admissible code ranges — the codes reachable by any value inside the
    perturbation-estimate bound ``[l_j, u_j]`` — bulk-inserted per batch.
    """

    kind = "robust_interval_pattern"

    def __init__(
        self,
        network: Sequential,
        layer_index: int,
        perturbation: PerturbationSpec,
        num_cuts: int = 3,
        cut_strategy: str = "percentile",
        cut_points: Optional[np.ndarray] = None,
        neuron_indices: Optional[Sequence[int]] = None,
        matcher_backend=None,
    ) -> None:
        super().__init__(
            network,
            layer_index,
            num_cuts=num_cuts,
            cut_strategy=cut_strategy,
            cut_points=cut_points,
            neuron_indices=neuron_indices,
            matcher_backend=matcher_backend,
        )
        if perturbation.layer >= layer_index:
            raise ConfigurationError(
                "perturbation layer k_p must be strictly before the monitored layer"
            )
        self.perturbation = perturbation
        self._ambiguous_positions = 0

    def _insert_robust_batch(self, inputs: np.ndarray) -> None:
        lows, highs = self._perturbation_bound_arrays(inputs, self.perturbation)
        lows = lows[:, self.neuron_indices]
        highs = highs[:, self.neuron_indices]
        low_codes, high_codes = self.codec.bound_codes(lows, highs)
        self._ambiguous_positions += int((high_codes > low_codes).sum())
        self.patterns.add_range_patterns(low_codes, high_codes)

    def fit(self, training_inputs: np.ndarray) -> "RobustIntervalPatternMonitor":
        training_inputs = np.atleast_2d(np.asarray(training_inputs, dtype=np.float64))
        if training_inputs.shape[0] == 0:
            raise ShapeError("fit() needs at least one training input")
        features = self.features(training_inputs)
        self._set_cut_points(self._resolve_cut_points(features))
        self.patterns = PatternSet(
            self.num_monitored_neurons,
            bits_per_position=self.bits_per_neuron,
            matcher_backend=self.matcher_backend_choice(),
        )
        self._ambiguous_positions = 0
        self._insert_robust_batch(training_inputs)
        self._fitted = True
        self._num_training_samples = int(training_inputs.shape[0])
        return self

    def update(self, inputs: np.ndarray) -> "RobustIntervalPatternMonitor":
        self._require_fitted()
        inputs = np.atleast_2d(np.asarray(inputs, dtype=np.float64))
        self._insert_robust_batch(inputs)
        self._num_training_samples += int(inputs.shape[0])
        return self

    @property
    def ambiguous_position_fraction(self) -> float:
        """Average fraction of neurons per sample whose code was ambiguous."""
        self._require_fitted()
        total = self._num_training_samples * self.num_monitored_neurons
        return self._ambiguous_positions / total

    def describe(self) -> Dict[str, object]:
        info = super().describe()
        info["perturbation"] = self.perturbation.describe()
        if self._fitted:
            info["ambiguous_position_fraction"] = self.ambiguous_position_fraction
        return info
