"""Threshold (cut-point) selection strategies for pattern monitors.

Boolean on/off monitors need one constant ``c_j`` per monitored neuron;
interval (multi-bit) monitors need an increasing sequence of cut points
``c_j1 < c_j2 < ... `` per neuron.  The paper leaves the constants
"pre-defined" and mentions two natural choices — the sign of the neuron value
and the average of all visited values.  This module implements those and a
few additional strategies (percentiles, equal-width range splits, the
min/max-derived cuts that make the 2-bit monitor a strict generalisation of
the min-max monitor).

Every strategy consumes the matrix of visited activation values (rows =
training samples, columns = monitored neurons) and returns an array of cut
points with shape ``(num_neurons, num_cuts)`` where each row is strictly
increasing.
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

from ..exceptions import ConfigurationError, ShapeError

__all__ = [
    "zero_thresholds",
    "mean_thresholds",
    "median_thresholds",
    "percentile_thresholds",
    "equal_width_thresholds",
    "range_extension_thresholds",
    "get_threshold_strategy",
    "validate_cut_points",
]


def _validate_activations(activations: np.ndarray) -> np.ndarray:
    activations = np.asarray(activations, dtype=np.float64)
    if activations.ndim != 2 or activations.shape[0] == 0:
        raise ShapeError(
            "activations must be a non-empty 2-D array of shape "
            "(num_samples, num_neurons)"
        )
    return activations


def validate_cut_points(cut_points: np.ndarray) -> np.ndarray:
    """Check that every row of ``cut_points`` is strictly increasing."""
    cut_points = np.asarray(cut_points, dtype=np.float64)
    if cut_points.ndim != 2:
        raise ShapeError("cut points must be a 2-D array (num_neurons, num_cuts)")
    if cut_points.shape[1] >= 2 and not np.all(np.diff(cut_points, axis=1) > 0):
        raise ConfigurationError("cut points must be strictly increasing per neuron")
    return cut_points


def _spread_ties(cut_points: np.ndarray, scale: np.ndarray) -> np.ndarray:
    """Break ties in cut-point rows so rows become strictly increasing.

    Data-driven strategies (percentiles of constant neurons, for instance)
    can produce repeated values; a tiny neuron-scale-relative jitter restores
    strict monotonicity without materially changing the abstraction.
    """
    num_cuts = cut_points.shape[1]
    if num_cuts < 2:
        return cut_points
    epsilon = np.maximum(scale, 1.0)[:, None] * 1e-9
    offsets = np.arange(num_cuts)[None, :] * epsilon
    adjusted = np.maximum.accumulate(cut_points, axis=1) + offsets
    return adjusted


def zero_thresholds(activations: np.ndarray, num_cuts: int = 1) -> np.ndarray:
    """Cut points at zero (the "sign of the neuron value" choice).

    With more than one cut the remaining cuts are spread across the visited
    value range so that all intervals remain meaningful.
    """
    activations = _validate_activations(activations)
    num_neurons = activations.shape[1]
    if num_cuts == 1:
        return np.zeros((num_neurons, 1))
    return equal_width_thresholds(activations, num_cuts)


def mean_thresholds(activations: np.ndarray, num_cuts: int = 1) -> np.ndarray:
    """Single cut at the mean of visited values; extra cuts at ±k·stddev."""
    activations = _validate_activations(activations)
    mean = activations.mean(axis=0)
    if num_cuts == 1:
        return mean[:, None]
    std = activations.std(axis=0)
    half = (num_cuts - 1) / 2.0
    offsets = np.linspace(-half, half, num_cuts)
    cuts = mean[:, None] + offsets[None, :] * np.maximum(std, 1e-9)[:, None]
    return _spread_ties(cuts, np.abs(mean) + std)


def median_thresholds(activations: np.ndarray, num_cuts: int = 1) -> np.ndarray:
    """Cut points at evenly spaced quantiles centred on the median."""
    return percentile_thresholds(activations, num_cuts)


def percentile_thresholds(activations: np.ndarray, num_cuts: int = 1) -> np.ndarray:
    """Cut points at evenly spaced percentiles of the visited values.

    ``num_cuts = 3`` gives the 25/50/75-percentile cuts, which balances the
    population of the four 2-bit codes.
    """
    activations = _validate_activations(activations)
    if num_cuts < 1:
        raise ConfigurationError("num_cuts must be at least 1")
    quantiles = np.linspace(0.0, 1.0, num_cuts + 2)[1:-1]
    cuts = np.quantile(activations, quantiles, axis=0).T
    scale = np.abs(activations).max(axis=0)
    return validate_cut_points(_spread_ties(cuts, scale))


def equal_width_thresholds(activations: np.ndarray, num_cuts: int = 1) -> np.ndarray:
    """Cut points splitting the visited range into equal-width intervals."""
    activations = _validate_activations(activations)
    if num_cuts < 1:
        raise ConfigurationError("num_cuts must be at least 1")
    low = activations.min(axis=0)
    high = activations.max(axis=0)
    fractions = np.linspace(0.0, 1.0, num_cuts + 2)[1:-1]
    cuts = low[:, None] + fractions[None, :] * (high - low)[:, None]
    scale = np.abs(activations).max(axis=0)
    return validate_cut_points(_spread_ties(cuts, scale))


def range_extension_thresholds(
    activations: np.ndarray, num_cuts: int = 3, margin: float = 0.0
) -> np.ndarray:
    """Min/max-derived cuts that make the 2-bit monitor generalise min-max.

    Following the paper's footnote, the top cut is the maximum visited value,
    the second cut is the minimum visited value and the remaining (lowest)
    cuts are pushed towards ``-inf`` (here: far below the visited range).
    A 2-bit monitor with these cuts flags exactly the values outside the
    visited ``[min, max]`` envelope.
    """
    activations = _validate_activations(activations)
    if num_cuts < 2:
        raise ConfigurationError("range extension needs at least 2 cuts")
    low = activations.min(axis=0)
    high = activations.max(axis=0)
    span = np.maximum(high - low, 1e-9)
    top = high + margin * span
    second = low - margin * span
    cuts = np.empty((activations.shape[1], num_cuts))
    cuts[:, -1] = top
    cuts[:, -2] = second
    for extra in range(num_cuts - 2):
        cuts[:, num_cuts - 3 - extra] = second - (extra + 1) * (span + 1.0) * 10.0
    return validate_cut_points(cuts)


_STRATEGIES: Dict[str, Callable[..., np.ndarray]] = {
    "zero": zero_thresholds,
    "sign": zero_thresholds,
    "mean": mean_thresholds,
    "median": median_thresholds,
    "percentile": percentile_thresholds,
    "equal_width": equal_width_thresholds,
    "range_extension": range_extension_thresholds,
}


def get_threshold_strategy(name: str) -> Callable[..., np.ndarray]:
    """Return a threshold strategy callable from its registry ``name``."""
    try:
        return _STRATEGIES[name]
    except KeyError as exc:
        known = ", ".join(sorted(_STRATEGIES))
        raise ConfigurationError(
            f"unknown threshold strategy '{name}'; known strategies: {known}"
        ) from exc
