"""Interval-code encodings used by pattern monitors.

Two families of encodings are provided.

**General encoding** (used by the monitors for any bit width): per neuron, an
increasing sequence of cut points ``c_1 < ... < c_m`` splits the real line
into ``m + 1`` half-open intervals

    I_0 = (−∞, c_1],  I_1 = (c_1, c_2],  ...,  I_m = (c_m, ∞)

and the code of a value is the index of the interval containing it, i.e. the
number of cut points strictly below the value.  The code is monotone
non-decreasing in the value, so the set of codes reachable by any value in a
bound ``[l, u]`` is exactly the contiguous range ``code(l) .. code(u)`` — the
observation that makes the robust interval abstraction of Section III-C cheap
to compute and guarantees it covers the standard code of every value inside
the bound.

**Paper 2-bit encoding** (Figure 1 reproduction): the paper's Section III-C
uses slightly different boundary conventions (``bj = 10`` for
``c_3 ≥ v ≥ c_2`` etc.); :func:`paper_code_2bit` and
:func:`paper_robust_code_set_2bit` implement that exact ten-case table so the
E3 benchmark can reproduce Figure 1 literally.
"""

from __future__ import annotations

from typing import FrozenSet, List, Sequence, Tuple

import numpy as np

from ..exceptions import ConfigurationError, ShapeError

__all__ = [
    "code_of_value",
    "codes_of_values",
    "code_range_of_bound",
    "code_sets_of_bounds",
    "num_codes",
    "bits_for_cuts",
    "paper_code_2bit",
    "paper_robust_code_set_2bit",
]


def _validate_cuts(cut_points: np.ndarray) -> np.ndarray:
    cut_points = np.asarray(cut_points, dtype=np.float64)
    if cut_points.ndim == 1:
        cut_points = cut_points[None, :]
    if cut_points.shape[1] >= 2 and not np.all(np.diff(cut_points, axis=1) > 0):
        raise ConfigurationError("cut points must be strictly increasing per neuron")
    return cut_points


def num_codes(num_cuts: int) -> int:
    """Number of interval codes produced by ``num_cuts`` cut points."""
    if num_cuts < 1:
        raise ConfigurationError("at least one cut point is required")
    return num_cuts + 1


def bits_for_cuts(num_cuts: int) -> int:
    """Number of bits needed to store a code over ``num_cuts`` cut points."""
    return max(1, int(np.ceil(np.log2(num_codes(num_cuts)))))


def code_of_value(value: float, cuts: Sequence[float]) -> int:
    """Interval code of a scalar ``value`` for one neuron's cut points."""
    cuts = np.asarray(cuts, dtype=np.float64)
    return int(np.sum(value > cuts))


def codes_of_values(values: np.ndarray, cut_points: np.ndarray) -> np.ndarray:
    """Vectorised interval codes.

    ``values`` has shape ``(num_neurons,)`` or ``(batch, num_neurons)``;
    ``cut_points`` has shape ``(num_neurons, num_cuts)``.  The result has the
    same leading shape as ``values`` with integer codes.
    """
    cut_points = _validate_cuts(cut_points)
    values = np.asarray(values, dtype=np.float64)
    squeeze = values.ndim == 1
    values_2d = np.atleast_2d(values)
    if values_2d.shape[1] != cut_points.shape[0]:
        raise ShapeError(
            f"values have {values_2d.shape[1]} neurons but cut_points describe "
            f"{cut_points.shape[0]}"
        )
    codes = (values_2d[:, :, None] > cut_points[None, :, :]).sum(axis=2)
    codes = codes.astype(np.int64)
    return codes[0] if squeeze else codes


def code_range_of_bound(
    low: float, high: float, cuts: Sequence[float]
) -> Tuple[int, int]:
    """Lowest and highest code reachable by any value in ``[low, high]``."""
    if high < low:
        raise ShapeError("bound upper end below lower end")
    return code_of_value(low, cuts), code_of_value(high, cuts)


def code_sets_of_bounds(
    low: np.ndarray, high: np.ndarray, cut_points: np.ndarray
) -> List[FrozenSet[int]]:
    """Per-neuron sets of codes reachable inside the bounds ``[low, high]``.

    Because the code function is monotone, each set is the contiguous range
    between the code of the lower and the code of the upper bound; this is the
    robust abstraction function ``ab_R`` of Section III-C for arbitrary bit
    widths.
    """
    cut_points = _validate_cuts(cut_points)
    low = np.asarray(low, dtype=np.float64).reshape(-1)
    high = np.asarray(high, dtype=np.float64).reshape(-1)
    if low.shape[0] != cut_points.shape[0] or high.shape[0] != cut_points.shape[0]:
        raise ShapeError("bounds and cut points disagree on the number of neurons")
    low_codes = codes_of_values(low, cut_points)
    high_codes = codes_of_values(high, cut_points)
    return [
        frozenset(range(int(lo), int(hi) + 1))
        for lo, hi in zip(low_codes, high_codes)
    ]


# ----------------------------------------------------------------------
# Paper Figure 1: the exact 2-bit case table
# ----------------------------------------------------------------------
def _check_three_cuts(c1: float, c2: float, c3: float) -> None:
    if not c1 < c2 < c3:
        raise ConfigurationError("the 2-bit encoding requires c1 < c2 < c3")


def paper_code_2bit(value: float, c1: float, c2: float, c3: float) -> int:
    """Standard 2-bit code of Section III-C (codes 0b00..0b11 as integers).

    * ``11`` (3) if ``v > c3``
    * ``10`` (2) if ``c3 ≥ v ≥ c2``
    * ``01`` (1) if ``c2 > v > c1``
    * ``00`` (0) otherwise (``v ≤ c1``)
    """
    _check_three_cuts(c1, c2, c3)
    if value > c3:
        return 3
    if c3 >= value >= c2:
        return 2
    if c2 > value > c1:
        return 1
    return 0


def paper_robust_code_set_2bit(
    low: float, high: float, c1: float, c2: float, c3: float
) -> FrozenSet[int]:
    """Robust 2-bit code set of Section III-C — the paper's ten-case table.

    Given a sound neuron bound ``[low, high]`` and cut points
    ``c1 < c2 < c3``, return the set of 2-bit codes the monitor must admit.
    The cases are transcribed literally from the paper; the final catch-all
    returns the full code set ``{00, 01, 10, 11}``.
    """
    _check_three_cuts(c1, c2, c3)
    if high < low:
        raise ShapeError("bound upper end below lower end")
    l, u = low, high
    if l > c3:
        return frozenset({3})
    if c3 >= u >= l >= c2:
        return frozenset({2})
    if c2 > u >= l > c1:
        return frozenset({1})
    if c1 >= u:
        return frozenset({0})
    if c2 > u > c1 and c1 >= l:
        return frozenset({0, 1})
    if c3 >= u >= c2 and c2 > l > c1:
        return frozenset({1, 2})
    if u > c3 and c3 >= l >= c2:
        return frozenset({2, 3})
    if c1 >= l and c3 >= u >= c2:
        return frozenset({0, 1, 2})
    if u > c3 and c2 > l > c1:
        return frozenset({1, 2, 3})
    return frozenset({0, 1, 2, 3})
