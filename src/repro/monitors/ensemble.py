"""Combining several monitors into one decision.

The paper notes that extending the simplistic single-layer setup to
multi-layer monitoring is straightforward; :class:`MonitorEnsemble` provides
that extension.  Member monitors (typically the same family applied to
different layers, or different families on the same layer) are fitted
together and their warnings combined with a configurable voting rule:

* ``"any"`` — warn when at least one member warns (highest detection rate);
* ``"all"`` — warn only when every member warns (lowest false-positive rate);
* ``"majority"`` — warn when more than half of the members warn;
* an integer ``k`` — warn when at least ``k`` members warn.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Union

import numpy as np

from ..exceptions import ConfigurationError, ShapeError
from .base import ActivationMonitor, MonitorVerdict

__all__ = ["MonitorEnsemble"]


class MonitorEnsemble:
    """Combine the verdicts of several fitted or unfitted monitors."""

    def __init__(
        self,
        monitors: Sequence[ActivationMonitor],
        vote: Union[str, int] = "any",
    ) -> None:
        if not monitors:
            raise ConfigurationError("an ensemble needs at least one monitor")
        self.monitors: List[ActivationMonitor] = list(monitors)
        self.vote = vote
        self._threshold = self._resolve_threshold(vote, len(self.monitors))

    @staticmethod
    def _resolve_threshold(vote: Union[str, int], count: int) -> int:
        if isinstance(vote, int):
            if not 1 <= vote <= count:
                raise ConfigurationError(
                    f"vote threshold {vote} outside [1, {count}]"
                )
            return vote
        if vote == "any":
            return 1
        if vote == "all":
            return count
        if vote == "majority":
            return count // 2 + 1
        raise ConfigurationError(
            f"unknown vote rule '{vote}'; use 'any', 'all', 'majority' or an integer"
        )

    # ------------------------------------------------------------------
    @property
    def is_fitted(self) -> bool:
        return all(monitor.is_fitted for monitor in self.monitors)

    def fit(self, training_inputs: np.ndarray) -> "MonitorEnsemble":
        """Fit every member monitor on the same training data."""
        for monitor in self.monitors:
            monitor.fit(training_inputs)
        return self

    def verdict(self, input_vector: np.ndarray) -> MonitorVerdict:
        member_verdicts = [monitor.verdict(input_vector) for monitor in self.monitors]
        votes = sum(1 for verdict in member_verdicts if verdict.warn)
        return MonitorVerdict(
            warn=votes >= self._threshold,
            details={
                "votes": votes,
                "threshold": self._threshold,
                "member_warnings": tuple(v.warn for v in member_verdicts),
            },
        )

    def warn(self, input_vector: np.ndarray) -> bool:
        return self.verdict(input_vector).warn

    def warn_batch(self, inputs: np.ndarray) -> np.ndarray:
        inputs = np.atleast_2d(np.asarray(inputs, dtype=np.float64))
        return np.array([self.warn(row) for row in inputs], dtype=bool)

    def warning_rate(self, inputs: np.ndarray) -> float:
        inputs = np.atleast_2d(np.asarray(inputs, dtype=np.float64))
        if inputs.shape[0] == 0:
            raise ShapeError("warning_rate needs at least one input")
        return float(np.mean(self.warn_batch(inputs)))

    def describe(self) -> Dict[str, object]:
        return {
            "vote": self.vote,
            "threshold": self._threshold,
            "members": [monitor.describe() for monitor in self.monitors],
        }

    def __len__(self) -> int:
        return len(self.monitors)
