"""Combining several monitors into one decision.

The paper notes that extending the simplistic single-layer setup to
multi-layer monitoring is straightforward; :class:`MonitorEnsemble` provides
that extension.  Member monitors (typically the same family applied to
different layers, or different families on the same layer) are fitted
together and their warnings combined with a configurable voting rule:

* ``"any"`` — warn when at least one member warns (highest detection rate);
* ``"all"`` — warn only when every member warns (lowest false-positive rate);
* ``"majority"`` — warn when more than half of the members warn;
* an integer ``k`` — warn when at least ``k`` members warn.

Batch scoring shares forward passes: members fitted on the same network are
fed from one :class:`~repro.runtime.engine.BatchScoringEngine` activation
cache, so an ensemble over ``m`` layers of one network costs one forward
pass per batch instead of ``m``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from ..exceptions import ConfigurationError, ShapeError
from ..runtime.engine import BatchScoringEngine
from .base import ActivationMonitor, MonitorVerdict

__all__ = ["MonitorEnsemble"]


class MonitorEnsemble:
    """Combine the verdicts of several fitted or unfitted monitors."""

    def __init__(
        self,
        monitors: Sequence[ActivationMonitor],
        vote: Union[str, int] = "any",
    ) -> None:
        if not monitors:
            raise ConfigurationError("an ensemble needs at least one monitor")
        self.monitors: List[ActivationMonitor] = list(monitors)
        self.vote = vote
        self._threshold = self._resolve_threshold(vote, len(self.monitors))
        self._engines: Dict[int, BatchScoringEngine] = {}

    @staticmethod
    def _resolve_threshold(vote: Union[str, int], count: int) -> int:
        if isinstance(vote, int):
            if not 1 <= vote <= count:
                raise ConfigurationError(
                    f"vote threshold {vote} outside [1, {count}]"
                )
            return vote
        if vote == "any":
            return 1
        if vote == "all":
            return count
        if vote == "majority":
            return count // 2 + 1
        raise ConfigurationError(
            f"unknown vote rule '{vote}'; use 'any', 'all', 'majority' or an integer"
        )

    # ------------------------------------------------------------------
    def set_matcher_backend(self, backend) -> "MonitorEnsemble":
        """Select the matcher kernel for every member's pattern membership.

        Threads the back-end through each member that supports it (pattern
        families re-bind their live pattern sets; min-max members record the
        choice only).  Verdicts are unchanged — back-ends are bit-for-bit
        equivalent — so this is safe on a serving ensemble.  Returns
        ``self``.
        """
        for monitor in self.monitors:
            setter = getattr(monitor, "set_matcher_backend", None)
            if setter is not None:
                setter(backend)
        return self

    # ------------------------------------------------------------------
    @property
    def is_fitted(self) -> bool:
        return all(monitor.is_fitted for monitor in self.monitors)

    def fit(self, training_inputs: np.ndarray) -> "MonitorEnsemble":
        """Fit every member monitor on the same training data.

        Unbound members sharing a network are bound to the ensemble's
        per-network engine for the duration of the fit, so their fits share
        forward passes and — for robust members with the same perturbation
        model — one symbolic propagation of the training set instead of one
        per member.  The temporary bindings are detached afterwards (keeping
        members' per-frame scoring engine-free); members the caller already
        bound to an engine keep that binding and its caches.
        """
        ensemble_bound = []
        try:
            for monitor in self.monitors:
                if getattr(monitor, "_engine", None) is None and hasattr(
                    monitor, "bind_engine"
                ):
                    engine = self._engine_for(monitor)
                    if engine is not None:
                        monitor.bind_engine(engine)
                        ensemble_bound.append(monitor)
                monitor.fit(training_inputs)
        finally:
            for monitor in ensemble_bound:
                monitor.bind_engine(None)
            # Fit-time scratch (training-set activations and bound matrices)
            # is not needed for scoring; drop it instead of letting it age
            # out of the LRU while eval batches come in.
            for engine in self._engines.values():
                engine.cache.clear()
        return self

    # ------------------------------------------------------------------
    def _engine_for(self, monitor: ActivationMonitor) -> Optional[BatchScoringEngine]:
        network = getattr(monitor, "network", None)
        if network is None or not hasattr(monitor, "warn_batch_from_layer"):
            return None
        key = id(network)
        engine = self._engines.get(key)
        if engine is None:
            engine = BatchScoringEngine(network)
            self._engines[key] = engine
        return engine

    def _member_warn_matrix(self, inputs: np.ndarray) -> np.ndarray:
        """``(num_members, N)`` warning matrix with shared forward passes."""
        rows = []
        for monitor in self.monitors:
            engine = self._engine_for(monitor)
            if engine is not None:
                activations = engine.layer_features(inputs, monitor.layer_index)
                rows.append(monitor.warn_batch_from_layer(activations))
            else:
                rows.append(np.asarray(monitor.warn_batch(inputs), dtype=bool))
        return np.vstack(rows) if rows else np.zeros((0, inputs.shape[0]), dtype=bool)

    def warn_batch(self, inputs: np.ndarray) -> np.ndarray:
        inputs = np.atleast_2d(np.asarray(inputs, dtype=np.float64))
        member_warnings = self._member_warn_matrix(inputs)
        votes = member_warnings.sum(axis=0)
        return votes >= self._threshold

    def verdict_batch(self, inputs: np.ndarray) -> List[MonitorVerdict]:
        inputs = np.atleast_2d(np.asarray(inputs, dtype=np.float64))
        member_warnings = self._member_warn_matrix(inputs)
        votes = member_warnings.sum(axis=0)
        return [
            MonitorVerdict(
                warn=bool(row_votes >= self._threshold),
                details={
                    "votes": int(row_votes),
                    "threshold": self._threshold,
                    "member_warnings": tuple(bool(w) for w in member_warnings[:, index]),
                },
            )
            for index, row_votes in enumerate(votes)
        ]

    def verdict(self, input_vector: np.ndarray) -> MonitorVerdict:
        return self.verdict_batch(
            np.atleast_2d(np.asarray(input_vector, dtype=np.float64))
        )[0]

    def warn(self, input_vector: np.ndarray) -> bool:
        return bool(self.verdict(input_vector).warn)

    def warning_rate(self, inputs: np.ndarray) -> float:
        inputs = np.atleast_2d(np.asarray(inputs, dtype=np.float64))
        if inputs.shape[0] == 0:
            raise ShapeError("warning_rate needs at least one input")
        return float(np.mean(self.warn_batch(inputs)))

    def describe(self) -> Dict[str, object]:
        return {
            "vote": self.vote,
            "threshold": self._threshold,
            "members": [monitor.describe() for monitor in self.monitors],
        }

    def __len__(self) -> int:
        return len(self.monitors)
