"""Neuron activation-pattern monitors — the paper's primary contribution.

Three monitor families, each with a standard and a provably-robust variant:

* :class:`MinMaxMonitor` / :class:`RobustMinMaxMonitor` — per-neuron value
  envelopes;
* :class:`BooleanPatternMonitor` / :class:`RobustBooleanPatternMonitor` —
  on/off activation words stored in a BDD, with don't-care expansion for the
  robust construction;
* :class:`IntervalPatternMonitor` / :class:`RobustIntervalPatternMonitor` —
  multi-bit interval codes per neuron (Section III-C, Figure 1).

Robust variants are parameterised by a :class:`PerturbationSpec`
``(Δ, k_p, back-end)`` and fitted on the perturbation estimates of
Definition 1, which yields the Lemma 1 guarantee: an input whose layer-``k_p``
representation is within ``Δ`` of some training input never triggers a
warning.
"""

from .base import ActivationMonitor, MonitorVerdict
from .boolean import BooleanPatternMonitor, RobustBooleanPatternMonitor
from .builder import MONITOR_FAMILIES, ClassConditionalMonitor, MonitorBuilder
from .encoding import (
    bits_for_cuts,
    code_of_value,
    code_range_of_bound,
    code_sets_of_bounds,
    codes_of_values,
    num_codes,
    paper_code_2bit,
    paper_robust_code_set_2bit,
)
from .ensemble import MonitorEnsemble
from .fingerprint import monitor_fingerprint
from .interval import IntervalPatternMonitor, RobustIntervalPatternMonitor
from .minmax import MinMaxMonitor, RobustMinMaxMonitor
from .perturbation import PerturbationSpec, perturbation_estimate, perturbation_estimates
from .quantitative import EnvelopeDistanceMonitor, PatternDistanceMonitor
from .registry import MonitorRegistry
from .serialization import load_monitor, save_monitor
from .thresholds import (
    equal_width_thresholds,
    get_threshold_strategy,
    mean_thresholds,
    median_thresholds,
    percentile_thresholds,
    range_extension_thresholds,
    validate_cut_points,
    zero_thresholds,
)

__all__ = [
    "ActivationMonitor",
    "MonitorVerdict",
    "MinMaxMonitor",
    "RobustMinMaxMonitor",
    "BooleanPatternMonitor",
    "RobustBooleanPatternMonitor",
    "IntervalPatternMonitor",
    "RobustIntervalPatternMonitor",
    "MonitorBuilder",
    "ClassConditionalMonitor",
    "MonitorEnsemble",
    "MonitorRegistry",
    "MONITOR_FAMILIES",
    "PerturbationSpec",
    "EnvelopeDistanceMonitor",
    "PatternDistanceMonitor",
    "save_monitor",
    "load_monitor",
    "monitor_fingerprint",
    "perturbation_estimate",
    "perturbation_estimates",
    "code_of_value",
    "codes_of_values",
    "code_range_of_bound",
    "code_sets_of_bounds",
    "num_codes",
    "bits_for_cuts",
    "paper_code_2bit",
    "paper_robust_code_set_2bit",
    "zero_thresholds",
    "mean_thresholds",
    "median_thresholds",
    "percentile_thresholds",
    "equal_width_thresholds",
    "range_extension_thresholds",
    "get_threshold_strategy",
    "validate_cut_points",
]
