"""Quantitative (score-based) activation monitors.

The binary monitors of the paper answer "inside or outside the abstraction".
Follow-up work the paper cites (Lukina, Schilling, Henzinger — "Into the
unknown: active monitoring of neural networks", reference [11]) replaces the
binary decision by a *quantitative* one: how far is the observed activation
from the abstraction?  A score permits threshold tuning after deployment,
ROC-style evaluation, and graceful degradation policies (e.g. slow down at a
medium score, hand over at a high score).

Two scores are provided, one per abstraction family:

* :class:`EnvelopeDistanceMonitor` — scaled distance of the feature vector to
  the (standard or robust) min-max envelope: 0 inside, grows with the largest
  per-neuron violation measured in units of the neuron's envelope width;
* :class:`PatternDistanceMonitor` — Hamming distance (in monitored positions)
  between the observed activation word and the nearest word stored in the
  pattern monitor's BDD, normalised by the word length.

Both wrap an existing fitted monitor, so robust variants are obtained simply
by wrapping the robust monitor.  Batch scoring is vectorised: one shared
forward pass per batch, and for pattern distances the distance-0 case (the
overwhelmingly common one on in-ODD traffic) is answered by the pattern
set's vectorised membership mirror before any per-row BDD search runs.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from ..exceptions import ConfigurationError, NotFittedError
from .base import MonitorVerdict
from .boolean import BooleanPatternMonitor
from .interval import IntervalPatternMonitor
from .minmax import MinMaxMonitor

__all__ = ["EnvelopeDistanceMonitor", "PatternDistanceMonitor"]


class EnvelopeDistanceMonitor:
    """Quantitative wrapper around a (robust) min-max monitor.

    The score of an input is the maximum over neurons of the distance of the
    neuron value to the envelope ``[L_j, U_j]``, normalised by the envelope
    width of that neuron (so a score of 1.0 means "one envelope-width outside
    the visited range").  ``warn`` compares the score against a threshold.
    """

    def __init__(self, monitor: MinMaxMonitor, threshold: float = 0.0) -> None:
        if not isinstance(monitor, MinMaxMonitor):
            raise ConfigurationError(
                "EnvelopeDistanceMonitor wraps a MinMaxMonitor (or robust subclass)"
            )
        if threshold < 0:
            raise ConfigurationError("threshold must be non-negative")
        self.monitor = monitor
        self.threshold = float(threshold)

    def _require_fitted(self) -> None:
        if not self.monitor.is_fitted:
            raise NotFittedError("the wrapped min-max monitor has not been fitted")

    def _scores_from_features(self, features: np.ndarray) -> np.ndarray:
        width = np.maximum(self.monitor.upper - self.monitor.lower, 1e-12)
        below = (self.monitor.lower[None, :] - features) / width[None, :]
        above = (features - self.monitor.upper[None, :]) / width[None, :]
        distance = np.maximum(np.maximum(below, above), 0.0)
        return distance.max(axis=1, initial=0.0)

    def score_batch(self, inputs: np.ndarray) -> np.ndarray:
        """Normalised envelope distances of a whole batch in one pass."""
        self._require_fitted()
        inputs = np.atleast_2d(np.asarray(inputs, dtype=np.float64))
        return self._scores_from_features(self.monitor.features(inputs))

    def score(self, input_vector: np.ndarray) -> float:
        """Normalised distance of the feature vector to the envelope (0 = inside)."""
        return float(self.score_batch(np.atleast_2d(np.asarray(input_vector, dtype=np.float64)))[0])

    def verdict(self, input_vector: np.ndarray) -> MonitorVerdict:
        value = self.score(input_vector)
        return MonitorVerdict(
            warn=value > self.threshold,
            details={"score": value, "threshold": self.threshold},
        )

    def warn(self, input_vector: np.ndarray) -> bool:
        return self.verdict(input_vector).warn

    def warn_batch(self, inputs: np.ndarray) -> np.ndarray:
        return self.score_batch(inputs) > self.threshold

    def warning_rate(self, inputs: np.ndarray) -> float:
        return float(np.mean(self.warn_batch(inputs)))

    def describe(self) -> Dict[str, object]:
        return {
            "kind": "envelope_distance",
            "threshold": self.threshold,
            "wrapped": self.monitor.describe(),
        }


class PatternDistanceMonitor:
    """Quantitative wrapper around a (robust) Boolean or interval pattern monitor.

    The score of an input is the smallest number of monitored positions whose
    code must change for the observed word to match a stored word, divided by
    the number of monitored positions.  The search uses the BDD restriction
    operator, so it costs ``O(word length)`` BDD restrictions per candidate
    distance rather than enumerating the stored set.
    """

    def __init__(self, monitor, threshold: float = 0.0, max_distance: Optional[int] = None) -> None:
        if not isinstance(monitor, (BooleanPatternMonitor, IntervalPatternMonitor)):
            raise ConfigurationError(
                "PatternDistanceMonitor wraps a Boolean or interval pattern monitor"
            )
        if threshold < 0:
            raise ConfigurationError("threshold must be non-negative")
        self.monitor = monitor
        self.threshold = float(threshold)
        self.max_distance = max_distance

    def _require_fitted(self) -> None:
        if not self.monitor.is_fitted:
            raise NotFittedError("the wrapped pattern monitor has not been fitted")

    def _observed_word(self, input_vector: np.ndarray) -> Sequence[int]:
        feature = self.monitor.features(input_vector)[0]
        if isinstance(self.monitor, BooleanPatternMonitor):
            return self.monitor._word(feature)
        return self.monitor._codes(feature)

    def _distance_limit(self) -> int:
        if self.max_distance is None:
            return self.monitor.num_monitored_neurons
        return min(self.max_distance, self.monitor.num_monitored_neurons)

    def _distance_of_word(self, word: Sequence[int]) -> int:
        patterns = self.monitor.patterns
        limit = self._distance_limit()
        for candidate in range(1, limit + 1):
            if patterns.contains_within_hamming(word, candidate):
                return candidate
        return limit + 1

    def distance_batch(self, inputs: np.ndarray) -> np.ndarray:
        """Hamming distances of every row, distance-0 answered vectorised."""
        self._require_fitted()
        inputs = np.atleast_2d(np.asarray(inputs, dtype=np.float64))
        features = self.monitor.features(inputs)
        codes = self.monitor.codec.codes(features)
        patterns = self.monitor.patterns
        distances = np.zeros(codes.shape[0], dtype=np.int64)
        if patterns.is_empty():
            distances[:] = self.monitor.num_monitored_neurons
            return distances
        known = patterns.contains_batch(codes)
        for index in np.nonzero(~known)[0]:
            distances[index] = self._distance_of_word(
                [int(code) for code in codes[index]]
            )
        return distances

    def distance(self, input_vector: np.ndarray) -> int:
        """Hamming distance (in positions) to the nearest stored word."""
        return int(
            self.distance_batch(
                np.atleast_2d(np.asarray(input_vector, dtype=np.float64))
            )[0]
        )

    def score_batch(self, inputs: np.ndarray) -> np.ndarray:
        return self.distance_batch(inputs) / self.monitor.num_monitored_neurons

    def score(self, input_vector: np.ndarray) -> float:
        """Normalised Hamming distance in ``[0, 1]`` (0 = pattern was visited)."""
        return self.distance(input_vector) / self.monitor.num_monitored_neurons

    def verdict(self, input_vector: np.ndarray) -> MonitorVerdict:
        value = self.score(input_vector)
        return MonitorVerdict(
            warn=value > self.threshold,
            details={"score": value, "threshold": self.threshold},
        )

    def warn(self, input_vector: np.ndarray) -> bool:
        return self.verdict(input_vector).warn

    def warn_batch(self, inputs: np.ndarray) -> np.ndarray:
        return self.score_batch(inputs) > self.threshold

    def warning_rate(self, inputs: np.ndarray) -> float:
        return float(np.mean(self.warn_batch(inputs)))

    def describe(self) -> Dict[str, object]:
        return {
            "kind": "pattern_distance",
            "threshold": self.threshold,
            "max_distance": self.max_distance,
            "wrapped": self.monitor.describe(),
        }
