"""Saving and loading fitted monitors.

A deployed monitor must be constructed offline (the training data set is not
available in the vehicle) and shipped as an artefact next to the frozen
network.  This module serialises fitted monitors to a single ``.npz`` archive
holding a JSON header (monitor family, layer, thresholds/cut-points,
perturbation model) plus the abstraction state:

* min-max monitors store the ``(lower, upper)`` envelope;
* Boolean/interval pattern monitors store the *packed mirror* of their
  pattern set (format 2, the default): the exact bit-packed rows, ternary
  value/mask bit-planes and per-position code ranges of
  :class:`~repro.runtime.matcher.PackedMatcher`.  This is a complete
  description of the stored set with no don't-care or Cartesian-product
  expansion, and on load it restores the vectorised scoring path directly —
  the canonical BDD is rebuilt lazily only if a BDD-dependent operation
  (model counting, Hamming relaxation) is actually used, so cold-starting a
  deployed monitor costs array I/O instead of a BDD build.

Archives written by earlier versions (format 1, an explicit word list
re-inserted on load) remain loadable; ``save_monitor(format=1)`` still
writes them for tooling that expects enumerated words.

The network itself is serialised separately (``repro.nn.serialization``); on
load the caller passes the network so that weights are never duplicated.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np

from ..exceptions import ConfigurationError, NotFittedError, SerializationError
from ..nn.network import Sequential
from .base import ActivationMonitor
from .boolean import BooleanPatternMonitor, RobustBooleanPatternMonitor
from .interval import IntervalPatternMonitor, RobustIntervalPatternMonitor
from .minmax import MinMaxMonitor, RobustMinMaxMonitor
from .perturbation import PerturbationSpec

__all__ = ["save_monitor", "load_monitor"]

_HEADER_KEY = "__monitor_json__"

_CLASS_NAMES = {
    "MinMaxMonitor": MinMaxMonitor,
    "RobustMinMaxMonitor": RobustMinMaxMonitor,
    "BooleanPatternMonitor": BooleanPatternMonitor,
    "RobustBooleanPatternMonitor": RobustBooleanPatternMonitor,
    "IntervalPatternMonitor": IntervalPatternMonitor,
    "RobustIntervalPatternMonitor": RobustIntervalPatternMonitor,
}


def _perturbation_to_dict(spec: PerturbationSpec) -> dict:
    return {"delta": spec.delta, "layer": spec.layer, "method": spec.method}


def _perturbation_from_dict(data: dict) -> PerturbationSpec:
    return PerturbationSpec(
        delta=float(data["delta"]), layer=int(data["layer"]), method=str(data["method"])
    )


#: Array names of the packed-mirror image (format 2 pattern monitors).
_PACKED_KEYS = {
    "exact": "packed_exact",
    "ternary_values": "packed_ternary_values",
    "ternary_masks": "packed_ternary_masks",
    "range_low": "packed_range_low",
    "range_high": "packed_range_high",
}


def _pattern_arrays(monitor, arrays: dict, header: dict, fmt: int) -> None:
    """Add the pattern-set image of a fitted pattern monitor to ``arrays``."""
    if fmt == 2:
        try:
            state = monitor.patterns.packed_state()
        except ConfigurationError:
            # Mirror not exact (only reachable through manual add_code_sets
            # use): fall back to the enumerated-words format.
            fmt = 1
        else:
            header["format"] = 2
            header["insertions"] = monitor.patterns.insertions
            for state_key, array_key in _PACKED_KEYS.items():
                arrays[array_key] = state[state_key]
            return
    header["format"] = 1
    arrays["words"] = np.array(
        list(monitor.patterns.iterate_words()), dtype=np.int64
    ).reshape(-1, monitor.num_monitored_neurons)


def save_monitor(
    monitor: ActivationMonitor, path: Union[str, Path], format: int = 2
) -> Path:
    """Serialise a fitted monitor to ``path`` (``.npz`` appended when missing).

    ``format=2`` (default) stores pattern sets as their packed-mirror image
    for compact artefacts and lazy-BDD cold starts; ``format=1`` stores the
    enumerated word list of earlier versions.
    """
    if not monitor.is_fitted:
        raise NotFittedError("only fitted monitors can be serialised")
    if format not in (1, 2):
        raise SerializationError(f"unknown serialisation format {format}")
    class_name = type(monitor).__name__
    if class_name not in _CLASS_NAMES:
        raise SerializationError(f"unsupported monitor class {class_name}")
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz") if path.suffix else path.with_suffix(".npz")

    header = {
        "class": class_name,
        "layer_index": monitor.layer_index,
        "num_training_samples": monitor.num_training_samples,
    }
    arrays = {"neuron_indices": np.asarray(monitor.neuron_indices, dtype=np.int64)}

    if isinstance(monitor, MinMaxMonitor):
        arrays["lower"] = monitor.lower
        arrays["upper"] = monitor.upper
        header["enlargement"] = monitor.enlargement
    if isinstance(monitor, BooleanPatternMonitor):
        arrays["thresholds"] = monitor.thresholds
        _pattern_arrays(monitor, arrays, header, format)
        header["hamming_tolerance"] = monitor.hamming_tolerance
    if isinstance(monitor, IntervalPatternMonitor):
        arrays["cut_points"] = monitor.cut_points
        _pattern_arrays(monitor, arrays, header, format)
        header["num_cuts"] = monitor.num_cuts
        header["cut_strategy"] = monitor.cut_strategy
    if isinstance(
        monitor, (RobustMinMaxMonitor, RobustBooleanPatternMonitor, RobustIntervalPatternMonitor)
    ):
        header["perturbation"] = _perturbation_to_dict(monitor.perturbation)

    arrays[_HEADER_KEY] = np.array(json.dumps(header))
    path.parent.mkdir(parents=True, exist_ok=True)
    try:
        np.savez(path, **arrays)
    except OSError as exc:  # pragma: no cover - filesystem failure
        raise SerializationError(f"failed to write monitor to {path}: {exc}") from exc
    return path


def _restore_patterns(
    archive,
    header: dict,
    num_positions: int,
    bits_per_position: int,
    matcher_backend=None,
):
    """Rebuild a monitor's pattern set from a loaded archive.

    Format-2 archives restore the packed mirror directly (the BDD is
    materialised lazily on first BDD-dependent use); format-1 archives
    re-insert the enumerated word list.  ``matcher_backend`` selects the
    matcher kernel of the restored set.
    """
    from ..bdd.patterns import PatternSet

    if int(header.get("format", 1)) == 2:
        state = {
            state_key: archive[array_key]
            for state_key, array_key in _PACKED_KEYS.items()
        }
        return PatternSet.from_packed_state(
            num_positions,
            bits_per_position,
            state,
            insertions=header.get("insertions"),
            matcher_backend=matcher_backend,
        )
    patterns = PatternSet(
        num_positions,
        bits_per_position=bits_per_position,
        matcher_backend=matcher_backend,
    )
    words = archive["words"]
    if words.shape[0]:
        patterns.add_patterns(words)
    return patterns


def load_monitor(
    path: Union[str, Path], network: Sequential, matcher_backend=None
) -> ActivationMonitor:
    """Load a monitor saved by :func:`save_monitor`, re-attaching ``network``.

    ``matcher_backend`` selects the matcher kernel of the restored pattern
    set (a registry name from
    :func:`repro.runtime.kernels.matcher_backends`, a kernel instance, or
    ``None`` for the ``REPRO_MATCHER_BACKEND`` / ``numpy`` default) — the
    on-disk format is backend-independent, so any archive loads under any
    back-end with bit-identical verdicts.
    """
    path = Path(path)
    if not path.exists():
        candidate = path.with_suffix(".npz")
        if candidate.exists():
            path = candidate
        else:
            raise SerializationError(f"monitor file not found: {path}")
    try:
        archive = np.load(path, allow_pickle=False)
    except (OSError, ValueError) as exc:
        raise SerializationError(f"failed to read monitor from {path}: {exc}") from exc
    if _HEADER_KEY not in archive:
        raise SerializationError(f"{path} is not a serialised repro monitor")
    header = json.loads(str(archive[_HEADER_KEY]))
    class_name = header["class"]
    if class_name not in _CLASS_NAMES:
        raise SerializationError(f"unknown monitor class '{class_name}' in {path}")
    neuron_indices = archive["neuron_indices"]
    layer_index = int(header["layer_index"])

    monitor: ActivationMonitor
    if class_name == "MinMaxMonitor":
        monitor = MinMaxMonitor(
            network,
            layer_index,
            neuron_indices=neuron_indices,
            enlargement=float(header.get("enlargement", 0.0)),
        )
        monitor.lower = archive["lower"]
        monitor.upper = archive["upper"]
    elif class_name == "RobustMinMaxMonitor":
        monitor = RobustMinMaxMonitor(
            network,
            layer_index,
            _perturbation_from_dict(header["perturbation"]),
            neuron_indices=neuron_indices,
        )
        monitor.lower = archive["lower"]
        monitor.upper = archive["upper"]
    elif class_name in ("BooleanPatternMonitor", "RobustBooleanPatternMonitor"):
        if class_name == "BooleanPatternMonitor":
            monitor = BooleanPatternMonitor(
                network,
                layer_index,
                thresholds=archive["thresholds"],
                neuron_indices=neuron_indices,
                hamming_tolerance=int(header.get("hamming_tolerance", 0)),
            )
        else:
            monitor = RobustBooleanPatternMonitor(
                network,
                layer_index,
                _perturbation_from_dict(header["perturbation"]),
                thresholds=archive["thresholds"],
                neuron_indices=neuron_indices,
                hamming_tolerance=int(header.get("hamming_tolerance", 0)),
            )
        monitor.thresholds = archive["thresholds"]
        monitor.matcher_backend = matcher_backend
        monitor.patterns = _restore_patterns(
            archive,
            header,
            len(neuron_indices),
            bits_per_position=1,
            matcher_backend=matcher_backend,
        )
    else:  # interval families
        cut_points = archive["cut_points"]
        if class_name == "IntervalPatternMonitor":
            monitor = IntervalPatternMonitor(
                network,
                layer_index,
                num_cuts=int(header["num_cuts"]),
                cut_strategy=str(header.get("cut_strategy", "percentile")),
                cut_points=cut_points,
                neuron_indices=neuron_indices,
            )
        else:
            monitor = RobustIntervalPatternMonitor(
                network,
                layer_index,
                _perturbation_from_dict(header["perturbation"]),
                num_cuts=int(header["num_cuts"]),
                cut_strategy=str(header.get("cut_strategy", "percentile")),
                cut_points=cut_points,
                neuron_indices=neuron_indices,
            )
        monitor.cut_points = cut_points
        monitor.matcher_backend = matcher_backend
        monitor.patterns = _restore_patterns(
            archive,
            header,
            len(neuron_indices),
            bits_per_position=monitor.bits_per_neuron,
            matcher_backend=matcher_backend,
        )

    monitor._fitted = True
    monitor._num_training_samples = int(header.get("num_training_samples", 0))
    return monitor
