"""Saving and loading fitted monitors.

A deployed monitor must be constructed offline (the training data set is not
available in the vehicle) and shipped as an artefact next to the frozen
network.  This module serialises fitted monitors to a single ``.npz`` archive
holding a JSON header (monitor family, layer, thresholds/cut-points,
perturbation model) plus the abstraction state:

* min-max monitors store the ``(lower, upper)`` envelope;
* Boolean/interval pattern monitors store the explicit list of stored words
  (obtained from the BDD), which is re-inserted on load — exact for the
  pattern sets that arise in practice, and independent of BDD internals.

The network itself is serialised separately (``repro.nn.serialization``); on
load the caller passes the network so that weights are never duplicated.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np

from ..exceptions import NotFittedError, SerializationError
from ..nn.network import Sequential
from .base import ActivationMonitor
from .boolean import BooleanPatternMonitor, RobustBooleanPatternMonitor
from .interval import IntervalPatternMonitor, RobustIntervalPatternMonitor
from .minmax import MinMaxMonitor, RobustMinMaxMonitor
from .perturbation import PerturbationSpec

__all__ = ["save_monitor", "load_monitor"]

_HEADER_KEY = "__monitor_json__"

_CLASS_NAMES = {
    "MinMaxMonitor": MinMaxMonitor,
    "RobustMinMaxMonitor": RobustMinMaxMonitor,
    "BooleanPatternMonitor": BooleanPatternMonitor,
    "RobustBooleanPatternMonitor": RobustBooleanPatternMonitor,
    "IntervalPatternMonitor": IntervalPatternMonitor,
    "RobustIntervalPatternMonitor": RobustIntervalPatternMonitor,
}


def _perturbation_to_dict(spec: PerturbationSpec) -> dict:
    return {"delta": spec.delta, "layer": spec.layer, "method": spec.method}


def _perturbation_from_dict(data: dict) -> PerturbationSpec:
    return PerturbationSpec(
        delta=float(data["delta"]), layer=int(data["layer"]), method=str(data["method"])
    )


def save_monitor(monitor: ActivationMonitor, path: Union[str, Path]) -> Path:
    """Serialise a fitted monitor to ``path`` (``.npz`` appended when missing)."""
    if not monitor.is_fitted:
        raise NotFittedError("only fitted monitors can be serialised")
    class_name = type(monitor).__name__
    if class_name not in _CLASS_NAMES:
        raise SerializationError(f"unsupported monitor class {class_name}")
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz") if path.suffix else path.with_suffix(".npz")

    header = {
        "class": class_name,
        "layer_index": monitor.layer_index,
        "num_training_samples": monitor.num_training_samples,
    }
    arrays = {"neuron_indices": np.asarray(monitor.neuron_indices, dtype=np.int64)}

    if isinstance(monitor, MinMaxMonitor):
        arrays["lower"] = monitor.lower
        arrays["upper"] = monitor.upper
        header["enlargement"] = monitor.enlargement
    if isinstance(monitor, BooleanPatternMonitor):
        arrays["thresholds"] = monitor.thresholds
        arrays["words"] = np.array(list(monitor.patterns.iterate_words()), dtype=np.int64).reshape(
            -1, monitor.num_monitored_neurons
        )
        header["hamming_tolerance"] = monitor.hamming_tolerance
    if isinstance(monitor, IntervalPatternMonitor):
        arrays["cut_points"] = monitor.cut_points
        arrays["words"] = np.array(list(monitor.patterns.iterate_words()), dtype=np.int64).reshape(
            -1, monitor.num_monitored_neurons
        )
        header["num_cuts"] = monitor.num_cuts
        header["cut_strategy"] = monitor.cut_strategy
    if isinstance(
        monitor, (RobustMinMaxMonitor, RobustBooleanPatternMonitor, RobustIntervalPatternMonitor)
    ):
        header["perturbation"] = _perturbation_to_dict(monitor.perturbation)

    arrays[_HEADER_KEY] = np.array(json.dumps(header))
    path.parent.mkdir(parents=True, exist_ok=True)
    try:
        np.savez(path, **arrays)
    except OSError as exc:  # pragma: no cover - filesystem failure
        raise SerializationError(f"failed to write monitor to {path}: {exc}") from exc
    return path


def load_monitor(path: Union[str, Path], network: Sequential) -> ActivationMonitor:
    """Load a monitor saved by :func:`save_monitor`, re-attaching ``network``."""
    path = Path(path)
    if not path.exists():
        candidate = path.with_suffix(".npz")
        if candidate.exists():
            path = candidate
        else:
            raise SerializationError(f"monitor file not found: {path}")
    try:
        archive = np.load(path, allow_pickle=False)
    except (OSError, ValueError) as exc:
        raise SerializationError(f"failed to read monitor from {path}: {exc}") from exc
    if _HEADER_KEY not in archive:
        raise SerializationError(f"{path} is not a serialised repro monitor")
    header = json.loads(str(archive[_HEADER_KEY]))
    class_name = header["class"]
    if class_name not in _CLASS_NAMES:
        raise SerializationError(f"unknown monitor class '{class_name}' in {path}")
    neuron_indices = archive["neuron_indices"]
    layer_index = int(header["layer_index"])

    monitor: ActivationMonitor
    if class_name == "MinMaxMonitor":
        monitor = MinMaxMonitor(
            network,
            layer_index,
            neuron_indices=neuron_indices,
            enlargement=float(header.get("enlargement", 0.0)),
        )
        monitor.lower = archive["lower"]
        monitor.upper = archive["upper"]
    elif class_name == "RobustMinMaxMonitor":
        monitor = RobustMinMaxMonitor(
            network,
            layer_index,
            _perturbation_from_dict(header["perturbation"]),
            neuron_indices=neuron_indices,
        )
        monitor.lower = archive["lower"]
        monitor.upper = archive["upper"]
    elif class_name in ("BooleanPatternMonitor", "RobustBooleanPatternMonitor"):
        if class_name == "BooleanPatternMonitor":
            monitor = BooleanPatternMonitor(
                network,
                layer_index,
                thresholds=archive["thresholds"],
                neuron_indices=neuron_indices,
                hamming_tolerance=int(header.get("hamming_tolerance", 0)),
            )
        else:
            monitor = RobustBooleanPatternMonitor(
                network,
                layer_index,
                _perturbation_from_dict(header["perturbation"]),
                thresholds=archive["thresholds"],
                neuron_indices=neuron_indices,
                hamming_tolerance=int(header.get("hamming_tolerance", 0)),
            )
        monitor.thresholds = archive["thresholds"]
        from ..bdd.patterns import PatternSet

        monitor.patterns = PatternSet(len(neuron_indices), bits_per_position=1)
        words = archive["words"]
        if words.shape[0]:
            monitor.patterns.add_patterns(words)
    else:  # interval families
        cut_points = archive["cut_points"]
        if class_name == "IntervalPatternMonitor":
            monitor = IntervalPatternMonitor(
                network,
                layer_index,
                num_cuts=int(header["num_cuts"]),
                cut_strategy=str(header.get("cut_strategy", "percentile")),
                cut_points=cut_points,
                neuron_indices=neuron_indices,
            )
        else:
            monitor = RobustIntervalPatternMonitor(
                network,
                layer_index,
                _perturbation_from_dict(header["perturbation"]),
                num_cuts=int(header["num_cuts"]),
                cut_strategy=str(header.get("cut_strategy", "percentile")),
                cut_points=cut_points,
                neuron_indices=neuron_indices,
            )
        monitor.cut_points = cut_points
        from ..bdd.patterns import PatternSet

        monitor.patterns = PatternSet(
            len(neuron_indices), bits_per_position=monitor.bits_per_neuron
        )
        words = archive["words"]
        if words.shape[0]:
            monitor.patterns.add_patterns(words)

    monitor._fitted = True
    monitor._num_training_samples = int(header.get("num_training_samples", 0))
    return monitor
