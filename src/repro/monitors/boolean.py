"""Boolean on/off activation-pattern monitors (standard and robust).

The standard monitor (Cheng et al., DATE 2019) abstracts the monitored-layer
feature vector into a Boolean word — bit ``j`` is 1 when neuron ``j`` exceeds
its threshold ``c_j`` — and stores the set of words visited by the training
data in a BDD.  An operational input warns when its word is not in the set.

The robust variant applies the abstraction to the perturbation estimate
``[l_j, u_j]`` instead of the concrete value: bit ``j`` becomes 1 when
``l_j > c_j``, 0 when ``u_j ≤ c_j`` and the *don't-care* symbol otherwise.
The ternary word is expanded into the set of all compatible binary words via
``word2set``, which the BDD represents with a cube over the constrained bits
only (no exponential blow-up).

Both variants run on the :mod:`repro.runtime` pattern codec: a training or
evaluation batch is binarised against the thresholds in one vectorised pass,
bulk-inserted as bit-packed words (standard) or ternary value/mask bit-planes
(robust), and scored through the pattern set's vectorised membership mirror.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from ..exceptions import ConfigurationError, NotFittedError, ShapeError
from ..nn.network import Sequential
from ..bdd.patterns import DONT_CARE, PatternSet
from ..runtime.codec import PatternCodec
from ..runtime.packing import popcount
from .base import ActivationMonitor, MonitorVerdict
from .perturbation import PerturbationSpec
from .thresholds import get_threshold_strategy

__all__ = ["BooleanPatternMonitor", "RobustBooleanPatternMonitor"]


class BooleanPatternMonitor(ActivationMonitor):
    """Standard on/off activation-pattern monitor backed by a BDD.

    Parameters
    ----------
    thresholds:
        Either a per-neuron array of constants ``c_j``, or the name of a
        threshold strategy (``"zero"``, ``"mean"``, ``"percentile"``, ...)
        evaluated on the training activations during :meth:`fit`.
    hamming_tolerance:
        Accept operational words within this Hamming distance of a stored
        word (the enlargement knob of the original DATE'19 monitor); the
        default 0 is exact membership.
    """

    kind = "boolean_pattern"

    def __init__(
        self,
        network: Sequential,
        layer_index: int,
        thresholds: Union[str, np.ndarray] = "zero",
        neuron_indices: Optional[Sequence[int]] = None,
        hamming_tolerance: int = 0,
        matcher_backend=None,
    ) -> None:
        super().__init__(network, layer_index, neuron_indices)
        if hamming_tolerance < 0:
            raise ConfigurationError("hamming_tolerance must be non-negative")
        self.hamming_tolerance = int(hamming_tolerance)
        self.matcher_backend = matcher_backend
        self._threshold_spec = thresholds
        self.thresholds: Optional[np.ndarray] = None
        self.patterns: Optional[PatternSet] = None
        self._codec: Optional[PatternCodec] = None

    # ------------------------------------------------------------------
    @property
    def codec(self) -> PatternCodec:
        """The fitted 1-bit pattern codec (features → packed words)."""
        if self._codec is None:
            if self.thresholds is None:
                raise NotFittedError("the codec exists only after fitting")
            self._codec = PatternCodec.from_thresholds(self.thresholds)
        return self._codec

    def _resolve_thresholds(self, activations: np.ndarray) -> np.ndarray:
        if isinstance(self._threshold_spec, str):
            strategy = get_threshold_strategy(self._threshold_spec)
            cuts = strategy(activations, 1)
            return cuts[:, 0]
        thresholds = np.asarray(self._threshold_spec, dtype=np.float64).reshape(-1)
        if thresholds.shape[0] != self.num_monitored_neurons:
            raise ShapeError(
                f"expected {self.num_monitored_neurons} thresholds, got "
                f"{thresholds.shape[0]}"
            )
        return thresholds

    def _set_thresholds(self, thresholds: np.ndarray) -> None:
        self.thresholds = thresholds
        self._codec = None

    def _word(self, feature: np.ndarray) -> List[int]:
        """The abstraction ``ab``: bit ``j`` = 1 iff ``v_j > c_j``."""
        return [int(code) for code in self.codec.codes(np.atleast_2d(feature))[0]]

    # ------------------------------------------------------------------
    def fit(self, training_inputs: np.ndarray) -> "BooleanPatternMonitor":
        features = self.features(training_inputs)
        if features.shape[0] == 0:
            raise ShapeError("fit() needs at least one training input")
        self._set_thresholds(self._resolve_thresholds(features))
        self.patterns = PatternSet(
            self.num_monitored_neurons,
            bits_per_position=1,
            matcher_backend=self.matcher_backend_choice(),
        )
        self.patterns.add_patterns(self.codec.codes(features))
        self._fitted = True
        self._num_training_samples = int(features.shape[0])
        return self

    def update(self, inputs: np.ndarray) -> "BooleanPatternMonitor":
        """Fold additional data (e.g. a validation set) into the pattern set."""
        self._require_fitted()
        features = self.features(inputs)
        self.patterns.add_patterns(self.codec.codes(features))
        self._num_training_samples += int(features.shape[0])
        return self

    # ------------------------------------------------------------------
    def _known_from_features(self, features: np.ndarray) -> "tuple[np.ndarray, np.ndarray]":
        """Codes and membership flags of a feature batch."""
        codes = self.codec.codes(features)
        known = self.patterns.contains_batch(codes)
        if self.hamming_tolerance > 0 and not np.all(known):
            for index in np.nonzero(~known)[0]:
                known[index] = self.patterns.contains_within_hamming(
                    [int(code) for code in codes[index]], self.hamming_tolerance
                )
        return codes, known

    def _warn_from_features(self, features: np.ndarray) -> np.ndarray:
        _, known = self._known_from_features(features)
        return ~known

    def _verdicts_from_features(self, features: np.ndarray) -> List[MonitorVerdict]:
        codes, known = self._known_from_features(features)
        return [
            MonitorVerdict(
                warn=bool(not row_known),
                details={
                    "word": tuple(int(code) for code in row_codes),
                    "hamming_tolerance": self.hamming_tolerance,
                },
            )
            for row_codes, row_known in zip(codes, known)
        ]

    # ------------------------------------------------------------------
    def pattern_count(self) -> int:
        """Number of distinct activation words in the abstraction."""
        self._require_fitted()
        return self.patterns.cardinality()

    def bdd_size(self) -> int:
        """Number of BDD nodes storing the abstraction."""
        self._require_fitted()
        return self.patterns.dag_size()

    def describe(self) -> Dict[str, object]:
        info = super().describe()
        info["hamming_tolerance"] = self.hamming_tolerance
        if self._fitted:
            info["pattern_count"] = self.pattern_count()
            info["bdd_size"] = self.bdd_size()
        return info


class RobustBooleanPatternMonitor(BooleanPatternMonitor):
    """Robust on/off pattern monitor ``M_{⟨G, k, k_p, Δ⟩}`` (Section III-B).

    The abstraction function ``ab_R`` maps each neuron's perturbation-estimate
    bound to 1 / 0 / don't-care; the batch of ternary words is encoded as
    value/mask bit-planes and inserted via ``word2set`` in bulk.
    """

    kind = "robust_boolean_pattern"

    def __init__(
        self,
        network: Sequential,
        layer_index: int,
        perturbation: PerturbationSpec,
        thresholds: Union[str, np.ndarray] = "zero",
        neuron_indices: Optional[Sequence[int]] = None,
        hamming_tolerance: int = 0,
        matcher_backend=None,
    ) -> None:
        super().__init__(
            network,
            layer_index,
            thresholds=thresholds,
            neuron_indices=neuron_indices,
            hamming_tolerance=hamming_tolerance,
            matcher_backend=matcher_backend,
        )
        if perturbation.layer >= layer_index:
            raise ConfigurationError(
                "perturbation layer k_p must be strictly before the monitored layer"
            )
        self.perturbation = perturbation
        self._dont_care_count = 0

    def _ternary_word(self, low: np.ndarray, high: np.ndarray) -> List[object]:
        """The robust abstraction ``ab_R`` producing 0 / 1 / don't-care."""
        low_codes, high_codes = self.codec.bound_codes(
            np.atleast_2d(low), np.atleast_2d(high)
        )
        return [
            int(lo) if lo == hi else DONT_CARE
            for lo, hi in zip(low_codes[0], high_codes[0])
        ]

    def _insert_robust_batch(self, inputs: np.ndarray) -> None:
        lows, highs = self._perturbation_bound_arrays(inputs, self.perturbation)
        lows = lows[:, self.neuron_indices]
        highs = highs[:, self.neuron_indices]
        planes = self.codec.ternary_planes(lows, highs)
        constrained_bits = int(popcount(planes.masks).sum())
        self._dont_care_count += (
            planes.values.shape[0] * self.num_monitored_neurons - constrained_bits
        )
        self.patterns.add_ternary_patterns(planes)

    def fit(self, training_inputs: np.ndarray) -> "RobustBooleanPatternMonitor":
        training_inputs = np.atleast_2d(np.asarray(training_inputs, dtype=np.float64))
        if training_inputs.shape[0] == 0:
            raise ShapeError("fit() needs at least one training input")
        features = self.features(training_inputs)
        self._set_thresholds(self._resolve_thresholds(features))
        self.patterns = PatternSet(
            self.num_monitored_neurons,
            bits_per_position=1,
            matcher_backend=self.matcher_backend_choice(),
        )
        self._dont_care_count = 0
        self._insert_robust_batch(training_inputs)
        self._fitted = True
        self._num_training_samples = int(training_inputs.shape[0])
        return self

    def update(self, inputs: np.ndarray) -> "RobustBooleanPatternMonitor":
        self._require_fitted()
        inputs = np.atleast_2d(np.asarray(inputs, dtype=np.float64))
        self._insert_robust_batch(inputs)
        self._num_training_samples += int(inputs.shape[0])
        return self

    @property
    def dont_care_fraction(self) -> float:
        """Average fraction of don't-care bits per inserted ternary word."""
        if self._num_training_samples == 0:
            raise NotFittedError("monitor has not been fitted")
        total_bits = self._num_training_samples * self.num_monitored_neurons
        return self._dont_care_count / total_bits

    def describe(self) -> Dict[str, object]:
        info = super().describe()
        info["perturbation"] = self.perturbation.describe()
        if self._fitted:
            info["dont_care_fraction"] = self.dont_care_fraction
        return info
