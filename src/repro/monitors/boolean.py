"""Boolean on/off activation-pattern monitors (standard and robust).

The standard monitor (Cheng et al., DATE 2019) abstracts the monitored-layer
feature vector into a Boolean word — bit ``j`` is 1 when neuron ``j`` exceeds
its threshold ``c_j`` — and stores the set of words visited by the training
data in a BDD.  An operational input warns when its word is not in the set.

The robust variant applies the abstraction to the perturbation estimate
``[l_j, u_j]`` instead of the concrete value: bit ``j`` becomes 1 when
``l_j > c_j``, 0 when ``u_j ≤ c_j`` and the *don't-care* symbol otherwise.
The ternary word is expanded into the set of all compatible binary words via
``word2set``, which the BDD represents with a cube over the constrained bits
only (no exponential blow-up).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from ..exceptions import ConfigurationError, NotFittedError, ShapeError
from ..nn.network import Sequential
from ..bdd.patterns import DONT_CARE, PatternSet
from .base import ActivationMonitor, MonitorVerdict
from .perturbation import PerturbationSpec, perturbation_estimates
from .thresholds import get_threshold_strategy, validate_cut_points

__all__ = ["BooleanPatternMonitor", "RobustBooleanPatternMonitor"]


class BooleanPatternMonitor(ActivationMonitor):
    """Standard on/off activation-pattern monitor backed by a BDD.

    Parameters
    ----------
    thresholds:
        Either a per-neuron array of constants ``c_j``, or the name of a
        threshold strategy (``"zero"``, ``"mean"``, ``"percentile"``, ...)
        evaluated on the training activations during :meth:`fit`.
    hamming_tolerance:
        Accept operational words within this Hamming distance of a stored
        word (the enlargement knob of the original DATE'19 monitor); the
        default 0 is exact membership.
    """

    kind = "boolean_pattern"

    def __init__(
        self,
        network: Sequential,
        layer_index: int,
        thresholds: Union[str, np.ndarray] = "zero",
        neuron_indices: Optional[Sequence[int]] = None,
        hamming_tolerance: int = 0,
    ) -> None:
        super().__init__(network, layer_index, neuron_indices)
        if hamming_tolerance < 0:
            raise ConfigurationError("hamming_tolerance must be non-negative")
        self.hamming_tolerance = int(hamming_tolerance)
        self._threshold_spec = thresholds
        self.thresholds: Optional[np.ndarray] = None
        self.patterns: Optional[PatternSet] = None

    # ------------------------------------------------------------------
    def _resolve_thresholds(self, activations: np.ndarray) -> np.ndarray:
        if isinstance(self._threshold_spec, str):
            strategy = get_threshold_strategy(self._threshold_spec)
            cuts = strategy(activations, 1)
            return cuts[:, 0]
        thresholds = np.asarray(self._threshold_spec, dtype=np.float64).reshape(-1)
        if thresholds.shape[0] != self.num_monitored_neurons:
            raise ShapeError(
                f"expected {self.num_monitored_neurons} thresholds, got "
                f"{thresholds.shape[0]}"
            )
        return thresholds

    def _word(self, feature: np.ndarray) -> List[int]:
        """The abstraction ``ab``: bit ``j`` = 1 iff ``v_j > c_j``."""
        return [int(value > cut) for value, cut in zip(feature, self.thresholds)]

    # ------------------------------------------------------------------
    def fit(self, training_inputs: np.ndarray) -> "BooleanPatternMonitor":
        features = self.features(training_inputs)
        if features.shape[0] == 0:
            raise ShapeError("fit() needs at least one training input")
        self.thresholds = self._resolve_thresholds(features)
        self.patterns = PatternSet(self.num_monitored_neurons, bits_per_position=1)
        for row in features:
            self.patterns.add_word(self._word(row))
        self._fitted = True
        self._num_training_samples = int(features.shape[0])
        return self

    def update(self, inputs: np.ndarray) -> "BooleanPatternMonitor":
        """Fold additional data (e.g. a validation set) into the pattern set."""
        self._require_fitted()
        for row in self.features(inputs):
            self.patterns.add_word(self._word(row))
            self._num_training_samples += 1
        return self

    # ------------------------------------------------------------------
    def verdict(self, input_vector: np.ndarray) -> MonitorVerdict:
        self._require_fitted()
        feature = self.features(input_vector)[0]
        word = self._word(feature)
        if self.hamming_tolerance > 0:
            known = self.patterns.contains_within_hamming(word, self.hamming_tolerance)
        else:
            known = self.patterns.contains(word)
        return MonitorVerdict(
            warn=not known,
            details={
                "word": tuple(word),
                "hamming_tolerance": self.hamming_tolerance,
            },
        )

    # ------------------------------------------------------------------
    def pattern_count(self) -> int:
        """Number of distinct activation words in the abstraction."""
        self._require_fitted()
        return self.patterns.cardinality()

    def bdd_size(self) -> int:
        """Number of BDD nodes storing the abstraction."""
        self._require_fitted()
        return self.patterns.dag_size()

    def describe(self) -> Dict[str, object]:
        info = super().describe()
        info["hamming_tolerance"] = self.hamming_tolerance
        if self._fitted:
            info["pattern_count"] = self.pattern_count()
            info["bdd_size"] = self.bdd_size()
        return info


class RobustBooleanPatternMonitor(BooleanPatternMonitor):
    """Robust on/off pattern monitor ``M_{⟨G, k, k_p, Δ⟩}`` (Section III-B).

    The abstraction function ``ab_R`` maps each neuron's perturbation-estimate
    bound to 1 / 0 / don't-care; the resulting ternary word is inserted via
    ``word2set``.
    """

    kind = "robust_boolean_pattern"

    def __init__(
        self,
        network: Sequential,
        layer_index: int,
        perturbation: PerturbationSpec,
        thresholds: Union[str, np.ndarray] = "zero",
        neuron_indices: Optional[Sequence[int]] = None,
        hamming_tolerance: int = 0,
    ) -> None:
        super().__init__(
            network,
            layer_index,
            thresholds=thresholds,
            neuron_indices=neuron_indices,
            hamming_tolerance=hamming_tolerance,
        )
        if perturbation.layer >= layer_index:
            raise ConfigurationError(
                "perturbation layer k_p must be strictly before the monitored layer"
            )
        self.perturbation = perturbation
        self._dont_care_count = 0

    def _ternary_word(self, low: np.ndarray, high: np.ndarray) -> List[object]:
        """The robust abstraction ``ab_R`` producing 0 / 1 / don't-care."""
        word: List[object] = []
        for l, u, cut in zip(low, high, self.thresholds):
            if l > cut:
                word.append(1)
            elif u <= cut:
                word.append(0)
            else:
                word.append(DONT_CARE)
        return word

    def fit(self, training_inputs: np.ndarray) -> "RobustBooleanPatternMonitor":
        training_inputs = np.atleast_2d(np.asarray(training_inputs, dtype=np.float64))
        if training_inputs.shape[0] == 0:
            raise ShapeError("fit() needs at least one training input")
        features = self.features(training_inputs)
        self.thresholds = self._resolve_thresholds(features)
        self.patterns = PatternSet(self.num_monitored_neurons, bits_per_position=1)
        self._dont_care_count = 0
        for estimate in perturbation_estimates(
            self.network, training_inputs, self.layer_index, self.perturbation
        ):
            low, high = self._select(estimate.low, estimate.high)
            word = self._ternary_word(low, high)
            self._dont_care_count += sum(1 for symbol in word if symbol == DONT_CARE)
            self.patterns.add_ternary_word(word)
        self._fitted = True
        self._num_training_samples = int(training_inputs.shape[0])
        return self

    def update(self, inputs: np.ndarray) -> "RobustBooleanPatternMonitor":
        self._require_fitted()
        inputs = np.atleast_2d(np.asarray(inputs, dtype=np.float64))
        for estimate in perturbation_estimates(
            self.network, inputs, self.layer_index, self.perturbation
        ):
            low, high = self._select(estimate.low, estimate.high)
            word = self._ternary_word(low, high)
            self._dont_care_count += sum(1 for symbol in word if symbol == DONT_CARE)
            self.patterns.add_ternary_word(word)
            self._num_training_samples += 1
        return self

    @property
    def dont_care_fraction(self) -> float:
        """Average fraction of don't-care bits per inserted ternary word."""
        if self._num_training_samples == 0:
            raise NotFittedError("monitor has not been fitted")
        total_bits = self._num_training_samples * self.num_monitored_neurons
        return self._dont_care_count / total_bits

    def describe(self) -> Dict[str, object]:
        info = super().describe()
        info["perturbation"] = self.perturbation.describe()
        if self._fitted:
            info["dont_care_fraction"] = self.dont_care_fraction
        return info
