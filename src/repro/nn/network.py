"""Sequential feed-forward networks with layer-sliced evaluation.

The paper's notation is reproduced directly in the API:

* ``G^k(v)`` — :meth:`Sequential.forward_to` evaluates the first ``k`` layers
  (``G^0`` is the identity, matching the paper's convention that
  ``G^0(v) = v``);
* ``G^{l↪k}(v)`` — :meth:`Sequential.forward_from_to` evaluates layers
  ``l..k`` given the output of layer ``l-1``;
* the monitored feature vector of an input is simply ``forward_to(k)``.

Layer indices are therefore 1-based, exactly as in the paper; index ``0``
denotes the raw input.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import ConfigurationError, LayerIndexError, ShapeError
from .activations import get_activation
from .layers import ActivationLayer, Dense, Layer, layer_from_config

__all__ = ["Sequential", "mlp"]


class Sequential:
    """A feed-forward network ``G = g_n ∘ ... ∘ g_1``.

    Parameters
    ----------
    layers:
        The ordered layer list ``[g_1, ..., g_n]``.
    input_dim:
        Dimensionality ``d_0`` of the input vector.
    seed:
        Seed for parameter initialisation (reproducibility of experiments).
    """

    def __init__(
        self,
        layers: Sequence[Layer],
        input_dim: int,
        seed: Optional[int] = None,
    ) -> None:
        if input_dim <= 0:
            raise ConfigurationError("input_dim must be positive")
        if not layers:
            raise ConfigurationError("a network needs at least one layer")
        self.input_dim = int(input_dim)
        self.layers: List[Layer] = list(layers)
        rng = np.random.default_rng(seed)
        current_dim = self.input_dim
        for layer in self.layers:
            layer.build(current_dim, rng)
            current_dim = layer.output_dim if layer.output_dim else current_dim
        self.output_dim = current_dim

    # ------------------------------------------------------------------
    # basic introspection
    # ------------------------------------------------------------------
    @property
    def num_layers(self) -> int:
        """Number of layers ``n`` in the paper's notation."""
        return len(self.layers)

    def layer_output_dim(self, k: int) -> int:
        """Return ``d_k``, the dimensionality of the output of layer ``k``."""
        self._check_layer_index(k, allow_zero=True)
        if k == 0:
            return self.input_dim
        dim = self.layers[k - 1].output_dim
        if dim is None:  # pragma: no cover - defensive
            raise ConfigurationError("network layer was never built")
        return dim

    def _check_layer_index(self, k: int, allow_zero: bool = False) -> None:
        lowest = 0 if allow_zero else 1
        if not lowest <= k <= self.num_layers:
            raise LayerIndexError(
                f"layer index {k} outside valid range [{lowest}, {self.num_layers}]"
            )

    def _as_batch(self, x: np.ndarray) -> Tuple[np.ndarray, bool]:
        x = np.asarray(x, dtype=np.float64)
        if x.ndim == 1:
            return x[None, :], True
        if x.ndim == 2:
            return x, False
        return x.reshape(x.shape[0], -1), False

    # ------------------------------------------------------------------
    # concrete evaluation
    # ------------------------------------------------------------------
    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Evaluate the whole network ``G(x)``."""
        return self.forward_to(self.num_layers, x, training=training)

    def forward_to(self, k: int, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Evaluate ``G^k(x)``; ``k = 0`` returns ``x`` unchanged."""
        self._check_layer_index(k, allow_zero=True)
        batch, squeeze = self._as_batch(x)
        out = batch
        for layer in self.layers[:k]:
            out = layer.forward(out, training=training)
        return out[0] if squeeze else out

    def forward_from_to(
        self, l: int, k: int, x: np.ndarray, training: bool = False
    ) -> np.ndarray:
        """Evaluate ``G^{l↪k}(x)`` where ``x`` is the output of layer ``l-1``."""
        self._check_layer_index(l)
        self._check_layer_index(k)
        if l > k:
            raise LayerIndexError(f"slice start {l} exceeds slice end {k}")
        batch, squeeze = self._as_batch(x)
        out = batch
        for layer in self.layers[l - 1 : k]:
            out = layer.forward(out, training=training)
        return out[0] if squeeze else out

    def activations(self, x: np.ndarray) -> List[np.ndarray]:
        """Return the outputs of every layer ``[G^1(x), ..., G^n(x)]``."""
        batch, squeeze = self._as_batch(x)
        outputs: List[np.ndarray] = []
        out = batch
        for layer in self.layers:
            out = layer.forward(out, training=False)
            outputs.append(out[0] if squeeze else out)
        return outputs

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Alias of :meth:`forward` in inference mode."""
        return self.forward(x, training=False)

    def predict_classes(self, x: np.ndarray) -> np.ndarray:
        """Return the argmax class of the network output for each input."""
        logits = self.forward(x, training=False)
        return np.argmax(np.atleast_2d(logits), axis=-1)

    # ------------------------------------------------------------------
    # training support
    # ------------------------------------------------------------------
    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Backpropagate gradients through every layer (after a training pass)."""
        grad = np.asarray(grad_output, dtype=np.float64)
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def parameters(self) -> Dict[str, np.ndarray]:
        """Flat dict of all trainable parameters keyed by ``layer{i}.{name}``."""
        params: Dict[str, np.ndarray] = {}
        for index, layer in enumerate(self.layers, start=1):
            for name, value in layer.parameters().items():
                params[f"layer{index}.{name}"] = value
        return params

    def gradients(self) -> Dict[str, np.ndarray]:
        """Flat dict of gradients matching :meth:`parameters`."""
        grads: Dict[str, np.ndarray] = {}
        for index, layer in enumerate(self.layers, start=1):
            for name, value in layer.gradients().items():
                grads[f"layer{index}.{name}"] = value
        return grads

    def zero_gradients(self) -> None:
        for layer in self.layers:
            layer.zero_gradients()

    def num_parameters(self) -> int:
        """Total number of scalar trainable parameters."""
        return int(sum(p.size for p in self.parameters().values()))

    # ------------------------------------------------------------------
    # sound box propagation (used by the robust monitor)
    # ------------------------------------------------------------------
    def propagate_box(
        self,
        low: np.ndarray,
        high: np.ndarray,
        from_layer: int,
        to_layer: int,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Propagate a box from the output of ``from_layer`` to ``to_layer``.

        ``from_layer = 0`` means the box constrains the raw network input.
        The result is a sound axis-aligned over-approximation of
        ``G^{from_layer+1 ↪ to_layer}`` applied to the box.
        """
        self._check_layer_index(from_layer, allow_zero=True)
        self._check_layer_index(to_layer)
        if from_layer >= to_layer:
            raise LayerIndexError(
                f"from_layer ({from_layer}) must be strictly before to_layer "
                f"({to_layer})"
            )
        low = np.asarray(low, dtype=np.float64)
        high = np.asarray(high, dtype=np.float64)
        expected = self.layer_output_dim(from_layer)
        if low.shape != (expected,) or high.shape != (expected,):
            raise ShapeError(
                f"box bounds must have shape ({expected},); got {low.shape} "
                f"and {high.shape}"
            )
        if np.any(low > high):
            raise ShapeError("box lower bound exceeds upper bound")
        for layer in self.layers[from_layer:to_layer]:
            low, high = layer.propagate_box(low, high)
        return low, high

    def propagate_box_batch(
        self,
        lows: np.ndarray,
        highs: np.ndarray,
        from_layer: int,
        to_layer: int,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Propagate one box per row of ``(N, d)`` bound matrices.

        The batched counterpart of :meth:`propagate_box`: row ``i`` of the
        result is a sound axis-aligned over-approximation of
        ``G^{from_layer+1 ↪ to_layer}`` applied to the ``i``-th input box.
        Every layer's interval transformer is applied to the whole batch at
        once (one matrix product per affine layer), so the cost of ``N`` boxes
        is one layer walk instead of ``N``.
        """
        self._check_layer_index(from_layer, allow_zero=True)
        self._check_layer_index(to_layer)
        if from_layer >= to_layer:
            raise LayerIndexError(
                f"from_layer ({from_layer}) must be strictly before to_layer "
                f"({to_layer})"
            )
        lows = np.asarray(lows, dtype=np.float64)
        highs = np.asarray(highs, dtype=np.float64)
        expected = self.layer_output_dim(from_layer)
        if lows.ndim != 2 or lows.shape[1] != expected or lows.shape != highs.shape:
            raise ShapeError(
                f"batched box bounds must have shape (N, {expected}); got "
                f"{lows.shape} and {highs.shape}"
            )
        if np.any(lows > highs):
            raise ShapeError("box lower bound exceeds upper bound")
        for layer in self.layers[from_layer:to_layer]:
            lows, highs = layer.propagate_box(lows, highs)
        return lows, highs

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def get_config(self) -> Dict[str, object]:
        return {
            "input_dim": self.input_dim,
            "layers": [layer.get_config() for layer in self.layers],
        }

    def get_weights(self) -> List[np.ndarray]:
        weights: List[np.ndarray] = []
        for layer in self.layers:
            weights.extend(layer.get_weights())
        return weights

    def set_weights(self, weights: Iterable[np.ndarray]) -> None:
        weights = list(weights)
        cursor = 0
        for layer in self.layers:
            count = len(layer.get_weights())
            layer.set_weights(weights[cursor : cursor + count])
            cursor += count
        if cursor != len(weights):
            raise ConfigurationError(
                f"set_weights received {len(weights)} arrays but the network "
                f"consumes {cursor}"
            )

    @classmethod
    def from_config(
        cls, config: Dict[str, object], seed: Optional[int] = None
    ) -> "Sequential":
        layers = [layer_from_config(c) for c in config["layers"]]  # type: ignore[index]
        return cls(layers, input_dim=int(config["input_dim"]), seed=seed)

    def copy(self) -> "Sequential":
        """Deep copy: same architecture and same weights."""
        clone = Sequential.from_config(self.get_config(), seed=0)
        clone.set_weights([np.array(w, copy=True) for w in self.get_weights()])
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        dims = [self.input_dim] + [layer.output_dim for layer in self.layers]
        return f"Sequential(dims={dims})"


def mlp(
    input_dim: int,
    hidden_dims: Sequence[int],
    output_dim: int,
    activation: str = "relu",
    output_activation: Optional[str] = None,
    seed: Optional[int] = None,
) -> Sequential:
    """Build a standard multi-layer perceptron.

    The returned network alternates :class:`Dense` and activation layers,
    matching the ``g_k`` decomposition of the paper (each ``g_k`` is either an
    affine map or an elementwise non-linearity).  The close-to-output hidden
    activation layer is the natural choice for the monitored layer ``k``.

    Parameters
    ----------
    input_dim: dimensionality of the raw input ``d_0``.
    hidden_dims: widths of the hidden dense layers.
    output_dim: dimensionality of the network output ``d_n``.
    activation: hidden activation name (default ``"relu"``).
    output_activation: optional output activation name (``None`` keeps logits).
    seed: initialisation seed.
    """
    if not hidden_dims:
        raise ConfigurationError("mlp() requires at least one hidden layer")
    get_activation(activation)  # validate the name eagerly
    layers: List[Layer] = []
    for width in hidden_dims:
        layers.append(Dense(width))
        layers.append(ActivationLayer(activation))
    layers.append(Dense(output_dim))
    if output_activation is not None:
        layers.append(ActivationLayer(output_activation))
    return Sequential(layers, input_dim=input_dim, seed=seed)
