"""Loss functions for training the reproduction's networks.

Each loss returns both the scalar loss value and the gradient with respect to
the network output, which the :class:`~repro.nn.training.Trainer` feeds into
:meth:`Sequential.backward`.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..exceptions import ConfigurationError, ShapeError

__all__ = [
    "Loss",
    "MeanSquaredError",
    "MeanAbsoluteError",
    "SoftmaxCrossEntropy",
    "Huber",
    "get_loss",
    "softmax",
    "one_hot",
]


def softmax(logits: np.ndarray) -> np.ndarray:
    """Numerically stable softmax along the last axis."""
    logits = np.asarray(logits, dtype=np.float64)
    shifted = logits - logits.max(axis=-1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=-1, keepdims=True)


def one_hot(labels: np.ndarray, num_classes: int) -> np.ndarray:
    """Convert integer class labels to a one-hot matrix."""
    labels = np.asarray(labels, dtype=np.int64)
    if labels.ndim != 1:
        raise ShapeError(f"labels must be a 1-D integer array, got shape {labels.shape}")
    if labels.min(initial=0) < 0 or labels.max(initial=0) >= num_classes:
        raise ShapeError("labels out of range for the requested number of classes")
    encoded = np.zeros((labels.shape[0], num_classes), dtype=np.float64)
    encoded[np.arange(labels.shape[0]), labels] = 1.0
    return encoded


class Loss:
    """Base class for losses: returns ``(value, grad_wrt_predictions)``."""

    name = "loss"

    def __call__(
        self, predictions: np.ndarray, targets: np.ndarray
    ) -> Tuple[float, np.ndarray]:
        raise NotImplementedError

    @staticmethod
    def _validate(predictions: np.ndarray, targets: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        predictions = np.atleast_2d(np.asarray(predictions, dtype=np.float64))
        targets = np.atleast_2d(np.asarray(targets, dtype=np.float64))
        if predictions.shape != targets.shape:
            raise ShapeError(
                f"predictions shape {predictions.shape} does not match targets "
                f"shape {targets.shape}"
            )
        return predictions, targets


class MeanSquaredError(Loss):
    """Mean squared error averaged over batch and output dimensions."""

    name = "mse"

    def __call__(self, predictions, targets):
        predictions, targets = self._validate(predictions, targets)
        diff = predictions - targets
        value = float(np.mean(diff * diff))
        grad = 2.0 * diff / diff.size
        return value, grad


class MeanAbsoluteError(Loss):
    """Mean absolute error averaged over batch and output dimensions."""

    name = "mae"

    def __call__(self, predictions, targets):
        predictions, targets = self._validate(predictions, targets)
        diff = predictions - targets
        value = float(np.mean(np.abs(diff)))
        grad = np.sign(diff) / diff.size
        return value, grad


class Huber(Loss):
    """Huber loss: quadratic near zero, linear for large residuals."""

    name = "huber"

    def __init__(self, delta: float = 1.0):
        if delta <= 0:
            raise ConfigurationError("Huber delta must be positive")
        self.delta = float(delta)

    def __call__(self, predictions, targets):
        predictions, targets = self._validate(predictions, targets)
        diff = predictions - targets
        abs_diff = np.abs(diff)
        quadratic = np.minimum(abs_diff, self.delta)
        linear = abs_diff - quadratic
        value = float(np.mean(0.5 * quadratic**2 + self.delta * linear))
        grad = np.clip(diff, -self.delta, self.delta) / diff.size
        return value, grad


class SoftmaxCrossEntropy(Loss):
    """Softmax followed by cross entropy against one-hot (or soft) targets."""

    name = "softmax_cross_entropy"

    def __call__(self, predictions, targets):
        predictions, targets = self._validate(predictions, targets)
        probabilities = softmax(predictions)
        clipped = np.clip(probabilities, 1e-12, 1.0)
        value = float(-np.mean(np.sum(targets * np.log(clipped), axis=-1)))
        grad = (probabilities - targets) / predictions.shape[0]
        return value, grad


_REGISTRY = {
    "mse": MeanSquaredError,
    "mae": MeanAbsoluteError,
    "huber": Huber,
    "softmax_cross_entropy": SoftmaxCrossEntropy,
    "cross_entropy": SoftmaxCrossEntropy,
}


def get_loss(name: str) -> Loss:
    """Return a loss instance from its registry ``name``."""
    try:
        return _REGISTRY[name]()
    except KeyError as exc:
        known = ", ".join(sorted(_REGISTRY))
        raise ConfigurationError(f"unknown loss '{name}'; known losses: {known}") from exc
