"""Mini-batch training loop for the numpy DNN substrate.

The reproduction trains small classification networks (synthetic digits) and
regression networks (track waypoints) whose frozen weights feed the monitor
construction.  The trainer is intentionally simple: shuffled mini-batches,
optional validation tracking, early stopping and a training history that the
examples print.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from ..exceptions import ConfigurationError, ShapeError
from .losses import Loss, get_loss, one_hot, softmax
from .network import Sequential
from .optimizers import Optimizer, get_optimizer

__all__ = ["TrainingHistory", "Trainer", "accuracy", "train_classifier", "train_regressor"]


def accuracy(network: Sequential, inputs: np.ndarray, labels: np.ndarray) -> float:
    """Classification accuracy of ``network`` on integer ``labels``."""
    predictions = network.predict_classes(inputs)
    labels = np.asarray(labels, dtype=np.int64)
    if predictions.shape != labels.shape:
        raise ShapeError(
            f"prediction shape {predictions.shape} does not match labels "
            f"{labels.shape}"
        )
    return float(np.mean(predictions == labels))


@dataclass
class TrainingHistory:
    """Per-epoch record of losses and metrics produced by :class:`Trainer`."""

    train_loss: List[float] = field(default_factory=list)
    validation_loss: List[float] = field(default_factory=list)
    train_metric: List[float] = field(default_factory=list)
    validation_metric: List[float] = field(default_factory=list)

    @property
    def epochs(self) -> int:
        return len(self.train_loss)

    def best_validation_loss(self) -> Optional[float]:
        if not self.validation_loss:
            return None
        return float(min(self.validation_loss))

    def summary(self) -> str:
        """One-line human-readable summary of the final epoch."""
        if not self.train_loss:
            return "no training performed"
        parts = [f"epochs={self.epochs}", f"train_loss={self.train_loss[-1]:.4f}"]
        if self.validation_loss:
            parts.append(f"val_loss={self.validation_loss[-1]:.4f}")
        if self.train_metric:
            parts.append(f"train_metric={self.train_metric[-1]:.4f}")
        if self.validation_metric:
            parts.append(f"val_metric={self.validation_metric[-1]:.4f}")
        return ", ".join(parts)


class Trainer:
    """Mini-batch gradient-descent trainer for :class:`Sequential` networks."""

    def __init__(
        self,
        network: Sequential,
        loss: "Loss | str" = "mse",
        optimizer: "Optimizer | str" = "adam",
        batch_size: int = 32,
        seed: Optional[int] = None,
    ) -> None:
        if batch_size <= 0:
            raise ConfigurationError("batch_size must be positive")
        self.network = network
        self.loss = get_loss(loss) if isinstance(loss, str) else loss
        self.optimizer = (
            get_optimizer(optimizer) if isinstance(optimizer, str) else optimizer
        )
        self.batch_size = int(batch_size)
        self._rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------
    def _batches(self, count: int) -> List[np.ndarray]:
        order = self._rng.permutation(count)
        return [
            order[start : start + self.batch_size]
            for start in range(0, count, self.batch_size)
        ]

    def train_step(self, inputs: np.ndarray, targets: np.ndarray) -> float:
        """One gradient step on a single mini-batch; returns the batch loss."""
        self.network.zero_gradients()
        predictions = self.network.forward(inputs, training=True)
        value, grad = self.loss(predictions, targets)
        self.network.backward(grad)
        self.optimizer.step(self.network.parameters(), self.network.gradients())
        return value

    def evaluate(self, inputs: np.ndarray, targets: np.ndarray) -> float:
        """Loss of the network on ``(inputs, targets)`` without updating it."""
        predictions = self.network.forward(inputs, training=False)
        value, _ = self.loss(predictions, targets)
        return value

    def fit(
        self,
        inputs: np.ndarray,
        targets: np.ndarray,
        epochs: int = 10,
        validation_data: Optional[Tuple[np.ndarray, np.ndarray]] = None,
        metric=None,
        early_stopping_patience: Optional[int] = None,
        verbose: bool = False,
    ) -> TrainingHistory:
        """Train for ``epochs`` epochs and return the loss/metric history.

        Parameters
        ----------
        metric:
            Optional callable ``metric(network, inputs, targets) -> float``
            evaluated on training (and validation) data after each epoch.
        early_stopping_patience:
            Stop when the validation loss has not improved for this many
            epochs; requires ``validation_data``.
        """
        inputs = np.asarray(inputs, dtype=np.float64)
        targets = np.asarray(targets, dtype=np.float64)
        if inputs.shape[0] != targets.shape[0]:
            raise ShapeError("inputs and targets disagree on the number of samples")
        if early_stopping_patience is not None and validation_data is None:
            raise ConfigurationError(
                "early stopping requires validation_data to be provided"
            )
        history = TrainingHistory()
        best_val = np.inf
        stale_epochs = 0
        for epoch in range(epochs):
            epoch_losses = []
            for batch in self._batches(inputs.shape[0]):
                epoch_losses.append(self.train_step(inputs[batch], targets[batch]))
            history.train_loss.append(float(np.mean(epoch_losses)))
            if metric is not None:
                history.train_metric.append(float(metric(self.network, inputs, targets)))
            if validation_data is not None:
                val_inputs, val_targets = validation_data
                val_loss = self.evaluate(val_inputs, val_targets)
                history.validation_loss.append(val_loss)
                if metric is not None:
                    history.validation_metric.append(
                        float(metric(self.network, val_inputs, val_targets))
                    )
                if early_stopping_patience is not None:
                    if val_loss < best_val - 1e-12:
                        best_val = val_loss
                        stale_epochs = 0
                    else:
                        stale_epochs += 1
                        if stale_epochs >= early_stopping_patience:
                            break
            if verbose:  # pragma: no cover - console output
                print(f"epoch {epoch + 1}: {history.summary()}")
        return history


def train_classifier(
    network: Sequential,
    inputs: np.ndarray,
    labels: np.ndarray,
    num_classes: int,
    epochs: int = 20,
    learning_rate: float = 0.005,
    batch_size: int = 64,
    validation_data: Optional[Tuple[np.ndarray, np.ndarray]] = None,
    seed: Optional[int] = 0,
) -> TrainingHistory:
    """Train a classification network with softmax cross entropy.

    ``labels`` are integer class ids; validation data (if given) uses integer
    labels as well.  Returns the :class:`TrainingHistory` with accuracy as the
    tracked metric.
    """
    targets = one_hot(np.asarray(labels), num_classes)
    validation = None
    if validation_data is not None:
        val_inputs, val_labels = validation_data
        validation = (
            np.asarray(val_inputs, dtype=np.float64),
            one_hot(np.asarray(val_labels), num_classes),
        )

    def metric(net: Sequential, x: np.ndarray, y_onehot: np.ndarray) -> float:
        return accuracy(net, x, np.argmax(y_onehot, axis=-1))

    trainer = Trainer(
        network,
        loss="softmax_cross_entropy",
        optimizer=get_optimizer("adam", learning_rate=learning_rate),
        batch_size=batch_size,
        seed=seed,
    )
    return trainer.fit(
        inputs,
        targets,
        epochs=epochs,
        validation_data=validation,
        metric=metric,
    )


def train_regressor(
    network: Sequential,
    inputs: np.ndarray,
    targets: np.ndarray,
    epochs: int = 30,
    learning_rate: float = 0.005,
    batch_size: int = 64,
    validation_data: Optional[Tuple[np.ndarray, np.ndarray]] = None,
    seed: Optional[int] = 0,
) -> TrainingHistory:
    """Train a regression network (e.g. the waypoint predictor) with MSE."""
    trainer = Trainer(
        network,
        loss="mse",
        optimizer=get_optimizer("adam", learning_rate=learning_rate),
        batch_size=batch_size,
        seed=seed,
    )
    return trainer.fit(inputs, targets, epochs=epochs, validation_data=validation_data)


def predict_probabilities(network: Sequential, inputs: np.ndarray) -> np.ndarray:
    """Softmax probabilities of a classification network."""
    return softmax(network.forward(inputs, training=False))
