"""Elementwise activation functions with derivatives and monotone bounds.

Activations appear in three places in the reproduction:

* forward evaluation of the trained network (`value`);
* backpropagation during training (`derivative`);
* sound symbolic bound propagation for robust monitor construction
  (`bound_transform`), which maps an interval ``[low, high]`` of pre-
  activation values to an interval guaranteed to contain every possible
  post-activation value.

All activations used in the paper's setting (ReLU family, sigmoid, tanh,
identity) are monotone non-decreasing, so the bound transform is simply the
activation applied to both interval ends.  The base class nevertheless keeps
the hook explicit so non-monotone activations could be supported by
overriding :meth:`bound_transform`.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..exceptions import ConfigurationError

__all__ = [
    "Activation",
    "Identity",
    "ReLU",
    "LeakyReLU",
    "Sigmoid",
    "Tanh",
    "Softplus",
    "HardTanh",
    "ELU",
    "get_activation",
]


class Activation:
    """Base class for elementwise activation functions."""

    name = "activation"
    #: True when the function is monotone non-decreasing on all of R.
    monotone = True

    def value(self, x: np.ndarray) -> np.ndarray:
        """Return the activation applied elementwise to ``x``."""
        raise NotImplementedError

    def derivative(self, x: np.ndarray) -> np.ndarray:
        """Return the elementwise derivative evaluated at pre-activation ``x``."""
        raise NotImplementedError

    def bound_transform(
        self, low: np.ndarray, high: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Map pre-activation bounds to sound post-activation bounds.

        For monotone activations the image of ``[low, high]`` is exactly
        ``[value(low), value(high)]``.
        """
        if not self.monotone:  # pragma: no cover - defensive
            raise NotImplementedError(
                f"{self.name} is not monotone; override bound_transform"
            )
        return self.value(low), self.value(high)

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.value(x)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.__class__.__name__}()"


class Identity(Activation):
    """Identity (linear) activation."""

    name = "identity"

    def value(self, x):
        return np.asarray(x, dtype=np.float64)

    def derivative(self, x):
        return np.ones_like(np.asarray(x, dtype=np.float64))


class ReLU(Activation):
    """Rectified linear unit ``max(0, x)``."""

    name = "relu"

    def value(self, x):
        return np.maximum(np.asarray(x, dtype=np.float64), 0.0)

    def derivative(self, x):
        return (np.asarray(x) > 0.0).astype(np.float64)


class LeakyReLU(Activation):
    """Leaky ReLU with a small negative-side slope."""

    name = "leaky_relu"

    def __init__(self, alpha: float = 0.01):
        if alpha < 0 or alpha >= 1:
            raise ConfigurationError("leaky ReLU slope must lie in [0, 1)")
        self.alpha = float(alpha)

    def value(self, x):
        x = np.asarray(x, dtype=np.float64)
        return np.where(x > 0.0, x, self.alpha * x)

    def derivative(self, x):
        x = np.asarray(x, dtype=np.float64)
        return np.where(x > 0.0, 1.0, self.alpha)


class Sigmoid(Activation):
    """Logistic sigmoid, numerically stabilised for large magnitudes."""

    name = "sigmoid"

    def value(self, x):
        x = np.asarray(x, dtype=np.float64)
        out = np.empty_like(x)
        positive = x >= 0
        out[positive] = 1.0 / (1.0 + np.exp(-x[positive]))
        expx = np.exp(x[~positive])
        out[~positive] = expx / (1.0 + expx)
        return out

    def derivative(self, x):
        s = self.value(x)
        return s * (1.0 - s)


class Tanh(Activation):
    """Hyperbolic tangent activation."""

    name = "tanh"

    def value(self, x):
        return np.tanh(np.asarray(x, dtype=np.float64))

    def derivative(self, x):
        t = np.tanh(np.asarray(x, dtype=np.float64))
        return 1.0 - t * t


class Softplus(Activation):
    """Softplus ``log(1 + exp(x))``, a smooth ReLU surrogate."""

    name = "softplus"

    def value(self, x):
        x = np.asarray(x, dtype=np.float64)
        # log1p(exp(-|x|)) + max(x, 0) is stable for both signs.
        return np.log1p(np.exp(-np.abs(x))) + np.maximum(x, 0.0)

    def derivative(self, x):
        return Sigmoid().value(x)


class HardTanh(Activation):
    """Piecewise-linear tanh clamp to ``[-1, 1]``."""

    name = "hard_tanh"

    def value(self, x):
        return np.clip(np.asarray(x, dtype=np.float64), -1.0, 1.0)

    def derivative(self, x):
        x = np.asarray(x, dtype=np.float64)
        return ((x > -1.0) & (x < 1.0)).astype(np.float64)


class ELU(Activation):
    """Exponential linear unit."""

    name = "elu"

    def __init__(self, alpha: float = 1.0):
        if alpha <= 0:
            raise ConfigurationError("ELU alpha must be positive")
        self.alpha = float(alpha)

    def value(self, x):
        x = np.asarray(x, dtype=np.float64)
        return np.where(x > 0.0, x, self.alpha * np.expm1(x))

    def derivative(self, x):
        x = np.asarray(x, dtype=np.float64)
        return np.where(x > 0.0, 1.0, self.alpha * np.exp(x))


_REGISTRY = {
    "identity": Identity,
    "linear": Identity,
    "relu": ReLU,
    "leaky_relu": LeakyReLU,
    "sigmoid": Sigmoid,
    "tanh": Tanh,
    "softplus": Softplus,
    "hard_tanh": HardTanh,
    "elu": ELU,
}


def get_activation(name: str) -> Activation:
    """Return an activation instance from its registry ``name``."""
    try:
        return _REGISTRY[name]()
    except KeyError as exc:
        known = ", ".join(sorted(_REGISTRY))
        raise ConfigurationError(
            f"unknown activation '{name}'; known activations: {known}"
        ) from exc
