"""Gradient-based optimizers for the numpy DNN substrate.

All optimizers operate on the flat parameter/gradient dictionaries exposed by
:class:`~repro.nn.network.Sequential` and update parameters *in place*, so a
single network object is trained, then frozen and handed to the monitor
construction code.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..exceptions import ConfigurationError

__all__ = ["Optimizer", "SGD", "Momentum", "Adam", "RMSProp", "get_optimizer"]


class Optimizer:
    """Base class: applies an update rule to parameter arrays in place."""

    name = "optimizer"

    def __init__(self, learning_rate: float = 0.01):
        if learning_rate <= 0:
            raise ConfigurationError("learning rate must be positive")
        self.learning_rate = float(learning_rate)
        self.iterations = 0

    def step(
        self, parameters: Dict[str, np.ndarray], gradients: Dict[str, np.ndarray]
    ) -> None:
        """Apply one update using gradients already accumulated."""
        self.iterations += 1
        for key, param in parameters.items():
            grad = gradients.get(key)
            if grad is None:
                raise ConfigurationError(f"missing gradient for parameter '{key}'")
            self._update(key, param, grad)

    def _update(self, key: str, param: np.ndarray, grad: np.ndarray) -> None:
        raise NotImplementedError

    def reset(self) -> None:
        """Clear optimizer state (slots, moments, iteration counter)."""
        self.iterations = 0


class SGD(Optimizer):
    """Vanilla stochastic gradient descent."""

    name = "sgd"

    def _update(self, key, param, grad):
        param -= self.learning_rate * grad


class Momentum(Optimizer):
    """SGD with classical momentum."""

    name = "momentum"

    def __init__(self, learning_rate: float = 0.01, momentum: float = 0.9):
        super().__init__(learning_rate)
        if not 0.0 <= momentum < 1.0:
            raise ConfigurationError("momentum must lie in [0, 1)")
        self.momentum = float(momentum)
        self._velocity: Dict[str, np.ndarray] = {}

    def _update(self, key, param, grad):
        velocity = self._velocity.setdefault(key, np.zeros_like(param))
        velocity *= self.momentum
        velocity -= self.learning_rate * grad
        param += velocity

    def reset(self) -> None:
        super().reset()
        self._velocity.clear()


class RMSProp(Optimizer):
    """RMSProp with exponential moving average of squared gradients."""

    name = "rmsprop"

    def __init__(
        self, learning_rate: float = 0.001, rho: float = 0.9, epsilon: float = 1e-8
    ):
        super().__init__(learning_rate)
        if not 0.0 < rho < 1.0:
            raise ConfigurationError("rho must lie in (0, 1)")
        self.rho = float(rho)
        self.epsilon = float(epsilon)
        self._cache: Dict[str, np.ndarray] = {}

    def _update(self, key, param, grad):
        cache = self._cache.setdefault(key, np.zeros_like(param))
        cache *= self.rho
        cache += (1.0 - self.rho) * grad * grad
        param -= self.learning_rate * grad / (np.sqrt(cache) + self.epsilon)

    def reset(self) -> None:
        super().reset()
        self._cache.clear()


class Adam(Optimizer):
    """Adam optimizer with bias-corrected first and second moments."""

    name = "adam"

    def __init__(
        self,
        learning_rate: float = 0.001,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
    ):
        super().__init__(learning_rate)
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ConfigurationError("Adam betas must lie in [0, 1)")
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.epsilon = float(epsilon)
        self._m: Dict[str, np.ndarray] = {}
        self._v: Dict[str, np.ndarray] = {}

    def _update(self, key, param, grad):
        m = self._m.setdefault(key, np.zeros_like(param))
        v = self._v.setdefault(key, np.zeros_like(param))
        m *= self.beta1
        m += (1.0 - self.beta1) * grad
        v *= self.beta2
        v += (1.0 - self.beta2) * grad * grad
        m_hat = m / (1.0 - self.beta1**self.iterations)
        v_hat = v / (1.0 - self.beta2**self.iterations)
        param -= self.learning_rate * m_hat / (np.sqrt(v_hat) + self.epsilon)

    def reset(self) -> None:
        super().reset()
        self._m.clear()
        self._v.clear()


_REGISTRY = {"sgd": SGD, "momentum": Momentum, "adam": Adam, "rmsprop": RMSProp}


def get_optimizer(name: str, **kwargs) -> Optimizer:
    """Return an optimizer instance from its registry ``name``."""
    try:
        return _REGISTRY[name](**kwargs)
    except KeyError as exc:
        known = ", ".join(sorted(_REGISTRY))
        raise ConfigurationError(
            f"unknown optimizer '{name}'; known optimizers: {known}"
        ) from exc
