"""Weight initialisation strategies for the numpy DNN substrate.

The monitor-construction algorithms only require a *trained* feed-forward
network, but the reproduction trains its own networks from scratch, so the
usual initialisation schemes (Glorot/Xavier, He/Kaiming, LeCun, orthogonal)
are provided.  Every initializer is a small callable object so that networks
can be serialised together with the name of the scheme that produced them.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..exceptions import ConfigurationError

__all__ = [
    "Initializer",
    "Zeros",
    "Constant",
    "RandomNormal",
    "RandomUniform",
    "GlorotUniform",
    "GlorotNormal",
    "HeUniform",
    "HeNormal",
    "LeCunNormal",
    "Orthogonal",
    "get_initializer",
]


class Initializer:
    """Base class for weight initialisers.

    Subclasses implement :meth:`sample` which receives the shape of the
    parameter tensor (``(fan_in, fan_out)`` for dense weights, ``(fan_out,)``
    for biases) and a :class:`numpy.random.Generator`.
    """

    name = "initializer"

    def sample(self, shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
        raise NotImplementedError

    def __call__(
        self, shape: Tuple[int, ...], rng: Optional[np.random.Generator] = None
    ) -> np.ndarray:
        if rng is None:
            rng = np.random.default_rng()
        return self.sample(shape, rng).astype(np.float64)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.__class__.__name__}()"


def _fans(shape: Tuple[int, ...]) -> Tuple[int, int]:
    """Return ``(fan_in, fan_out)`` for a parameter tensor shape."""
    if len(shape) == 1:
        return shape[0], shape[0]
    if len(shape) == 2:
        return shape[0], shape[1]
    receptive = int(np.prod(shape[2:]))
    return shape[0] * receptive, shape[1] * receptive


class Zeros(Initializer):
    """Initialise every entry with zero (typical for biases)."""

    name = "zeros"

    def sample(self, shape, rng):
        return np.zeros(shape)


class Constant(Initializer):
    """Initialise every entry with a fixed constant value."""

    name = "constant"

    def __init__(self, value: float = 0.0):
        self.value = float(value)

    def sample(self, shape, rng):
        return np.full(shape, self.value)


class RandomNormal(Initializer):
    """Independent Gaussian entries with configurable mean and stddev."""

    name = "random_normal"

    def __init__(self, mean: float = 0.0, stddev: float = 0.05):
        if stddev <= 0:
            raise ConfigurationError("stddev must be positive")
        self.mean = float(mean)
        self.stddev = float(stddev)

    def sample(self, shape, rng):
        return rng.normal(self.mean, self.stddev, size=shape)


class RandomUniform(Initializer):
    """Independent uniform entries in ``[low, high]``."""

    name = "random_uniform"

    def __init__(self, low: float = -0.05, high: float = 0.05):
        if high <= low:
            raise ConfigurationError("high must exceed low")
        self.low = float(low)
        self.high = float(high)

    def sample(self, shape, rng):
        return rng.uniform(self.low, self.high, size=shape)


class GlorotUniform(Initializer):
    """Glorot/Xavier uniform initialisation, suited to tanh/sigmoid layers."""

    name = "glorot_uniform"

    def sample(self, shape, rng):
        fan_in, fan_out = _fans(shape)
        limit = np.sqrt(6.0 / (fan_in + fan_out))
        return rng.uniform(-limit, limit, size=shape)


class GlorotNormal(Initializer):
    """Glorot/Xavier normal initialisation."""

    name = "glorot_normal"

    def sample(self, shape, rng):
        fan_in, fan_out = _fans(shape)
        stddev = np.sqrt(2.0 / (fan_in + fan_out))
        return rng.normal(0.0, stddev, size=shape)


class HeUniform(Initializer):
    """He/Kaiming uniform initialisation, suited to ReLU layers."""

    name = "he_uniform"

    def sample(self, shape, rng):
        fan_in, _ = _fans(shape)
        limit = np.sqrt(6.0 / fan_in)
        return rng.uniform(-limit, limit, size=shape)


class HeNormal(Initializer):
    """He/Kaiming normal initialisation, suited to ReLU layers."""

    name = "he_normal"

    def sample(self, shape, rng):
        fan_in, _ = _fans(shape)
        stddev = np.sqrt(2.0 / fan_in)
        return rng.normal(0.0, stddev, size=shape)


class LeCunNormal(Initializer):
    """LeCun normal initialisation (variance ``1/fan_in``)."""

    name = "lecun_normal"

    def sample(self, shape, rng):
        fan_in, _ = _fans(shape)
        stddev = np.sqrt(1.0 / fan_in)
        return rng.normal(0.0, stddev, size=shape)


class Orthogonal(Initializer):
    """Orthogonal initialisation via QR decomposition of a Gaussian matrix."""

    name = "orthogonal"

    def __init__(self, gain: float = 1.0):
        self.gain = float(gain)

    def sample(self, shape, rng):
        if len(shape) < 2:
            return rng.normal(0.0, 1.0, size=shape) * self.gain
        rows, cols = shape[0], int(np.prod(shape[1:]))
        flat = rng.normal(0.0, 1.0, size=(max(rows, cols), min(rows, cols)))
        q, r = np.linalg.qr(flat)
        q *= np.sign(np.diag(r))
        if rows < cols:
            q = q.T
        return (self.gain * q[:rows, :cols]).reshape(shape)


_REGISTRY = {
    cls.name: cls
    for cls in (
        Zeros,
        Constant,
        RandomNormal,
        RandomUniform,
        GlorotUniform,
        GlorotNormal,
        HeUniform,
        HeNormal,
        LeCunNormal,
        Orthogonal,
    )
}


def get_initializer(name: str) -> Initializer:
    """Return an initializer instance from its registry ``name``.

    Raises :class:`ConfigurationError` for unknown names so that typos in
    configuration files fail loudly instead of silently falling back.
    """
    try:
        return _REGISTRY[name]()
    except KeyError as exc:
        known = ", ".join(sorted(_REGISTRY))
        raise ConfigurationError(
            f"unknown initializer '{name}'; known initializers: {known}"
        ) from exc
