"""Layer implementations for the numpy feed-forward DNN substrate.

The paper models a DNN as ``G = g_n ∘ ... ∘ g_1`` where every ``g_k`` is the
transformation of the ``k``-th layer.  Layers here therefore carry three
capabilities:

* **concrete evaluation** (:meth:`Layer.forward`) used when the trained
  network classifies or regresses an operational input;
* **gradient computation** (:meth:`Layer.backward`) used only while the
  reproduction trains its own networks;
* **sound box propagation** (:meth:`Layer.propagate_box`) used by the robust
  monitor construction to turn a Δ-bounded perturbation at layer ``k_p`` into
  guaranteed per-neuron bounds at the monitored layer ``k`` (interval bound
  propagation, reference [3] of the paper).

Zonotope and star-set propagation need direct access to the affine structure
of a layer; affine layers expose ``weights`` and ``bias`` and set
``is_affine`` so the symbolic back-ends can special-case them.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..exceptions import ConfigurationError, ShapeError
from .activations import Activation, get_activation
from .initializers import GlorotUniform, HeNormal, Initializer, Zeros

__all__ = [
    "Layer",
    "Dense",
    "ActivationLayer",
    "Dropout",
    "Flatten",
    "Scale",
    "layer_from_config",
]


class Layer:
    """Base class for all layers of the sequential network."""

    #: True when the layer computes ``W x + b`` (exposes weights/bias).
    is_affine = False
    #: True when the layer has trainable parameters.
    trainable = False

    def __init__(self) -> None:
        self.input_dim: Optional[int] = None
        self.output_dim: Optional[int] = None
        self._last_input: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    def build(self, input_dim: int, rng: np.random.Generator) -> None:
        """Finalise the layer for a given input dimension."""
        self.input_dim = int(input_dim)
        self.output_dim = int(input_dim)

    # ------------------------------------------------------------------
    # concrete evaluation
    # ------------------------------------------------------------------
    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Evaluate the layer on a batch ``x`` of shape ``(batch, input_dim)``."""
        raise NotImplementedError

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Backpropagate ``dL/d_output`` to ``dL/d_input``; accumulate grads."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # parameters
    # ------------------------------------------------------------------
    def parameters(self) -> Dict[str, np.ndarray]:
        """Return the trainable parameter arrays keyed by name."""
        return {}

    def gradients(self) -> Dict[str, np.ndarray]:
        """Return gradients matching :meth:`parameters` keys."""
        return {}

    def zero_gradients(self) -> None:
        for grad in self.gradients().values():
            grad.fill(0.0)

    # ------------------------------------------------------------------
    # symbolic reasoning
    # ------------------------------------------------------------------
    def propagate_box(
        self, low: np.ndarray, high: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Propagate axis-aligned boxes soundly through the layer.

        Accepts either ``(d,)`` bounds describing one box or ``(N, d)`` bound
        matrices describing one box per row; the batched form is the hot path
        of :meth:`repro.nn.network.Sequential.propagate_box_batch`.
        """
        raise NotImplementedError

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def get_config(self) -> Dict[str, object]:
        """Return a JSON-serialisable description of the layer."""
        return {"type": self.__class__.__name__}

    def get_weights(self) -> List[np.ndarray]:
        return []

    def set_weights(self, weights: List[np.ndarray]) -> None:
        if weights:
            raise ConfigurationError(
                f"{self.__class__.__name__} does not accept weights"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{self.__class__.__name__}(input_dim={self.input_dim}, "
            f"output_dim={self.output_dim})"
        )


class Dense(Layer):
    """Fully connected affine layer computing ``x @ W + b``.

    ``W`` has shape ``(input_dim, units)`` and ``b`` shape ``(units,)``.
    """

    is_affine = True
    trainable = True

    def __init__(
        self,
        units: int,
        weight_initializer: Optional[Initializer] = None,
        bias_initializer: Optional[Initializer] = None,
    ) -> None:
        super().__init__()
        if units <= 0:
            raise ConfigurationError("Dense units must be a positive integer")
        self.units = int(units)
        self.weight_initializer = weight_initializer or GlorotUniform()
        self.bias_initializer = bias_initializer or Zeros()
        self.weights: Optional[np.ndarray] = None
        self.bias: Optional[np.ndarray] = None
        self._grad_weights: Optional[np.ndarray] = None
        self._grad_bias: Optional[np.ndarray] = None

    def build(self, input_dim: int, rng: np.random.Generator) -> None:
        self.input_dim = int(input_dim)
        self.output_dim = self.units
        self.weights = self.weight_initializer((input_dim, self.units), rng)
        self.bias = self.bias_initializer((self.units,), rng)
        self._grad_weights = np.zeros_like(self.weights)
        self._grad_bias = np.zeros_like(self.bias)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if self.weights is None:
            raise ConfigurationError("Dense layer used before build()")
        x = np.asarray(x, dtype=np.float64)
        if x.shape[-1] != self.input_dim:
            raise ShapeError(
                f"Dense expected inputs with {self.input_dim} features, "
                f"got shape {x.shape}"
            )
        self._last_input = x if training else None
        return x @ self.weights + self.bias

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._last_input is None:
            raise ConfigurationError("backward() called before forward(training=True)")
        grad_output = np.asarray(grad_output, dtype=np.float64)
        self._grad_weights += self._last_input.T @ grad_output
        self._grad_bias += grad_output.sum(axis=0)
        return grad_output @ self.weights.T

    def parameters(self) -> Dict[str, np.ndarray]:
        return {"weights": self.weights, "bias": self.bias}

    def gradients(self) -> Dict[str, np.ndarray]:
        return {"weights": self._grad_weights, "bias": self._grad_bias}

    def propagate_box(
        self, low: np.ndarray, high: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Interval arithmetic for an affine map.

        The post-affine bound is computed from the midpoint/radius form:
        ``center' = W^T c + b`` and ``radius' = |W|^T r``, which is the exact
        image of the box under the affine map projected to axis-aligned
        bounds.
        """
        if self.weights is None:
            raise ConfigurationError("Dense layer used before build()")
        low = np.asarray(low, dtype=np.float64)
        high = np.asarray(high, dtype=np.float64)
        center = (low + high) / 2.0
        radius = (high - low) / 2.0
        new_center = center @ self.weights + self.bias
        new_radius = radius @ np.abs(self.weights)
        return new_center - new_radius, new_center + new_radius

    def get_config(self) -> Dict[str, object]:
        return {
            "type": "Dense",
            "units": self.units,
            "weight_initializer": self.weight_initializer.name,
            "bias_initializer": self.bias_initializer.name,
        }

    def get_weights(self) -> List[np.ndarray]:
        return [self.weights, self.bias]

    def set_weights(self, weights: List[np.ndarray]) -> None:
        if len(weights) != 2:
            raise ConfigurationError("Dense.set_weights expects [weights, bias]")
        w, b = (np.asarray(a, dtype=np.float64) for a in weights)
        if w.ndim != 2 or b.ndim != 1 or w.shape[1] != b.shape[0]:
            raise ShapeError(f"inconsistent Dense weights: {w.shape} and {b.shape}")
        self.weights = w
        self.bias = b
        self.input_dim = w.shape[0]
        self.output_dim = w.shape[1]
        self.units = w.shape[1]
        self._grad_weights = np.zeros_like(w)
        self._grad_bias = np.zeros_like(b)


class ActivationLayer(Layer):
    """Wrap an elementwise :class:`~repro.nn.activations.Activation` as a layer."""

    def __init__(self, activation) -> None:
        super().__init__()
        if isinstance(activation, str):
            activation = get_activation(activation)
        if not isinstance(activation, Activation):
            raise ConfigurationError(
                "ActivationLayer requires an Activation instance or name"
            )
        self.activation = activation

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        self._last_input = x if training else None
        return self.activation.value(x)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._last_input is None:
            raise ConfigurationError("backward() called before forward(training=True)")
        return np.asarray(grad_output) * self.activation.derivative(self._last_input)

    def propagate_box(
        self, low: np.ndarray, high: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        return self.activation.bound_transform(
            np.asarray(low, dtype=np.float64), np.asarray(high, dtype=np.float64)
        )

    def get_config(self) -> Dict[str, object]:
        return {"type": "ActivationLayer", "activation": self.activation.name}


class Dropout(Layer):
    """Inverted dropout; identity at inference time.

    At monitor-construction and operation time the network is evaluated in
    inference mode, so dropout never affects monitor semantics; it only adds
    regularisation while the reproduction trains its own networks.
    """

    def __init__(self, rate: float = 0.5, seed: Optional[int] = None) -> None:
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ConfigurationError("dropout rate must lie in [0, 1)")
        self.rate = float(rate)
        self._rng = np.random.default_rng(seed)
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if not training or self.rate == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.rate
        self._mask = (self._rng.random(x.shape) < keep).astype(np.float64) / keep
        return x * self._mask

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad_output = np.asarray(grad_output, dtype=np.float64)
        if self._mask is None:
            return grad_output
        return grad_output * self._mask

    def propagate_box(self, low, high):
        # Inference-time dropout is the identity.
        return np.asarray(low, dtype=np.float64), np.asarray(high, dtype=np.float64)

    def get_config(self) -> Dict[str, object]:
        return {"type": "Dropout", "rate": self.rate}


class Flatten(Layer):
    """Flatten trailing dimensions into a single feature axis.

    The substrate stores inputs as already-flattened vectors, so Flatten is a
    shape-checking identity that exists for API familiarity when datasets are
    produced as images.
    """

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.ndim <= 2:
            return x
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return np.asarray(grad_output, dtype=np.float64)

    def propagate_box(self, low, high):
        # 1-D bounds describe a single box; 2-D bounds carry a leading batch
        # axis (one box per row) and must keep it, like :meth:`forward`.
        low = np.asarray(low, dtype=np.float64)
        high = np.asarray(high, dtype=np.float64)
        if low.ndim <= 1:
            return low.reshape(-1), high.reshape(-1)
        return low.reshape(low.shape[0], -1), high.reshape(high.shape[0], -1)

    def get_config(self) -> Dict[str, object]:
        return {"type": "Flatten"}


class Scale(Layer):
    """Fixed elementwise affine rescaling ``x * scale + shift``.

    Useful to bake input normalisation into the network so that monitors and
    bound propagation operate on raw input units.
    """

    is_affine = False

    def __init__(self, scale: float = 1.0, shift: float = 0.0) -> None:
        super().__init__()
        self.scale = float(scale)
        self.shift = float(shift)
        if self.scale == 0.0:
            raise ConfigurationError("Scale factor must be non-zero")

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        return np.asarray(x, dtype=np.float64) * self.scale + self.shift

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return np.asarray(grad_output, dtype=np.float64) * self.scale

    def propagate_box(self, low, high):
        low = np.asarray(low, dtype=np.float64) * self.scale + self.shift
        high = np.asarray(high, dtype=np.float64) * self.scale + self.shift
        if self.scale < 0:
            low, high = high, low
        return low, high

    def get_config(self) -> Dict[str, object]:
        return {"type": "Scale", "scale": self.scale, "shift": self.shift}


_LAYER_TYPES = {
    "Dense": Dense,
    "ActivationLayer": ActivationLayer,
    "Dropout": Dropout,
    "Flatten": Flatten,
    "Scale": Scale,
}


def layer_from_config(config: Dict[str, object]) -> Layer:
    """Reconstruct a layer from the dictionary produced by ``get_config``."""
    config = dict(config)
    layer_type = config.pop("type", None)
    if layer_type == "Dense":
        from .initializers import get_initializer

        return Dense(
            units=int(config["units"]),
            weight_initializer=get_initializer(
                str(config.get("weight_initializer", "glorot_uniform"))
            ),
            bias_initializer=get_initializer(
                str(config.get("bias_initializer", "zeros"))
            ),
        )
    if layer_type == "ActivationLayer":
        return ActivationLayer(str(config["activation"]))
    if layer_type == "Dropout":
        return Dropout(rate=float(config.get("rate", 0.5)))
    if layer_type == "Flatten":
        return Flatten()
    if layer_type == "Scale":
        return Scale(
            scale=float(config.get("scale", 1.0)),
            shift=float(config.get("shift", 0.0)),
        )
    raise ConfigurationError(f"unknown layer type '{layer_type}'")


# Convenience default: HeNormal is the idiomatic choice for ReLU stacks.
DEFAULT_RELU_INITIALIZER = HeNormal()
