"""Numpy feed-forward neural-network substrate.

This package replaces the PyTorch dependency of the original
nn-dependability-kit implementation with a self-contained numpy stack:
layers, activations, losses, optimizers, a mini-batch trainer and network
serialization.  The :class:`~repro.nn.network.Sequential` class mirrors the
paper's notation with ``forward_to`` (``G^k``) and ``forward_from_to``
(``G^{l↪k}``) layer slicing, plus sound interval bound propagation used by
the robust monitor construction.
"""

from .activations import (
    ELU,
    Activation,
    HardTanh,
    Identity,
    LeakyReLU,
    ReLU,
    Sigmoid,
    Softplus,
    Tanh,
    get_activation,
)
from .initializers import (
    Constant,
    GlorotNormal,
    GlorotUniform,
    HeNormal,
    HeUniform,
    Initializer,
    LeCunNormal,
    Orthogonal,
    RandomNormal,
    RandomUniform,
    Zeros,
    get_initializer,
)
from .layers import ActivationLayer, Dense, Dropout, Flatten, Layer, Scale, layer_from_config
from .losses import (
    Huber,
    Loss,
    MeanAbsoluteError,
    MeanSquaredError,
    SoftmaxCrossEntropy,
    get_loss,
    one_hot,
    softmax,
)
from .network import Sequential, mlp
from .optimizers import SGD, Adam, Momentum, Optimizer, RMSProp, get_optimizer
from .serialization import load_network, save_network
from .training import (
    Trainer,
    TrainingHistory,
    accuracy,
    predict_probabilities,
    train_classifier,
    train_regressor,
)

__all__ = [
    "Activation",
    "Identity",
    "ReLU",
    "LeakyReLU",
    "Sigmoid",
    "Tanh",
    "Softplus",
    "HardTanh",
    "ELU",
    "get_activation",
    "Initializer",
    "Zeros",
    "Constant",
    "RandomNormal",
    "RandomUniform",
    "GlorotUniform",
    "GlorotNormal",
    "HeUniform",
    "HeNormal",
    "LeCunNormal",
    "Orthogonal",
    "get_initializer",
    "Layer",
    "Dense",
    "ActivationLayer",
    "Dropout",
    "Flatten",
    "Scale",
    "layer_from_config",
    "Loss",
    "MeanSquaredError",
    "MeanAbsoluteError",
    "SoftmaxCrossEntropy",
    "Huber",
    "get_loss",
    "one_hot",
    "softmax",
    "Sequential",
    "mlp",
    "Optimizer",
    "SGD",
    "Momentum",
    "Adam",
    "RMSProp",
    "get_optimizer",
    "Trainer",
    "TrainingHistory",
    "accuracy",
    "train_classifier",
    "train_regressor",
    "predict_probabilities",
    "save_network",
    "load_network",
]
