"""Saving and loading trained networks.

Networks are serialised as a single ``.npz`` archive containing a JSON layer
configuration plus one array per weight tensor.  The format keeps the whole
artefact in one file so that experiments can cache trained networks between
benchmark runs.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np

from ..exceptions import SerializationError
from .network import Sequential

__all__ = ["save_network", "load_network"]

_CONFIG_KEY = "__config_json__"


def save_network(network: Sequential, path: Union[str, Path]) -> Path:
    """Serialise ``network`` (architecture + weights) to ``path``.

    Returns the path actually written (an ``.npz`` suffix is appended when
    missing).
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz") if path.suffix else path.with_suffix(".npz")
    config_json = json.dumps(network.get_config())
    arrays = {f"weight_{i}": w for i, w in enumerate(network.get_weights())}
    arrays[_CONFIG_KEY] = np.array(config_json)
    path.parent.mkdir(parents=True, exist_ok=True)
    try:
        np.savez(path, **arrays)
    except OSError as exc:  # pragma: no cover - filesystem failure
        raise SerializationError(f"failed to write network to {path}: {exc}") from exc
    return path


def load_network(path: Union[str, Path]) -> Sequential:
    """Load a network previously written by :func:`save_network`."""
    path = Path(path)
    if not path.exists():
        candidate = path.with_suffix(".npz")
        if candidate.exists():
            path = candidate
        else:
            raise SerializationError(f"network file not found: {path}")
    try:
        archive = np.load(path, allow_pickle=False)
    except (OSError, ValueError) as exc:
        raise SerializationError(f"failed to read network from {path}: {exc}") from exc
    if _CONFIG_KEY not in archive:
        raise SerializationError(f"{path} is not a serialised repro network")
    config = json.loads(str(archive[_CONFIG_KEY]))
    weight_keys = sorted(
        (key for key in archive.files if key.startswith("weight_")),
        key=lambda key: int(key.split("_", 1)[1]),
    )
    weights = [archive[key] for key in weight_keys]
    network = Sequential.from_config(config, seed=0)
    network.set_weights(weights)
    return network
