"""End-to-end monitoring pipelines.

The :class:`MonitorPipeline` ties the substrates together in the order the
paper's lab deployment uses them:

1. train (or accept) a network on an in-ODD dataset;
2. pick a monitored layer (by default the last hidden activation layer);
3. build a standard monitor and a robust monitor with a chosen
   ``(Δ, k_p, back-end)`` perturbation model;
4. evaluate both on in-ODD data (false positives) and on a suite of
   out-of-ODD scenarios (detection), reproducing the Section IV comparison.

:func:`build_track_workload` and :func:`build_digits_workload` construct the
two reference workloads of the reproduction (the Figure 2 race-track
regression task and the MNIST-like classification task).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

from ..data.datasets import Dataset, train_validation_test_split
from ..data.scenarios import in_odd_jitter, scenario_suite
from ..data.synthetic_digits import generate_digits
from ..data.track import TrackConfig, generate_track_dataset
from ..eval.experiments import ExperimentResult, MonitorExperiment
from ..exceptions import ConfigurationError
from ..monitors.builder import MonitorBuilder
from ..monitors.perturbation import PerturbationSpec
from ..nn.layers import ActivationLayer
from ..nn.network import Sequential, mlp
from ..nn.training import train_classifier, train_regressor

__all__ = [
    "DEFAULT_PERTURBATION",
    "MonitoringWorkload",
    "MonitorPipeline",
    "default_monitored_layer",
    "build_track_workload",
    "build_digits_workload",
]

#: Perturbation model used by :class:`MonitorPipeline` when the caller does
#: not supply one: pixel-level (``k_p = 0``) box propagation with Δ = 0.05,
#: the paper's lab-deployment configuration.  Pass an explicit
#: :class:`~repro.monitors.perturbation.PerturbationSpec` to override it.
DEFAULT_PERTURBATION = PerturbationSpec(delta=0.05, layer=0, method="box")


def default_monitored_layer(network: Sequential) -> int:
    """Pick the close-to-output layer the paper monitors.

    Returns the index (1-based) of the *last hidden activation layer*, i.e.
    the activation layer closest to the output that is not the output
    activation itself; falls back to the penultimate layer when the network
    has no activation layers.
    """
    activation_indices = [
        index
        for index, layer in enumerate(network.layers, start=1)
        if isinstance(layer, ActivationLayer) and index < network.num_layers
    ]
    if activation_indices:
        return activation_indices[-1]
    if network.num_layers >= 2:
        return network.num_layers - 1
    return network.num_layers


@dataclass
class MonitoringWorkload:
    """A trained network plus the datasets needed to evaluate monitors."""

    network: Sequential
    train: Dataset
    in_odd_eval: Dataset
    out_of_odd_eval: Dict[str, Dataset]
    name: str = "workload"
    metadata: Dict[str, object] = field(default_factory=dict)

    def experiment(self) -> MonitorExperiment:
        """Convert the workload into a :class:`MonitorExperiment`."""
        return MonitorExperiment(
            network=self.network,
            fit_inputs=self.train.inputs,
            in_odd_inputs=self.in_odd_eval.inputs,
            out_of_odd_inputs={
                name: dataset.inputs for name, dataset in self.out_of_odd_eval.items()
            },
        )


class MonitorPipeline:
    """Standard-vs-robust monitor comparison on a workload.

    Parameters
    ----------
    workload:
        The trained network and evaluation data.
    family:
        Monitor family (``"minmax"``, ``"boolean"`` or ``"interval"``).
    layer_index:
        Monitored layer; ``None`` selects the last hidden activation layer.
    perturbation:
        Perturbation model for the robust monitor; ``None`` uses the
        documented :data:`DEFAULT_PERTURBATION`.
    options:
        Extra keyword arguments forwarded to both monitor constructors.
    """

    @staticmethod
    def _resolve_perturbation(
        perturbation: Optional[PerturbationSpec],
    ) -> PerturbationSpec:
        """Single place where the pipeline's perturbation model is defaulted
        and validated (the robust side of the comparison needs Δ > 0)."""
        spec = perturbation if perturbation is not None else DEFAULT_PERTURBATION
        if spec.delta <= 0:
            raise ConfigurationError("the robust pipeline needs a strictly positive Δ")
        return spec

    def __init__(
        self,
        workload: MonitoringWorkload,
        family: str = "boolean",
        layer_index: Optional[int] = None,
        perturbation: Optional[PerturbationSpec] = None,
        **options,
    ) -> None:
        self.workload = workload
        self.family = family
        self.layer_index = (
            layer_index
            if layer_index is not None
            else default_monitored_layer(workload.network)
        )
        self.perturbation = self._resolve_perturbation(perturbation)
        self.options = dict(options)
        self.standard_builder = MonitorBuilder(
            family, self.layer_index, perturbation=None, **self.options
        )
        self.robust_builder = MonitorBuilder(
            family, self.layer_index, perturbation=self.perturbation, **self.options
        )

    def run(self) -> ExperimentResult:
        """Fit and score the standard and robust monitors side by side."""
        experiment = self.workload.experiment()
        return experiment.run_builders(
            {"standard": self.standard_builder, "robust": self.robust_builder}
        )

    def _fit_pair(self):
        """Fit the standard + robust monitors sharing one engine's fit pass."""
        from ..runtime.engine import BatchScoringEngine

        network = self.workload.network
        fit_engine = BatchScoringEngine(network)
        standard = self.standard_builder.build_and_fit(
            network, self.workload.train.inputs, engine=fit_engine
        )
        robust = self.robust_builder.build_and_fit(
            network, self.workload.train.inputs, engine=fit_engine
        )
        # Fit-time scratch (training-set activations/bounds) is useless for
        # serving; hand the engine over with an empty cache.
        fit_engine.cache.clear()
        return fit_engine, standard, robust

    def serve(
        self,
        policy=None,
        want_verdicts: bool = False,
        remote: bool = False,
        num_workers: int = 2,
        host: str = "127.0.0.1",
        port: int = 0,
        artifact_dir=None,
        mp_context: str = "spawn",
        log_path=None,
        lifecycle: bool = False,
        **policy_options,
    ):
        """Fit the pipeline's monitors and return a *started* serving handle.

        This is the online counterpart of :meth:`run`: the standard and
        robust monitors are fitted on the workload's training set (sharing
        one engine's forward pass and symbolic propagation during the fit)
        and deployed under the names ``"standard"`` and ``"robust"``.

        With ``remote=False`` (default) the handle is an in-process
        :class:`~repro.service.StreamingScorer` whose worker thread is
        already running; stream frames via ``submit`` / ``submit_many`` and
        ``close()`` it (or use it as a context manager) when done.

        With ``remote=True`` the fitted monitors are serialized to a
        deployment bundle (under ``artifact_dir``, or a self-cleaning
        temporary directory), a :class:`~repro.serving.WorkerPool` of
        ``num_workers`` scoring processes boots from it, and the returned
        handle is a *started* :class:`~repro.serving.ScoringServer` bound to
        ``(host, port)`` (port ``0`` picks a free port — read
        ``server.address``).  Connect a
        :class:`~repro.serving.ScoringClient`; closing the server drains and
        closes the pool too.  ``want_verdicts`` is an in-process-only
        feature (verdict diagnostics do not travel over the wire).

        With ``lifecycle=True`` the deployment is versioned: the fitted
        monitors go through a :class:`~repro.lifecycle.store.MonitorStore`
        (under ``artifact_dir``, or the deployment directory) and a
        :class:`~repro.lifecycle.manager.LifecycleManager` drives
        stage/shadow/promote/rollback over the running front-end.
        In-process, the manager is attached as ``scorer.lifecycle``; remote,
        it is attached to the server (``server.lifecycle``), which also
        enables the lifecycle control frames for remote clients.

        ``policy`` is a :class:`~repro.service.BatchPolicy`; alternatively
        pass its fields (``max_batch=...``, ``max_latency=...``,
        ``max_pending=...``) as keyword arguments.
        """
        from ..service import BatchPolicy, StreamingScorer

        if policy is not None and policy_options:
            raise ConfigurationError(
                "pass either a BatchPolicy or its fields as keywords, not both"
            )
        if remote and want_verdicts:
            raise ConfigurationError(
                "remote serving returns warn flags only; verdict diagnostics "
                "are an in-process feature (serve(want_verdicts=True))"
            )
        fit_engine, standard, robust = self._fit_pair()
        if not remote:
            if policy is None:
                policy = BatchPolicy(**policy_options)
            scorer = StreamingScorer(
                self.workload.network,
                policy=policy,
                engine=fit_engine,
                want_verdicts=want_verdicts,
            )
            if lifecycle:
                import shutil
                import tempfile
                import weakref

                from ..lifecycle import LifecycleManager, MonitorStore

                if artifact_dir is None:
                    artifact_dir = tempfile.mkdtemp(prefix="repro-store-")
                    # The scorer is the deployment's single handle; tie the
                    # store's lifetime to it (close() has no cleanup hook).
                    weakref.finalize(
                        scorer, shutil.rmtree, artifact_dir, True
                    )
                manager = LifecycleManager(scorer, MonitorStore(artifact_dir))
                manager.deploy("standard", standard)
                manager.deploy("robust", robust)
                scorer.lifecycle = manager
            else:
                scorer.register("standard", standard)
                scorer.register("robust", robust)
            return scorer.start()

        import shutil
        import tempfile
        from pathlib import Path

        from ..serving import ScoringServer, WorkerPool, save_deployment
        from ..serving.artifacts import DeploymentBundle

        if policy is None and policy_options:
            policy = BatchPolicy(**policy_options)
        cleanup = None
        if artifact_dir is None:
            artifact_dir = tempfile.mkdtemp(prefix="repro-deploy-")

            def cleanup(path=artifact_dir):
                shutil.rmtree(path, ignore_errors=True)

        directory = Path(artifact_dir)
        save_deployment(
            directory,
            self.workload.network,
            {"standard": standard, "robust": robust},
        )
        pool = WorkerPool(
            DeploymentBundle(directory),
            num_workers=num_workers,
            policy=policy,
            mp_context=mp_context,
        )
        pool.start()
        manager = None
        if lifecycle:
            from ..lifecycle import LifecycleManager, MonitorStore

            manager = LifecycleManager(
                pool,
                MonitorStore(directory / "store"),
                network=self.workload.network,
            )
            manager.deploy("standard", standard)
            manager.deploy("robust", robust)
        server = ScoringServer(
            pool, host=host, port=port, owns_scorer=True,
            log_path=log_path, cleanup=cleanup, lifecycle=manager,
        )
        return server.start()

    def describe(self) -> Dict[str, object]:
        return {
            "workload": self.workload.name,
            "family": self.family,
            "layer_index": self.layer_index,
            "perturbation": self.perturbation.describe(),
            "options": dict(self.options),
        }


# ----------------------------------------------------------------------
# reference workloads
# ----------------------------------------------------------------------
def build_track_workload(
    num_samples: int = 400,
    hidden_dims: Sequence[int] = (32, 16),
    epochs: int = 15,
    jitter_brightness: float = 0.04,
    scenarios: Optional[Sequence[str]] = None,
    seed: int = 0,
    config: Optional[TrackConfig] = None,
) -> MonitoringWorkload:
    """Build the Figure-2 style race-track waypoint workload.

    A small MLP regresses waypoints from synthetic track images; the in-ODD
    evaluation set is the held-out test split with aleatory jitter applied,
    and the out-of-ODD suite defaults to the paper's dark / construction /
    ice scenarios.
    """
    config = config or TrackConfig()
    dataset = generate_track_dataset(num_samples, config=config, seed=seed)
    train, validation, test = train_validation_test_split(dataset, seed=seed + 1)
    network = mlp(
        input_dim=dataset.num_features,
        hidden_dims=list(hidden_dims),
        output_dim=2,
        activation="relu",
        seed=seed + 2,
    )
    train_regressor(
        network,
        train.inputs,
        train.targets,
        epochs=epochs,
        validation_data=(validation.inputs, validation.targets),
        seed=seed + 3,
    )
    in_odd_eval = in_odd_jitter(
        test, brightness_std=jitter_brightness, noise_std=jitter_brightness / 3.0, seed=seed + 4
    )
    out_of_odd = scenario_suite(test, names=list(scenarios) if scenarios else None, seed=seed + 5)
    return MonitoringWorkload(
        network=network,
        train=train,
        in_odd_eval=in_odd_eval,
        out_of_odd_eval=out_of_odd,
        name="track-waypoints",
        metadata={"seed": seed, "epochs": epochs, "hidden_dims": list(hidden_dims)},
    )


def build_digits_workload(
    num_samples: int = 600,
    num_classes: int = 5,
    hidden_dims: Sequence[int] = (48, 24),
    epochs: int = 15,
    scenarios: Optional[Sequence[str]] = None,
    seed: int = 0,
) -> MonitoringWorkload:
    """Build the MNIST-like synthetic-digits classification workload."""
    dataset = generate_digits(num_samples, num_classes=num_classes, seed=seed)
    train, validation, test = train_validation_test_split(dataset, seed=seed + 1)
    network = mlp(
        input_dim=dataset.num_features,
        hidden_dims=list(hidden_dims),
        output_dim=num_classes,
        activation="relu",
        seed=seed + 2,
    )
    train_classifier(
        network,
        train.inputs,
        train.targets,
        num_classes=num_classes,
        epochs=epochs,
        validation_data=(validation.inputs, validation.targets),
        seed=seed + 3,
    )
    in_odd_eval = in_odd_jitter(test, brightness_std=0.03, noise_std=0.01, seed=seed + 4)
    out_of_odd = scenario_suite(test, names=list(scenarios) if scenarios else None, seed=seed + 5)
    return MonitoringWorkload(
        network=network,
        train=train,
        in_odd_eval=in_odd_eval,
        out_of_odd_eval=out_of_odd,
        name="synthetic-digits",
        metadata={
            "seed": seed,
            "epochs": epochs,
            "num_classes": num_classes,
            "hidden_dims": list(hidden_dims),
        },
    )
