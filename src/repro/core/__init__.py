"""End-to-end pipelines tying networks, monitors, data and evaluation together."""

from .pipeline import (
    DEFAULT_PERTURBATION,
    MonitoringWorkload,
    MonitorPipeline,
    build_digits_workload,
    build_track_workload,
    default_monitored_layer,
)

__all__ = [
    "DEFAULT_PERTURBATION",
    "MonitoringWorkload",
    "MonitorPipeline",
    "build_track_workload",
    "build_digits_workload",
    "default_monitored_layer",
]
