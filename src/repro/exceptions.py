"""Exception hierarchy for the :mod:`repro` library.

All library-specific errors derive from :class:`ReproError` so that callers
can catch every failure mode of the reproduction with a single ``except``
clause while still being able to distinguish configuration problems from
runtime/shape problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` library."""


class ConfigurationError(ReproError, ValueError):
    """Raised when an object is constructed with inconsistent parameters.

    Examples include a monitor configured with a perturbation layer that is
    not strictly before the monitored layer, an unknown bound-propagation
    back-end name, or interval thresholds that are not strictly increasing.
    Also a ``ValueError`` so that callers validating plain string/number
    arguments (e.g. a propagation back-end name) can use the idiomatic
    ``except ValueError``.
    """


class ShapeError(ReproError):
    """Raised when an array has a shape incompatible with the operation."""


class LayerIndexError(ReproError):
    """Raised when a layer index is outside the valid range of a network."""


class NotFittedError(ReproError):
    """Raised when a monitor or model is used before it has been fitted."""


class PropagationError(ReproError):
    """Raised when symbolic bound propagation fails or is unsupported."""


class SerializationError(ReproError):
    """Raised when saving or loading an object fails."""


class DataError(ReproError):
    """Raised when a dataset is malformed or a generator is misconfigured."""


class ServiceClosedError(ReproError):
    """Raised when a frame is submitted to a closed streaming scorer."""


class ServiceOverloadedError(ReproError):
    """Raised when a streaming scorer's pending queue is at capacity.

    Producers hitting this should shed load or retry after a backoff; the
    queue bound exists so that a stalled scoring thread surfaces as an error
    at the submission site instead of as unbounded memory growth.
    """
