"""Exception hierarchy for the :mod:`repro` library.

All library-specific errors derive from :class:`ReproError` so that callers
can catch every failure mode of the reproduction with a single ``except``
clause while still being able to distinguish configuration problems from
runtime/shape problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` library."""


class ConfigurationError(ReproError, ValueError):
    """Raised when an object is constructed with inconsistent parameters.

    Examples include a monitor configured with a perturbation layer that is
    not strictly before the monitored layer, an unknown bound-propagation
    back-end name, or interval thresholds that are not strictly increasing.
    Also a ``ValueError`` so that callers validating plain string/number
    arguments (e.g. a propagation back-end name) can use the idiomatic
    ``except ValueError``.
    """


class ShapeError(ReproError):
    """Raised when an array has a shape incompatible with the operation."""


class LayerIndexError(ReproError):
    """Raised when a layer index is outside the valid range of a network."""


class NotFittedError(ReproError):
    """Raised when a monitor or model is used before it has been fitted."""


class PropagationError(ReproError):
    """Raised when symbolic bound propagation fails or is unsupported."""


class SerializationError(ReproError):
    """Raised when saving or loading an object fails."""


class DataError(ReproError):
    """Raised when a dataset is malformed or a generator is misconfigured."""


class LifecycleStateError(ConfigurationError):
    """Raised on an invalid monitor-lifecycle operation.

    Covers illegal state transitions (promoting a monitor that was never
    staged, retiring twice), unknown artefact-store versions, and lifecycle
    control operations against a front-end that cannot support them (e.g.
    attaching a shadow to a worker pool, whose members live in other
    processes).
    """


class ServiceClosedError(ReproError):
    """Raised when a frame is submitted to a closed streaming scorer."""


class ServiceOverloadedError(ReproError):
    """Raised when a streaming scorer's pending queue is at capacity.

    Producers hitting this should shed load or retry after a backoff; the
    queue bound exists so that a stalled scoring thread surfaces as an error
    at the submission site instead of as unbounded memory growth.
    """


class ProtocolError(ReproError):
    """Raised when a wire frame of the scoring protocol is malformed.

    Covers bad magic bytes, unsupported protocol versions, unknown frame
    types, truncated/garbled payload encodings, and payloads that exceed the
    negotiated size bound.  A peer that raises this must treat the byte
    stream as unsynchronised and close the connection — after a framing
    error there is no way to find the start of the next frame.
    """


class RemoteScoringError(ReproError):
    """Raised when a remote scoring request fails server-side or in transit.

    The client raises it for transport failures (connection lost mid-
    request) and for server ``internal`` error frames; more specific typed
    error frames surface as their local exception classes
    (:class:`ServiceOverloadedError`, :class:`ServiceClosedError`,
    :class:`ShapeError`, :class:`ProtocolError`).
    """


class WorkerCrashError(RemoteScoringError):
    """Raised when a scoring worker process died and its work was lost.

    The pool re-queues frames claimed by a crashed worker, so under normal
    operation a crash is invisible to producers; this error surfaces only
    when the restart budget is exhausted and accepted frames can no longer
    be scored.
    """
