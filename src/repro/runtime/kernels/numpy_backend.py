"""Reference matcher kernel: pure-NumPy broadcast passes.

This is the vectorised path :class:`~repro.runtime.matcher.PackedMatcher`
has always executed, extracted behind the :class:`MatcherKernel` interface
so other back-ends can be pinned bit-for-bit against it.  Exact rows are
matched with one sort-based ``np.isin`` over byte views (no Python loop
over probes, unlike the historical per-row hash lookup); ternary and range
passes are the broadcast kernels of PR 1, chunked so the intermediate
``(n, M, W)`` buffers stay inside a fixed element budget.
"""

from __future__ import annotations

import numpy as np

from .base import MatcherKernel

__all__ = ["NumpyMatcherKernel", "CHUNK_ELEMENTS"]

#: Soft cap on broadcast buffer elements; probe batches are chunked to this.
CHUNK_ELEMENTS = 1 << 22


def _row_view(rows: np.ndarray) -> np.ndarray:
    """View ``(N, W)`` uint64 rows as one opaque void scalar per row."""
    rows = np.ascontiguousarray(rows, dtype=np.uint64)
    return rows.view(np.dtype((np.void, rows.shape[1] * rows.dtype.itemsize))).ravel()


class NumpyMatcherKernel(MatcherKernel):
    """The reference back-end every other kernel must agree with."""

    name = "numpy"

    def match_exact(self, probes: np.ndarray, exact: np.ndarray) -> np.ndarray:
        self._check_words(probes, exact)
        if exact.shape[0] == 0:
            return np.zeros(probes.shape[0], dtype=bool)
        return np.isin(_row_view(probes), _row_view(exact))

    def match_ternary(
        self, probes: np.ndarray, values: np.ndarray, masks: np.ndarray
    ) -> np.ndarray:
        self._check_words(probes, values)
        num_entries, num_words = values.shape
        out = np.zeros(probes.shape[0], dtype=bool)
        if num_entries == 0:
            return out
        chunk = max(1, CHUNK_ELEMENTS // max(1, num_entries * num_words))
        for start in range(0, probes.shape[0], chunk):
            block = probes[start : start + chunk]
            mismatch = (block[:, None, :] ^ values[None, :, :]) & masks[None, :, :]
            out[start : start + chunk] = np.logical_not(mismatch.any(axis=2)).any(axis=1)
        return out

    def match_ranges(
        self, probe_codes: np.ndarray, low: np.ndarray, high: np.ndarray
    ) -> np.ndarray:
        num_entries, num_positions = low.shape
        out = np.zeros(probe_codes.shape[0], dtype=bool)
        if num_entries == 0:
            return out
        chunk = max(1, CHUNK_ELEMENTS // max(1, num_entries * num_positions))
        for start in range(0, probe_codes.shape[0], chunk):
            block = probe_codes[start : start + chunk]
            inside = (block[:, None, :] >= low[None, :, :]) & (
                block[:, None, :] <= high[None, :, :]
            )
            out[start : start + chunk] = inside.all(axis=2).any(axis=1)
        return out
