"""Compiled matcher kernel: a numba-jitted fused match pass.

The broadcast reference back-end materialises an ``(n, M, W)`` mismatch
tensor per probe chunk.  The compiled back-end instead walks probes in a
``prange`` loop and resolves each probe against *all three* structures —
binary search over the lexicographically sorted exact rows, then
pattern-compare-popcount over the ternary planes, then the code ranges —
with early exit on the first matching entry and on the first mismatching
machine word, never allocating an intermediate tensor.  The jitted loop is
compiled ``nogil`` + ``parallel``, which is what makes the ``sharded``
thread-pool driver scale when it wraps this kernel.

numba is an *optional* dependency: when it is absent the class silently
degrades to the reference NumPy passes (``effective_name`` reports which
engine actually ran), so selecting ``backend="compiled"`` is always safe.
The first real call pays one JIT compilation; empty matchers never reach
the kernel (the matcher early-outs before dispatch), so merely constructing
monitors stays warm-up free.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .base import MatcherKernel, MatchPlan
from .numpy_backend import NumpyMatcherKernel

__all__ = ["CompiledMatcherKernel", "HAVE_NUMBA"]

try:  # pragma: no cover - exercised on the numba CI leg
    import numba

    HAVE_NUMBA = True
except ImportError:  # pragma: no cover - default environment
    numba = None
    HAVE_NUMBA = False


if HAVE_NUMBA:  # pragma: no cover - exercised on the numba CI leg

    @numba.njit(nogil=True, cache=True)
    def _exact_rank(exact, probe_row):
        """Index of the first exact row >= ``probe_row`` (lexicographic)."""
        lo = 0
        hi = exact.shape[0]
        while lo < hi:
            mid = (lo + hi) // 2
            cmp = 0
            for w in range(exact.shape[1]):
                if exact[mid, w] < probe_row[w]:
                    cmp = -1
                    break
                if exact[mid, w] > probe_row[w]:
                    cmp = 1
                    break
            if cmp < 0:
                lo = mid + 1
            else:
                hi = mid
        return lo

    @numba.njit(parallel=True, nogil=True, cache=True)
    def _fused_match(probes, exact, values, masks, codes, low, high, out):
        num_probes, num_words = probes.shape
        num_exact = exact.shape[0]
        num_ternary = values.shape[0]
        num_ranges = low.shape[0]
        for i in numba.prange(num_probes):
            hit = False
            if num_exact:
                rank = _exact_rank(exact, probes[i])
                if rank < num_exact:
                    same = True
                    for w in range(num_words):
                        if exact[rank, w] != probes[i, w]:
                            same = False
                            break
                    hit = same
            if not hit:
                for t in range(num_ternary):
                    matched = True
                    for w in range(num_words):
                        if (probes[i, w] ^ values[t, w]) & masks[t, w] != np.uint64(0):
                            matched = False
                            break
                    if matched:
                        hit = True
                        break
            if not hit:
                for r in range(num_ranges):
                    inside = True
                    for p in range(low.shape[1]):
                        code = codes[i, p]
                        if code < low[r, p] or code > high[r, p]:
                            inside = False
                            break
                    if inside:
                        hit = True
                        break
            out[i] = hit


class CompiledMatcherKernel(MatcherKernel):
    """Fused jitted match pass (falls back to NumPy without numba)."""

    name = "compiled"

    def __init__(self) -> None:
        self._fallback: Optional[NumpyMatcherKernel] = (
            None if HAVE_NUMBA else NumpyMatcherKernel()
        )

    @property
    def effective_name(self) -> str:
        return self.name if self._fallback is None else self._fallback.name

    # ------------------------------------------------------------------
    def match(
        self,
        plan: MatchPlan,
        packed: np.ndarray,
        codes: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        if self._fallback is not None:
            return self._fallback.match(plan, packed, codes=codes)
        num_probes, num_words = packed.shape
        hits = np.zeros(num_probes, dtype=bool)
        if num_probes == 0 or plan.is_empty:
            return hits
        empty_words = np.zeros((0, num_words), dtype=np.uint64)
        exact = plan.exact if plan.exact is not None else empty_words
        if plan.ternary is not None:
            values, masks = plan.ternary.values, plan.ternary.masks
        else:
            values = masks = empty_words
        if plan.range_low is not None:
            low, high = plan.range_low, plan.range_high
            probe_codes = np.ascontiguousarray(plan.probe_codes(packed, codes))
        else:
            low = high = np.zeros((0, 0), dtype=np.int64)
            probe_codes = np.zeros((num_probes, 0), dtype=np.int64)
        _fused_match(
            np.ascontiguousarray(packed, dtype=np.uint64),
            np.ascontiguousarray(exact, dtype=np.uint64),
            np.ascontiguousarray(values, dtype=np.uint64),
            np.ascontiguousarray(masks, dtype=np.uint64),
            probe_codes,
            np.ascontiguousarray(low, dtype=np.int64),
            np.ascontiguousarray(high, dtype=np.int64),
            hits,
        )
        return hits

    # Per-structure passes: used when another driver (e.g. sharded) asks for
    # a single pass; each routes through the fused kernel with the other
    # structures left empty, or through the fallback when numba is absent.
    def match_exact(self, probes: np.ndarray, exact: np.ndarray) -> np.ndarray:
        if self._fallback is not None:
            return self._fallback.match_exact(probes, exact)
        self._check_words(probes, exact)
        hits = np.zeros(probes.shape[0], dtype=bool)
        if exact.shape[0] == 0 or probes.shape[0] == 0:
            return hits
        empty = np.zeros((0, probes.shape[1]), dtype=np.uint64)
        _fused_match(
            np.ascontiguousarray(probes, dtype=np.uint64),
            np.ascontiguousarray(exact, dtype=np.uint64),
            empty,
            empty,
            np.zeros((probes.shape[0], 0), dtype=np.int64),
            np.zeros((0, 0), dtype=np.int64),
            np.zeros((0, 0), dtype=np.int64),
            hits,
        )
        return hits

    def match_ternary(
        self, probes: np.ndarray, values: np.ndarray, masks: np.ndarray
    ) -> np.ndarray:
        if self._fallback is not None:
            return self._fallback.match_ternary(probes, values, masks)
        self._check_words(probes, values)
        hits = np.zeros(probes.shape[0], dtype=bool)
        if values.shape[0] == 0 or probes.shape[0] == 0:
            return hits
        empty = np.zeros((0, probes.shape[1]), dtype=np.uint64)
        _fused_match(
            np.ascontiguousarray(probes, dtype=np.uint64),
            empty,
            np.ascontiguousarray(values, dtype=np.uint64),
            np.ascontiguousarray(masks, dtype=np.uint64),
            np.zeros((probes.shape[0], 0), dtype=np.int64),
            np.zeros((0, 0), dtype=np.int64),
            np.zeros((0, 0), dtype=np.int64),
            hits,
        )
        return hits

    def match_ranges(
        self, probe_codes: np.ndarray, low: np.ndarray, high: np.ndarray
    ) -> np.ndarray:
        if self._fallback is not None:
            return self._fallback.match_ranges(probe_codes, low, high)
        hits = np.zeros(probe_codes.shape[0], dtype=bool)
        if low.shape[0] == 0 or probe_codes.shape[0] == 0:
            return hits
        empty = np.zeros((0, 1), dtype=np.uint64)
        _fused_match(
            np.zeros((probe_codes.shape[0], 1), dtype=np.uint64),
            empty,
            empty,
            empty,
            np.ascontiguousarray(probe_codes, dtype=np.int64),
            np.ascontiguousarray(low, dtype=np.int64),
            np.ascontiguousarray(high, dtype=np.int64),
            hits,
        )
        return hits
