"""Matcher-kernel back-end registry.

The TCAM matcher answers every verdict the system serves, so its inner
match pass is pluggable the same way symbolic domains are pluggable behind
:func:`repro.symbolic.propagation_backends`: a name → factory registry,
queried by :class:`~repro.runtime.matcher.PackedMatcher` at dispatch time.

Built-in back-ends
------------------
``numpy``
    The reference broadcast implementation (always available, always the
    equivalence oracle).
``compiled``
    A numba-jitted fused pass — exact binary search, ternary
    compare-popcount and code ranges in one ``prange`` loop per probe, no
    intermediate tensors.  Degrades gracefully to ``numpy`` when numba is
    not installed.
``sharded``
    A thread-pool driver that chunks the probe axis and runs the compiled
    (or reference) kernel per chunk — for very wide layers and large
    probe batches.

Selection
---------
Per matcher via ``PackedMatcher(codec, backend=...)`` (a registry name or a
ready :class:`MatcherKernel` instance), or process-wide via the
``REPRO_MATCHER_BACKEND`` environment variable; the default is ``numpy``.
Third-party kernels plug in with :func:`register_matcher_backend` — the
same plugin-registration idiom as gramps' ``register_datehandler``.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, Optional, Union

from ...exceptions import ConfigurationError
from .base import MatcherKernel, MatchPlan
from .compiled_backend import HAVE_NUMBA, CompiledMatcherKernel
from .numpy_backend import NumpyMatcherKernel
from .sharded_backend import ShardedMatcherKernel

__all__ = [
    "MatchPlan",
    "MatcherKernel",
    "NumpyMatcherKernel",
    "CompiledMatcherKernel",
    "ShardedMatcherKernel",
    "HAVE_NUMBA",
    "MATCHER_BACKEND_ENV",
    "DEFAULT_MATCHER_BACKEND",
    "matcher_backends",
    "register_matcher_backend",
    "unregister_matcher_backend",
    "resolve_matcher_backend",
]

#: Environment variable that selects the process-wide default back-end.
MATCHER_BACKEND_ENV = "REPRO_MATCHER_BACKEND"

#: Back-end used when neither a constructor choice nor the env var is set.
DEFAULT_MATCHER_BACKEND = "numpy"

BackendChoice = Union[None, str, MatcherKernel]

_BACKENDS: Dict[str, Callable[[], MatcherKernel]] = {}
#: One shared kernel instance per registry name (kernels are stateless or,
#: like ``sharded``, deliberately share their execution pool).
_INSTANCES: Dict[str, MatcherKernel] = {}


def register_matcher_backend(name: str, factory: Callable[[], MatcherKernel]) -> None:
    """Register (or replace) a matcher back-end under ``name``.

    ``factory`` is a zero-argument callable returning a
    :class:`MatcherKernel`; it is invoked once and the instance reused for
    every matcher that selects ``name``.
    """
    if not isinstance(name, str) or not name:
        raise ConfigurationError("matcher back-end name must be a non-empty string")
    if not callable(factory):
        raise ConfigurationError(f"matcher back-end '{name}' factory is not callable")
    _BACKENDS[name] = factory
    _INSTANCES.pop(name, None)


def unregister_matcher_backend(name: str) -> None:
    """Remove a back-end from the registry (built-ins may be re-registered)."""
    _BACKENDS.pop(name, None)
    _INSTANCES.pop(name, None)


def matcher_backends() -> Dict[str, Callable[[], MatcherKernel]]:
    """Mapping of registered back-end name to kernel factory (a copy)."""
    return dict(_BACKENDS)


def resolve_matcher_backend(choice: BackendChoice = None) -> MatcherKernel:
    """Turn a back-end choice into a ready kernel instance.

    ``choice`` may be a kernel instance (returned as-is), a registry name,
    or ``None`` — which reads ``REPRO_MATCHER_BACKEND`` and falls back to
    the ``numpy`` reference.  Unknown names raise a
    :class:`~repro.exceptions.ConfigurationError` (a ``ValueError``)
    listing the valid :func:`matcher_backends` keys.
    """
    if isinstance(choice, MatcherKernel):
        return choice
    name = choice
    if name is None:
        name = os.environ.get(MATCHER_BACKEND_ENV, "").strip() or DEFAULT_MATCHER_BACKEND
    if name not in _BACKENDS:
        valid = ", ".join(sorted(_BACKENDS))
        raise ConfigurationError(
            f"unknown matcher backend '{name}'; valid backends are: {valid}"
        )
    instance = _INSTANCES.get(name)
    if instance is None:
        instance = _BACKENDS[name]()
        if not isinstance(instance, MatcherKernel):
            raise ConfigurationError(
                f"matcher backend '{name}' factory returned {type(instance).__name__}, "
                "not a MatcherKernel"
            )
        _INSTANCES[name] = instance
    return instance


register_matcher_backend("numpy", NumpyMatcherKernel)
register_matcher_backend("compiled", CompiledMatcherKernel)
register_matcher_backend("sharded", ShardedMatcherKernel)
