"""Sharded matcher kernel: thread-pool parallelism over probe chunks.

Membership of one probe row is independent of every other row, so a large
probe batch shards trivially along the probe axis.  This driver splits the
batch into contiguous chunks, runs an *inner* kernel on each chunk from a
shared thread pool, and stitches the per-chunk vectors back together —
bit-for-bit the same answer as running the inner kernel once over the whole
batch.

Threads (not processes) are the right pool here: the compiled inner kernel
is ``nogil`` and NumPy's broadcast ufuncs release the GIL on large buffers,
so shards genuinely overlap, while the matcher state stays shared by
reference instead of being pickled per worker.  Small batches skip the pool
entirely — the dispatch overhead would dominate — so the sharded back-end
is safe to select unconditionally and only changes the execution plan for
wide layers and large batches.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Optional

import numpy as np

from .base import MatcherKernel, MatchPlan
from .compiled_backend import HAVE_NUMBA, CompiledMatcherKernel
from .numpy_backend import NumpyMatcherKernel

__all__ = ["ShardedMatcherKernel", "DEFAULT_MIN_SHARD_ROWS"]

#: Below twice this many probe rows the pool is skipped entirely.
DEFAULT_MIN_SHARD_ROWS = 1024

_POOL_LOCK = threading.Lock()
_POOL: Optional[ThreadPoolExecutor] = None


def _shared_pool() -> ThreadPoolExecutor:
    """Lazily created process-wide pool shared by every sharded kernel."""
    global _POOL
    with _POOL_LOCK:
        if _POOL is None:
            workers = min(8, os.cpu_count() or 1)
            _POOL = ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="repro-matcher-shard"
            )
        return _POOL


class ShardedMatcherKernel(MatcherKernel):
    """Chunk-parallel driver around an inner single-threaded kernel."""

    name = "sharded"

    def __init__(
        self,
        inner: Optional[MatcherKernel] = None,
        min_shard_rows: int = DEFAULT_MIN_SHARD_ROWS,
        max_workers: Optional[int] = None,
    ) -> None:
        if inner is None:
            # Prefer the fused compiled kernel (nogil) when numba is around;
            # the broadcast reference otherwise.
            inner = CompiledMatcherKernel() if HAVE_NUMBA else NumpyMatcherKernel()
        self.inner = inner
        self.min_shard_rows = max(1, int(min_shard_rows))
        # None tracks the machine (min(8, cpu_count)); an explicit value
        # forces the shard ceiling regardless of detected cores.
        self.max_workers = None if max_workers is None else max(1, int(max_workers))

    @property
    def effective_name(self) -> str:
        return f"{self.name}[{self.inner.effective_name}]"

    def describe(self) -> dict:
        info = super().describe()
        info["inner"] = self.inner.describe()
        return info

    # ------------------------------------------------------------------
    def _num_shards(self, num_probes: int) -> int:
        workers = self.max_workers
        if workers is None:
            workers = min(8, os.cpu_count() or 1)
        return max(1, min(workers, num_probes // self.min_shard_rows))

    def match(
        self,
        plan: MatchPlan,
        packed: np.ndarray,
        codes: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        num_probes = packed.shape[0]
        if num_probes == 0 or plan.is_empty:
            return np.zeros(num_probes, dtype=bool)
        num_shards = self._num_shards(num_probes)
        if num_shards == 1:
            return self.inner.match(plan, packed, codes=codes)
        bounds = np.linspace(0, num_probes, num_shards + 1, dtype=np.int64)

        def run(start: int, stop: int) -> np.ndarray:
            shard_codes = codes[start:stop] if codes is not None else None
            return self.inner.match(plan, packed[start:stop], codes=shard_codes)

        pool = _shared_pool()
        futures = [
            pool.submit(run, int(bounds[s]), int(bounds[s + 1])) for s in range(num_shards)
        ]
        return np.concatenate([future.result() for future in futures])

    # Per-structure passes simply delegate (the chunking win lives in match).
    def match_exact(self, probes: np.ndarray, exact: np.ndarray) -> np.ndarray:
        return self.inner.match_exact(probes, exact)

    def match_ternary(
        self, probes: np.ndarray, values: np.ndarray, masks: np.ndarray
    ) -> np.ndarray:
        return self.inner.match_ternary(probes, values, masks)

    def match_ranges(
        self, probe_codes: np.ndarray, low: np.ndarray, high: np.ndarray
    ) -> np.ndarray:
        return self.inner.match_ranges(probe_codes, low, high)
