"""Matcher-kernel interface: one match plan, interchangeable execution engines.

A :class:`MatchPlan` is the immutable, consolidated image of a
:class:`~repro.runtime.matcher.PackedMatcher` at query time — the exact-row
matrix (row-lexicographically sorted, so compiled back-ends can binary
search it), the ternary value/mask bit-planes and the per-position code
ranges, next to the :class:`~repro.runtime.codec.WordCodec` that defines
the bit layout.  A :class:`MatcherKernel` turns a plan plus a probe batch
into the boolean membership vector.

The base class implements the reference *miss-refinement* schedule — exact
rows first (cheapest per probe), then ternary planes on the remaining
misses, then code ranges on what is still unresolved — in terms of three
overridable per-structure passes.  Back-ends are free to override
:meth:`MatcherKernel.match` wholesale instead (the compiled back-end fuses
all three structures into one pass per probe; the sharded back-end chunks
the probe axis and delegates).  Whatever the execution strategy, every
registered back-end must return bit-for-bit the same vector as the
``numpy`` reference — the equivalence test suite pins this on the full
pattern-type matrix.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ...exceptions import ShapeError
from ..codec import TernaryPlanes, WordCodec

__all__ = ["MatchPlan", "MatcherKernel"]


@dataclass(frozen=True)
class MatchPlan:
    """Consolidated matcher state handed to a kernel for one query batch.

    ``exact`` is a ``(M, W)`` ``uint64`` matrix of fully specified rows in
    row-lexicographic order (word 0 most significant for ordering);
    ``ternary`` carries ``(T, W)`` value/mask bit-planes; ``range_low`` /
    ``range_high`` are ``(R, P)`` ``int64`` per-position code bounds.  Any
    structure may be ``None`` when the matcher holds no entries of that
    type.  Probe rows and plan rows share the packing of
    :mod:`repro.runtime.packing`: padding bits of the last machine word are
    always zero, so whole-word compares are exact for any bit width.
    """

    word_codec: WordCodec
    exact: Optional[np.ndarray] = None
    ternary: Optional[TernaryPlanes] = None
    range_low: Optional[np.ndarray] = None
    range_high: Optional[np.ndarray] = None

    @property
    def is_empty(self) -> bool:
        return self.exact is None and self.ternary is None and self.range_low is None

    def probe_codes(self, packed: np.ndarray, codes: Optional[np.ndarray]) -> np.ndarray:
        """Per-position codes of ``packed`` (reusing caller-provided ``codes``)."""
        if codes is not None:
            return np.asarray(codes, dtype=np.int64)
        return self.word_codec.unpack_codes(packed)


class MatcherKernel:
    """Execution engine turning a :class:`MatchPlan` into membership bits."""

    #: Registry key of the back-end (reported by ``PackedMatcher.backend_name``).
    name = "abstract"

    @property
    def effective_name(self) -> str:
        """The back-end actually executing (differs under graceful fallback)."""
        return self.name

    def describe(self) -> dict:
        """Identity of the kernel, for benchmark records and diagnostics."""
        return {"backend": self.name, "effective": self.effective_name}

    # ------------------------------------------------------------------
    # reference schedule: exact → ternary on misses → ranges on misses
    # ------------------------------------------------------------------
    def match(
        self,
        plan: MatchPlan,
        packed: np.ndarray,
        codes: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Membership vector of a ``(N, W)`` probe batch against ``plan``."""
        num_probes = packed.shape[0]
        hits = np.zeros(num_probes, dtype=bool)
        if num_probes == 0 or plan.is_empty:
            return hits
        if plan.exact is not None:
            hits |= self.match_exact(packed, plan.exact)
        if plan.ternary is not None and not np.all(hits):
            misses = np.nonzero(~hits)[0]
            hits[misses] = self.match_ternary(
                packed[misses], plan.ternary.values, plan.ternary.masks
            )
        if plan.range_low is not None and not np.all(hits):
            misses = np.nonzero(~hits)[0]
            probe_codes = plan.probe_codes(packed, codes)[misses]
            hits[misses] = self.match_ranges(probe_codes, plan.range_low, plan.range_high)
        return hits

    # ------------------------------------------------------------------
    # per-structure passes (implemented by concrete back-ends)
    # ------------------------------------------------------------------
    def match_exact(self, probes: np.ndarray, exact: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def match_ternary(
        self, probes: np.ndarray, values: np.ndarray, masks: np.ndarray
    ) -> np.ndarray:
        raise NotImplementedError

    def match_ranges(
        self, probe_codes: np.ndarray, low: np.ndarray, high: np.ndarray
    ) -> np.ndarray:
        raise NotImplementedError

    # ------------------------------------------------------------------
    @staticmethod
    def _check_words(probes: np.ndarray, rows: np.ndarray) -> None:
        if probes.shape[1] != rows.shape[1]:
            raise ShapeError("probe and pattern rows disagree on word width")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"
