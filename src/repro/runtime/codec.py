"""Pattern codec: batched activation vectors → bit-packed pattern words.

The codec is the single authority on how a monitored layer's feature vectors
become the fixed-width binary words stored by pattern monitors:

* :class:`WordCodec` — the *layout* half: integer interval codes (one per
  monitored position, ``bits_per_position`` bits each, MSB-first — matching
  the variable order of :class:`repro.bdd.patterns.PatternSet`) packed into
  ``uint64`` machine words;
* :class:`PatternCodec` — the *semantic* half: binarise a ``(N, P)`` batch of
  feature vectors against per-neuron cut points in one vectorised pass,
  and turn Δ-perturbation bounds ``[l, u]`` into either ternary value/mask
  bit-planes (1-bit monitors, Definition 1's ``ab_R``) or per-position code
  ranges (multi-bit interval monitors, Section III-C).

Comparison tolerance
--------------------
Batched and single-row forward passes of the same network may differ in the
last float (BLAS kernels change with the batch size), and cut points produced
by data-driven strategies can coincide *exactly* with visited activation
values (e.g. the ``range_extension`` strategy places a cut at the maximum
visited value).  A strict ``value > cut`` comparison would then let a 1-ulp
batching difference flip a bit.  The codec therefore compares against
``cut + tol`` with a tiny scale-relative tolerance (the same idiom the
min-max monitor uses for its envelope check): visited values sitting exactly
on a cut stay below it regardless of how the batch was evaluated, and no
training datum ever sits exactly at ``cut + tol``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..exceptions import ConfigurationError, ShapeError
from .packing import pack_bool_matrix, unpack_bool_matrix, words_for_bits

__all__ = ["WordCodec", "PatternCodec", "TernaryPlanes", "default_tolerance"]


def default_tolerance(cut_points: np.ndarray) -> np.ndarray:
    """Scale-relative comparison tolerance per cut point."""
    return 1e-9 * np.maximum(1.0, np.abs(cut_points))


@dataclass(frozen=True)
class TernaryPlanes:
    """Bit-plane encoding of a batch of ternary (0 / 1 / don't-care) words.

    ``values`` carries the constrained bit values, ``masks`` has bit ``j`` set
    when position ``j`` is constrained (a cleared mask bit is a don't-care;
    the corresponding value bit is forced to zero so rows hash canonically).
    A concrete packed word ``w`` matches row ``i`` iff
    ``(w ^ values[i]) & masks[i] == 0`` in every machine word.
    """

    values: np.ndarray
    masks: np.ndarray

    def __post_init__(self) -> None:
        if self.values.shape != self.masks.shape or self.values.ndim != 2:
            raise ShapeError("values and masks must be equal-shape 2-D matrices")

    def __len__(self) -> int:
        return int(self.values.shape[0])


class WordCodec:
    """Bit layout of pattern words: integer codes ↔ packed ``uint64`` rows."""

    def __init__(self, num_positions: int, bits_per_position: int = 1) -> None:
        if num_positions <= 0:
            raise ConfigurationError("num_positions must be positive")
        if bits_per_position <= 0:
            raise ConfigurationError("bits_per_position must be positive")
        self.num_positions = int(num_positions)
        self.bits_per_position = int(bits_per_position)
        self.num_bits = self.num_positions * self.bits_per_position
        self.num_words = words_for_bits(self.num_bits)
        # MSB-first per position, matching PatternSet.bit_index ordering.
        self._bit_shifts = np.arange(self.bits_per_position - 1, -1, -1, dtype=np.int64)

    # ------------------------------------------------------------------
    def _validate_codes(self, codes: np.ndarray) -> np.ndarray:
        codes = np.atleast_2d(np.asarray(codes, dtype=np.int64))
        if codes.ndim != 2 or codes.shape[1] != self.num_positions:
            raise ShapeError(
                f"expected a (batch, {self.num_positions}) code matrix, got "
                f"shape {codes.shape}"
            )
        if codes.size and (codes.min() < 0 or codes.max() >= (1 << self.bits_per_position)):
            raise ConfigurationError(
                f"codes must lie in [0, {1 << self.bits_per_position})"
            )
        return codes

    def code_bits(self, codes: np.ndarray) -> np.ndarray:
        """Expand a ``(N, P)`` code matrix to its ``(N, P·b)`` bit matrix."""
        codes = self._validate_codes(codes)
        bits = (codes[:, :, None] >> self._bit_shifts[None, None, :]) & 1
        return bits.reshape(codes.shape[0], self.num_bits).astype(bool)

    def pack_codes(self, codes: np.ndarray) -> np.ndarray:
        """Pack a ``(N, P)`` code matrix into ``(N, W)`` ``uint64`` rows."""
        return pack_bool_matrix(self.code_bits(codes))

    def unpack_codes(self, packed: np.ndarray) -> np.ndarray:
        """Inverse of :meth:`pack_codes`."""
        bits = unpack_bool_matrix(packed, self.num_bits)
        shaped = bits.reshape(bits.shape[0], self.num_positions, self.bits_per_position)
        weights = (1 << self._bit_shifts).astype(np.int64)
        return (shaped * weights[None, None, :]).sum(axis=2)


class PatternCodec:
    """Binarise activation batches against cut points, fully vectorised.

    Parameters
    ----------
    cut_points:
        ``(num_positions, num_cuts)`` array, strictly increasing per row.
        One cut point per position yields the 1-bit on/off abstraction.
    tolerance:
        Per-cut comparison tolerance added to the cuts; ``None`` uses the
        scale-relative :func:`default_tolerance`.  Pass ``0.0`` for the
        strict ``value > cut`` comparison of :mod:`repro.monitors.encoding`.
    """

    def __init__(
        self,
        cut_points: np.ndarray,
        tolerance: Optional[np.ndarray] = None,
    ) -> None:
        cut_points = np.asarray(cut_points, dtype=np.float64)
        if cut_points.ndim == 1:
            cut_points = cut_points[:, None]
        if cut_points.ndim != 2 or cut_points.shape[0] == 0:
            raise ShapeError("cut_points must be a (num_positions, num_cuts) matrix")
        if cut_points.shape[1] >= 2 and not np.all(np.diff(cut_points, axis=1) > 0):
            raise ConfigurationError("cut points must be strictly increasing per row")
        self.cut_points = cut_points
        if tolerance is None:
            tolerance = default_tolerance(cut_points)
        self._effective_cuts = cut_points + np.broadcast_to(
            np.asarray(tolerance, dtype=np.float64), cut_points.shape
        )
        self.num_positions, self.num_cuts = cut_points.shape
        self.num_codes = self.num_cuts + 1
        bits = max(1, int(np.ceil(np.log2(self.num_codes))))
        self.word_codec = WordCodec(self.num_positions, bits)

    # ------------------------------------------------------------------
    @property
    def bits_per_position(self) -> int:
        return self.word_codec.bits_per_position

    def _validate_features(self, features: np.ndarray) -> np.ndarray:
        features = np.atleast_2d(np.asarray(features, dtype=np.float64))
        if features.shape[1] != self.num_positions:
            raise ShapeError(
                f"expected features over {self.num_positions} positions, got "
                f"{features.shape[1]}"
            )
        return features

    def codes(self, features: np.ndarray) -> np.ndarray:
        """Interval code of every entry of a ``(N, P)`` feature batch."""
        features = self._validate_features(features)
        return (
            (features[:, :, None] > self._effective_cuts[None, :, :])
            .sum(axis=2)
            .astype(np.int64)
        )

    def encode(self, features: np.ndarray) -> np.ndarray:
        """Feature batch → bit-packed ``(N, W)`` pattern words in one pass."""
        return self.word_codec.pack_codes(self.codes(features))

    def decode(self, packed: np.ndarray) -> np.ndarray:
        """Packed words → ``(N, P)`` integer code matrix (layout round-trip)."""
        return self.word_codec.unpack_codes(packed)

    # ------------------------------------------------------------------
    # robust (Δ-perturbation) encodings
    # ------------------------------------------------------------------
    def bound_codes(self, low: np.ndarray, high: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Per-position code range reachable inside ``[low, high]`` bounds.

        The code function is monotone in the value, so the reachable set is
        exactly ``code(low) .. code(high)`` — Section III-C's observation.
        """
        low_codes = self.codes(low)
        high_codes = self.codes(high)
        if np.any(low_codes > high_codes):
            raise ShapeError("bound lower end exceeds upper end")
        return low_codes, high_codes

    def ternary_planes(self, low: np.ndarray, high: np.ndarray) -> TernaryPlanes:
        """Ternary value/mask bit-planes of a batch of 1-bit robust words.

        Bit ``j`` is constrained to 1 when ``low_j`` clears the cut, to 0 when
        ``high_j`` stays below it, and is a don't-care otherwise — the robust
        abstraction ``ab_R`` of Section III-B, one vectorised pass per batch.
        """
        if self.bits_per_position != 1:
            raise ConfigurationError(
                "ternary planes require a 1-bit-per-position codec"
            )
        low_codes, high_codes = self.bound_codes(low, high)
        constrained = low_codes == high_codes
        values = pack_bool_matrix((low_codes == 1) & constrained)
        masks = pack_bool_matrix(constrained)
        return TernaryPlanes(values=values, masks=masks)

    # ------------------------------------------------------------------
    @classmethod
    def from_thresholds(
        cls, thresholds: np.ndarray, tolerance: Optional[np.ndarray] = None
    ) -> "PatternCodec":
        """1-bit codec from a flat per-neuron threshold vector."""
        thresholds = np.asarray(thresholds, dtype=np.float64).reshape(-1, 1)
        return cls(thresholds, tolerance=tolerance)
